//! End-to-end tests of the command-line tool suite
//! (`svm-scale` → `svm-train` → `svm-predict`).

use std::path::PathBuf;
use std::process::Command;

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shrinksvm-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Deterministic two-class libsvm-format file: class signal on feature 1.
fn write_dataset(path: &PathBuf, n: usize, seed: u64) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2001) as f64 / 1000.0 - 1.0
    };
    let mut out = String::new();
    for i in 0..n {
        let y: f64 = if i % 2 == 0 { 1.0 } else { -1.0 };
        let x0 = y * 1.5 + 0.5 * next();
        let x1 = next() * 3.0;
        out.push_str(&format!("{} 1:{:.4} 2:{:.4}\n", y as i64, x0, x1));
    }
    std::fs::write(path, out).unwrap();
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

#[test]
fn scale_train_predict_pipeline() {
    let dir = workdir();
    let train = dir.join("train.libsvm");
    let test = dir.join("test.libsvm");
    write_dataset(&train, 240, 7);
    write_dataset(&test, 80, 99);

    // scale: fit on train, save factors, restore for test
    let factors = dir.join("factors");
    let train_scaled = dir.join("train.scaled");
    let test_scaled = dir.join("test.scaled");
    let out = run(
        env!("CARGO_BIN_EXE_svm-scale"),
        &[
            "-u",
            "1",
            "-s",
            factors.to_str().unwrap(),
            train.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::write(&train_scaled, &out.stdout).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_svm-scale"),
        &["-r", factors.to_str().unwrap(), test.to_str().unwrap()],
    );
    assert!(out.status.success());
    std::fs::write(&test_scaled, &out.stdout).unwrap();

    // train distributed with shrinking
    let model = dir.join("m.model");
    let out = run(
        env!("CARGO_BIN_EXE_svm-train"),
        &[
            "-t",
            "2",
            "-g",
            "2",
            "-c",
            "10",
            "-H",
            "Multi5pc",
            "-P",
            "3",
            train_scaled.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(model.exists());

    // predict
    let preds = dir.join("preds");
    let out = run(
        env!("CARGO_BIN_EXE_svm-predict"),
        &[
            test_scaled.to_str().unwrap(),
            model.to_str().unwrap(),
            preds.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Accuracy ="), "{stdout}");
    // pull the percentage out and require a sane classifier
    let pct: f64 = stdout
        .split("Accuracy = ")
        .nth(1)
        .and_then(|s| s.split('%').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("accuracy parse");
    assert!(pct > 90.0, "accuracy {pct}%");
    // one prediction per test line
    let lines = std::fs::read_to_string(&preds).unwrap().lines().count();
    assert_eq!(lines, 80);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_sequential_and_multicore_paths() {
    let dir = workdir();
    let train = dir.join("t2.libsvm");
    write_dataset(&train, 150, 13);
    let model = dir.join("t2.model");

    // sequential with 2nd-order WSS (the default path)
    let out = run(
        env!("CARGO_BIN_EXE_svm-train"),
        &[
            "-t",
            "2",
            "-g",
            "1",
            "-q",
            train.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // multicore
    let out = run(
        env!("CARGO_BIN_EXE_svm-train"),
        &[
            "-T",
            "2",
            "-q",
            train.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(out.status.success());

    // weighted classes
    let out = run(
        env!("CARGO_BIN_EXE_svm-train"),
        &[
            "-w+",
            "4",
            "-w-",
            "1",
            "-q",
            train.to_str().unwrap(),
            model.to_str().unwrap(),
        ],
    );
    assert!(out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_cleanly() {
    let out = run(env!("CARGO_BIN_EXE_svm-train"), &["/does/not/exist.libsvm"]);
    assert!(!out.status.success());
    let out = run(env!("CARGO_BIN_EXE_svm-predict"), &["a"]);
    assert!(!out.status.success());
    let dir = workdir();
    let train = dir.join("t3.libsvm");
    write_dataset(&train, 50, 5);
    let out = run(
        env!("CARGO_BIN_EXE_svm-train"),
        &["-H", "bogus", train.to_str().unwrap()],
    );
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}
