//! Randomized-sweep tests for the sparse substrate: CSR structure,
//! arithmetic identities, I/O and scaling. Deterministic (fixed seeds) so
//! the suite runs offline and reproducibly.

use shrinksvm::datagen::rng::SmallRng;
use shrinksvm::sparse::io::{read_libsvm_from, write_libsvm_to};
use shrinksvm::sparse::ops;
use shrinksvm::sparse::scale::Scaler;
use shrinksvm::sparse::{CsrBuilder, CsrMatrix, Dataset};

/// A small random dense matrix: ~30% explicit zeros, bounded values.
fn dense_matrix(rng: &mut SmallRng) -> (Vec<Vec<f64>>, usize) {
    let ncols = rng.gen_range(1usize..8);
    let nrows = rng.gen_range(1usize..12);
    let rows = (0..nrows)
        .map(|_| {
            (0..ncols)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        0.0
                    } else {
                        rng.gen_range(-100.0..100.0)
                    }
                })
                .collect()
        })
        .collect();
    (rows, ncols)
}

/// One sparse row over `ncols` columns: sorted unique indices, nonzero values.
fn sparse_row(rng: &mut SmallRng, ncols: u32) -> Vec<(u32, f64)> {
    let want = rng.gen_range(0usize..(ncols as usize).min(10));
    let mut row: Vec<(u32, f64)> = Vec::new();
    while row.len() < want {
        let col = rng.gen_range(0u32..ncols);
        if row.iter().any(|(c, _)| *c == col) {
            continue;
        }
        let v = rng.gen_range(-50.0..50.0);
        if v != 0.0 {
            row.push((col, v));
        }
    }
    row
}

#[test]
fn csr_dense_roundtrip() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (rows, ncols) = dense_matrix(&mut rng);
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        assert!(m.validate().is_ok());
        let back = m.to_dense();
        for (orig, rt) in rows.iter().zip(&back) {
            assert_eq!(orig, rt, "seed={seed}");
        }
        // nnz agrees with the dense count of non-zeros
        let nnz: usize = rows.iter().flatten().filter(|v| **v != 0.0).count();
        assert_eq!(m.nnz(), nnz, "seed={seed}");
    }
}

#[test]
fn dot_is_symmetric_and_matches_dense() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let a = sparse_row(&mut rng, 20);
        let b = sparse_row(&mut rng, 20);
        let mut ba = CsrBuilder::new(20);
        ba.push_row_unsorted(a).unwrap();
        ba.push_row_unsorted(b).unwrap();
        let m = ba.finish();
        let (ra, rb) = (m.row(0), m.row(1));
        let d1 = ops::dot(ra, rb);
        let d2 = ops::dot(rb, ra);
        assert_eq!(d1, d2, "seed={seed}");
        let dense_b = rb.to_dense(20);
        let d3 = ops::dot_dense(ra, &dense_b);
        assert!(
            (d1 - d3).abs() <= 1e-9 * (1.0 + d1.abs()),
            "seed={seed}: {d1} vs {d3}"
        );
    }
}

#[test]
fn distance_identity_holds() {
    for seed in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(200 + seed);
        let a = sparse_row(&mut rng, 16);
        let b = sparse_row(&mut rng, 16);
        let mut bld = CsrBuilder::new(16);
        bld.push_row_unsorted(a).unwrap();
        bld.push_row_unsorted(b).unwrap();
        let m = bld.finish();
        let (ra, rb) = (m.row(0), m.row(1));
        let via_norms = ops::squared_distance_direct(ra, rb);
        let direct: f64 = {
            let da = ra.to_dense(16);
            let db = rb.to_dense(16);
            da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        assert!(via_norms >= 0.0, "seed={seed}");
        assert!(
            (via_norms - direct).abs() <= 1e-7 * (1.0 + direct),
            "seed={seed}: {via_norms} vs {direct}"
        );
    }
}

#[test]
fn libsvm_io_roundtrips() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(300 + seed);
        let (rows, ncols) = dense_matrix(&mut rng);
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        let y: Vec<f64> = (0..m.nrows())
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ds = Dataset::new(m, y).unwrap();
        let mut buf = Vec::new();
        write_libsvm_to(&ds, &mut buf).unwrap();
        let back = read_libsvm_from(&buf[..]).unwrap();
        assert_eq!(back.len(), ds.len(), "seed={seed}");
        assert_eq!(&back.y, &ds.y, "seed={seed}");
        for i in 0..ds.len() {
            assert_eq!(back.x.row(i).indices, ds.x.row(i).indices, "seed={seed}");
            for (va, vb) in back.x.row(i).values.iter().zip(ds.x.row(i).values) {
                assert!(
                    (va - vb).abs() < 1e-12,
                    "seed={seed}: value drift {va} vs {vb}"
                );
            }
        }
    }
}

#[test]
fn scaler_bounds_training_data() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(400 + seed);
        let (rows, ncols) = dense_matrix(&mut rng);
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        let s = Scaler::fit(&m, 1.0);
        let t = s.transform(&m).unwrap();
        assert_eq!(t.nnz(), m.nnz(), "seed={seed}: sparsity preserved");
        for i in 0..t.nrows() {
            for (_, v) in t.row(i).iter() {
                assert!(v.abs() <= 1.0 + 1e-12, "seed={seed}");
            }
        }
    }
}

#[test]
fn shuffle_is_a_permutation() {
    for seed in 0..40u64 {
        let n = (seed as usize % 39) + 1;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let m = CsrMatrix::from_dense(&rows, 1).unwrap();
        let y: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let ds = Dataset::new(m, y).unwrap();
        let sh = ds.shuffled(seed * 37 + 1);
        let mut seen: Vec<i64> = (0..sh.len()).map(|i| sh.x.row(i).get(0) as i64).collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        assert_eq!(seen, expect, "seed={seed}");
        // labels still pair with their rows
        for i in 0..sh.len() {
            let v = sh.x.row(i).get(0) as i64;
            assert_eq!(sh.y[i], if v % 2 == 0 { 1.0 } else { -1.0 }, "seed={seed}");
        }
    }
}
