//! Randomized-sweep tests on the optimizer itself: dual feasibility,
//! optimality at termination, shrinking exactness and process-count
//! invariance on seeded random problems. Deterministic (fixed seeds) so
//! the suite runs offline and reproducibly.

use shrinksvm::core::dist::DistSolver;
use shrinksvm::core::kernel::{KernelEval, KernelKind};
use shrinksvm::core::params::SvmParams;
use shrinksvm::core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
use shrinksvm::core::smo::update::solve_pair;
use shrinksvm::core::smo::SmoSolver;
use shrinksvm::datagen::rng::SmallRng;
use shrinksvm::sparse::{CsrMatrix, Dataset};

/// A random small two-class dataset (guaranteed both classes, with enough
/// signal in column 0 that problems aren't pure noise).
fn dataset(rng: &mut SmallRng) -> Dataset {
    let n = rng.gen_range(4usize..40);
    let dim = rng.gen_range(1usize..5);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = if i % 2 == 0 { 1.0 } else { -1.0 };
        let mut row: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        row[0] += label;
        rows.push(row);
        y.push(label);
    }
    Dataset::new(CsrMatrix::from_dense(&rows, dim).unwrap(), y).unwrap()
}

#[test]
fn pair_solve_feasibility() {
    let c = 1.0;
    for seed in 0..200u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let y_up = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let y_low = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let a_up = rng.gen_range(0.0..1.0);
        let a_low = rng.gen_range(0.0..1.0);
        let g_up = rng.gen_range(-10.0..10.0);
        let g_low = rng.gen_range(-10.0..10.0);
        let k_ul = rng.gen_range(-1.0..1.0);
        let sol = solve_pair(
            y_up, y_low, a_up, a_low, g_up, g_low, 1.0, 1.0, k_ul, c, 1e-12,
        );
        assert!((0.0..=c).contains(&sol.alpha_up), "seed={seed}: {sol:?}");
        assert!((0.0..=c).contains(&sol.alpha_low), "seed={seed}: {sol:?}");
        // equality constraint preserved
        let drift = y_up * sol.delta_up + y_low * sol.delta_low;
        assert!(drift.abs() < 1e-9, "seed={seed}: Σαy drift {drift}");
    }
}

#[test]
fn training_satisfies_kkt_style_invariants() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(1000 + seed);
        let ds = dataset(&mut rng);
        let c = 10f64.powi(rng.gen_range(0u32..3) as i32 - 1); // 0.1, 1, 10
        let params = SvmParams::new(c, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let out = SmoSolver::new(&ds, params).train().unwrap();
        assert!(out.converged, "seed={seed}");
        // Σ coef = Σ α y = 0; |coef| ≤ C
        let sum: f64 = out.model.coefficients().iter().sum();
        assert!(sum.abs() < 1e-7 * (1.0 + c), "seed={seed}: Σαy = {sum}");
        for &co in out.model.coefficients() {
            assert!(co.abs() <= c + 1e-9, "seed={seed}");
        }
        // final optimality gap within tolerance
        assert!(out.final_gap <= 2.0 * 1e-3 + 1e-12, "seed={seed}");
    }
}

#[test]
fn dual_objective_never_higher_with_more_iterations() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(2000 + seed);
        let ds = dataset(&mut rng);
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.5 }, &ds.x);
        let obj_at = |iters: u64| {
            let params = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 }).with_max_iter(iters);
            let out = SmoSolver::new(&ds, params).train().unwrap();
            let mut alpha = vec![0.0; ds.len()];
            for (k, &idx) in out.model.training_indices().iter().enumerate() {
                alpha[idx] = out.model.coefficients()[k] * ds.y[idx];
            }
            shrinksvm::core::smo::dual_objective(&ke, &ds.y, &alpha)
        };
        let o3 = obj_at(3);
        let o30 = obj_at(30);
        let o300 = obj_at(300);
        assert!(o30 <= o3 + 1e-9, "seed={seed}: {o3} -> {o30}");
        assert!(o300 <= o30 + 1e-9, "seed={seed}: {o30} -> {o300}");
    }
}

#[test]
fn shrinking_never_changes_the_answer() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(3000 + seed);
        let ds = dataset(&mut rng);
        let procs = rng.gen_range(1usize..5);
        let base = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let plain = DistSolver::new(&ds, base.clone())
            .with_processes(procs)
            .train()
            .unwrap();
        let shrunk = DistSolver::new(
            &ds,
            base.with_shrink(ShrinkPolicy::new(Heuristic::Random(2), ReconPolicy::Multi)),
        )
        .with_processes(procs)
        .train()
        .unwrap();
        assert!(plain.converged && shrunk.converged, "seed={seed}");
        // both satisfy the optimality gap on the full set
        assert!(shrunk.trace.final_gap <= 2e-3 + 1e-12, "seed={seed}");
        // identical predictions on the training samples
        for i in 0..ds.len() {
            assert_eq!(
                plain.model.predict(ds.x.row(i)),
                shrunk.model.predict(ds.x.row(i)),
                "seed={seed}: sample {i} diverged"
            );
        }
    }
}

#[test]
fn process_count_is_invisible() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(4000 + seed);
        let ds = dataset(&mut rng);
        let pa = rng.gen_range(1usize..6);
        let pb = rng.gen_range(1usize..6);
        let params = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let a = DistSolver::new(&ds, params.clone())
            .with_processes(pa)
            .train()
            .unwrap();
        let b = DistSolver::new(&ds, params)
            .with_processes(pb)
            .train()
            .unwrap();
        assert_eq!(a.iterations, b.iterations, "seed={seed} pa={pa} pb={pb}");
        assert_eq!(
            a.model.coefficients(),
            b.model.coefficients(),
            "seed={seed}"
        );
    }
}
