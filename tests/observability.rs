//! End-to-end checks of the unified telemetry layer: artifact
//! determinism, JSON well-formedness, fault-ledger visibility, health
//! monitoring, and the crash flight recorder.

use shrinksvm::prelude::*;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::monitor::{self, HealthConfig};
use shrinksvm_obs::{json, Event, FlightRecorder, Timeline, TrackRecorder};

fn params() -> SvmParams {
    SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.5)).with_epsilon(1e-3)
}

fn traced_artifacts(ds: &Dataset) -> (String, String, String, String) {
    let run = DistSolver::new(ds, params().with_shrink(ShrinkPolicy::best()))
        .with_processes(3)
        .with_tracing()
        .train()
        .unwrap();
    let profile = run.profile.as_ref().unwrap();
    (
        run.timeline.to_chrome_json(),
        run.metrics.snapshot(),
        run.bench_report("determinism").to_json(),
        profile.to_folded(),
    )
}

#[test]
fn telemetry_artifacts_are_byte_identical_across_same_seed_runs() {
    let ds = gaussian::two_blobs(180, 4, 3.0, 77);
    let (trace_a, metrics_a, bench_a, folded_a) = traced_artifacts(&ds);
    let (trace_b, metrics_b, bench_b, folded_b) = traced_artifacts(&ds);
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(bench_a, bench_b);
    assert_eq!(folded_a, folded_b);

    json::check(&trace_a).unwrap();
    json::check(&bench_a).unwrap();
    // solver telemetry made it into the snapshot
    assert!(metrics_a.contains("series active_set"), "{metrics_a}");
    assert!(metrics_a.contains("gauge final_gap"), "{metrics_a}");
    // per-rank tracks and solver phases made it into the trace
    assert!(trace_a.contains("\"allreduce\""));
    assert!(trace_a.contains("\"compute\""));
}

#[test]
fn traced_runs_attach_a_reconciled_hierarchical_profile() {
    let ds = gaussian::two_blobs(180, 4, 3.0, 77);
    let run = DistSolver::new(&ds, params().with_shrink(ShrinkPolicy::best()))
        .with_processes(3)
        .with_tracing()
        .train()
        .unwrap();
    let profile = run.profile.as_ref().expect("tracing attaches a profile");
    assert_eq!(profile.ranks, 3);
    assert_eq!(profile.makespan, run.makespan);

    // Conservation: the folded self-times sum to p * makespan (every
    // simulated second is charged to exactly one leaf).
    let folded = profile.to_folded();
    let total: f64 = folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<f64>().unwrap())
        .sum();
    let expect = 3.0 * run.makespan;
    assert!(
        (total - expect).abs() <= 1e-9 * run.makespan,
        "folded sum {total} vs p*makespan {expect}"
    );

    // Stacks are rank;phase;op;charge — solver phases from the timeline
    // must show up as the phase frame, not just the "main" fallback.
    assert!(
        folded.lines().any(|l| l.starts_with("rank0;fused_sweep;")),
        "{folded}"
    );
    // Untraced runs attach nothing.
    let plain = DistSolver::new(&ds, params())
        .with_processes(3)
        .train()
        .unwrap();
    assert!(plain.profile.is_none());

    // The remaining renderings hold up too: JSON parses, the flame SVG is
    // well-formed XML.
    json::check(&profile.to_json()).unwrap();
    shrinksvm_obs::profile::xml_check(&profile.to_svg()).unwrap();
}

#[test]
fn fault_ledger_events_are_visible_on_the_timeline() {
    let ds = gaussian::two_blobs(150, 3, 4.0, 78);
    let plan = FaultPlan::new(9).drop_messages(Some(0), Some(1), 1.0, 0.0, f64::MAX, 2);
    let run = DistSolver::new(&ds, params())
        .with_processes(2)
        .with_faults(plan)
        .with_tracing()
        .train()
        .unwrap();
    assert!(run.faults_survived >= 2, "{}", run.faults_survived);
    let text = run.timeline.render_text();
    assert!(text.contains("drop(src=0)"), "{text}");
    let trace = run.timeline.to_chrome_json();
    json::check(&trace).unwrap();
    assert!(trace.contains("\"fault\""));
    assert!(trace.contains("\"retransmit\""));
}

#[test]
fn smo_cache_hit_rate_is_sampled_per_epoch() {
    // enough iterations to cross the 256-iteration epoch boundary
    let ds = gaussian::two_blobs(400, 4, 2.0, 79);
    let out = SmoSolver::new(&ds, params().with_epsilon(1e-4).with_cache_bytes(8 << 20))
        .train()
        .unwrap();
    assert!(out.iterations > 256, "{}", out.iterations);
    assert!(!out.metrics.series("cache_hit_rate").is_empty());
    let rate = out.metrics.gauge("cache_hit_rate").unwrap();
    assert!((0.0..=1.0).contains(&rate), "{rate}");
    // snapshot renders the series deterministically
    let snap = out.metrics.snapshot();
    assert!(snap.contains("series cache_hit_rate"), "{snap}");
}

#[test]
fn convergence_phase_is_published_as_an_epoch_series() {
    // enough iterations to cross the metrics-epoch boundary at least once
    let ds = gaussian::two_blobs(400, 4, 2.0, 80);
    let run = DistSolver::new(&ds, params().with_epsilon(1e-4))
        .with_processes(2)
        .train()
        .unwrap();
    assert!(run.iterations > 256, "{}", run.iterations);
    let phases = run.metrics.series("convergence_phase");
    assert!(!phases.is_empty());
    // phase codes are the four-point scale from ConvergencePhase::code
    assert!(
        phases.iter().all(|&(_, c)| (0.0..=3.0).contains(&c)),
        "{phases:?}"
    );
    assert!(run.metrics.snapshot().contains("series convergence_phase"));
}

#[test]
fn fault_free_runs_emit_zero_health_events() {
    let ds = gaussian::two_blobs(180, 4, 3.0, 81);
    let run = DistSolver::new(&ds, params())
        .with_processes(3)
        .with_tracing()
        .train()
        .unwrap();
    // acceptance bar: a healthy run's timeline carries no health events,
    // neither as timeline instants nor as registered metrics
    assert!(!run
        .timeline
        .events()
        .iter()
        .any(|e| matches!(e, Event::Instant { cat, .. } if cat == "health")),);
    assert!(!run.metrics.snapshot().contains("health_"));
    // and a fresh analysis over the same timeline agrees
    let health = monitor::analyze(run.timeline.events(), &HealthConfig::default());
    assert!(health.is_empty(), "{health:?}");
}

#[test]
fn text_renderer_handles_empty_and_instant_only_tracks() {
    // empty timeline renders as empty text
    assert_eq!(Timeline::new().render_text(), "");

    // track 0 has no events at all, track 1 holds only instants/counters
    let r0 = TrackRecorder::new(0);
    let mut r1 = TrackRecorder::new(1);
    r1.instant("retransmit", "fault", 0.25);
    r1.counter("active_set", 0.5, 64.0);
    let tl = Timeline::from_tracks(vec![r0.finish(), r1.finish()]);
    let text = tl.render_text();
    // the empty track gets no section header
    assert!(!text.contains("-- rank 0 --"), "{text}");
    assert!(text.contains("-- rank 1 --"), "{text}");
    // instants and counters keep their distinct markers
    assert!(text.contains("!] fault    retransmit"), "{text}");
    assert!(text.contains("#] counter  active_set = 64"), "{text}");
}

#[test]
fn text_renderer_interleaves_health_with_fault_events() {
    let mut r0 = TrackRecorder::new(0);
    r0.span("recv_wait", "p2p", 0.0, 0.9);
    r0.instant("retransmit", "fault", 0.1);
    let mut tl = Timeline::from_tracks(vec![r0.finish()]);
    for h in monitor::analyze(tl.events(), &HealthConfig::default()) {
        tl.push(h.to_instant());
    }
    tl.normalize();
    let text = tl.render_text();
    // the dominating recv_wait span triggers a stall diagnostic, rendered
    // in the same per-rank section as the raw fault marker
    assert!(text.contains("!] fault    retransmit"), "{text}");
    assert!(text.contains("!] health   collective_stall:"), "{text}");
}

#[test]
fn flight_ring_wraparound_is_deterministic() {
    let fill = |recorder: &FlightRecorder| {
        for i in 0..10 {
            recorder.record(Event::Instant {
                track: 0,
                name: format!("e{i}"),
                cat: "fault".into(),
                t: f64::from(i) * 0.1,
            });
        }
        // events on tracks beyond the ring set are ignored, not mis-filed
        recorder.record(Event::Instant {
            track: 5,
            name: "ghost".into(),
            cat: "fault".into(),
            t: 9.9,
        });
    };
    let a = FlightRecorder::new(2, 4);
    let b = FlightRecorder::new(2, 4);
    fill(&a);
    fill(&b);
    let (sa, sb) = (a.snapshot(), b.snapshot());
    // wraparound keeps exactly the newest `capacity` events, oldest first
    assert_eq!(sa.ranks[0].events.len(), 4);
    assert_eq!(sa.ranks[0].dropped, 6);
    let names: Vec<&str> = sa.ranks[0]
        .events
        .iter()
        .map(|e| match e {
            Event::Instant { name, .. } => name.as_str(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(names, ["e6", "e7", "e8", "e9"]);
    assert!(sa.ranks[1].events.is_empty());
    // identical fills serialize to identical bytes
    let ja = sa.to_json("wrap", "test", &[]);
    assert_eq!(ja, sb.to_json("wrap", "test", &[]));
    json::check(&ja).unwrap();
    // the rendered lines (what lands in the validation report) carry one
    // line per retained event plus the rank-0 aged-out marker
    let lines = sa.render_lines();
    assert_eq!(lines.len(), sa.len() + 1, "{lines:?}");
    assert_eq!(lines[0], "rank 0: ... 6 earlier event(s) aged out");
}
