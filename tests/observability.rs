//! End-to-end checks of the unified telemetry layer: artifact
//! determinism, JSON well-formedness, and fault-ledger visibility.

use shrinksvm::prelude::*;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::json;

fn params() -> SvmParams {
    SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.5)).with_epsilon(1e-3)
}

fn traced_artifacts(ds: &Dataset) -> (String, String, String) {
    let run = DistSolver::new(ds, params().with_shrink(ShrinkPolicy::best()))
        .with_processes(3)
        .with_tracing()
        .train()
        .unwrap();
    (
        run.timeline.to_chrome_json(),
        run.metrics.snapshot(),
        run.bench_report("determinism").to_json(),
    )
}

#[test]
fn telemetry_artifacts_are_byte_identical_across_same_seed_runs() {
    let ds = gaussian::two_blobs(180, 4, 3.0, 77);
    let (trace_a, metrics_a, bench_a) = traced_artifacts(&ds);
    let (trace_b, metrics_b, bench_b) = traced_artifacts(&ds);
    assert_eq!(trace_a, trace_b);
    assert_eq!(metrics_a, metrics_b);
    assert_eq!(bench_a, bench_b);

    json::check(&trace_a).unwrap();
    json::check(&bench_a).unwrap();
    // solver telemetry made it into the snapshot
    assert!(metrics_a.contains("series active_set"), "{metrics_a}");
    assert!(metrics_a.contains("gauge final_gap"), "{metrics_a}");
    // per-rank tracks and solver phases made it into the trace
    assert!(trace_a.contains("\"allreduce\""));
    assert!(trace_a.contains("\"compute\""));
}

#[test]
fn fault_ledger_events_are_visible_on_the_timeline() {
    let ds = gaussian::two_blobs(150, 3, 4.0, 78);
    let plan = FaultPlan::new(9).drop_messages(Some(0), Some(1), 1.0, 0.0, f64::MAX, 2);
    let run = DistSolver::new(&ds, params())
        .with_processes(2)
        .with_faults(plan)
        .with_tracing()
        .train()
        .unwrap();
    assert!(run.faults_survived >= 2, "{}", run.faults_survived);
    let text = run.timeline.render_text();
    assert!(text.contains("drop(src=0)"), "{text}");
    let trace = run.timeline.to_chrome_json();
    json::check(&trace).unwrap();
    assert!(trace.contains("\"fault\""));
    assert!(trace.contains("\"retransmit\""));
}

#[test]
fn smo_cache_hit_rate_is_sampled_per_epoch() {
    // enough iterations to cross the 256-iteration epoch boundary
    let ds = gaussian::two_blobs(400, 4, 2.0, 79);
    let out = SmoSolver::new(&ds, params().with_epsilon(1e-4).with_cache_bytes(8 << 20))
        .train()
        .unwrap();
    assert!(out.iterations > 256, "{}", out.iterations);
    assert!(!out.metrics.series("cache_hit_rate").is_empty());
    let rate = out.metrics.gauge("cache_hit_rate").unwrap();
    assert!((0.0..=1.0).contains(&rate), "{rate}");
    // snapshot renders the series deterministically
    let snap = out.metrics.snapshot();
    assert!(snap.contains("series cache_hit_rate"), "{snap}");
}
