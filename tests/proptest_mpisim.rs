//! Property tests for the message-passing substrate: every collective must
//! equal its sequential reduction for arbitrary rank counts and inputs,
//! and the simulated clocks must behave like time.

use proptest::prelude::*;
use shrinksvm::mpisim::{CostParams, MaxLoc, MinLoc, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_sum_equals_sequential(
        p in 1usize..10,
        values in proptest::collection::vec(-1e6..1e6f64, 10)
    ) {
        let vals = values.clone();
        let out = Universe::new(p).run(move |c| c.allreduce_f64_sum(vals[c.rank()]));
        let expect: f64 = values[..p].iter().sum();
        for o in &out {
            prop_assert!((o.value - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "p={p}: {} vs {expect}", o.value);
        }
        // every rank agrees exactly (same reduction tree)
        for o in &out {
            prop_assert_eq!(o.value, out[0].value);
        }
    }

    #[test]
    fn minloc_maxloc_agree_with_scan(
        p in 1usize..9,
        values in proptest::collection::vec(-100.0..100.0f64, 9)
    ) {
        let vals = values.clone();
        let out = Universe::new(p).run(move |c| {
            let m = MinLoc { value: vals[c.rank()], index: c.rank() as u64 };
            let x = MaxLoc { value: vals[c.rank()], index: c.rank() as u64 };
            (c.allreduce_minloc(m), c.allreduce_maxloc(x))
        });
        let mut exp_min = MinLoc::identity();
        let mut exp_max = MaxLoc::identity();
        for (i, &v) in values[..p].iter().enumerate() {
            exp_min = MinLoc::combine(exp_min, MinLoc { value: v, index: i as u64 });
            exp_max = MaxLoc::combine(exp_max, MaxLoc { value: v, index: i as u64 });
        }
        for o in &out {
            prop_assert_eq!(o.value.0, exp_min);
            prop_assert_eq!(o.value.1, exp_max);
        }
    }

    #[test]
    fn bcast_delivers_arbitrary_payloads(
        p in 1usize..9,
        root_choice in 0usize..9,
        payload in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let root = root_choice % p;
        let pl = payload.clone();
        let out = Universe::new(p).run(move |c| {
            let mine = if c.rank() == root { pl.clone() } else { vec![] };
            c.bcast(root, &mine)
        });
        for o in &out {
            prop_assert_eq!(&o.value, &payload);
        }
    }

    #[test]
    fn allgatherv_preserves_every_piece(p in 1usize..8, stamp in any::<u8>()) {
        let out = Universe::new(p).run(move |c| {
            let mine = vec![stamp ^ (c.rank() as u8); c.rank() % 3 + 1];
            c.allgatherv(&mine)
        });
        for o in &out {
            for (r, piece) in o.value.iter().enumerate() {
                prop_assert_eq!(piece, &vec![stamp ^ (r as u8); r % 3 + 1]);
            }
        }
    }

    #[test]
    fn clocks_are_monotone_and_barrier_syncs(
        p in 2usize..8,
        busy_rank in 0usize..8,
        work in 0.0..100.0f64
    ) {
        let busy = busy_rank % p;
        let out = Universe::new(p)
            .with_cost(CostParams { latency: 0.5, gap_per_byte: 0.0, send_overhead: 0.1 })
            .run(move |c| {
                let before = c.clock();
                if c.rank() == busy {
                    c.advance_compute(work);
                }
                c.barrier();
                let after = c.clock();
                (before, after)
            });
        for o in &out {
            prop_assert!(o.value.1 >= o.value.0, "clock went backwards");
            prop_assert!(o.value.1 >= work, "barrier must not complete before the slowest rank");
        }
    }

    #[test]
    fn ring_circulation_conserves_data(p in 1usize..8) {
        let out = Universe::new(p).run(move |c| {
            let mut cur = vec![c.rank() as u8];
            let mut collected = vec![c.rank()];
            for _ in 0..p - 1 {
                cur = c.ring_shift(&cur);
                collected.push(cur[0] as usize);
            }
            collected.sort_unstable();
            collected
        });
        for o in &out {
            prop_assert_eq!(&o.value, &(0..p).collect::<Vec<_>>());
        }
    }
}

#[test]
fn stats_balance_across_fleet() {
    // total messages sent == total received for a busy collective workload
    let out = Universe::new(6).run(|c| {
        c.allreduce_f64_sum(1.0);
        c.barrier();
        c.bcast(2, &[1, 2, 3]);
        c.allgatherv(&[c.rank() as u8]);
        c.stats()
    });
    let sent: u64 = out.iter().map(|o| o.value.msgs_sent).sum();
    let recv: u64 = out.iter().map(|o| o.value.msgs_recv).sum();
    assert_eq!(sent, recv);
    let bytes_sent: u64 = out.iter().map(|o| o.value.bytes_sent).sum();
    let bytes_recv: u64 = out.iter().map(|o| o.value.bytes_recv).sum();
    assert_eq!(bytes_sent, bytes_recv);
}
