//! Property tests on the optimizer itself: dual feasibility, optimality at
//! termination, shrinking exactness and process-count invariance on
//! randomly generated problems.

use proptest::prelude::*;
use shrinksvm::core::dist::DistSolver;
use shrinksvm::core::kernel::{KernelEval, KernelKind};
use shrinksvm::core::params::SvmParams;
use shrinksvm::core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
use shrinksvm::core::smo::update::solve_pair;
use shrinksvm::core::smo::SmoSolver;
use shrinksvm::sparse::{CsrMatrix, Dataset};

/// Strategy: a random small two-class dataset (guaranteed both classes).
fn dataset() -> impl Strategy<Value = Dataset> {
    (4usize..40, 1usize..5, 0u64..10_000).prop_map(|(n, dim, seed)| {
        // cheap deterministic pseudo-data from the seed
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        for i in 0..n {
            let label = if i % 2 == 0 { 1.0 } else { -1.0 };
            let mut row: Vec<f64> = (0..dim).map(|_| next()).collect();
            row[0] += label; // some signal so problems aren't pure noise
            rows.push(row);
            y.push(label);
        }
        Dataset::new(CsrMatrix::from_dense(&rows, dim).unwrap(), y).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pair_solve_feasibility(
        y_up in prop_oneof![Just(1.0), Just(-1.0)],
        y_low in prop_oneof![Just(1.0), Just(-1.0)],
        a_up in 0.0..1.0f64,
        a_low in 0.0..1.0f64,
        g_up in -10.0..10.0f64,
        g_low in -10.0..10.0f64,
        k_ul in -1.0..1.0f64,
    ) {
        let c = 1.0;
        let sol = solve_pair(y_up, y_low, a_up, a_low, g_up, g_low, 1.0, 1.0, k_ul, c, 1e-12);
        prop_assert!((0.0..=c).contains(&sol.alpha_up), "{sol:?}");
        prop_assert!((0.0..=c).contains(&sol.alpha_low), "{sol:?}");
        // equality constraint preserved
        let drift = y_up * sol.delta_up + y_low * sol.delta_low;
        prop_assert!(drift.abs() < 1e-9, "Σαy drift {drift}");
    }

    #[test]
    fn training_satisfies_kkt_style_invariants(ds in dataset(), c_exp in 0i32..3) {
        let c = 10f64.powi(c_exp - 1); // 0.1, 1, 10
        let params = SvmParams::new(c, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let out = SmoSolver::new(&ds, params).train().unwrap();
        prop_assert!(out.converged);
        // Σ coef = Σ α y = 0; |coef| ≤ C
        let sum: f64 = out.model.coefficients().iter().sum();
        prop_assert!(sum.abs() < 1e-7 * (1.0 + c), "Σαy = {sum}");
        for &co in out.model.coefficients() {
            prop_assert!(co.abs() <= c + 1e-9);
        }
        // final optimality gap within tolerance
        prop_assert!(out.final_gap <= 2.0 * 1e-3 + 1e-12);
    }

    #[test]
    fn dual_objective_never_higher_with_more_iterations(ds in dataset()) {
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.5 }, &ds.x);
        let obj_at = |iters: u64| {
            let params = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 })
                .with_max_iter(iters);
            let out = SmoSolver::new(&ds, params).train().unwrap();
            let mut alpha = vec![0.0; ds.len()];
            for (k, &idx) in out.model.training_indices().iter().enumerate() {
                alpha[idx] = out.model.coefficients()[k] * ds.y[idx];
            }
            shrinksvm::core::smo::dual_objective(&ke, &ds.y, &alpha)
        };
        let o3 = obj_at(3);
        let o30 = obj_at(30);
        let o300 = obj_at(300);
        prop_assert!(o30 <= o3 + 1e-9, "{o3} -> {o30}");
        prop_assert!(o300 <= o30 + 1e-9, "{o30} -> {o300}");
    }

    #[test]
    fn shrinking_never_changes_the_answer(ds in dataset(), procs in 1usize..5) {
        let base = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let plain = DistSolver::new(&ds, base.clone()).with_processes(procs).train().unwrap();
        let shrunk = DistSolver::new(
            &ds,
            base.with_shrink(ShrinkPolicy::new(Heuristic::Random(2), ReconPolicy::Multi)),
        )
        .with_processes(procs)
        .train()
        .unwrap();
        prop_assert!(plain.converged && shrunk.converged);
        // both satisfy the optimality gap on the full set
        prop_assert!(shrunk.trace.final_gap <= 2e-3 + 1e-12);
        // identical predictions on the training samples
        for i in 0..ds.len() {
            prop_assert_eq!(
                plain.model.predict(ds.x.row(i)),
                shrunk.model.predict(ds.x.row(i)),
                "sample {} diverged", i
            );
        }
    }

    #[test]
    fn process_count_is_invisible(ds in dataset(), pa in 1usize..6, pb in 1usize..6) {
        let params = SvmParams::new(1.0, KernelKind::Rbf { gamma: 0.5 })
            .with_epsilon(1e-3)
            .with_max_iter(50_000);
        let a = DistSolver::new(&ds, params.clone()).with_processes(pa).train().unwrap();
        let b = DistSolver::new(&ds, params).with_processes(pb).train().unwrap();
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(a.model.coefficients(), b.model.coefficients());
    }
}
