//! End-to-end integration: the full user journey across every crate —
//! generate → persist → load → scale → train (all three solvers) →
//! evaluate → persist model → reload → predict.

use shrinksvm::prelude::*;
use shrinksvm::sparse::io::{read_libsvm, write_libsvm};
use shrinksvm::sparse::scale::Scaler;
use shrinksvm_core::cv::cross_validate;
use shrinksvm_core::metrics::Confusion;
use shrinksvm_core::perfmodel::MachineModel;
use shrinksvm_datagen::{gaussian, PaperDataset};

#[test]
fn full_pipeline_through_files() {
    let dir = std::env::temp_dir().join("shrinksvm-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let data_path = dir.join("data.libsvm");
    let model_path = dir.join("model.txt");

    // generate + persist + reload
    let ds = gaussian::two_blobs(300, 6, 5.0, 3);
    write_libsvm(&ds, &data_path).unwrap();
    let loaded = read_libsvm(&data_path).unwrap();
    assert_eq!(loaded.len(), 300);

    // scale train and test consistently
    let (mut train, mut test) = loaded.split_at(240);
    Scaler::fit_transform_all(&mut [&mut train, &mut test], 1.0);

    // distributed training with shrinking
    let params =
        SvmParams::new(10.0, KernelKind::rbf_from_sigma_sq(2.0)).with_shrink(ShrinkPolicy::best());
    let run = DistSolver::new(&train, params)
        .with_processes(3)
        .train()
        .unwrap();
    assert!(run.converged);

    // model persistence round trip preserves predictions
    run.model.save(&model_path).unwrap();
    let back = SvmModel::load(&model_path).unwrap();
    for i in 0..test.len() {
        assert_eq!(
            back.predict(test.x.row(i)),
            run.model.predict(test.x.row(i))
        );
    }
    let acc = accuracy(&back, &test);
    assert!(acc > 0.9, "accuracy {acc}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn three_solvers_agree_on_a_paper_dataset() {
    let data = PaperDataset::W7a.generate(0.1);
    let test = data.test.as_ref().unwrap();
    let params = SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq));

    let seq = SmoSolver::new(&data.train, params.clone().with_cache_bytes(32 << 20))
        .train()
        .unwrap();
    let pool = ThreadPool::new(3);
    let smp = SmoSolver::new(&data.train, params.clone())
        .with_pool(&pool)
        .train()
        .unwrap();
    let dist = DistSolver::new(&data.train, params.with_shrink(ShrinkPolicy::best()))
        .with_processes(4)
        .train()
        .unwrap();

    assert_eq!(seq.iterations, smp.iterations, "pool must not change math");
    let a_seq = accuracy(&seq.model, test);
    let a_smp = accuracy(&smp.model, test);
    let a_dist = accuracy(&dist.model, test);
    assert_eq!(a_seq, a_smp);
    assert!((a_seq - a_dist).abs() < 0.02, "{a_seq} vs {a_dist}");
}

#[test]
fn confusion_matrix_is_consistent_with_accuracy() {
    let data = PaperDataset::CodRna.generate(0.1);
    let test = data.test.as_ref().unwrap();
    let params = SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq));
    let out = SmoSolver::new(&data.train, params).train().unwrap();
    let c = Confusion::evaluate(&out.model, test);
    assert_eq!(c.total(), test.len());
    assert!((c.accuracy() - accuracy(&out.model, test)).abs() < 1e-15);
    assert!(c.f1() > 0.5);
}

#[test]
fn cross_validation_runs_on_generated_data() {
    let ds = gaussian::rings(240, 1.0, 0.08, 5);
    let params = SvmParams::new(10.0, KernelKind::rbf_from_sigma_sq(0.5));
    let cv = cross_validate(&ds, &params, 4, 9).unwrap();
    assert!(cv.mean() > 0.9, "rings cv accuracy {}", cv.mean());
}

#[test]
fn trace_projection_reproduces_simulated_clock_order() {
    // The projector and the mpisim clocks are two implementations of the
    // same cost model; they must rank configurations identically.
    let data = PaperDataset::Higgs.generate(0.08);
    let params = SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq));
    let measure = |p: usize| {
        DistSolver::new(&data.train, params.clone())
            .with_processes(p)
            .train()
            .unwrap()
    };
    let r2 = measure(2);
    let r4 = measure(4);
    assert!(r4.makespan < r2.makespan, "sim clocks: more ranks faster");
    let model = MachineModel::default();
    let row_bytes = 44.0 + 12.0 * data.train.x.mean_row_nnz();
    let p2 = model.project(&r2.trace, 2, row_bytes).total();
    let p4 = model.project(&r2.trace, 4, row_bytes).total();
    assert!(p4 < p2, "projection agrees on the ordering");
}

#[test]
fn workspace_prelude_is_sufficient_for_the_readme_snippet() {
    // If this compiles and runs, the README quickstart is honest.
    let ds = shrinksvm::datagen::planted::PlantedConfig::small_demo(42).generate();
    let (train, test) = ds.split_at(ds.len() * 4 / 5);
    let params = SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3);
    let model = SmoSolver::new(&train, params).train().unwrap().model;
    assert!(accuracy(&model, &test) > 0.8);
}
