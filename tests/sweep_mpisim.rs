//! Randomized-sweep tests for the message-passing substrate: every
//! collective must equal its sequential reduction across rank counts and
//! seeded random inputs, and the simulated clocks must behave like time.
//! Deterministic (fixed seeds) so the suite runs offline and reproducibly.

use shrinksvm::datagen::rng::SmallRng;
use shrinksvm::mpisim::{CostParams, MaxLoc, MinLoc, Universe};

#[test]
fn allreduce_sum_equals_sequential() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = rng.gen_range(1usize..10);
        let values: Vec<f64> = (0..p).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let vals = values.clone();
        let out = Universe::new(p).run(move |c| c.allreduce_f64_sum(vals[c.rank()]));
        let expect: f64 = values.iter().sum();
        for o in &out {
            assert!(
                (o.value - expect).abs() <= 1e-9 * (1.0 + expect.abs()),
                "seed={seed} p={p}: {} vs {expect}",
                o.value
            );
            // every rank agrees exactly (same reduction tree)
            assert_eq!(o.value, out[0].value);
        }
    }
}

#[test]
fn minloc_maxloc_agree_with_scan() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(100 + seed);
        let p = rng.gen_range(1usize..9);
        let values: Vec<f64> = (0..p).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let vals = values.clone();
        let out = Universe::new(p).run(move |c| {
            let m = MinLoc {
                value: vals[c.rank()],
                index: c.rank() as u64,
            };
            let x = MaxLoc {
                value: vals[c.rank()],
                index: c.rank() as u64,
            };
            (c.allreduce_minloc(m), c.allreduce_maxloc(x))
        });
        let mut exp_min = MinLoc::identity();
        let mut exp_max = MaxLoc::identity();
        for (i, &v) in values.iter().enumerate() {
            exp_min = MinLoc::combine(
                exp_min,
                MinLoc {
                    value: v,
                    index: i as u64,
                },
            );
            exp_max = MaxLoc::combine(
                exp_max,
                MaxLoc {
                    value: v,
                    index: i as u64,
                },
            );
        }
        for o in &out {
            assert_eq!(o.value.0, exp_min, "seed={seed}");
            assert_eq!(o.value.1, exp_max, "seed={seed}");
        }
    }
}

#[test]
fn bcast_delivers_arbitrary_payloads() {
    for seed in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(200 + seed);
        let p = rng.gen_range(1usize..9);
        let root = rng.gen_range(0usize..p);
        let len = rng.gen_range(0usize..200);
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let pl = payload.clone();
        let out = Universe::new(p).run(move |c| {
            let mine = if c.rank() == root { pl.clone() } else { vec![] };
            c.bcast(root, &mine)
        });
        for o in &out {
            assert_eq!(&o.value, &payload, "seed={seed} p={p} root={root}");
        }
    }
}

#[test]
fn allgatherv_preserves_every_piece() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(300 + seed);
        let p = rng.gen_range(1usize..8);
        let stamp = rng.gen_range(0u32..256) as u8;
        let out = Universe::new(p).run(move |c| {
            let mine = vec![stamp ^ (c.rank() as u8); c.rank() % 3 + 1];
            c.allgatherv(&mine)
        });
        for o in &out {
            for (r, piece) in o.value.iter().enumerate() {
                assert_eq!(piece, &vec![stamp ^ (r as u8); r % 3 + 1], "seed={seed}");
            }
        }
    }
}

#[test]
fn clocks_are_monotone_and_barrier_syncs() {
    for seed in 0..16u64 {
        let mut rng = SmallRng::seed_from_u64(400 + seed);
        let p = rng.gen_range(2usize..8);
        let busy = rng.gen_range(0usize..p);
        let work = rng.gen_range(0.0..100.0f64);
        let out = Universe::new(p)
            .with_cost(CostParams {
                latency: 0.5,
                gap_per_byte: 0.0,
                send_overhead: 0.1,
            })
            .run(move |c| {
                let before = c.clock();
                if c.rank() == busy {
                    c.advance_compute(work);
                }
                c.barrier();
                let after = c.clock();
                (before, after)
            });
        for o in &out {
            assert!(o.value.1 >= o.value.0, "seed={seed}: clock went backwards");
            assert!(
                o.value.1 >= work,
                "seed={seed}: barrier must not complete before the slowest rank"
            );
        }
    }
}

#[test]
fn ring_circulation_conserves_data() {
    for p in 1usize..8 {
        let out = Universe::new(p).run(move |c| {
            let mut cur = vec![c.rank() as u8];
            let mut collected = vec![c.rank()];
            for _ in 0..p - 1 {
                cur = c.ring_shift(&cur);
                collected.push(cur[0] as usize);
            }
            collected.sort_unstable();
            collected
        });
        for o in &out {
            assert_eq!(&o.value, &(0..p).collect::<Vec<_>>());
        }
    }
}

#[test]
fn stats_balance_across_fleet() {
    // total messages sent == total received for a busy collective workload
    let out = Universe::new(6).run(|c| {
        c.allreduce_f64_sum(1.0);
        c.barrier();
        c.bcast(2, &[1, 2, 3]);
        c.allgatherv(&[c.rank() as u8]);
        c.stats()
    });
    let sent: u64 = out.iter().map(|o| o.value.msgs_sent).sum();
    let recv: u64 = out.iter().map(|o| o.value.msgs_recv).sum();
    assert_eq!(sent, recv);
    let bytes_sent: u64 = out.iter().map(|o| o.value.bytes_sent).sum();
    let bytes_recv: u64 = out.iter().map(|o| o.value.bytes_recv).sum();
    assert_eq!(bytes_sent, bytes_recv);
}

#[test]
fn validated_collective_workload_is_clean() {
    // The full validation stack (vector clocks, ledger, conservation) must
    // stay silent on a correct mixed workload at several rank counts.
    for p in [1usize, 2, 3, 5, 8] {
        let (_, report) = Universe::new(p).validated().run_report(|c| {
            let s = c.allreduce_f64_sum(c.rank() as f64);
            c.barrier();
            let b = c.bcast(0, &[7]);
            let g = c.allgatherv(&[c.rank() as u8]);
            (s, b, g)
        });
        assert!(report.is_clean(), "p={p}: {report}");
    }
}
