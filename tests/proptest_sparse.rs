//! Property tests for the sparse substrate: CSR structure, arithmetic
//! identities, I/O and scaling.

use proptest::prelude::*;
use shrinksvm::sparse::io::{read_libsvm_from, write_libsvm_to};
use shrinksvm::sparse::ops;
use shrinksvm::sparse::scale::Scaler;
use shrinksvm::sparse::{CsrBuilder, CsrMatrix, Dataset};

/// Strategy: a small dense matrix as `Vec<Vec<f64>>` with bounded values.
fn dense_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, usize)> {
    (1usize..8).prop_flat_map(|ncols| {
        (
            proptest::collection::vec(
                proptest::collection::vec(
                    prop_oneof![3 => Just(0.0), 7 => -100.0..100.0f64],
                    ncols,
                ),
                1..12,
            ),
            Just(ncols),
        )
    })
}

/// Strategy: one sparse row over `ncols` columns.
fn sparse_row(ncols: u32) -> impl Strategy<Value = Vec<(u32, f64)>> {
    proptest::collection::btree_map(0..ncols, -50.0..50.0f64, 0..(ncols as usize).min(10))
        .prop_map(|m| m.into_iter().filter(|(_, v)| *v != 0.0).collect())
}

proptest! {
    #[test]
    fn csr_dense_roundtrip((rows, ncols) in dense_matrix()) {
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        prop_assert!(m.validate().is_ok());
        let back = m.to_dense();
        for (orig, rt) in rows.iter().zip(&back) {
            prop_assert_eq!(orig, rt);
        }
        // nnz agrees with the dense count of non-zeros
        let nnz: usize = rows.iter().flatten().filter(|v| **v != 0.0).count();
        prop_assert_eq!(m.nnz(), nnz);
    }

    #[test]
    fn dot_is_symmetric_and_matches_dense(
        a in sparse_row(20), b in sparse_row(20)
    ) {
        let mut ba = CsrBuilder::new(20);
        ba.push_row_unsorted(a.clone()).unwrap();
        ba.push_row_unsorted(b.clone()).unwrap();
        let m = ba.finish();
        let (ra, rb) = (m.row(0), m.row(1));
        let d1 = ops::dot(ra, rb);
        let d2 = ops::dot(rb, ra);
        prop_assert_eq!(d1, d2);
        let dense_b = rb.to_dense(20);
        let d3 = ops::dot_dense(ra, &dense_b);
        prop_assert!((d1 - d3).abs() <= 1e-9 * (1.0 + d1.abs()));
    }

    #[test]
    fn distance_identity_holds(a in sparse_row(16), b in sparse_row(16)) {
        let mut bld = CsrBuilder::new(16);
        bld.push_row_unsorted(a).unwrap();
        bld.push_row_unsorted(b).unwrap();
        let m = bld.finish();
        let (ra, rb) = (m.row(0), m.row(1));
        let via_norms = ops::squared_distance_direct(ra, rb);
        let direct: f64 = {
            let da = ra.to_dense(16);
            let db = rb.to_dense(16);
            da.iter().zip(&db).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        prop_assert!(via_norms >= 0.0);
        prop_assert!((via_norms - direct).abs() <= 1e-7 * (1.0 + direct));
    }

    #[test]
    fn libsvm_io_roundtrips((rows, ncols) in dense_matrix()) {
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        let y: Vec<f64> = (0..m.nrows()).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let ds = Dataset::new(m, y).unwrap();
        let mut buf = Vec::new();
        write_libsvm_to(&ds, &mut buf).unwrap();
        let back = read_libsvm_from(&buf[..]).unwrap();
        prop_assert_eq!(back.len(), ds.len());
        prop_assert_eq!(&back.y, &ds.y);
        for i in 0..ds.len() {
            prop_assert_eq!(back.x.row(i).indices, ds.x.row(i).indices);
            for (va, vb) in back.x.row(i).values.iter().zip(ds.x.row(i).values) {
                prop_assert!((va - vb).abs() < 1e-12, "value drift {va} vs {vb}");
            }
        }
    }

    #[test]
    fn scaler_bounds_training_data((rows, ncols) in dense_matrix()) {
        let m = CsrMatrix::from_dense(&rows, ncols).unwrap();
        let s = Scaler::fit(&m, 1.0);
        let t = s.transform(&m).unwrap();
        prop_assert_eq!(t.nnz(), m.nnz(), "sparsity preserved");
        for i in 0..t.nrows() {
            for (_, v) in t.row(i).iter() {
                prop_assert!(v.abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation(n in 1usize..40, seed in 0u64..1000) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let m = CsrMatrix::from_dense(&rows, 1).unwrap();
        let y: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let ds = Dataset::new(m, y).unwrap();
        let sh = ds.shuffled(seed);
        let mut seen: Vec<i64> = (0..sh.len()).map(|i| sh.x.row(i).get(0) as i64).collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(seen, expect);
        // labels still pair with their rows
        for i in 0..sh.len() {
            let v = sh.x.row(i).get(0) as i64;
            prop_assert_eq!(sh.y[i], if v % 2 == 0 { 1.0 } else { -1.0 });
        }
    }
}
