//! The determinism rule pack, run over the token index + reachability.
//!
//! | id                | what it catches                                           |
//! |-------------------|-----------------------------------------------------------|
//! | `wall-clock`      | D1: host-clock reads (`Instant::now`, `SystemTime::now`,  |
//! |                   | `thread::sleep`) in simulated trees or any function       |
//! |                   | reachable from a simulated entry point                    |
//! | `nondet-iter`     | D2: `HashMap`/`HashSet` iteration in simulated code with  |
//! |                   | no ordering step and no `// lint: ordered` justification  |
//! | `charge-coverage` | D3: loops over gradient state in `crates/core/src/dist`   |
//! |                   | whose function never charges the simulated clock          |
//! | `budget`          | D4: per-crate unwrap/expect/unsafe/Relaxed ratchet        |
//! | `relaxed-ordering`| `Ordering::Relaxed` without a nearby `// relaxed:` reason |
//! | `scratch-hygiene` | raw `dot_scatter` outside `crates/sparse`                 |
//!
//! Every per-line rule reads *tokens*, so string literals, comments, raw
//! strings and `#[cfg(test)]` items can never false-positive.

use std::collections::BTreeSet;

use crate::budgets::{self, BudgetTable};
use crate::index::FileIndex;
use crate::lexer::TokKind;
use crate::manifest::{self, hatch};
use crate::reach::Reachability;
use crate::Finding;

/// Tokens that open/close a nesting level, for statement-span scans.
fn depth_delta(text: &str) -> i64 {
    match text {
        "{" | "(" | "[" => 1,
        "}" | ")" | "]" => -1,
        _ => 0,
    }
}

/// Run every rule. Returns the findings plus the observed per-crate
/// ratchet counts (for `--update-budgets` and the JSON report).
pub fn check_all(
    files: &[FileIndex],
    reach: &Reachability,
    budget_table: &BudgetTable,
    enforce_budgets: bool,
) -> (Vec<Finding>, BudgetTable) {
    let mut findings = Vec::new();
    let mut actual = BudgetTable::new();

    for (fi, file) in files.iter().enumerate() {
        let simulated = manifest::is_simulated(&file.path);

        // D1 + D2 run over simulated files (all non-test fns) and over
        // reachable fns anywhere else.
        for (ki, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let reachable = reach.is_reachable(fi, ki);
            if simulated || reachable {
                let why = if simulated {
                    None
                } else {
                    Some(reach.chain(fi, ki))
                };
                wall_clock(file, f.body, why, &mut findings);
                nondet_iter(file, ki, why, &mut findings);
            }
        }
        if simulated {
            // module-level tokens of simulated files (outside any fn) are
            // covered too — statics, macro arms, const blocks.
            let mut covered = vec![false; file.toks.len()];
            for f in &file.fns {
                for c in &mut covered[f.body.0..f.body.1.min(file.toks.len())] {
                    *c = true;
                }
            }
            wall_clock_module_level(file, &covered, &mut findings);
        }

        // D3 over the distributed solver tree.
        if manifest::is_dist(&file.path) {
            for f in &file.fns {
                if !f.is_test {
                    charge_coverage(file, f, &mut findings);
                }
            }
        }

        // relaxed-ordering + scratch hygiene + D4 counts over everything.
        relaxed_ordering(file, &mut findings);
        if !manifest::is_scratch_home(&file.path) {
            scratch_hygiene(file, &mut findings);
        }
        count_ratchets(file, &mut actual);
    }

    if enforce_budgets {
        budget_findings(&actual, budget_table, &mut findings);
    }

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    (findings, actual)
}

// ------------------------------------------------------------------ D1

fn wall_clock_hit(file: &FileIndex, j: usize) -> Option<usize> {
    let toks = &file.toks;
    let t = &toks[j];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev = file.prev_code(j)?;
    if !toks[prev].is_punct("::") {
        return None;
    }
    let q = file.prev_code(prev)?;
    if toks[q].kind != TokKind::Ident {
        return None;
    }
    let qual = file
        .uses
        .get(&toks[q].text)
        .map_or(toks[q].text.as_str(), String::as_str);
    manifest::WALL_CLOCK_CALLS
        .iter()
        .any(|&(ty, m)| qual == ty && t.text == m)
        .then_some(t.line)
}

fn push_wall_clock(file: &FileIndex, line: usize, why: Option<&str>, out: &mut Vec<Finding>) {
    if file.justified(line, 1, hatch::WALL_CLOCK) {
        return;
    }
    let via = match why {
        Some(chain) => format!(" (reachable from a simulated entry point: {chain})"),
        None => String::new(),
    };
    out.push(Finding {
        file: file.path.clone(),
        line,
        rule: "wall-clock",
        message: format!(
            "host-clock read in simulated code{via}; use the simulated clock, or \
             justify with a `// {}` comment",
            hatch::WALL_CLOCK
        ),
    });
}

fn wall_clock(file: &FileIndex, body: (usize, usize), why: Option<&str>, out: &mut Vec<Finding>) {
    for j in body.0..body.1.min(file.toks.len()) {
        if let Some(line) = wall_clock_hit(file, j) {
            push_wall_clock(file, line, why, out);
        }
    }
}

fn wall_clock_module_level(file: &FileIndex, covered: &[bool], out: &mut Vec<Finding>) {
    for j in 0..file.toks.len() {
        if covered[j] || file.test_mask[j] {
            continue;
        }
        if let Some(line) = wall_clock_hit(file, j) {
            push_wall_clock(file, line, None, out);
        }
    }
}

// ------------------------------------------------------------------ D2

/// Local bindings (and parameters) of `f` whose type or initializer
/// names a hash container.
fn hash_locals(file: &FileIndex, ki: usize) -> BTreeSet<String> {
    let f = &file.fns[ki];
    let toks = &file.toks;
    let mut out = BTreeSet::new();

    // parameters: `name : …Hash…` up to `,` / `)` in the signature
    let mut j = f.sig.0;
    while j + 1 < f.sig.1 {
        if toks[j].kind == TokKind::Ident && toks[j + 1].is_punct(":") && !toks[j].is_ident("self")
        {
            let name = toks[j].text.clone();
            let mut d = 0i64;
            let mut m = j + 2;
            while m < f.sig.1 {
                let u = &toks[m];
                if u.is_code() {
                    d += depth_delta(&u.text);
                    if d < 0 || (d == 0 && u.is_punct(",")) {
                        break;
                    }
                    if u.kind == TokKind::Ident && file.hash_names.contains(&u.text) {
                        out.insert(name.clone());
                    }
                }
                m += 1;
            }
            j = m;
            continue;
        }
        j += 1;
    }

    // lets: a `let` statement whose tokens (to the `;`) name a hash type
    let mut j = f.body.0;
    while j < f.body.1 {
        if toks[j].is_ident("let") {
            let mut name = None;
            let mut is_hash = false;
            let mut d = 0i64;
            let mut m = j + 1;
            while m < f.body.1 {
                let u = &toks[m];
                if u.is_code() {
                    if name.is_none() && u.kind == TokKind::Ident && !u.is_ident("mut") {
                        name = Some(u.text.clone());
                    }
                    d += depth_delta(&u.text);
                    if d < 0 || (d == 0 && u.is_punct(";")) {
                        break;
                    }
                    if u.kind == TokKind::Ident && file.hash_names.contains(&u.text) {
                        is_hash = true;
                    }
                }
                m += 1;
            }
            if is_hash {
                if let Some(n) = name {
                    out.insert(n);
                }
            }
            j = m;
            continue;
        }
        j += 1;
    }
    out
}

/// The statement around token `j` plus the one after it, as a token
/// range. "Statement" is delimited by `;` / `{` / `}` at the local
/// nesting depth of `j`.
fn statement_window(file: &FileIndex, j: usize, lo: usize, hi: usize) -> (usize, usize) {
    let toks = &file.toks;
    // backwards to the previous `;`/`{`/`}` at depth 0 relative to j
    let mut start = j;
    let mut d = 0i64;
    while start > lo {
        let t = &toks[start - 1];
        if t.is_code() {
            d -= depth_delta(&t.text); // scanning backwards inverts the sign
            if d < 0 {
                break;
            }
            if d == 0 && (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
                break;
            }
        }
        start -= 1;
    }
    // forwards across this statement and the next
    let mut end = j;
    let mut d = 0i64;
    let mut semis = 0;
    while end < hi {
        let t = &toks[end];
        if t.is_code() {
            d += depth_delta(&t.text);
            if d < 0 {
                break;
            }
            if d == 0 && t.is_punct(";") {
                semis += 1;
                if semis == 2 {
                    break;
                }
            }
        }
        end += 1;
    }
    (start, end.min(hi))
}

fn ordered_nearby(file: &FileIndex, j: usize, lo: usize, hi: usize) -> bool {
    let (s, e) = statement_window(file, j, lo, hi);
    file.toks[s..e]
        .iter()
        .any(|t| t.kind == TokKind::Ident && manifest::ORDERING_TOKENS.contains(&t.text.as_str()))
}

fn nondet_iter(file: &FileIndex, ki: usize, why: Option<&str>, out: &mut Vec<Finding>) {
    let f = &file.fns[ki];
    let toks = &file.toks;
    let locals = hash_locals(file, ki);
    let is_hash_name = |name: &str| locals.contains(name) || file.hash_fields.contains(name);
    let mut hit_lines = BTreeSet::new();

    for j in f.body.0..f.body.1.min(toks.len()) {
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        // receiver.iter_method( …
        let is_iter_call = manifest::HASH_ITER_METHODS.contains(&t.text.as_str())
            && toks.get(j + 1).is_some_and(|n| n.is_punct("("))
            && file.prev_code(j).is_some_and(|p| toks[p].is_punct("."))
            && file
                .prev_code(file.prev_code(j).unwrap_or(j))
                .is_some_and(|r| toks[r].kind == TokKind::Ident && is_hash_name(&toks[r].text));
        // for x in &container { … } — container named directly, no method
        let in_for_header = is_hash_name(&t.text) && {
            // walk back to `for` without crossing `{`/`;`
            let mut k = j;
            let mut found = false;
            while let Some(p) = file.prev_code(k) {
                let u = &toks[p];
                if u.is_punct("{") || u.is_punct(";") || u.is_punct("}") {
                    break;
                }
                if u.is_ident("for") {
                    found = true;
                    break;
                }
                if u.is_punct(".") {
                    break; // it's a receiver; the method-call arm decides
                }
                k = p;
            }
            found
        };
        if !(is_iter_call || in_for_header) {
            continue;
        }
        if file.justified(t.line, 1, hatch::ORDERED) || ordered_nearby(file, j, f.body.0, f.body.1)
        {
            continue;
        }
        if hit_lines.insert(t.line) {
            let via = match why {
                Some(chain) => format!(" (reachable from a simulated entry point: {chain})"),
                None => String::new(),
            };
            out.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: "nondet-iter",
                message: format!(
                    "hash-container iteration in simulated code{via}: iteration order is \
                     nondeterministic; route through a sort/BTree step, or justify with \
                     `// {}`",
                    hatch::ORDERED
                ),
            });
        }
    }
}

// ------------------------------------------------------------------ D3

fn charge_coverage(file: &FileIndex, f: &crate::index::FnItem, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    let (lo, hi) = f.body;
    let hi = hi.min(toks.len());
    let fn_charges = toks[lo..hi].iter().any(|t| {
        t.kind == TokKind::Ident
            && manifest::CHARGE_FN_PREFIXES
                .iter()
                .any(|p| t.text.starts_with(p))
    });
    if fn_charges {
        return;
    }
    let mut j = lo;
    let mut flagged_lines = BTreeSet::new();
    while j < hi {
        if !toks[j].is_ident("for") || file.next_code(j + 1).is_some_and(|n| toks[n].is_punct("<"))
        {
            j += 1;
            continue;
        }
        // loop extent: first `{` at paren/bracket depth 0, brace-matched
        let mut d = 0i64;
        let mut open = None;
        let mut m = j + 1;
        while m < hi {
            let u = &toks[m];
            if u.is_code() {
                match u.text.as_str() {
                    "(" | "[" => d += 1,
                    ")" | "]" => d -= 1,
                    "{" if d == 0 => {
                        open = Some(m);
                        break;
                    }
                    ";" if d == 0 => break,
                    _ => {}
                }
            }
            m += 1;
        }
        let Some(open) = open else {
            j = m + 1;
            continue;
        };
        let close = {
            let mut depth = 0i64;
            let mut c = open;
            while c < hi {
                if toks[c].is_punct("{") {
                    depth += 1;
                } else if toks[c].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                c += 1;
            }
            c
        };
        let touches_grad = toks[j..=close.min(hi - 1)]
            .iter()
            .any(|t| t.kind == TokKind::Ident && manifest::GRAD_IDENTS.contains(&t.text.as_str()));
        let line = toks[j].line;
        if touches_grad && !file.justified(line, 1, hatch::UNCHARGED) && flagged_lines.insert(line)
        {
            out.push(Finding {
                file: file.path.clone(),
                line,
                rule: "charge-coverage",
                message: format!(
                    "loop over gradient state in `{}` with no `{}*` charge in the \
                     function: simulated time will under-report this work; charge it, \
                     or justify with `// {}`",
                    f.qualified(),
                    manifest::CHARGE_FN_PREFIXES.join("*`/`"),
                    hatch::UNCHARGED
                ),
            });
        }
        j = open + 1; // descend: nested loops are inspected separately
    }
}

// --------------------------------------------------- relaxed + scratch

/// `Ordering::Relaxed` token position, or `None`.
fn relaxed_hit(file: &FileIndex, j: usize) -> Option<usize> {
    let toks = &file.toks;
    if !toks[j].is_ident("Relaxed") {
        return None;
    }
    let prev = file.prev_code(j)?;
    if !toks[prev].is_punct("::") {
        return None;
    }
    let q = file.prev_code(prev)?;
    toks[q].is_ident("Ordering").then_some(j)
}

fn relaxed_ordering(file: &FileIndex, out: &mut Vec<Finding>) {
    for j in 0..file.toks.len() {
        if file.test_mask[j] || relaxed_hit(file, j).is_none() {
            continue;
        }
        let line = file.toks[j].line;
        if !file.justified(line, 2, hatch::RELAXED) {
            out.push(Finding {
                file: file.path.clone(),
                line,
                rule: "relaxed-ordering",
                message: "Ordering::Relaxed without a `// relaxed:` justification within \
                          the two preceding lines"
                    .to_string(),
            });
        }
    }
}

fn scratch_hygiene(file: &FileIndex, out: &mut Vec<Finding>) {
    let toks = &file.toks;
    for j in 0..toks.len() {
        if file.test_mask[j]
            || !toks[j].is_ident("dot_scatter")
            || !toks.get(j + 1).is_some_and(|n| n.is_punct("("))
        {
            continue;
        }
        out.push(Finding {
            file: file.path.clone(),
            line: toks[j].line,
            rule: "scratch-hygiene",
            message: "raw `dot_scatter` against a hand-managed dense scratch; go through \
                      `shrinksvm_sparse::ScratchPad` (touched-list clearing + all-zero \
                      debug assertion) instead"
                .to_string(),
        });
    }
}

// ------------------------------------------------------------------ D4

fn count_ratchets(file: &FileIndex, actual: &mut BudgetTable) {
    let toks = &file.toks;
    let key = manifest::crate_of(&file.path);
    let mut bump = |counter: &str| {
        *actual
            .entry(key.clone())
            .or_default()
            .entry(counter.to_string())
            .or_insert(0) += 1;
    };
    for j in 0..toks.len() {
        if file.test_mask[j] {
            continue;
        }
        let t = &toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if toks.get(j + 1).is_some_and(|n| n.is_punct("("))
                    && file.prev_code(j).is_some_and(|p| toks[p].is_punct(".")) =>
            {
                bump(&t.text.clone());
            }
            "unsafe" => bump("unsafe"),
            "Relaxed" if relaxed_hit(file, j).is_some() => bump("relaxed"),
            _ => {}
        }
    }
    // ensure every analyzed crate has an entry so burn-down of a whole
    // crate (budget listed, zero sites left) is still reported
    actual.entry(key).or_default();
}

fn budget_findings(actual: &BudgetTable, table: &BudgetTable, out: &mut Vec<Finding>) {
    let crates: BTreeSet<&String> = actual.keys().chain(table.keys()).collect();
    for crate_key in crates {
        for &counter in budgets::COUNTERS {
            let used = actual
                .get(crate_key.as_str())
                .and_then(|c| c.get(counter))
                .copied()
                .unwrap_or(0);
            let budget = budgets::budget_of(table, crate_key, counter);
            if used > budget {
                out.push(Finding {
                    file: crate_key.clone(),
                    line: 0,
                    rule: "budget",
                    message: format!(
                        "{used} `{counter}` site(s) outside tests, budget permits {budget}; \
                         remove them or justify and re-freeze with \
                         `cargo xtask lint --update-budgets`"
                    ),
                });
            } else if used < budget {
                out.push(Finding {
                    file: crate_key.clone(),
                    line: 0,
                    rule: "budget",
                    message: format!(
                        "`{counter}` debt went down ({budget} -> {used}) — lock it in: \
                         run `cargo xtask lint --update-budgets`"
                    ),
                });
            }
        }
    }
}
