//! `cargo xtask perf-history record|show` — the cross-run perf ledger.
//!
//! `record --artifacts <dir>` builds one [`HistoryRow`] per
//! `BENCH_*.json` in the directory (pairing each with its `PERF_*.json`
//! when the run was traced, for exact buckets), gates every row against
//! the committed ledger tail (default: fail on >10% makespan
//! regression), then appends the rows. `show` renders the ledger as a
//! per-bench sparkline + table. Row parsing, rendering and the gate live
//! in [`shrinksvm_obs::perfhist`]; this module is the filesystem shell.

use shrinksvm_obs::json::{parse, Value};
use shrinksvm_obs::perfhist::{gate_against_tail, parse_ledger, render_history, HistoryRow};
use std::path::{Path, PathBuf};

/// The default ledger location, relative to the repo root.
pub const LEDGER_PATH: &str = "bench_baselines/PERF_HISTORY.jsonl";

/// The default regression gate: fail when a bench's makespan exceeds the
/// committed tail by more than this fraction.
pub const DEFAULT_GATE: f64 = 0.10;

/// Everything one `record` invocation produces.
#[derive(Debug)]
pub struct RecordOutcome {
    /// Rows appended, in bench-name order.
    pub rows: Vec<HistoryRow>,
    /// Human-readable per-row summaries.
    pub lines: Vec<String>,
}

/// Append one row per `BENCH_*.json` under `artifacts` to the ledger at
/// `ledger`, stamping each with `rev`. Every row is first gated against
/// the ledger's committed tail with threshold `gate`.
///
/// # Errors
///
/// An unreadable artifacts directory, no bench reports in it, malformed
/// reports or ledger rows, a gate violation (nothing is appended in that
/// case), or a failed write.
pub fn run_record(
    artifacts: &Path,
    ledger: &Path,
    rev: &str,
    gate: f64,
) -> Result<RecordOutcome, String> {
    let benches = bench_files(artifacts)?;
    if benches.is_empty() {
        return Err(format!(
            "no BENCH_*.json artifacts under {}",
            artifacts.display()
        ));
    }
    let committed = read_ledger(ledger)?;
    let mut rows = Vec::with_capacity(benches.len());
    let mut lines = Vec::with_capacity(benches.len());
    for bench_path in benches {
        let bench = load(&bench_path)?;
        let perf = perf_sibling(&bench_path, &bench)?;
        let row = HistoryRow::from_reports(&bench, perf.as_ref(), rev)
            .map_err(|e| format!("{}: {e}", bench_path.display()))?;
        gate_against_tail(&committed, &row, gate)?;
        lines.push(format!(
            "perf-history: {} @ {} makespan {:.9}s ({} buckets){}",
            row.bench,
            row.rev,
            row.makespan,
            if perf.is_some() {
                "exact PERF"
            } else {
                "bench-split"
            },
            if row.converged { "" } else { "  NOT CONVERGED" }
        ));
        rows.push(row);
    }
    let mut text = std::fs::read_to_string(ledger).unwrap_or_default();
    if !text.is_empty() && !text.ends_with('\n') {
        text.push('\n');
    }
    for row in &rows {
        text.push_str(&row.to_json_line());
        text.push('\n');
    }
    if let Some(parent) = ledger.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(ledger, text).map_err(|e| format!("cannot write {}: {e}", ledger.display()))?;
    Ok(RecordOutcome { rows, lines })
}

/// Render the ledger at `ledger` (sparkline + table per bench).
///
/// # Errors
///
/// An unreadable ledger or malformed rows.
pub fn run_show(ledger: &Path) -> Result<String, String> {
    Ok(render_history(&read_ledger(ledger)?))
}

/// The short git revision of `repo`'s HEAD, or `"unknown"` when git is
/// unavailable (e.g. an exported tarball).
pub fn head_rev(repo: &Path) -> String {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(repo)
        .args(["rev-parse", "--short", "HEAD"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".to_string(),
    }
}

fn read_ledger(ledger: &Path) -> Result<Vec<HistoryRow>, String> {
    match std::fs::read_to_string(ledger) {
        Ok(text) => parse_ledger(&text).map_err(|e| format!("{}: {e}", ledger.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read {}: {e}", ledger.display())),
    }
}

fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// The traced sibling of a bench report: `PERF_<name>.json` next to
/// `BENCH_<name>.json`, keyed on the report's own name field. Absent
/// files are fine (untraced benches); malformed ones are not.
fn perf_sibling(bench_path: &Path, bench: &Value) -> Result<Option<Value>, String> {
    let Some(name) = bench.get("name").and_then(Value::as_str) else {
        return Ok(None);
    };
    let Some(dir) = bench_path.parent() else {
        return Ok(None);
    };
    let perf_path = dir.join(format!("PERF_{name}.json"));
    if !perf_path.exists() {
        return Ok(None);
    }
    Ok(Some(load(&perf_path)?))
}

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(text.trim_end()).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("shrinksvm_xtask_perfhist_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn write_bench(dir: &Path, name: &str, makespan: f64) {
        std::fs::write(
            dir.join(format!("BENCH_{name}.json")),
            format!(
                "{{\"schema\":1,\"name\":\"{name}\",\"modeled_time\":{makespan},\
                 \"iterations\":900,\"converged\":true,\"compute_time\":3.0,\
                 \"transfer_time\":0.5,\"idle_time\":0.5}}\n"
            ),
        )
        .expect("write bench");
    }

    #[test]
    fn record_then_show_round_trips() {
        let dir = scratch("roundtrip");
        write_bench(&dir, "smoke", 1.25);
        write_bench(&dir, "hotpath", 5.0);
        // A traced sibling for smoke only.
        std::fs::write(
            dir.join("PERF_smoke.json"),
            "{\"schema\":\"shrinksvm-perf/v1\",\"buckets\":{\"compute\":4.0,\"transfer\":0.5,\
             \"idle\":0.25,\"retransmit\":0.25,\"recovery\":0.0}}\n",
        )
        .expect("write perf");
        let ledger = dir.join("PERF_HISTORY.jsonl");
        let out = run_record(&dir, &ledger, "r1", DEFAULT_GATE).expect("record");
        assert_eq!(out.rows.len(), 2);
        // Sorted by filename: hotpath before smoke.
        assert_eq!(out.rows[0].bench, "hotpath");
        assert_eq!(out.rows[1].retransmit, 0.25, "smoke used PERF buckets");
        assert_eq!(out.rows[0].retransmit, 0.0, "hotpath used the bench split");
        let shown = run_show(&ledger).expect("show");
        assert!(shown.contains("smoke: 1 rows"), "{shown}");
        assert!(shown.contains("hotpath: 1 rows"), "{shown}");
        // A second identical record appends a second generation.
        run_record(&dir, &ledger, "r2", DEFAULT_GATE).expect("record again");
        let shown = run_show(&ledger).expect("show");
        assert!(shown.contains("smoke: 2 rows"), "{shown}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_blocks_regressions_and_appends_nothing() {
        let dir = scratch("gate");
        write_bench(&dir, "smoke", 1.0);
        let ledger = dir.join("PERF_HISTORY.jsonl");
        run_record(&dir, &ledger, "r1", DEFAULT_GATE).expect("seed");
        write_bench(&dir, "smoke", 1.5); // +50% over the tail
        let err = run_record(&dir, &ledger, "r2", DEFAULT_GATE).expect_err("gate");
        assert!(err.contains("regresses"), "{err}");
        let rows = parse_ledger(&std::fs::read_to_string(&ledger).expect("read")).expect("parse");
        assert_eq!(rows.len(), 1, "regressing row must not be appended");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_artifacts_and_missing_ledger_behave() {
        let dir = scratch("empty");
        let ledger = dir.join("PERF_HISTORY.jsonl");
        assert!(run_record(&dir, &ledger, "r1", DEFAULT_GATE)
            .expect_err("no artifacts")
            .contains("no BENCH_"));
        let shown = run_show(&ledger).expect("empty ledger renders");
        assert!(shown.contains("empty"), "{shown}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
