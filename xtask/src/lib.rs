//! Repo-specific lint rules, run as `cargo xtask lint`.
//!
//! Four rules, all text-based (no rustc plumbing, no dependencies):
//!
//! 1. **wall-clock** — simulated code paths (`crates/mpisim`, `crates/core`)
//!    must not read the host clock (`Instant::now` / `SystemTime::now`):
//!    simulated time comes from the LogGP cost model, and a host-clock read
//!    silently measures the simulator instead of the simulated machine.
//!    Legitimate wall-time sites (host-side metrics) carry a justification
//!    comment containing `allow-wall-clock:` on the same or previous line.
//!
//! 2. **unwrap ratchet** — library code must not grow new `.unwrap()` /
//!    `.expect(` sites outside `#[cfg(test)]`. Existing sites are frozen in
//!    `xtask/lint_allow_unwrap.txt` (path → count); the count may only go
//!    down, and the file must be updated when it does, so the debt burns
//!    down monotonically. Regenerate with `cargo xtask lint --update-allowlist`.
//!
//! 3. **relaxed ordering** — every `Ordering::Relaxed` outside test code
//!    needs a `// relaxed:` justification within the two preceding lines
//!    (or on the same line) explaining why no stronger ordering is needed.
//!
//! 4. **scratch hygiene** — raw `dot_scatter` calls are confined to
//!    `crates/sparse`: the function reads a caller-managed dense buffer plus
//!    occupancy mask, and reusing such a scratch without clearing it between
//!    pivots corrupts every subsequent dot silently. Everyone else must go
//!    through `shrinksvm_sparse::ScratchPad`, which owns the hazard
//!    (touched-index-list clearing, all-zero debug assertion on load).
//!
//! The crate also hosts the bench-history regression gate,
//! `cargo xtask bench-diff <baseline> <candidate>` — see [`bench_diff`].

pub mod bench_diff;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{} [{}]: {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{} [{}]: {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Crates whose `src/` trees count as *simulated* code paths (rule 1).
const SIMULATED_PATHS: &[&str] = &["crates/mpisim/src", "crates/core/src", "crates/obs/src"];

/// Roots whose `.rs` files are library code for rules 2 and 3. `xtask`
/// itself and the CLI binaries under `src/bin` are tools, not libraries.
const LIBRARY_ROOTS: &[&str] = &[
    "crates/analyze/src",
    "crates/core/src",
    "crates/datagen/src",
    "crates/mpisim/src",
    "crates/obs/src",
    "crates/sparse/src",
    "crates/threads/src",
    "src/lib.rs",
];

/// Where the unwrap ratchet lives, relative to the repo root.
pub const ALLOWLIST_PATH: &str = "xtask/lint_allow_unwrap.txt";

// ------------------------------------------------------------------ helpers

/// Strip `//` comments from one line (naive: does not parse string
/// literals, which is fine for counting well-formed call sites).
fn code_part(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// Return a per-line mask, `true` where the line belongs to a
/// `#[cfg(test)]` item (module or function) including its attribute line.
/// Brace counting on code (comment-stripped) text; good enough for
/// idiomatic rustfmt'd sources.
fn test_code_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if code_part(lines[i]).contains("#[cfg(test)]") {
            let start = i;
            // Scan forward to the item's first `{`, then to its match.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for ch in code_part(lines[j]).chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for m in &mut mask[start..=end] {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

// ------------------------------------------------------------------ rule 1

/// Rule 1: host-clock reads in simulated code paths.
pub fn check_wall_clock(rel_path: &str, content: &str) -> Vec<Finding> {
    if !SIMULATED_PATHS.iter().any(|p| rel_path.starts_with(p)) {
        return Vec::new();
    }
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let code = code_part(line);
        if !(code.contains("Instant::now") || code.contains("SystemTime::now")) {
            continue;
        }
        let justified = line.contains("allow-wall-clock:")
            || (idx > 0 && lines[idx - 1].contains("allow-wall-clock:"));
        if !justified {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "wall-clock",
                message: "host-clock read in a simulated code path; use the simulated \
                          clock, or justify with a `// allow-wall-clock: ...` comment"
                    .to_string(),
            });
        }
    }
    findings
}

// ------------------------------------------------------------------ rule 2

/// Count `.unwrap()` / `.expect(` call sites outside test code.
pub fn count_unwraps(content: &str) -> usize {
    let lines: Vec<&str> = content.lines().collect();
    let mask = test_code_mask(&lines);
    lines
        .iter()
        .zip(&mask)
        .filter(|(_, in_test)| !**in_test)
        .map(|(line, _)| {
            let code = code_part(line);
            code.matches(".unwrap()").count() + code.matches(".expect(").count()
        })
        .sum()
}

/// Parse the ratchet allowlist: `path count` per line, `#` comments.
pub fn parse_allowlist(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(path), Some(count)) = (parts.next(), parts.next()) {
            if let Ok(n) = count.parse::<usize>() {
                map.insert(path.to_string(), n);
            }
        }
    }
    map
}

/// Rule 2: compare actual per-file unwrap counts against the ratchet.
/// `counts` maps repo-relative path → non-test unwrap/expect sites.
pub fn check_unwrap_ratchet(
    counts: &BTreeMap<String, usize>,
    allow: &BTreeMap<String, usize>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, &actual) in counts {
        let allowed = allow.get(path).copied().unwrap_or(0);
        if actual > allowed {
            findings.push(Finding {
                file: path.clone(),
                line: 0,
                rule: "unwrap-ratchet",
                message: format!(
                    "{actual} unwrap/expect site(s) outside tests, allowlist permits \
                     {allowed}; return a Result or justify and re-freeze with \
                     `cargo xtask lint --update-allowlist`"
                ),
            });
        } else if actual < allowed {
            findings.push(Finding {
                file: path.clone(),
                line: 0,
                rule: "unwrap-ratchet",
                message: format!(
                    "debt went down ({allowed} -> {actual}) — lock it in: run \
                     `cargo xtask lint --update-allowlist`"
                ),
            });
        }
    }
    for path in allow.keys() {
        if !counts.contains_key(path) {
            findings.push(Finding {
                file: path.clone(),
                line: 0,
                rule: "unwrap-ratchet",
                message: "allowlisted file no longer exists (or has no sites); run \
                          `cargo xtask lint --update-allowlist`"
                    .to_string(),
            });
        }
    }
    findings
}

/// Render the allowlist file content from actual counts.
pub fn render_allowlist(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# unwrap/expect ratchet: per-file count of non-test .unwrap()/.expect( sites.\n\
         # Counts may only decrease. Regenerate: cargo xtask lint --update-allowlist\n",
    );
    for (path, count) in counts {
        if *count > 0 {
            out.push_str(&format!("{path} {count}\n"));
        }
    }
    out
}

// ------------------------------------------------------------------ rule 3

/// Rule 3: unjustified `Ordering::Relaxed` outside test code.
pub fn check_relaxed(rel_path: &str, content: &str) -> Vec<Finding> {
    let lines: Vec<&str> = content.lines().collect();
    let mask = test_code_mask(&lines);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] || !code_part(line).contains("Ordering::Relaxed") {
            continue;
        }
        let justified = line.contains("// relaxed:")
            || lines[idx.saturating_sub(2)..idx]
                .iter()
                .any(|l| l.trim_start().starts_with("// relaxed:"));
        if !justified {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "relaxed-ordering",
                message: "Ordering::Relaxed without a `// relaxed:` justification \
                          within the two preceding lines"
                    .to_string(),
            });
        }
    }
    findings
}

// ------------------------------------------------------------------ rule 4

/// Rule 4: raw dense-scratch dots outside `crates/sparse`.
///
/// A `dot_scatter` call site implies a hand-managed dense buffer and
/// occupancy mask; `ScratchPad` is the sanctioned owner of that pair (it
/// zeroes via the recorded touched-index list and debug-asserts the buffer
/// is all-zero on entry to `load`). Test code is exempt.
pub fn check_scratch_hygiene(rel_path: &str, content: &str) -> Vec<Finding> {
    if rel_path.starts_with("crates/sparse/src") {
        return Vec::new();
    }
    let lines: Vec<&str> = content.lines().collect();
    let mask = test_code_mask(&lines);
    let mut findings = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] || !code_part(line).contains("dot_scatter(") {
            continue;
        }
        findings.push(Finding {
            file: rel_path.to_string(),
            line: idx + 1,
            rule: "scratch-hygiene",
            message: "raw `dot_scatter` against a hand-managed dense scratch; go \
                      through `shrinksvm_sparse::ScratchPad` (touched-list clearing \
                      + all-zero debug assertion) instead"
                .to_string(),
        });
    }
    findings
}

// ------------------------------------------------------------------ driver

/// Recursively collect `.rs` files under `root` (absolute), returned as
/// (repo-relative path, content), sorted for deterministic output.
fn collect_rs(repo: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            if let Ok(content) = fs::read_to_string(root) {
                let rel = root
                    .strip_prefix(repo)
                    .unwrap_or(root)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, content));
            }
        }
        return;
    }
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        collect_rs(repo, &p, out);
    }
}

/// Run every rule over the repo. When `update_allowlist` is set, rewrite
/// the ratchet file from the observed counts instead of reporting drift.
pub fn run_lint(repo: &Path, update_allowlist: bool) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Rule 1 over the simulated trees.
    let mut sim_files = Vec::new();
    for root in SIMULATED_PATHS {
        collect_rs(repo, &repo.join(root), &mut sim_files);
    }
    for (rel, content) in &sim_files {
        findings.extend(check_wall_clock(rel, content));
    }

    // Rules 2, 3 and 4 over the library trees.
    let mut lib_files = Vec::new();
    for root in LIBRARY_ROOTS {
        collect_rs(repo, &repo.join(root), &mut lib_files);
    }
    let mut counts = BTreeMap::new();
    for (rel, content) in &lib_files {
        let n = count_unwraps(content);
        if n > 0 {
            counts.insert(rel.clone(), n);
        }
        findings.extend(check_relaxed(rel, content));
        findings.extend(check_scratch_hygiene(rel, content));
    }
    let allow_file = repo.join(ALLOWLIST_PATH);
    if update_allowlist {
        fs::write(&allow_file, render_allowlist(&counts))?;
    } else {
        let allow = parse_allowlist(&fs::read_to_string(&allow_file).unwrap_or_default());
        findings.extend(check_unwrap_ratchet(&counts, &allow));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_flagged_in_simulated_paths_only() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let hits = check_wall_clock("crates/mpisim/src/comm.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert!(check_wall_clock("crates/sparse/src/io.rs", src).is_empty());
    }

    #[test]
    fn wall_clock_justification_suppresses() {
        let src = "// allow-wall-clock: host-side metric, not simulated time\n\
                   let t = Instant::now();\n";
        assert!(check_wall_clock("crates/core/src/x.rs", src).is_empty());
        let same_line = "let t = Instant::now(); // allow-wall-clock: metric\n";
        assert!(check_wall_clock("crates/core/src/x.rs", same_line).is_empty());
    }

    #[test]
    fn system_time_counts_as_wall_clock() {
        let src = "let t = SystemTime::now();\n";
        assert_eq!(check_wall_clock("crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn unwraps_in_test_modules_are_not_counted() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); z.expect(\"msg\"); }\n\
                   }\n";
        assert_eq!(count_unwraps(src), 1);
    }

    #[test]
    fn unwraps_in_comments_are_not_counted() {
        let src = "// call .unwrap() here? no.\nlet a = b.expect(\"boom\");\n";
        assert_eq!(count_unwraps(src), 1);
    }

    #[test]
    fn ratchet_flags_growth_and_shrink() {
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 3);
        counts.insert("b.rs".to_string(), 1);
        let allow = parse_allowlist("# frozen\na.rs 2\nb.rs 1\nc.rs 4\n");
        let findings = check_unwrap_ratchet(&counts, &allow);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.file == "a.rs" && f.message.contains("3")));
        assert!(findings.iter().any(|f| f.file == "c.rs"));
    }

    #[test]
    fn ratchet_passes_at_exact_counts() {
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 2);
        let allow = parse_allowlist("a.rs 2\n");
        assert!(check_unwrap_ratchet(&counts, &allow).is_empty());
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 2);
        counts.insert("zero.rs".to_string(), 0);
        let text = render_allowlist(&counts);
        let parsed = parse_allowlist(&text);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed["a.rs"], 2);
    }

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let hits = check_relaxed("crates/threads/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn relaxed_justified_nearby_passes() {
        let above = "// relaxed: independent counter, no ordering needed\n\
                     c.fetch_add(1, Ordering::Relaxed);\n";
        assert!(check_relaxed("x.rs", above).is_empty());
        let inline = "c.load(Ordering::Relaxed) // relaxed: monotonic probe\n";
        assert!(check_relaxed("x.rs", inline).is_empty());
        let too_far = "// relaxed: way up here\n\nlet _ = 0;\n\
                       c.fetch_add(1, Ordering::Relaxed);\n";
        assert_eq!(check_relaxed("x.rs", too_far).len(), 1);
    }

    #[test]
    fn relaxed_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) {\n        \
                   c.load(Ordering::Relaxed);\n    }\n}\n";
        assert!(check_relaxed("x.rs", src).is_empty());
    }

    #[test]
    fn raw_dot_scatter_outside_sparse_is_flagged() {
        let src = "fn f() {\n    let d = ops::dot_scatter(a, &dense, &occ);\n}\n";
        let hits = check_scratch_hygiene("crates/core/src/dist/solver.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
        assert_eq!(hits[0].rule, "scratch-hygiene");
    }

    #[test]
    fn dot_scatter_inside_sparse_and_in_tests_is_exempt() {
        let src = "fn f() {\n    let d = ops::dot_scatter(a, &dense, &occ);\n}\n";
        assert!(check_scratch_hygiene("crates/sparse/src/scratch.rs", src).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                        let d = ops::dot_scatter(a, &dense, &occ);\n    }\n}\n";
        assert!(check_scratch_hygiene("crates/core/src/x.rs", test_src).is_empty());
    }

    #[test]
    fn dot_scatter_in_comments_is_not_flagged() {
        let src = "// see ops::dot_scatter( for the bit-identity argument\nlet x = 1;\n";
        assert!(check_scratch_hygiene("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_mask_covers_attribute_through_closing_brace() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() {}\n}\nfn c() {}\n";
        let lines: Vec<&str> = src.lines().collect();
        let mask = test_code_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }
}
