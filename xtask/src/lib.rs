//! The determinism static analyzer, run as `cargo xtask lint`.
//!
//! A dependency-free static-analysis engine (no rustc plumbing, no
//! proc-macros) with three layers:
//!
//! 1. **[`lexer`]** — a hand-rolled Rust lexer that understands line and
//!    nested block comments, cooked/raw/byte strings, char-vs-lifetime
//!    ambiguity, and raw identifiers. Every rule reads tokens, so string
//!    literals and comments can never false-positive.
//! 2. **[`index`]** — a per-file item pass: function spans (signature +
//!    body), impl-type qualifiers, `#[cfg(test)]` masking, `use`-alias
//!    resolution, hash-typed struct fields, and comment positions (the
//!    justification escape hatches live in comments).
//! 3. **[`reach`]** — conservative name-level call-graph reachability
//!    from the simulated entry points (`Universe::run*`,
//!    `DistSolver::train*`, `train_rank`, `RankState::run_phase`), with
//!    witness chains for diagnostics.
//!
//! The rule pack lives in [`rules`] (wall-clock, nondet-iter,
//! charge-coverage, budgets, relaxed-ordering, scratch-hygiene), the
//! shared path/vocabulary manifest in [`manifest`], the per-crate ratchet
//! table in [`budgets`], and the `--json` report writer in [`report`].
//!
//! The crate also hosts the bench-history regression gate,
//! `cargo xtask bench-diff <baseline> <candidate>` — see [`bench_diff`] —
//! the deterministic chaos-soak harness, `cargo xtask soak` — see
//! [`soak`] — the artifact post-mortem renderer,
//! `cargo xtask doctor <artifact.json>` — see [`doctor`] — the
//! differential attribution report, `cargo xtask perf-diff <a> <b>` —
//! see [`perf_diff`] — and the cross-run perf ledger,
//! `cargo xtask perf-history record|show` — see [`perf_history`].

pub mod bench_diff;
pub mod budgets;
pub mod doctor;
pub mod index;
pub mod lexer;
pub mod manifest;
pub mod perf_diff;
pub mod perf_history;
pub mod reach;
pub mod report;
pub mod rules;
pub mod soak;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (or a crate key for file-level budget findings).
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{} [{}]: {}", self.file, self.rule, self.message)
        } else {
            write!(
                f,
                "{}:{} [{}]: {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// Everything one lint run produces.
pub struct LintOutcome {
    /// Violations, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Observed per-crate ratchet counts (what `--update-budgets` freezes).
    pub budgets_used: budgets::BudgetTable,
    /// The machine-readable report (`report::SCHEMA`), ready to write.
    pub report: String,
}

/// Run the engine over in-memory `(repo-relative path, source)` pairs.
/// This is the seam the fixture suite drives; [`run_lint`] feeds it the
/// real tree. `enforce_budgets` gates the D4 ratchet comparison (off when
/// regenerating the budget file).
pub fn analyze_files(
    files: &[(String, String)],
    budget_table: &budgets::BudgetTable,
    enforce_budgets: bool,
) -> LintOutcome {
    let indexes: Vec<index::FileIndex> = files
        .iter()
        .map(|(p, s)| index::FileIndex::build(p, s))
        .collect();
    let reach = reach::analyze(&indexes);
    let (findings, budgets_used) =
        rules::check_all(&indexes, &reach, budget_table, enforce_budgets);
    let stats = report::EngineStats {
        files: indexes.len(),
        functions: reach.functions,
        reachable_functions: reach.reachable_count,
        entry_points: manifest::ENTRY_POINTS.len(),
    };
    let report = report::render(&stats, &budgets_used, budget_table, &findings);
    LintOutcome {
        findings,
        budgets_used,
        report,
    }
}

/// Recursively collect `.rs` files under `root` (absolute), returned as
/// (repo-relative path, content), sorted for deterministic output.
fn collect_rs(repo: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    if root.is_file() {
        if root.extension().is_some_and(|e| e == "rs") {
            if let Ok(content) = fs::read_to_string(root) {
                let rel = root
                    .strip_prefix(repo)
                    .unwrap_or(root)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, content));
            }
        }
        return;
    }
    let Ok(entries) = fs::read_dir(root) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        collect_rs(repo, &p, out);
    }
}

/// Run every rule over the repo. When `update_budgets` is set, rewrite
/// `xtask/lint_budgets.toml` from the observed counts, then re-check
/// against the fresh table (so the returned outcome is the post-update
/// verdict).
pub fn run_lint(repo: &Path, update_budgets: bool) -> std::io::Result<LintOutcome> {
    let mut files = Vec::new();
    for root in manifest::LIBRARY_ROOTS {
        collect_rs(repo, &repo.join(root), &mut files);
    }
    let budgets_file = repo.join(manifest::BUDGETS_PATH);
    if update_budgets {
        let observed = analyze_files(&files, &budgets::BudgetTable::new(), false);
        fs::write(&budgets_file, budgets::render(&observed.budgets_used))?;
    }
    let table = budgets::parse(&fs::read_to_string(&budgets_file).unwrap_or_default());
    Ok(analyze_files(&files, &table, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_files_smoke() {
        let files = vec![(
            "crates/mpisim/src/x.rs".to_string(),
            "pub fn f() { let t = std::time::Instant::now(); let _ = t; }\n".to_string(),
        )];
        let out = analyze_files(&files, &budgets::BudgetTable::new(), true);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, "wall-clock");
        assert_eq!(out.findings[0].line, 1);
        assert!(out.report.contains("\"clean\":false"));
    }

    #[test]
    fn clean_tree_produces_clean_report() {
        let files = vec![(
            "crates/sparse/src/x.rs".to_string(),
            "pub fn f() -> usize { 1 }\n".to_string(),
        )];
        let out = analyze_files(&files, &budgets::BudgetTable::new(), true);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
        assert!(out.report.contains("\"clean\":true"));
    }
}
