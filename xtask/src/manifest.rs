//! The lint manifest: the single source of truth for *what counts as
//! what* across every rule — simulated paths, library roots, simulated
//! entry points, and the identifier vocabularies the heuristic rules key
//! on. Rules import these; nothing else in the engine hard-codes a path.

/// Crates whose `src/` trees count as *simulated* code paths: everything
/// in them runs under the LogGP clock, so the wall-clock ban (D1) and the
/// nondeterministic-iteration ban (D2) apply to all non-test code there,
/// reachable or not.
pub const SIMULATED_PATHS: &[&str] = &["crates/mpisim/src", "crates/core/src", "crates/obs/src"];

/// Roots whose `.rs` files are library code: the budgets ratchet (D4),
/// the relaxed-ordering justification rule, scratch hygiene, and the
/// call-graph index all cover exactly these. `xtask` itself and the CLI
/// binaries under `src/bin` are tools, not libraries.
pub const LIBRARY_ROOTS: &[&str] = &[
    "crates/analyze/src",
    "crates/core/src",
    "crates/datagen/src",
    "crates/mpisim/src",
    "crates/obs/src",
    "crates/sparse/src",
    "crates/threads/src",
    "src/lib.rs",
];

/// Directories whose loops the charge-coverage heuristic (D3) inspects:
/// the distributed solver's hot path, where every loop over gradient
/// state must be paid for through `ComputeCharge`.
pub const DIST_PATHS: &[&str] = &["crates/core/src/dist"];

/// The one tree allowed to call `dot_scatter` raw (it owns the
/// scratch-buffer hazard via `ScratchPad`).
pub const SCRATCH_HOME: &str = "crates/sparse/src";

/// Where the per-crate ratchet budgets live, relative to the repo root.
pub const BUDGETS_PATH: &str = "xtask/lint_budgets.toml";

/// A simulated entry point: functions matching `qual::prefix*` (or bare
/// `prefix*` when `qual` is `None`) seed the reachability analysis.
#[derive(Clone, Copy, Debug)]
pub struct EntryPoint {
    /// Impl-type qualifier, when the entry is a method.
    pub qual: Option<&'static str>,
    /// Function-name prefix (`run` matches `run`, `run_report`, …).
    pub prefix: &'static str,
}

/// The simulated entry points. Everything transitively callable from
/// these executes under the simulated clock.
pub const ENTRY_POINTS: &[EntryPoint] = &[
    // mpisim: every Universe::run* variant drives rank closures on the
    // simulated fabric.
    EntryPoint {
        qual: Some("Universe"),
        prefix: "run",
    },
    // core: the distributed trainer's driver front door…
    EntryPoint {
        qual: Some("DistSolver"),
        prefix: "train",
    },
    // …its per-rank body…
    EntryPoint {
        qual: None,
        prefix: "train_rank",
    },
    // …and the fused-sweep phase loop, named explicitly so the hot path
    // stays covered even if the call chain above it is refactored.
    EntryPoint {
        qual: Some("RankState"),
        prefix: "run_phase",
    },
];

/// Wall-clock / host-time reads banned in simulated code (D1). Each entry
/// is a `Type::method` pair matched against qualified call tokens.
pub const WALL_CLOCK_CALLS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "sleep"),
];

/// Standard hash-container types whose iteration order is
/// nondeterministic (D2). `use … as Alias` renames are folded in by the
/// per-file use-resolution pass.
pub const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that *iterate* a hash container (order-observing). `get`,
/// `insert`, `remove`, `contains_key`, `len` are order-blind and allowed.
pub const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Tokens that mark an iteration as routed through an ordering step: a
/// sort on the collected result, or a BTree re-collection. Seeing one of
/// these in the same statement (or the statement immediately following,
/// covering the `let v: Vec<_> = m.keys().collect(); v.sort();` idiom)
/// discharges a D2 hit.
pub const ORDERING_TOKENS: &[&str] = &[
    "sorted",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
];

/// Identifiers naming gradient state in the distributed solver; a loop
/// touching one of these must be dominated by a `ComputeCharge` (D3).
pub const GRAD_IDENTS: &[&str] = &["grad", "gpart", "gtmp"];

/// Prefixes of the functions that charge simulated time. A loop is
/// considered *charged* when its enclosing function calls one of these:
/// `advance_compute*` pays for solver compute on the LogGP clock,
/// `charge_sweep_*` pays for the split fused sweep's head and tail (the
/// overlapped-pipeline charge points in the distributed solver), and
/// `charge_recovery*` books the driver's recovery-ladder accounting
/// (aborted-attempt waste and backoff).
pub const CHARGE_FN_PREFIXES: &[&str] = &["advance_compute", "charge_sweep", "charge_recovery"];

/// Justification needles, all matched inside comment tokens on the
/// flagged line or the line(s) just above it.
pub mod hatch {
    /// D1: a deliberate host-clock read (host-side metrics, calibration).
    pub const WALL_CLOCK: &str = "allow-wall-clock:";
    /// D2: hash iteration whose order provably does not reach any output.
    pub const ORDERED: &str = "lint: ordered";
    /// D3: a gradient loop deliberately outside the simulated-cost model.
    pub const UNCHARGED: &str = "lint: uncharged";
    /// Relaxed-ordering justification (within two preceding lines).
    pub const RELAXED: &str = "relaxed:";
}

/// True when `rel_path` lies inside a simulated tree.
pub fn is_simulated(rel_path: &str) -> bool {
    SIMULATED_PATHS.iter().any(|p| rel_path.starts_with(p))
}

/// True when `rel_path` is subject to the D3 charge-coverage heuristic.
pub fn is_dist(rel_path: &str) -> bool {
    DIST_PATHS.iter().any(|p| rel_path.starts_with(p))
}

/// True when `rel_path` may call `dot_scatter` raw.
pub fn is_scratch_home(rel_path: &str) -> bool {
    rel_path.starts_with(SCRATCH_HOME)
}

/// Budget key for a file: `crates/<name>` for crate trees, `src` for the
/// facade.
pub fn crate_of(rel_path: &str) -> String {
    if let Some(rest) = rel_path.strip_prefix("crates/") {
        match rest.split('/').next() {
            Some(name) => format!("crates/{name}"),
            None => "crates".to_string(),
        }
    } else {
        "src".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_paths_are_library_roots() {
        // reachability runs over the library index; a simulated tree
        // outside it would silently escape analysis
        for p in SIMULATED_PATHS {
            assert!(
                LIBRARY_ROOTS.iter().any(|r| r == p),
                "{p} missing from LIBRARY_ROOTS"
            );
        }
    }

    #[test]
    fn crate_keys() {
        assert_eq!(crate_of("crates/core/src/dist/solver.rs"), "crates/core");
        assert_eq!(crate_of("src/lib.rs"), "src");
    }

    #[test]
    fn path_classifiers() {
        assert!(is_simulated("crates/mpisim/src/comm.rs"));
        assert!(!is_simulated("crates/sparse/src/ops.rs"));
        assert!(is_dist("crates/core/src/dist/solver.rs"));
        assert!(!is_dist("crates/core/src/smo/solver.rs"));
        assert!(is_scratch_home("crates/sparse/src/scratch.rs"));
    }
}
