//! The deterministic chaos-soak harness: `cargo xtask soak`.
//!
//! A soak run sweeps a seed grid against a set of named fault-plan
//! templates. Each (seed, plan) cell trains the distributed solver three
//! times on the same dataset: one fault-free baseline, then the faulted
//! run twice. The cell passes only when the faulted run is
//! byte-deterministic across the two executions *and* honors the
//! survival contract — a bit-identical model on full recovery, identical
//! multipliers (bias at rounding level) on a degraded one. There is no
//! tolerance knob: the simulator is byte-deterministic per seed, so any
//! drift is a bug.
//!
//! When a cell fails, its fault plan is delta-debugged down to a
//! 1-minimal rule set that still reproduces the same failure class, so a
//! soak failure arrives pre-shrunk. Every run also executes a planted
//! shrinker self-test — a deliberately fatal plan padded with chaff
//! rules — and asserts the minimization actually bites.
//!
//! The report is `SOAK_<name>.json` (schema `shrinksvm-soak/v1`),
//! byte-deterministic for a given (name, seed grid, plan set): no
//! timestamps, no host state, floats via the observability JSON writer.

use std::fmt::Write as _;
use std::sync::Arc;

use shrinksvm_core::dist::{
    flight_capacity, CheckpointPolicy, DistRunResult, DistSolver, RecoveryPolicy,
};
use shrinksvm_core::error::CoreError;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::model::SvmModel;
use shrinksvm_core::params::SvmParams;
use shrinksvm_datagen::gaussian;
use shrinksvm_mpisim::FaultPlan;
use shrinksvm_obs::flight::FlightRecorder;
use shrinksvm_obs::json;
use shrinksvm_obs::monitor::{self, HealthConfig};
use shrinksvm_sparse::Dataset;

/// Schema tag stamped into every soak report.
pub const SCHEMA: &str = "shrinksvm-soak/v1";

/// The built-in fault-plan templates, in report order.
pub const PLAN_TEMPLATES: &[&str] = &["crash", "corrupt", "ladder"];

/// One soak invocation: which cells to run and whether failures shrink.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Report name: the output file is `SOAK_<name>.json`.
    pub name: String,
    /// Seed grid; `SHRINKSVM_CHAOS_SEED_OFFSET` shifts the whole grid.
    pub seeds: Vec<u64>,
    /// Plan template names (subset of [`PLAN_TEMPLATES`]).
    pub plans: Vec<String>,
    /// Delta-debug failing plans down to 1-minimal rule sets.
    pub shrink: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            name: "local".to_string(),
            seeds: vec![1, 2, 3],
            plans: PLAN_TEMPLATES.iter().map(|s| (*s).to_string()).collect(),
            shrink: true,
        }
    }
}

/// A failing plan after delta-debugging.
#[derive(Clone, Debug)]
pub struct ShrunkPlan {
    /// Rule count of the plan that first reproduced the failure.
    pub rules_before: usize,
    /// Rule count of the 1-minimal plan.
    pub rules_after: usize,
    /// The minimal plan, in `shrinksvm-faultplan v1` text form.
    pub plan_text: String,
}

/// One (seed, plan) cell's verdict.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Effective seed (grid seed + environment offset).
    pub seed: u64,
    /// Template name.
    pub plan: String,
    /// `None` when the cell passed; the failure class otherwise.
    pub failure: Option<String>,
    /// Restarts the ladder performed.
    pub recoveries: u32,
    /// Checksum-failed checkpoint generations detected on restore.
    pub corrupt_generations: u64,
    /// Whether the run shed ranks.
    pub degraded: bool,
    /// Rank count of the final attempt.
    pub final_ranks: usize,
    /// Simulated makespan of the faulted run.
    pub makespan: f64,
    /// Modeled recovery cost (waste + backoff).
    pub recovery_cost: f64,
    /// Present only for a failing cell with shrinking enabled.
    pub shrunk: Option<ShrunkPlan>,
    /// Flight-recorder dump (`shrinksvm-flight/v1` JSON) captured by
    /// re-running a failing cell once with the black box attached;
    /// `None` for passing cells. Written to disk as a separate
    /// `FLIGHT_*.json` artifact, not embedded in the soak report.
    pub flight_json: Option<String>,
}

/// The planted shrinker self-test's verdict.
#[derive(Clone, Debug)]
pub struct SelftestOutcome {
    /// Seed the planted scenario ran under.
    pub seed: u64,
    /// Failure class of the planted plan.
    pub class: String,
    /// Rule count before / after minimization.
    pub rules_before: usize,
    /// Rule count of the minimal plan (the acceptance bar is <= 2).
    pub rules_after: usize,
    /// The minimal plan, in text form.
    pub plan_text: String,
}

/// Everything one soak run produces.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Per-cell verdicts, seed-major in grid order.
    pub cases: Vec<CellOutcome>,
    /// The planted shrinker self-test.
    pub selftest: SelftestOutcome,
    /// Number of failing cells (self-test failures are an `Err` instead).
    pub failures: usize,
    /// The rendered `shrinksvm-soak/v1` report.
    pub json: String,
}

/// Injected crashes unwind rank threads with a `CrashNotice` payload the
/// driver catches and recovers from, and the dead rank's peers then
/// unwind with an orphaned-endpoint diagnosis ("can never complete" on a
/// receive, "vanished (channel closed)" on a send); without this filter
/// the default panic hook would spam the soak output with a backtrace
/// for every *expected* crash. Any other panic — liveness timeouts,
/// retry-budget exhaustion, real bugs — still reaches the previous hook
/// untouched.
fn quiet_expected_crashes() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
            let expected = payload
                .downcast_ref::<shrinksvm_mpisim::CrashNotice>()
                .is_some()
                || msg.is_some_and(|m| {
                    m.contains("can never complete") || m.contains("vanished (channel closed)")
                });
            if !expected {
                prev(info);
            }
        }));
    });
}

fn params() -> SvmParams {
    SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3)
}

fn blobs(seed: u64) -> Dataset {
    gaussian::two_blobs(160, 4, 4.0, seed)
}

fn model_bytes(m: &SvmModel) -> Vec<u8> {
    let mut b = Vec::new();
    m.write_to(&mut b).expect("serializing to memory");
    b
}

/// Leading variant name of a `CoreError`, e.g. `RankLost`.
fn error_class(e: &CoreError) -> String {
    let d = format!("{e:?}");
    d.split(|c: char| !c.is_alphanumeric() && c != '_')
        .next()
        .unwrap_or("Unknown")
        .to_string()
}

/// One template instantiated against a concrete baseline: how to build
/// the fault plan and how to run the solver under it.
struct Scenario<'a> {
    ds: &'a Dataset,
    clean: &'a DistRunResult,
    ckpt: CheckpointPolicy,
    recovery: Option<RecoveryPolicy>,
    /// The template requires at least one detected corrupt generation.
    expect_corruption: bool,
}

impl Scenario<'_> {
    fn run(&self, fp: FaultPlan) -> Result<DistRunResult, CoreError> {
        self.run_flight(fp, None)
    }

    fn run_flight(
        &self,
        fp: FaultPlan,
        flight: Option<Arc<FlightRecorder>>,
    ) -> Result<DistRunResult, CoreError> {
        let mut s = DistSolver::new(self.ds, params())
            .with_processes(3)
            .with_faults(fp)
            .with_checkpointing(self.ckpt.clone());
        if let Some(fr) = flight {
            s = s.with_flight(fr);
        }
        if let Some(r) = self.recovery {
            s = s.with_recovery(r);
        }
        s.train()
    }

    /// `None` when `fp` satisfies the survival contract; the failure
    /// class otherwise. One training per call.
    fn classify(&self, fp: FaultPlan) -> Option<String> {
        let run = match self.run(fp) {
            Ok(run) => run,
            Err(e) => return Some(format!("train-error:{}", error_class(&e))),
        };
        if !run.converged {
            return Some("not-converged".to_string());
        }
        if self.expect_corruption && run.recovery.corrupt_generations == 0 {
            return Some("corruption-not-detected".to_string());
        }
        if run.recovery.degraded {
            // Algorithm 2's iterate trajectory is process-count
            // invariant; only the bias allreduce order depends on p.
            if run.model.coefficients() != self.clean.model.coefficients()
                || (run.model.bias() - self.clean.model.bias()).abs() >= 1e-12
            {
                return Some("diverged-degraded-model".to_string());
            }
        } else if model_bytes(&run.model) != model_bytes(&self.clean.model) {
            return Some("diverged-model".to_string());
        }
        None
    }
}

/// Build the named template's fault plan against the baseline makespan.
/// Crash deadlines are well separated so the first panic is never a
/// wall-clock race between armed rules.
fn template_plan(template: &str, seed: u64, makespan: f64) -> Result<FaultPlan, String> {
    let fp = FaultPlan::new(seed);
    match template {
        // One mid-run crash, legacy restore-same-p recovery.
        "crash" => Ok(fp.crash_rank(1, 0.5 * makespan)),
        // A crash whose restore must detect corrupted generations and
        // fall back to an older verified cut.
        "corrupt" => Ok(fp
            .crash_rank(2, 0.35 * makespan)
            .corrupt_checkpoints(1, u64::MAX)),
        // The full ladder: three crashes (two land during recovery
        // attempts) plus corruption of every post-warmup generation.
        "ladder" => Ok(fp
            .crash_rank(0, 0.12 * makespan)
            .crash_rank(2, 0.3 * makespan)
            .crash_rank(1, 0.55 * makespan)
            .corrupt_checkpoints(1, u64::MAX)),
        other => Err(format!(
            "soak: unknown plan template '{other}' (known: {})",
            PLAN_TEMPLATES.join(", ")
        )),
    }
}

/// The named template's scenario shape (checkpoint + recovery policy).
fn template_scenario<'a>(
    template: &str,
    ds: &'a Dataset,
    clean: &'a DistRunResult,
) -> Scenario<'a> {
    match template {
        "crash" => Scenario {
            ds,
            clean,
            ckpt: CheckpointPolicy::every(8),
            recovery: None,
            expect_corruption: false,
        },
        // Both corruption templates keep every generation so the
        // iteration-0 cut survives the corrupt window, and climb the
        // escalating ladder rather than the legacy single rung.
        _ => Scenario {
            ds,
            clean,
            ckpt: CheckpointPolicy::every(8).with_keep_generations(4096),
            recovery: Some(RecoveryPolicy::new()),
            expect_corruption: true,
        },
    }
}

/// Greedy 1-minimal delta debugging: repeatedly drop any single rule
/// whose removal preserves the failure class, until no rule can go.
/// `probe` runs one training per call and returns the failure class.
pub fn shrink_plan<F>(plan: &FaultPlan, class: &str, mut probe: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> Option<String>,
{
    let mut cur = plan.clone();
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < cur.rules_len() {
            let cand = cur.without_rule(i);
            if probe(&cand).as_deref() == Some(class) {
                cur = cand;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    cur
}

/// Re-run a failing cell's plan once with a flight recorder attached and
/// dump the black box. The rerun is byte-deterministic per seed, so the
/// dump is identical across soak invocations; crashes and train errors
/// are the *expected* outcome here — the rings survive the unwind in the
/// caller-held `Arc`, which is the whole point of the recorder.
fn capture_flight(scenario: &Scenario<'_>, fp: &FaultPlan, name: &str, class: &str) -> String {
    let fr = Arc::new(FlightRecorder::new(3, flight_capacity()));
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scenario.run_flight(fp.clone(), Some(Arc::clone(&fr)))
    }));
    let snap = fr.snapshot();
    let health = monitor::analyze(&snap.all_events(), &HealthConfig::default());
    snap.to_json(name, class, &health)
}

/// Run one (seed, template) cell: two identical faulted runs for the
/// byte-determinism check, contract classification, and (on failure)
/// delta-debugging of the plan.
fn run_cell(
    template: &str,
    seed: u64,
    ds: &Dataset,
    clean: &DistRunResult,
    shrink: bool,
) -> Result<CellOutcome, String> {
    let scenario = template_scenario(template, ds, clean);
    let fp = template_plan(template, seed, clean.makespan)?;

    let a = scenario.run(fp.clone());
    let b = scenario.run(fp.clone());
    let mut failure = match (&a, &b) {
        (Ok(x), Ok(y)) => {
            let same = model_bytes(&x.model) == model_bytes(&y.model)
                && x.makespan.to_bits() == y.makespan.to_bits()
                && x.recovery_cost.to_bits() == y.recovery_cost.to_bits()
                && x.recoveries == y.recoveries;
            if same {
                None
            } else {
                Some("nondeterministic".to_string())
            }
        }
        (Err(x), Err(y)) if error_class(x) == error_class(y) => None,
        _ => Some("nondeterministic".to_string()),
    };
    if failure.is_none() {
        failure = scenario.classify(fp.clone());
    }

    let shrunk = match &failure {
        Some(class) if shrink => {
            let min = shrink_plan(&fp, class, |p| scenario.classify(p.clone()));
            Some(ShrunkPlan {
                rules_before: fp.rules_len(),
                rules_after: min.rules_len(),
                plan_text: min.to_text(),
            })
        }
        _ => None,
    };
    let flight_json = failure
        .as_ref()
        .map(|class| capture_flight(&scenario, &fp, &format!("{template}_s{seed}"), class));

    let (recoveries, corrupt, degraded, final_ranks, makespan, recovery_cost) = match &a {
        Ok(run) => (
            run.recoveries,
            run.recovery.corrupt_generations,
            run.recovery.degraded,
            run.recovery.final_ranks,
            run.makespan,
            run.recovery_cost,
        ),
        Err(_) => (0, 0, false, 0, 0.0, 0.0),
    };
    Ok(CellOutcome {
        seed,
        plan: template.to_string(),
        failure,
        recoveries,
        corrupt_generations: corrupt,
        degraded,
        final_ranks,
        makespan,
        recovery_cost,
        shrunk,
        flight_json,
    })
}

/// The planted shrinker self-test: a deliberately fatal plan — one
/// crash with no checkpointing — padded with chaff the failure does not
/// depend on (two delay rules, one checkpoint-corruption rule that is
/// inert without checkpointing). The shrinker must strip every chaff
/// rule; the acceptance bar is a minimal plan of at most two rules.
fn shrink_selftest(seed: u64) -> Result<SelftestOutcome, String> {
    let ds = blobs(seed);
    let clean = DistSolver::new(&ds, params())
        .with_processes(3)
        .train()
        .map_err(|e| format!("soak: self-test baseline failed: {e:?}"))?;
    let planted = FaultPlan::new(seed)
        .delay_messages(None, None, 5e-4, 0.05, 0.0, f64::INFINITY, 20)
        .delay_messages(None, None, 1e-3, 0.03, 0.0, f64::INFINITY, 10)
        .corrupt_checkpoints(1, u64::MAX)
        .crash_rank(1, 0.5 * clean.makespan);
    let probe = |fp: &FaultPlan| match DistSolver::new(&ds, params())
        .with_processes(3)
        .with_faults(fp.clone())
        .train()
    {
        Ok(run) if run.converged => None,
        Ok(_) => Some("not-converged".to_string()),
        Err(e) => Some(format!("train-error:{}", error_class(&e))),
    };
    let class = probe(&planted)
        .ok_or_else(|| "soak: the planted plan unexpectedly survived".to_string())?;
    let min = shrink_plan(&planted, &class, probe);
    Ok(SelftestOutcome {
        seed,
        class,
        rules_before: planted.rules_len(),
        rules_after: min.rules_len(),
        plan_text: min.to_text(),
    })
}

fn push_cell_json(out: &mut String, c: &CellOutcome) {
    out.push_str("    {\"seed\":");
    let _ = write!(out, "{}", c.seed);
    out.push_str(",\"plan\":");
    json::escape_into(out, &c.plan);
    out.push_str(",\"status\":");
    json::escape_into(out, if c.failure.is_none() { "pass" } else { "fail" });
    out.push_str(",\"class\":");
    json::escape_into(out, c.failure.as_deref().unwrap_or("ok"));
    let _ = write!(
        out,
        ",\"recoveries\":{},\"corrupt_generations\":{},\"degraded\":{},\"final_ranks\":{}",
        c.recoveries, c.corrupt_generations, c.degraded, c.final_ranks
    );
    out.push_str(",\"makespan\":");
    json::write_f64(out, c.makespan);
    out.push_str(",\"recovery_cost\":");
    json::write_f64(out, c.recovery_cost);
    match &c.shrunk {
        Some(s) => {
            let _ = write!(
                out,
                ",\"shrunk\":{{\"rules_before\":{},\"rules_after\":{},\"plan\":",
                s.rules_before, s.rules_after
            );
            json::escape_into(out, &s.plan_text);
            out.push_str("}}");
        }
        None => out.push_str(",\"shrunk\":null}"),
    }
}

fn render(cfg: &SoakConfig, cases: &[CellOutcome], st: &SelftestOutcome) -> String {
    let failures = cases.iter().filter(|c| c.failure.is_some()).count();
    let mut out = String::new();
    out.push_str("{\"schema\":");
    json::escape_into(&mut out, SCHEMA);
    out.push_str(",\"name\":");
    json::escape_into(&mut out, &cfg.name);
    out.push_str(",\"seeds\":[");
    for (i, s) in cfg.seeds.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{s}");
    }
    out.push_str("],\"plans\":[");
    for (i, p) in cfg.plans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, p);
    }
    let _ = write!(out, "],\"shrink\":{},\n  \"cases\":[\n", cfg.shrink);
    for (i, c) in cases.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        push_cell_json(&mut out, c);
    }
    out.push_str("\n  ],\n  \"shrink_selftest\":{\"seed\":");
    let _ = write!(out, "{},\"class\":", st.seed);
    json::escape_into(&mut out, &st.class);
    let _ = write!(
        out,
        ",\"rules_before\":{},\"rules_after\":{},\"plan\":",
        st.rules_before, st.rules_after
    );
    json::escape_into(&mut out, &st.plan_text);
    let _ = write!(out, "}},\n  \"failures\":{failures}}}\n");
    out
}

/// Run the full soak grid. Deterministic for a given config and
/// `SHRINKSVM_CHAOS_SEED_OFFSET`; `Err` only on setup problems (bad
/// template name, malformed environment, self-test plan surviving) —
/// failing *cells* are reported in the returned [`SoakReport`].
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    quiet_expected_crashes();
    let offset = shrinksvm_mpisim::env_u64("SHRINKSVM_CHAOS_SEED_OFFSET")
        .map_err(|e| e.to_string())?
        .unwrap_or(0);
    if cfg.seeds.is_empty() || cfg.plans.is_empty() {
        return Err("soak: need at least one seed and one plan".to_string());
    }
    for p in &cfg.plans {
        // fail fast on typos before burning grid time
        template_plan(p, 1, 1.0)?;
    }
    let mut cases = Vec::new();
    for &grid_seed in &cfg.seeds {
        let seed = grid_seed + offset;
        let ds = blobs(seed);
        let clean = DistSolver::new(&ds, params())
            .with_processes(3)
            .train()
            .map_err(|e| format!("soak: seed {seed} baseline failed: {e:?}"))?;
        for p in &cfg.plans {
            cases.push(run_cell(p, seed, &ds, &clean, cfg.shrink)?);
        }
    }
    let selftest = shrink_selftest(cfg.seeds[0] + offset + 100)?;
    let json = render(cfg, &cases, &selftest);
    json::check(&json).map_err(|e| format!("soak: report failed self-check: {e}"))?;
    let failures = cases.iter().filter(|c| c.failure.is_some()).count();
    Ok(SoakReport {
        cases,
        selftest,
        failures,
        json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_template_is_a_named_error() {
        let err = template_plan("warp-core-breach", 1, 1.0).unwrap_err();
        assert!(err.contains("warp-core-breach"), "{err}");
        assert!(err.contains("ladder"), "{err}");
    }

    #[test]
    fn shrinker_is_one_minimal_on_a_synthetic_predicate() {
        // failure depends on rules 1 and 3 jointly; 0 and 2 are chaff
        let plan = FaultPlan::new(7)
            .delay_messages(None, None, 1e-3, 0.1, 0.0, f64::INFINITY, 4)
            .crash_rank(0, 1.0)
            .corrupt_checkpoints(5, 9)
            .crash_rank(1, 2.0);
        assert_eq!(plan.rules_len(), 4);
        // predicate: fails iff both crash rules survive
        let crashes = |p: &FaultPlan| p.to_text().lines().filter(|l| l.contains("crash")).count();
        let probe = |p: &FaultPlan| (crashes(p) == 2).then(|| "boom".to_string());
        let min = shrink_plan(&plan, "boom", probe);
        assert_eq!(min.rules_len(), 2, "{}", min.to_text());
        assert_eq!(crashes(&min), 2, "only the crash rules survive");
    }

    #[test]
    fn report_renders_valid_deterministic_json() {
        let cfg = SoakConfig {
            name: "unit".to_string(),
            seeds: vec![1, 2],
            plans: vec!["crash".to_string()],
            shrink: false,
        };
        let cases = vec![CellOutcome {
            seed: 1,
            plan: "crash".to_string(),
            failure: Some("diverged-model".to_string()),
            recoveries: 1,
            corrupt_generations: 0,
            degraded: false,
            final_ranks: 3,
            makespan: 0.5,
            recovery_cost: 0.125,
            shrunk: Some(ShrunkPlan {
                rules_before: 3,
                rules_after: 1,
                plan_text: "shrinksvm-faultplan v1\n".to_string(),
            }),
            flight_json: None,
        }];
        let st = SelftestOutcome {
            seed: 101,
            class: "train-error:RankLost".to_string(),
            rules_before: 4,
            rules_after: 1,
            plan_text: "shrinksvm-faultplan v1\n".to_string(),
        };
        let a = render(&cfg, &cases, &st);
        let b = render(&cfg, &cases, &st);
        assert_eq!(a, b);
        json::check(&a).expect("valid json");
        assert!(a.contains("\"schema\":\"shrinksvm-soak/v1\""));
        assert!(a.contains("\"failures\":1"));
        assert!(a.contains("\"rules_after\":1"));
    }
}
