//! `cargo xtask bench-diff <baseline> <candidate>` — the bench-history
//! regression gate.
//!
//! Compares two schema-versioned `BENCH_<name>.json` reports (or two
//! directories of them) metric by metric against a fixed gate table and
//! exits nonzero when the candidate regresses past a per-metric tolerance.
//! Committed baselines under `bench_baselines/` plus this command give CI a
//! cheap, deterministic perf trajectory check: the simulator is seeded, so
//! an honest candidate reproduces the baseline byte-for-byte and any drift
//! is a real modeling change, not noise.
//!
//! Verdict rules:
//!
//! * `schema` and `ranks` must match exactly — a report from a different
//!   schema generation or topology is not comparable, and silently
//!   comparing it would launder a regression.
//! * `converged` may not go `true` → `false`.
//! * Scalar gates flag a regression iff the candidate is worse than
//!   `baseline · (1 ± tol) ∓ 1e-12` in the metric's bad direction (the
//!   epsilon absorbs float formatting round-trips at zero).
//! * `extras` and candidate-only reports are informational — printed,
//!   never gating, so new telemetry can land before its baseline does —
//!   **except** the recovery-cost split (`recovery_waste`,
//!   `recovery_backoff`), which gates at +15% when both sides carry it.
//! * A baseline report with no candidate counterpart **fails** — losing a
//!   benchmark silently is itself a regression.

use std::fmt;
use std::fs;
use std::path::Path;

use shrinksvm_obs::json::{parse, Value};

/// Absolute slack added on top of the relative tolerance so metrics that
/// are exactly zero in both reports never trip the gate on formatting.
const ABS_EPS: f64 = 1e-12;

/// One gated scalar metric.
struct Gate {
    key: &'static str,
    /// Allowed relative drift in the bad direction.
    tol_frac: f64,
    /// `true`: larger is a regression (times, iterations).
    /// `false`: smaller is a regression (speedups).
    higher_is_worse: bool,
}

/// The gate table. Tolerances are deliberately loose for the noisy
/// decomposition metrics (idle redistributes between ranks when the
/// schedule shifts) and tight for the headline makespan.
const GATES: &[Gate] = &[
    Gate {
        key: "modeled_time",
        tol_frac: 0.10,
        higher_is_worse: true,
    },
    Gate {
        key: "compute_time",
        tol_frac: 0.15,
        higher_is_worse: true,
    },
    Gate {
        key: "transfer_time",
        tol_frac: 0.15,
        higher_is_worse: true,
    },
    Gate {
        key: "idle_time",
        tol_frac: 0.25,
        higher_is_worse: true,
    },
    Gate {
        key: "iterations",
        tol_frac: 0.10,
        higher_is_worse: true,
    },
    Gate {
        key: "speedup_vs_original",
        tol_frac: 0.10,
        higher_is_worse: false,
    },
];

/// Gated `extras` keys. Most extras are informational so new telemetry
/// can land before its baseline does, but the recovery-cost split is a
/// correctness-adjacent budget: silently growing re-executed work or
/// ladder backoff is exactly the drift the chaos benches exist to catch.
const GATED_EXTRAS: &[Gate] = &[
    Gate {
        key: "recovery_waste",
        tol_frac: 0.15,
        higher_is_worse: true,
    },
    Gate {
        key: "recovery_backoff",
        tol_frac: 0.15,
        higher_is_worse: true,
    },
    // The communication-wall budgets: the overlapped pipeline's makespan
    // and the collective rounds each iteration pays. Growing either past
    // 10% silently undoes the nonblocking-collective work.
    Gate {
        key: "makespan_overlap",
        tol_frac: 0.10,
        higher_is_worse: true,
    },
    Gate {
        key: "collective_rounds_per_iter",
        tol_frac: 0.10,
        higher_is_worse: true,
    },
];

/// Severity of one comparison line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (includes improvements).
    Ok,
    /// Not gated — extras, new reports, missing optional metrics.
    Info,
    /// Past tolerance in the bad direction, or a hard-rule violation.
    Regression,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Ok => write!(f, "ok"),
            Verdict::Info => write!(f, "info"),
            Verdict::Regression => write!(f, "REGRESSION"),
        }
    }
}

/// One metric comparison.
#[derive(Debug)]
pub struct DiffLine {
    /// `<report>/<metric>` label.
    pub metric: String,
    pub verdict: Verdict,
    /// Human-readable `base -> cand (delta)` text.
    pub detail: String,
}

impl fmt::Display for DiffLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<46} {:<10} {}",
            self.metric, self.verdict, self.detail
        )
    }
}

/// Full outcome of one bench-diff invocation.
#[derive(Debug, Default)]
pub struct DiffReport {
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// All lines that gate the exit code.
    pub fn regressions(&self) -> Vec<&DiffLine> {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Regression)
            .collect()
    }

    /// The gate table as deterministic JSON (schema
    /// `shrinksvm-benchdiff/v1`), so CI can annotate job summaries
    /// without scraping the text output.
    pub fn to_json(&self) -> String {
        use shrinksvm_obs::json::escape_into;
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"shrinksvm-benchdiff/v1\",\"regressions\":");
        out.push_str(&self.regressions().len().to_string());
        out.push_str(",\"checked\":");
        out.push_str(&self.lines.len().to_string());
        out.push_str(",\"lines\":[");
        for (i, l) in self.lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"metric\":");
            escape_into(&mut out, &l.metric);
            out.push_str(",\"verdict\":");
            escape_into(
                &mut out,
                match l.verdict {
                    Verdict::Ok => "ok",
                    Verdict::Info => "info",
                    Verdict::Regression => "regression",
                },
            );
            out.push_str(",\"detail\":");
            escape_into(&mut out, &l.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    fn push(&mut self, metric: String, verdict: Verdict, detail: String) {
        self.lines.push(DiffLine {
            metric,
            verdict,
            detail,
        });
    }
}

fn pct(base: f64, cand: f64) -> String {
    if base == 0.0 {
        if cand == 0.0 {
            "±0.0%".to_string()
        } else {
            "n/a".to_string()
        }
    } else {
        format!("{:+.1}%", (cand - base) / base * 100.0)
    }
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_f64)
}

/// Compare two parsed reports named `name`, appending lines to `out`.
fn diff_values(name: &str, base: &Value, cand: &Value, out: &mut DiffReport) {
    let label = |metric: &str| format!("{name}/{metric}");

    // Hard rules first: schema, ranks, converged.
    for key in ["schema", "ranks"] {
        match (num(base, key), num(cand, key)) {
            (Some(b), Some(c)) if b == c => {
                out.push(label(key), Verdict::Ok, format!("{b} == {c}"));
            }
            (b, c) => {
                out.push(
                    label(key),
                    Verdict::Regression,
                    format!("must match exactly: baseline {b:?}, candidate {c:?}"),
                );
                // Different schema/topology makes the scalar gates
                // meaningless; stop after reporting the hard failure.
                return;
            }
        }
    }
    match (
        base.get("converged").and_then(Value::as_bool),
        cand.get("converged").and_then(Value::as_bool),
    ) {
        (Some(true), Some(false)) => out.push(
            label("converged"),
            Verdict::Regression,
            "baseline converged, candidate did not".to_string(),
        ),
        (b, c) => out.push(label("converged"), Verdict::Ok, format!("{b:?} -> {c:?}")),
    }

    // Scalar gates.
    for gate in GATES {
        let (b, c) = match (num(base, gate.key), num(cand, gate.key)) {
            (Some(b), Some(c)) => (b, c),
            (b, c) => {
                // `speedup_vs_original` is legitimately null when no
                // baseline run happened; anything else missing is
                // reported but (being absent) cannot be gated sanely.
                out.push(
                    label(gate.key),
                    Verdict::Info,
                    format!("not comparable: baseline {b:?}, candidate {c:?}"),
                );
                continue;
            }
        };
        let (bound, regressed) = if gate.higher_is_worse {
            let bound = b * (1.0 + gate.tol_frac) + ABS_EPS;
            (bound, c > bound)
        } else {
            let bound = b * (1.0 - gate.tol_frac) - ABS_EPS;
            (bound, c < bound)
        };
        let verdict = if regressed {
            Verdict::Regression
        } else {
            Verdict::Ok
        };
        out.push(
            label(gate.key),
            verdict,
            format!(
                "{b:.6} -> {c:.6} ({}, tol {:.0}% {}, bound {bound:.6})",
                pct(b, c),
                gate.tol_frac * 100.0,
                if gate.higher_is_worse { "up" } else { "down" },
            ),
        );
    }

    // Extras: informational union of both key sets.
    let empty = Vec::new();
    let extras = |v: &Value| -> Vec<(String, f64)> {
        match v.get("extras") {
            Some(Value::Object(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
                .collect(),
            _ => empty.clone(),
        }
    };
    let be = extras(base);
    let ce = extras(cand);
    let mut keys: Vec<&String> = be.iter().chain(&ce).map(|(k, _)| k).collect();
    keys.sort();
    keys.dedup();
    for k in keys {
        let b = be.iter().rev().find(|(bk, _)| bk == k).map(|(_, v)| *v);
        let c = ce.iter().rev().find(|(ck, _)| ck == k).map(|(_, v)| *v);
        let gate = GATED_EXTRAS.iter().find(|g| g.key == k.as_str());
        if let (Some(b), Some(c), Some(gate)) = (b, c, gate) {
            let bound = b * (1.0 + gate.tol_frac) + ABS_EPS;
            let verdict = if c > bound {
                Verdict::Regression
            } else {
                Verdict::Ok
            };
            out.push(
                format!("{name}/extras/{k}"),
                verdict,
                format!(
                    "{b:.6} -> {c:.6} ({}, tol {:.0}% up, bound {bound:.6})",
                    pct(b, c),
                    gate.tol_frac * 100.0,
                ),
            );
            continue;
        }
        let detail = match (b, c) {
            (Some(b), Some(c)) => format!("{b:.6} -> {c:.6} ({})", pct(b, c)),
            (Some(b), None) => format!("{b:.6} -> (gone)"),
            (None, Some(c)) => format!("(new) -> {c:.6}"),
            (None, None) => continue,
        };
        out.push(format!("{name}/extras/{k}"), Verdict::Info, detail);
    }
}

fn load(path: &Path) -> Result<Value, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse(text.trim_end()).map_err(|e| format!("parse {}: {e}", path.display()))
}

/// Report name for a `BENCH_<name>.json` path, falling back to the stem.
fn report_name(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    stem.strip_prefix("BENCH_").unwrap_or(&stem).to_string()
}

/// `BENCH_*.json` filenames directly under `dir`, sorted.
fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    let mut names: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let n = e.file_name().to_string_lossy().into_owned();
            (n.starts_with("BENCH_") && n.ends_with(".json") && e.path().is_file()).then_some(n)
        })
        .collect();
    names.sort();
    Ok(names)
}

/// Diff a baseline against a candidate. Both paths must be files (one
/// report each) or both directories (matched by `BENCH_<name>.json`
/// filename).
///
/// # Errors
///
/// I/O failures, malformed JSON, and mixing a file with a directory are
/// errors (distinct from regressions: the comparison itself never ran).
pub fn run_bench_diff(baseline: &Path, candidate: &Path) -> Result<DiffReport, String> {
    let mut out = DiffReport::default();
    match (baseline.is_dir(), candidate.is_dir()) {
        (false, false) => {
            let b = load(baseline)?;
            let c = load(candidate)?;
            diff_values(&report_name(baseline), &b, &c, &mut out);
        }
        (true, true) => {
            let base_names = bench_files(baseline)?;
            if base_names.is_empty() {
                return Err(format!(
                    "no BENCH_*.json reports under baseline dir {}",
                    baseline.display()
                ));
            }
            for n in &base_names {
                let bp = baseline.join(n);
                let cp = candidate.join(n);
                if !cp.is_file() {
                    out.push(
                        report_name(&bp),
                        Verdict::Regression,
                        format!("baseline report has no candidate counterpart ({n} missing)"),
                    );
                    continue;
                }
                let b = load(&bp)?;
                let c = load(&cp)?;
                diff_values(&report_name(&bp), &b, &c, &mut out);
            }
            for n in bench_files(candidate)? {
                if !base_names.contains(&n) {
                    out.push(
                        report_name(Path::new(&n)),
                        Verdict::Info,
                        format!("new report with no baseline yet ({n})"),
                    );
                }
            }
        }
        (bd, _) => {
            return Err(format!(
                "baseline is a {} but candidate is not: {} vs {}",
                if bd { "directory" } else { "file" },
                baseline.display(),
                candidate.display()
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(modeled: f64, iters: u64, speedup: f64, converged: bool) -> String {
        format!(
            "{{\"schema\":1,\"name\":\"t\",\"modeled_time\":{modeled},\
             \"speedup_vs_original\":{speedup},\"iterations\":{iters},\
             \"converged\":{converged},\"ranks\":4,\"compute_time\":0.5,\
             \"transfer_time\":0.2,\"idle_time\":0.1,\"comm_time\":0.3,\
             \"faults_survived\":0,\"recoveries\":0,\"recovery_cost\":0,\
             \"extras\":{{\"acc\":0.9}}}}"
        )
    }

    fn diff_strs(base: &str, cand: &str) -> DiffReport {
        let mut out = DiffReport::default();
        diff_values(
            "t",
            &parse(base).expect("base"),
            &parse(cand).expect("cand"),
            &mut out,
        );
        out
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(1.0, 100, 3.0, true);
        let d = diff_strs(&r, &r);
        assert!(d.regressions().is_empty(), "{:?}", d.lines);
    }

    #[test]
    fn json_gate_table_is_well_formed_and_counts_regressions() {
        let base = report(1.0, 100, 3.0, true);
        let slow = report(1.2, 100, 3.0, true);
        let d = diff_strs(&base, &slow);
        let json = d.to_json();
        shrinksvm_obs::json::check(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(
            json.contains("\"schema\":\"shrinksvm-benchdiff/v1\""),
            "{json}"
        );
        assert!(
            json.contains(&format!("\"regressions\":{}", d.regressions().len())),
            "{json}"
        );
        assert!(json.contains("\"metric\":\"t/modeled_time\""), "{json}");
        assert!(json.contains("\"verdict\":\"regression\""), "{json}");
        assert_eq!(json, diff_strs(&base, &slow).to_json(), "deterministic");
    }

    #[test]
    fn makespan_blowup_is_flagged_and_small_drift_is_not() {
        let base = report(1.0, 100, 3.0, true);
        let slow = report(1.2, 100, 3.0, true); // +20% > 10% tol
        let d = diff_strs(&base, &slow);
        assert!(d.regressions().iter().any(|l| l.metric == "t/modeled_time"));
        let drift = report(1.05, 100, 3.0, true); // +5% within tol
        assert!(diff_strs(&base, &drift).regressions().is_empty());
    }

    #[test]
    fn improvements_never_gate() {
        let base = report(1.0, 100, 3.0, true);
        let fast = report(0.5, 50, 6.0, true);
        assert!(diff_strs(&base, &fast).regressions().is_empty());
    }

    #[test]
    fn speedup_drop_is_a_regression() {
        let base = report(1.0, 100, 3.0, true);
        let worse = report(1.0, 100, 2.5, true); // -16.7% < -10%
        let d = diff_strs(&base, &worse);
        assert!(d
            .regressions()
            .iter()
            .any(|l| l.metric == "t/speedup_vs_original"));
    }

    #[test]
    fn convergence_loss_is_a_regression() {
        let base = report(1.0, 100, 3.0, true);
        let bad = report(1.0, 100, 3.0, false);
        let d = diff_strs(&base, &bad);
        assert!(d.regressions().iter().any(|l| l.metric == "t/converged"));
        // The reverse direction (false -> true) is fine.
        assert!(diff_strs(&bad, &base)
            .regressions()
            .iter()
            .all(|l| l.metric != "t/converged"));
    }

    #[test]
    fn schema_mismatch_fails_hard() {
        let base = report(1.0, 100, 3.0, true);
        let cand = base.replacen("\"schema\":1", "\"schema\":2", 1);
        let d = diff_strs(&base, &cand);
        assert!(d.regressions().iter().any(|l| l.metric == "t/schema"));
        // Comparison stops after a hard failure: no scalar-gate lines.
        assert!(d.lines.iter().all(|l| l.metric != "t/modeled_time"));
    }

    #[test]
    fn null_speedup_is_informational() {
        let base = report(1.0, 100, 3.0, true);
        let cand = base.replacen(
            "\"speedup_vs_original\":3",
            "\"speedup_vs_original\":null",
            1,
        );
        let d = diff_strs(&base, &cand);
        assert!(d.regressions().is_empty(), "{:?}", d.lines);
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "t/speedup_vs_original" && l.verdict == Verdict::Info));
    }

    #[test]
    fn extras_are_informational_even_when_wildly_off() {
        let base = report(1.0, 100, 3.0, true);
        let cand = base.replacen("\"acc\":0.9", "\"acc\":0.1,\"new_metric\":7", 1);
        let d = diff_strs(&base, &cand);
        assert!(d.regressions().is_empty());
        assert!(d.lines.iter().any(|l| l.metric == "t/extras/acc"));
        assert!(d
            .lines
            .iter()
            .any(|l| l.metric == "t/extras/new_metric" && l.detail.contains("new")));
    }

    #[test]
    fn recovery_extras_gate_at_fifteen_percent() {
        let base = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":2.0,\"recovery_backoff\":1.0",
            1,
        );
        let worse = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":2.4,\"recovery_backoff\":1.0",
            1,
        ); // +20% > 15% tol
        let d = diff_strs(&base, &worse);
        assert!(d
            .regressions()
            .iter()
            .any(|l| l.metric == "t/extras/recovery_waste"));
        let drift = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":2.2,\"recovery_backoff\":1.1",
            1,
        ); // +10% within tol, both keys
        assert!(diff_strs(&base, &drift).regressions().is_empty());
        // Improvements never gate; backoff blowup does.
        let backoff = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":0.5,\"recovery_backoff\":1.3",
            1,
        );
        let d = diff_strs(&base, &backoff);
        assert!(d
            .regressions()
            .iter()
            .any(|l| l.metric == "t/extras/recovery_backoff"));
        assert!(d
            .regressions()
            .iter()
            .all(|l| l.metric != "t/extras/recovery_waste"));
    }

    #[test]
    fn zero_recovery_baseline_stays_zero_or_gates() {
        let base = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":0,\"recovery_backoff\":0",
            1,
        );
        assert!(diff_strs(&base, &base).regressions().is_empty());
        let grown = report(1.0, 100, 3.0, true).replacen(
            "\"acc\":0.9",
            "\"recovery_waste\":0.001,\"recovery_backoff\":0",
            1,
        );
        assert!(!diff_strs(&base, &grown).regressions().is_empty());
        // A candidate that drops the key entirely is informational (new
        // telemetry may land before its baseline; losing it is visible in
        // the printed lines either way).
        let gone = report(1.0, 100, 3.0, true);
        assert!(diff_strs(&base, &gone).regressions().is_empty());
    }

    #[test]
    fn zero_baseline_tolerates_only_epsilon() {
        let base = report(0.0, 0, 1.0, true);
        let same = report(0.0, 0, 1.0, true);
        assert!(diff_strs(&base, &same).regressions().is_empty());
        let grown = report(0.001, 0, 1.0, true);
        assert!(!diff_strs(&base, &grown).regressions().is_empty());
    }

    #[test]
    fn dir_mode_flags_missing_and_reports_new() {
        let root = std::env::temp_dir().join("xtask_bench_diff_dirs");
        let (bd, cd) = (root.join("base"), root.join("cand"));
        fs::create_dir_all(&bd).expect("mk base");
        fs::create_dir_all(&cd).expect("mk cand");
        fs::write(bd.join("BENCH_a.json"), report(1.0, 10, 2.0, true)).expect("w");
        fs::write(bd.join("BENCH_gone.json"), report(1.0, 10, 2.0, true)).expect("w");
        fs::write(cd.join("BENCH_a.json"), report(1.0, 10, 2.0, true)).expect("w");
        fs::write(cd.join("BENCH_new.json"), report(1.0, 10, 2.0, true)).expect("w");
        let d = run_bench_diff(&bd, &cd).expect("diff runs");
        assert!(d
            .regressions()
            .iter()
            .any(|l| l.detail.contains("BENCH_gone.json missing")));
        assert!(d
            .lines
            .iter()
            .any(|l| l.verdict == Verdict::Info && l.detail.contains("BENCH_new.json")));
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn file_vs_dir_is_an_error_not_a_regression() {
        let root = std::env::temp_dir().join("xtask_bench_diff_mixed");
        fs::create_dir_all(&root).expect("mk");
        let f = root.join("BENCH_a.json");
        fs::write(&f, report(1.0, 10, 2.0, true)).expect("w");
        assert!(run_bench_diff(&f, &root).is_err());
        fs::remove_dir_all(&root).ok();
    }
}
