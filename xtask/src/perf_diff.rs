//! `cargo xtask perf-diff <PERF_a.json> <PERF_b.json> [--json <path>]` —
//! the differential-attribution front door.
//!
//! Loads two PerfDoctor reports (baseline first), hands them to
//! [`shrinksvm_obs::perfdiff::PerfDiff`], prints the terminal report and
//! optionally writes the deterministic JSON diff. The heavy lifting —
//! bucket deltas, critical-path op entries/exits, what-if shifts — lives
//! in the obs crate so tests and other tools can reuse it.

use shrinksvm_obs::json::parse;
use shrinksvm_obs::perfdiff::PerfDiff;
use std::path::Path;

/// Everything one perf-diff invocation produces.
#[derive(Debug)]
pub struct PerfDiffOutcome {
    /// The terminal report.
    pub text: String,
    /// The machine-readable diff (schema `shrinksvm-perfdiff/v1`).
    pub json: String,
}

/// Diff two `PERF_*.json` files (baseline, then candidate).
///
/// # Errors
///
/// Unreadable files, malformed JSON, or documents that are not
/// PerfDoctor reports.
pub fn run_perf_diff(baseline: &Path, candidate: &Path) -> Result<PerfDiffOutcome, String> {
    let diff = PerfDiff::between(
        &load(baseline)?,
        &load(candidate)?,
        &label_of(baseline),
        &label_of(candidate),
    )?;
    Ok(PerfDiffOutcome {
        text: diff.render_text(),
        json: diff.to_json(),
    })
}

fn load(path: &Path) -> Result<shrinksvm_obs::json::Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(text.trim_end()).map_err(|e| format!("{}: {e}", path.display()))
}

/// Display label: the file stem with any `PERF_` prefix dropped.
fn label_of(path: &Path) -> String {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    stem.strip_prefix("PERF_").unwrap_or(&stem).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrinksvm_obs::critpath::{DepLog, DepRecorder};
    use shrinksvm_obs::json::check;
    use shrinksvm_obs::PerfDoctor;

    fn write_perf(dir: &Path, name: &str, slow: f64) -> std::path::PathBuf {
        let mut r0 = DepRecorder::new();
        let mut r1 = DepRecorder::new();
        r0.compute(0.0, slow, slow, "fused_sweep");
        r0.send(slow, 0.25, 1, 7, 0);
        r1.compute(0.0, 0.5, 0.5, "fused_sweep");
        r1.recv(0.5, 0, 7, 0, slow + 0.25, 0.5, 0.0);
        let log = DepLog::from_ranks(vec![r0.finish(), r1.finish()]);
        let doc = PerfDoctor::analyze(&log, 0.0).expect("analyze");
        let path = dir.join(format!("PERF_{name}.json"));
        std::fs::write(&path, doc.to_json()).expect("write");
        path
    }

    #[test]
    fn diffs_two_reports_end_to_end() {
        let dir = std::env::temp_dir().join("shrinksvm_xtask_perf_diff_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let a = write_perf(&dir, "before", 2.0);
        let b = write_perf(&dir, "after", 1.0);
        let out = run_perf_diff(&a, &b).expect("diff");
        assert!(
            out.text.contains("== perf-diff: before -> after =="),
            "{}",
            out.text
        );
        check(&out.json).unwrap_or_else(|e| panic!("{e}\n{}", out.json));
        // Deterministic across invocations.
        let again = run_perf_diff(&a, &b).expect("diff");
        assert_eq!(out.json, again.json);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_missing_and_malformed_inputs() {
        let dir = std::env::temp_dir().join("shrinksvm_xtask_perf_diff_bad");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let good = write_perf(&dir, "ok", 1.0);
        let missing = dir.join("PERF_missing.json");
        assert!(run_perf_diff(&missing, &good)
            .expect_err("missing file")
            .contains("cannot read"));
        let truncated = dir.join("PERF_trunc.json");
        std::fs::write(&truncated, "{\"schema\":\"shrinksvm-perf/v1\",").expect("write");
        assert!(run_perf_diff(&good, &truncated).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
