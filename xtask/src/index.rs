//! Per-file structural index over the token stream: function items with
//! impl-type qualifiers and body spans, `#[cfg(test)]` masking, `use`
//! alias resolution, struct fields with hash-container types, and a
//! line → comment map for the justification escape hatches.
//!
//! This is not a Rust parser — it is a conservative item scanner built on
//! brace matching, which is exactly enough for name-level call-graph
//! construction and token-scoped rules. Anything it cannot classify it
//! leaves out of the index (and the rules over-approximate elsewhere, so
//! omissions degrade toward fewer false *negatives* in reachability, not
//! silent passes of banned calls in simulated trees).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};
use crate::manifest;

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing impl's type name, when the fn is a method/associated fn.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the signature: `[fn_kw, body_open)`.
    pub sig: (usize, usize),
    /// Token range of the body: `[body_open, body_close]` (braces
    /// included). Zero-length for bodyless trait declarations.
    pub body: (usize, usize),
    /// True when the item is under `#[cfg(test)]` / `#[test]`.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` or `name`.
    pub fn qualified(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The structural index of one file.
pub struct FileIndex {
    /// Repo-relative path.
    pub path: String,
    /// The full token stream (comments included).
    pub toks: Vec<Tok>,
    /// Every `fn` item found.
    pub fns: Vec<FnItem>,
    /// Per-token flag: true inside a `#[cfg(test)]` / `#[test]` item.
    pub test_mask: Vec<bool>,
    /// Type names that denote nondeterministic hash containers in this
    /// file (the std names plus any `use … as` aliases of them).
    pub hash_names: BTreeSet<String>,
    /// Struct field names declared with a hash-container type.
    pub hash_fields: BTreeSet<String>,
    /// `use` aliases: alias → original (last path segment).
    pub uses: BTreeMap<String, String>,
    /// Comment text per line (a line can hold several).
    pub comments: BTreeMap<usize, Vec<String>>,
}

impl FileIndex {
    /// Lex and index one file.
    pub fn build(path: &str, src: &str) -> FileIndex {
        let toks = lex(src);
        let mut comments: BTreeMap<usize, Vec<String>> = BTreeMap::new();
        for t in &toks {
            if t.kind == TokKind::Comment {
                comments.entry(t.line).or_default().push(t.text.clone());
            }
        }
        let test_mask = compute_test_mask(&toks);
        let impls = find_impls(&toks);
        let fns = find_fns(&toks, &impls, &test_mask);
        let uses = collect_uses(&toks);
        let mut hash_names: BTreeSet<String> =
            manifest::HASH_TYPES.iter().map(|s| s.to_string()).collect();
        for (alias, orig) in &uses {
            if manifest::HASH_TYPES.contains(&orig.as_str()) {
                hash_names.insert(alias.clone());
            }
        }
        let hash_fields = collect_hash_fields(&toks, &hash_names);
        FileIndex {
            path: path.to_string(),
            toks,
            fns,
            test_mask,
            hash_names,
            hash_fields,
            uses,
            comments,
        }
    }

    /// True when any comment on `line` or the `above` lines preceding it
    /// contains `needle`.
    pub fn justified(&self, line: usize, above: usize, needle: &str) -> bool {
        let lo = line.saturating_sub(above);
        self.comments
            .range(lo..=line)
            .any(|(_, cs)| cs.iter().any(|c| c.contains(needle)))
    }

    /// Index of the next code (non-comment) token at or after `i`.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i..self.toks.len()).find(|&j| self.toks[j].is_code())
    }

    /// Index of the previous code token strictly before `i`.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| self.toks[j].is_code())
    }
}

/// An `impl` block: its type name and brace-inclusive body token range.
struct ImplBlock {
    type_name: String,
    body: (usize, usize),
}

/// True when the code token at `i` sits in item position (start of file,
/// or after `}` / `;` / `]` / `unsafe` / `pub(...)`).
fn item_position(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    loop {
        let Some(p) = (0..j).rev().find(|&k| toks[k].is_code()) else {
            return true;
        };
        let t = &toks[p];
        if t.is_punct("}") || t.is_punct(";") || t.is_punct("]") || t.is_punct("{") {
            return true;
        }
        if t.is_ident("unsafe") || t.is_ident("pub") {
            j = p;
            continue;
        }
        if t.is_punct(")") {
            // step over a `pub(crate)`-style visibility group
            let mut depth = 0i64;
            let mut k = p;
            loop {
                if toks[k].is_punct(")") {
                    depth += 1;
                } else if toks[k].is_punct("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            j = k;
            continue;
        }
        return false;
    }
}

/// Find the matching close brace for the open brace at `open` (token
/// index). Returns the last token index when unbalanced.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Mark every token belonging to a `#[cfg(test)]`- or `#[test]`-gated
/// item (attribute included, through the item's closing `}` or `;`).
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        // bracket-match the attribute
        let mut depth = 0i64;
        let mut close = i + 1;
        for (j, t) in toks.iter().enumerate().skip(i + 1) {
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
        }
        let attr = &toks[i + 2..close];
        let is_test_attr = {
            let idents: Vec<&str> = attr
                .iter()
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            idents == ["test"] || (idents.contains(&"cfg") && idents.contains(&"test"))
        };
        if !is_test_attr {
            i = close + 1;
            continue;
        }
        // the gated item runs to its first top-level `{`'s match, or `;`
        let mut j = close + 1;
        let end = loop {
            match toks.get(j) {
                None => break toks.len() - 1,
                Some(t) if t.is_punct("{") => break match_brace(toks, j),
                Some(t) if t.is_punct(";") => break j,
                _ => j += 1,
            }
        };
        for m in &mut mask[i..=end.min(toks.len() - 1)] {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Collect `impl` blocks with their resolved type names.
fn find_impls(toks: &[Tok]) -> Vec<ImplBlock> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("impl") || !item_position(toks, i) {
            continue;
        }
        // header: tokens up to the body `{` at angle-depth 0, stopping the
        // name scan at `where`
        let mut angle = 0i64;
        let mut j = i + 1;
        let mut after_for: Option<usize> = None;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if !t.is_code() {
                j += 1;
                continue;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.is_ident("for") {
                after_for = Some(j + 1);
            } else if angle == 0 && t.is_punct("{") {
                body_open = Some(j);
                break;
            } else if angle == 0 && t.is_punct(";") {
                break; // `impl Trait for Type;` — no body
            }
            j += 1;
        }
        let Some(open) = body_open else { continue };
        let name_from = after_for.unwrap_or(i + 1);
        // the type name is the last angle-depth-0 ident before `{`/`where`
        let mut angle = 0i64;
        let mut name = None;
        for t in &toks[name_from..open] {
            if !t.is_code() {
                continue;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.is_ident("where") {
                break;
            } else if angle == 0
                && t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "mut" | "dyn" | "const")
            {
                name = Some(t.text.clone());
            }
        }
        if let Some(type_name) = name {
            out.push(ImplBlock {
                type_name,
                body: (open, match_brace(toks, open)),
            });
        }
    }
    out
}

/// Collect every `fn` item with its signature and body spans.
fn find_fns(toks: &[Tok], impls: &[ImplBlock], test_mask: &[bool]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(ni) = (i + 1..toks.len()).find(|&j| toks[j].is_code()) else {
            continue;
        };
        if toks[ni].kind != TokKind::Ident {
            continue; // `fn(` pointer type
        }
        // body: first `{` at paren/bracket depth 0 after the name, or `;`
        let mut paren = 0i64;
        let mut bracket = 0i64;
        let mut j = ni + 1;
        let mut body = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_code() {
                match t.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" if paren == 0 && bracket == 0 => {
                        body = Some((j, match_brace(toks, j)));
                        break;
                    }
                    ";" if paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let body = body.unwrap_or((j.min(toks.len()), j.min(toks.len())));
        let qual = impls
            .iter()
            .filter(|b| b.body.0 < i && i < b.body.1)
            .min_by_key(|b| b.body.1 - b.body.0) // innermost
            .map(|b| b.type_name.clone());
        out.push(FnItem {
            name: toks[ni].text.clone(),
            qual,
            line: toks[i].line,
            sig: (i, body.0),
            body,
            is_test: test_mask[i],
        });
    }
    out
}

/// Resolve `use` declarations into alias → original-name pairs.
/// Handles plain paths, `as` renames, and one level of `{…}` groups
/// (nested groups are walked too — the tree is flattened by tracking the
/// last ident seen before each `,`/`}`/`as`).
fn collect_uses(toks: &[Tok]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("use") && item_position(toks, i)) {
            i += 1;
            continue;
        }
        // walk to `;`, recording (last ident, optional rename) at each leaf
        let mut last: Option<String> = None;
        let mut renaming = false;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_code() {
                match (t.kind, t.text.as_str()) {
                    (TokKind::Ident, "as") => renaming = true,
                    (TokKind::Ident, name) => {
                        if renaming {
                            if let Some(orig) = last.take() {
                                map.insert(name.to_string(), orig);
                            }
                            renaming = false;
                            last = None;
                        } else {
                            last = Some(name.to_string());
                        }
                    }
                    (TokKind::Punct, "," | "}") => {
                        if let Some(orig) = last.take() {
                            map.insert(orig.clone(), orig);
                        }
                    }
                    (TokKind::Punct, ";") => {
                        if let Some(orig) = last.take() {
                            map.insert(orig.clone(), orig);
                        }
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    map
}

/// Struct fields declared with a hash-container type.
fn collect_hash_fields(toks: &[Tok], hash_names: &BTreeSet<String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("struct") && item_position(toks, i)) {
            i += 1;
            continue;
        }
        // find the struct body (skip tuple/unit structs)
        let mut j = i + 1;
        let open = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct("{") => break Some(j),
                Some(t) if t.is_punct(";") || t.is_punct("(") => break None,
                _ => {
                    j += 1;
                    continue;
                }
            }
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let close = match_brace(toks, open);
        // fields at brace depth 1: `name : Type … ,`
        let mut depth = 0i64;
        let mut k = open;
        while k < close {
            let t = &toks[k];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
            } else if depth == 1
                && t.kind == TokKind::Ident
                && toks.get(k + 1).is_some_and(|n| n.is_punct(":"))
            {
                // scan the field's type to the `,` at depth 1 (or `}`)
                let mut m = k + 2;
                let mut d2 = 0i64;
                let mut is_hash = false;
                while m < close {
                    let u = &toks[m];
                    if u.is_punct("{") || u.is_punct("(") || u.is_punct("[") {
                        d2 += 1;
                    } else if u.is_punct("}") || u.is_punct(")") || u.is_punct("]") {
                        d2 -= 1;
                    } else if d2 == 0 && u.is_punct(",") {
                        break;
                    } else if u.kind == TokKind::Ident && hash_names.contains(&u.text) {
                        is_hash = true;
                    }
                    m += 1;
                }
                if is_hash {
                    out.insert(t.text.clone());
                }
                k = m;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_with_impl_qualifiers() {
        let src = "
            pub fn free() {}
            impl<'a> RankState<'a> { fn method(&self) { helper(); } }
            impl fmt::Display for Finding { fn fmt(&self) {} }
        ";
        let ix = FileIndex::build("a.rs", src);
        let quals: Vec<String> = ix.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(quals, ["free", "RankState::method", "Finding::fmt"]);
    }

    #[test]
    fn impl_trait_return_type_is_not_an_impl_block() {
        let src = "fn make() -> impl Iterator<Item = u8> { (0..3) } fn other() {}";
        let ix = FileIndex::build("a.rs", src);
        assert_eq!(ix.fns.len(), 2);
        assert!(ix.fns.iter().all(|f| f.qual.is_none()));
    }

    #[test]
    fn cfg_test_masks_the_whole_item() {
        let src = "
            fn lib() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
        ";
        let ix = FileIndex::build("a.rs", src);
        let lib = ix.fns.iter().find(|f| f.name == "lib").unwrap();
        let t = ix.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!lib.is_test);
        assert!(t.is_test);
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))] fn t() {}";
        let ix = FileIndex::build("a.rs", src);
        assert!(ix.fns[0].is_test);
    }

    #[test]
    fn use_aliases_resolve() {
        let src = "
            use std::collections::HashMap as Fast;
            use std::collections::{BTreeMap, HashSet};
            use crate::smo::solve_pair;
        ";
        let ix = FileIndex::build("a.rs", src);
        assert_eq!(ix.uses.get("Fast").map(String::as_str), Some("HashMap"));
        assert_eq!(ix.uses.get("HashSet").map(String::as_str), Some("HashSet"));
        assert_eq!(
            ix.uses.get("solve_pair").map(String::as_str),
            Some("solve_pair")
        );
        assert!(ix.hash_names.contains("Fast"));
        assert!(!ix.hash_names.contains("BTreeMap"));
    }

    #[test]
    fn hash_fields_found() {
        let src = "
            struct Cache { map: HashMap<usize, usize>, nodes: Vec<Node>, cap: usize }
            struct Plain { items: Vec<u8> }
        ";
        let ix = FileIndex::build("a.rs", src);
        assert!(ix.hash_fields.contains("map"));
        assert!(!ix.hash_fields.contains("nodes"));
        assert!(!ix.hash_fields.contains("items"));
    }

    #[test]
    fn justification_window() {
        let src = "// relaxed: fine here\nx.load(O);\n\n\ny.load(O);";
        let ix = FileIndex::build("a.rs", src);
        assert!(ix.justified(2, 1, "relaxed:"));
        assert!(!ix.justified(5, 2, "relaxed:"));
    }

    #[test]
    fn bodyless_trait_fn() {
        let src = "trait T { fn decl(&self); fn with_default(&self) { self.decl() } }";
        let ix = FileIndex::build("a.rs", src);
        assert_eq!(ix.fns.len(), 2);
        let decl = &ix.fns[0];
        assert_eq!(decl.body.0, decl.body.1, "declaration has no body");
    }

    #[test]
    fn where_clause_does_not_steal_the_impl_name() {
        let src = "impl<T> Wrapper<T> where T: Clone { fn m(&self) {} }";
        let ix = FileIndex::build("a.rs", src);
        assert_eq!(ix.fns[0].qualified(), "Wrapper::m");
    }
}
