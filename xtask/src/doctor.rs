//! `cargo xtask doctor <artifact.json>` — post-mortem rendering for the
//! repo's schema-versioned artifacts.
//!
//! One command, three artifact kinds, dispatched on the parsed `schema`
//! field — never on the filename, so renamed or downloaded artifacts
//! still render:
//!
//! * `shrinksvm-flight/v1` (`FLIGHT_*.json`): a crash flight recorder
//!   dump — the health-event ledger followed by each rank's last-N event
//!   ring, the black box a failed chaos run leaves behind,
//! * `shrinksvm-soak/v1` (`SOAK_*.json`): the chaos-soak grid verdict —
//!   per-cell pass/fail lines, shrunk-plan sizes, the shrinker
//!   self-test,
//! * numeric schema `1` with `modeled_time` (`BENCH_*.json`): a bench
//!   report summary — headline makespan, time split, fault/recovery
//!   accounting and the sorted extras,
//! * `shrinksvm-perf/v1` (`PERF_*.json`): a PerfDoctor trace analysis —
//!   makespan, attribution buckets, critical-path op totals and the
//!   what-if projections,
//! * `shrinksvm-profile/v1` (`PROFILE_*.json`): a hierarchical time
//!   profile — the merged phase → op → charge tree with self/total
//!   seconds and shares.
//!
//! Output is plain text on stdout, deterministic for a given input file
//! (rendering only re-orders nothing and adds no timestamps), so CI can
//! archive the rendered post-mortems next to the raw artifacts.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use shrinksvm_obs::json::{parse, Value};

/// Render one artifact file. Errors name the file and the problem
/// (unreadable, malformed JSON, unrecognized schema) — a doctor that
/// silently skips a corrupt post-mortem hides exactly the evidence it
/// exists to surface.
pub fn run_doctor(path: &Path) -> Result<String, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let v = parse(text.trim_end()).map_err(|e| format!("parse {}: {e}", path.display()))?;
    match v.get("schema") {
        Some(Value::String(s)) if s == "shrinksvm-flight/v1" => render_flight(&v),
        Some(Value::String(s)) if s == "shrinksvm-soak/v1" => Ok(render_soak(&v)),
        Some(Value::String(s)) if s == "shrinksvm-perf/v1" => Ok(render_perf(&v)),
        Some(Value::String(s)) if s == "shrinksvm-profile/v1" => render_profile(&v),
        Some(Value::Number(n)) if *n == 1.0 && v.get("modeled_time").is_some() => {
            Ok(render_bench(&v))
        }
        other => Err(format!(
            "{}: unrecognized artifact schema {other:?} (known: shrinksvm-flight/v1, \
             shrinksvm-soak/v1, shrinksvm-perf/v1, shrinksvm-profile/v1, bench schema 1)",
            path.display()
        )),
    }
}

fn str_of<'a>(v: &'a Value, key: &str) -> &'a str {
    v.get(key).and_then(Value::as_str).unwrap_or("?")
}

fn num_of(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn arr_of<'a>(v: &'a Value, key: &str) -> &'a [Value] {
    match v.get(key) {
        Some(Value::Array(items)) => items,
        _ => &[],
    }
}

/// Flight-recorder post-mortem: health ledger first (that is the
/// diagnosis), then each rank's ring verbatim (that is the evidence).
fn render_flight(v: &Value) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "flight post-mortem: {}", str_of(v, "name"));
    let _ = writeln!(out, "reason: {}", str_of(v, "reason"));
    let _ = writeln!(
        out,
        "ring capacity: {} event(s) per rank",
        num_of(v, "capacity")
    );
    let health = arr_of(v, "health");
    if health.is_empty() {
        out.push_str("health events: none\n");
    } else {
        let _ = writeln!(out, "health events ({}):", health.len());
        for h in health {
            let _ = writeln!(
                out,
                "  [{:.9}s] {} (rank {}): {}",
                num_of(h, "t"),
                str_of(h, "rule"),
                num_of(h, "track"),
                str_of(h, "detail")
            );
        }
    }
    let ranks = arr_of(v, "ranks");
    if ranks.is_empty() {
        return Err("flight dump has no ranks array".to_string());
    }
    for r in ranks {
        let events = arr_of(r, "events");
        let dropped = num_of(r, "dropped");
        let _ = write!(out, "rank {} ({} event(s)", num_of(r, "rank"), events.len());
        if dropped > 0.0 {
            let _ = write!(out, ", {dropped} aged out");
        }
        out.push_str("):\n");
        for e in events {
            match str_of(e, "kind") {
                "span" => {
                    let (t0, t1) = (num_of(e, "t0"), num_of(e, "t1"));
                    let _ = writeln!(
                        out,
                        "  [{:.9}s +{:.9}s] {:<8} {}",
                        t0,
                        t1 - t0,
                        str_of(e, "cat"),
                        str_of(e, "name")
                    );
                }
                "instant" => {
                    let _ = writeln!(
                        out,
                        "  [{:.9}s           !] {:<8} {}",
                        num_of(e, "t"),
                        str_of(e, "cat"),
                        str_of(e, "name")
                    );
                }
                "counter" => {
                    let _ = writeln!(
                        out,
                        "  [{:.9}s           #] counter  {} = {}",
                        num_of(e, "t"),
                        str_of(e, "name"),
                        num_of(e, "value")
                    );
                }
                other => {
                    let _ = writeln!(out, "  (unknown event kind '{other}')");
                }
            }
        }
    }
    Ok(out)
}

/// Soak-grid verdict summary.
fn render_soak(v: &Value) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "soak report: {}", str_of(v, "name"));
    let cases = arr_of(v, "cases");
    let failures = num_of(v, "failures");
    let _ = writeln!(out, "cells: {} ({} failing)", cases.len(), failures);
    for c in cases {
        let status = str_of(c, "status");
        let _ = write!(
            out,
            "  seed {} plan {}: ",
            num_of(c, "seed"),
            str_of(c, "plan")
        );
        if status == "pass" {
            let _ = writeln!(
                out,
                "pass ({} recoveries, {} corrupt gen, final ranks {})",
                num_of(c, "recoveries"),
                num_of(c, "corrupt_generations"),
                num_of(c, "final_ranks")
            );
        } else {
            let _ = write!(out, "FAIL [{}]", str_of(c, "class"));
            if let Some(s) = c.get("shrunk") {
                if !matches!(s, Value::Null) {
                    let _ = write!(
                        out,
                        " (plan shrunk {} -> {} rule(s))",
                        num_of(s, "rules_before"),
                        num_of(s, "rules_after")
                    );
                }
            }
            out.push('\n');
        }
    }
    if let Some(st) = v.get("shrink_selftest") {
        let _ = writeln!(
            out,
            "shrinker self-test [{}]: {} -> {} rule(s)",
            str_of(st, "class"),
            num_of(st, "rules_before"),
            num_of(st, "rules_after")
        );
    }
    let _ = writeln!(
        out,
        "verdict: {}",
        if failures == 0.0 { "clean" } else { "FAILING" }
    );
    out
}

/// Bench-report summary.
fn render_bench(v: &Value) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "bench report: {}", str_of(v, "name"));
    let converged = v.get("converged").and_then(Value::as_bool).unwrap_or(false);
    let _ = writeln!(
        out,
        "modeled time: {:.6}s over {} rank(s), {} iteration(s), {}",
        num_of(v, "modeled_time"),
        num_of(v, "ranks"),
        num_of(v, "iterations"),
        if converged {
            "converged"
        } else {
            "NOT converged"
        }
    );
    let _ = writeln!(
        out,
        "split: compute {:.6}s, transfer {:.6}s, idle {:.6}s",
        num_of(v, "compute_time"),
        num_of(v, "transfer_time"),
        num_of(v, "idle_time")
    );
    let _ = writeln!(
        out,
        "faults survived: {}, recoveries: {}, recovery cost: {:.6}s",
        num_of(v, "faults_survived"),
        num_of(v, "recoveries"),
        num_of(v, "recovery_cost")
    );
    if let Some(Value::Object(pairs)) = v.get("extras") {
        let mut keys: Vec<&(String, Value)> = pairs.iter().collect();
        keys.sort_by(|a, b| a.0.cmp(&b.0));
        if !keys.is_empty() {
            out.push_str("extras:\n");
            for (k, val) in keys {
                match val.as_f64() {
                    Some(f) => {
                        let _ = writeln!(out, "  {k} = {f:.6}");
                    }
                    None => {
                        let _ = writeln!(out, "  {k} = {val:?}");
                    }
                }
            }
        }
    }
    out
}

/// PerfDoctor trace-analysis summary: buckets, the critical-path op
/// table, and the what-if projections.
fn render_perf(v: &Value) -> String {
    let mut out = String::new();
    let makespan = num_of(v, "makespan");
    let _ = writeln!(
        out,
        "perf report: makespan {:.9}s over {} rank(s) (set by rank {})",
        makespan,
        num_of(v, "ranks"),
        num_of(v, "makespan_rank")
    );
    if let Some(b) = v.get("buckets") {
        let total = num_of(b, "total_rank_time");
        out.push_str("buckets (total rank-time):\n");
        for k in ["compute", "transfer", "idle", "retransmit", "recovery"] {
            let val = num_of(b, k);
            let share = if total > 0.0 {
                100.0 * val / total
            } else {
                0.0
            };
            let _ = writeln!(out, "  {k:<12} {val:>14.9}s  {share:>6.2}%");
        }
    }
    if let Some(Value::Object(by_op)) = v.get("critical_path").and_then(|cp| cp.get("by_op")) {
        let _ = writeln!(
            out,
            "critical path: {} hop(s)",
            v.get("critical_path")
                .map(|cp| num_of(cp, "hops_total"))
                .unwrap_or(f64::NAN)
        );
        for (k, t) in by_op {
            let _ = writeln!(
                out,
                "  {k:<28} {:>4} hop(s) {:>14.9}s",
                num_of(t, "hops"),
                num_of(t, "secs")
            );
        }
    }
    if let Some(w) = v.get("whatif") {
        out.push_str("what-if projections:\n");
        for k in ["zero_network", "perfect_balance", "infinite_cache"] {
            let _ = writeln!(
                out,
                "  {k:<16} {:>14.9}s  (speedup x{:.3})",
                num_of(w, k),
                num_of(w, &format!("speedup_{k}"))
            );
        }
    }
    out
}

/// Hierarchical-profile summary: the merged tree, indented, with
/// self/total seconds and each frame's share of total rank-time.
fn render_profile(v: &Value) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: makespan {:.9}s over {} rank(s), total rank-time {:.9}s \
         (reconcile error {:e})",
        num_of(v, "makespan"),
        num_of(v, "ranks"),
        num_of(v, "total_self"),
        num_of(v, "reconcile_error")
    );
    let merged = v
        .get("merged")
        .ok_or("profile artifact has no merged tree")?;
    let total = num_of(merged, "total");
    render_profile_node(&mut out, merged, 0, total);
    Ok(out)
}

fn render_profile_node(out: &mut String, node: &Value, depth: usize, total: f64) {
    let node_total = num_of(node, "total");
    let share = if total > 0.0 {
        100.0 * node_total / total
    } else {
        0.0
    };
    let _ = writeln!(
        out,
        "{:indent$}{:<24} total {:>14.9}s  self {:>14.9}s  {share:>6.2}%",
        "",
        str_of(node, "name"),
        node_total,
        num_of(node, "self"),
        indent = depth * 2
    );
    if let Some(Value::Array(children)) = node.get("children") {
        for c in children {
            render_profile_node(out, c, depth + 1, total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doctor_str(json: &str) -> Result<String, String> {
        let dir = std::env::temp_dir().join("xtask_doctor_tests");
        fs::create_dir_all(&dir).expect("mkdir");
        // unique-per-content filename so parallel tests never collide
        let mut h = 0u64;
        for b in json.bytes() {
            h = h.wrapping_mul(1099511628211).wrapping_add(u64::from(b));
        }
        let p = dir.join(format!("artifact_{h:x}.json"));
        fs::write(&p, json).expect("write");
        let out = run_doctor(&p);
        fs::remove_file(&p).ok();
        out
    }

    #[test]
    fn flight_dump_renders_health_then_rings() {
        let json = r#"{"schema":"shrinksvm-flight/v1","name":"ladder_s7","reason":"train-error:RankLost","capacity":64,
            "health":[{"rule":"straggler","track":1,"t":0.5,"detail":"frontier 0.5 vs median 0.1"}],
            "ranks":[{"rank":0,"dropped":3,"events":[
                {"kind":"span","name":"compute","cat":"compute","t0":0.1,"t1":0.2},
                {"kind":"instant","name":"retransmit","cat":"fault","t":0.15},
                {"kind":"counter","name":"active_set","t":0.2,"value":120}]},
             {"rank":1,"dropped":0,"events":[]}]}"#;
        let out = doctor_str(json).expect("renders");
        assert!(out.contains("flight post-mortem: ladder_s7"), "{out}");
        assert!(out.contains("reason: train-error:RankLost"), "{out}");
        assert!(out.contains("straggler (rank 1)"), "{out}");
        assert!(out.contains("rank 0 (3 event(s), 3 aged out):"), "{out}");
        assert!(out.contains("compute  compute"), "{out}");
        assert!(out.contains("!] fault    retransmit"), "{out}");
        assert!(out.contains("counter  active_set = 120"), "{out}");
        assert!(out.contains("rank 1 (0 event(s)):"), "{out}");
    }

    #[test]
    fn soak_report_renders_cells_and_verdict() {
        let json = r#"{"schema":"shrinksvm-soak/v1","name":"ci","failures":1,
            "cases":[
              {"seed":1,"plan":"crash","status":"pass","class":"ok","recoveries":1,"corrupt_generations":0,"final_ranks":3,"shrunk":null},
              {"seed":2,"plan":"ladder","status":"fail","class":"diverged-model","recoveries":2,"corrupt_generations":1,"final_ranks":2,
               "shrunk":{"rules_before":4,"rules_after":1,"plan":"x"}}],
            "shrink_selftest":{"class":"train-error:RankLost","rules_before":4,"rules_after":1}}"#;
        let out = doctor_str(json).expect("renders");
        assert!(out.contains("soak report: ci"), "{out}");
        assert!(out.contains("cells: 2 (1 failing)"), "{out}");
        assert!(out.contains("seed 1 plan crash: pass"), "{out}");
        assert!(
            out.contains("seed 2 plan ladder: FAIL [diverged-model] (plan shrunk 4 -> 1 rule(s))"),
            "{out}"
        );
        assert!(
            out.contains("self-test [train-error:RankLost]: 4 -> 1"),
            "{out}"
        );
        assert!(out.contains("verdict: FAILING"), "{out}");
    }

    #[test]
    fn bench_report_renders_headline_and_sorted_extras() {
        let json = r#"{"schema":1,"name":"smoke","modeled_time":1.25,"iterations":900,
            "converged":true,"ranks":4,"compute_time":0.5,"transfer_time":0.2,"idle_time":0.1,
            "faults_survived":0,"recoveries":0,"recovery_cost":0,
            "extras":{"recovery_waste":0.5,"n_sv":42}}"#;
        let out = doctor_str(json).expect("renders");
        assert!(out.contains("bench report: smoke"), "{out}");
        assert!(
            out.contains("modeled time: 1.250000s over 4 rank(s)"),
            "{out}"
        );
        assert!(out.contains("converged"), "{out}");
        // extras sorted: n_sv before recovery_waste
        let n = out.find("n_sv").expect("n_sv");
        let w = out.find("recovery_waste").expect("waste");
        assert!(n < w, "{out}");
    }

    #[test]
    fn perf_report_renders_buckets_ops_and_whatif() {
        let json = r#"{"schema":"shrinksvm-perf/v1","makespan":1.875,"ranks":2,"makespan_rank":1,
            "buckets":{"compute":1.5,"transfer":0.875,"idle":1.375,"retransmit":0.125,
                       "recovery":0,"recovery_waste":0,"recovery_backoff":0,
                       "total_rank_time":3.75,"reconcile_error":0},
            "critical_path":{"start":0,"end":1.875,"hops_total":3,"hops_truncated":0,"hops":[],
                "by_op":{"compute/fused_sweep":{"hops":1,"edges":1,"secs":1.0},
                         "transfer/p2p":{"hops":1,"edges":1,"secs":0.625}}},
            "whatif":{"zero_network":1.0,"speedup_zero_network":1.875,
                      "perfect_balance":0.9375,"speedup_perfect_balance":2.0,
                      "infinite_cache":1.625,"speedup_infinite_cache":1.1538}}"#;
        let out = doctor_str(json).expect("renders");
        assert!(
            out.contains("perf report: makespan 1.875000000s over 2 rank(s)"),
            "{out}"
        );
        assert!(out.contains("compute"), "{out}");
        assert!(out.contains("critical path: 3 hop(s)"), "{out}");
        assert!(out.contains("compute/fused_sweep"), "{out}");
        assert!(out.contains("zero_network"), "{out}");
        assert!(out.contains("speedup x1.875"), "{out}");
    }

    #[test]
    fn profile_renders_the_merged_tree_indented() {
        let json = r#"{"schema":"shrinksvm-profile/v1","makespan":1.875,"ranks":2,
            "total_self":3.75,"reconcile_error":0,
            "merged":{"name":"all","self":0,"total":3.75,"children":[
                {"name":"main","self":0,"total":3.125,"children":[
                    {"name":"fused_sweep","self":0,"total":1.5,"children":[
                        {"name":"compute","self":1.5,"total":1.5,"children":[]}]}]},
                {"name":"tail","self":0,"total":0.625,"children":[]}]},
            "per_rank":[]}"#;
        let out = doctor_str(json).expect("renders");
        assert!(out.contains("profile: makespan 1.875000000s"), "{out}");
        assert!(out.contains("all"), "{out}");
        assert!(out.contains("  main"), "{out}");
        assert!(out.contains("      compute"), "{out}");
        assert!(out.contains("100.00%"), "{out}");
        // Missing merged tree is a named error, not a panic.
        let err = doctor_str(r#"{"schema":"shrinksvm-profile/v1","makespan":1}"#).unwrap_err();
        assert!(err.contains("no merged tree"), "{err}");
    }

    #[test]
    fn unknown_schema_is_a_named_error() {
        let err = doctor_str(r#"{"schema":"shrinksvm-mystery/v9"}"#).unwrap_err();
        assert!(err.contains("unrecognized artifact schema"), "{err}");
        assert!(err.contains("shrinksvm-perf/v1"), "{err}");
        assert!(err.contains("shrinksvm-profile/v1"), "{err}");
        let err = doctor_str(r#"{"no_schema":true}"#).unwrap_err();
        assert!(err.contains("unrecognized artifact schema"), "{err}");
    }

    #[test]
    fn malformed_json_is_a_named_error() {
        let err = doctor_str("{not json").unwrap_err();
        assert!(err.contains("parse"), "{err}");
        // A perf artifact cut off mid-object must fail the same way, not
        // dispatch on the half-read schema.
        let err = doctor_str(r#"{"schema":"shrinksvm-perf/v1","makespan":1.8"#).unwrap_err();
        assert!(err.contains("parse"), "{err}");
        let err = doctor_str(r#"{"schema":"shrinksvm-profile/v1","merged":{"#).unwrap_err();
        assert!(err.contains("parse"), "{err}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let json = r#"{"schema":"shrinksvm-flight/v1","name":"x","reason":"r","capacity":4,
            "health":[],"ranks":[{"rank":0,"dropped":0,"events":[]}]}"#;
        let a = doctor_str(json).expect("a");
        let b = doctor_str(json).expect("b");
        assert_eq!(a, b);
        assert!(a.contains("health events: none"), "{a}");
    }
}
