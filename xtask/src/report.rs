//! Machine-readable lint report (`cargo xtask lint --json <path>`).
//!
//! Schema `shrinksvm-lint-report/v1`:
//!
//! ```json
//! {
//!   "schema": "shrinksvm-lint-report/v1",
//!   "clean": true,
//!   "engine": {"files": 42, "functions": 310, "reachable_functions": 120,
//!              "entry_points": 4},
//!   "budgets": [{"crate": "crates/core", "counter": "unwrap",
//!                "used": 9, "budget": 9}],
//!   "findings": [{"file": "crates/core/src/cache.rs", "line": 7,
//!                 "rule": "nondet-iter", "message": "…"}]
//! }
//! ```
//!
//! Serialization goes through `shrinksvm_obs::json::escape_into` — the
//! same writer the benchmark reports use — and the emitted text is
//! checked against `shrinksvm_obs::json::check` in tests, so the artifact
//! CI uploads is guaranteed parseable.

use shrinksvm_obs::json::escape_into;

use crate::budgets::{self, BudgetTable};
use crate::Finding;

/// Schema tag; bump on any field change.
pub const SCHEMA: &str = "shrinksvm-lint-report/v1";

/// Engine-side statistics surfaced for observability.
pub struct EngineStats {
    pub files: usize,
    pub functions: usize,
    pub reachable_functions: usize,
    pub entry_points: usize,
}

/// Render the full report to a JSON string (trailing newline included).
pub fn render(
    stats: &EngineStats,
    actual: &BudgetTable,
    table: &BudgetTable,
    findings: &[Finding],
) -> String {
    let mut s = String::with_capacity(4096);
    s.push_str("{\"schema\":");
    escape_into(&mut s, SCHEMA);
    s.push_str(",\"clean\":");
    s.push_str(if findings.is_empty() { "true" } else { "false" });

    s.push_str(",\"engine\":{");
    s.push_str(&format!(
        "\"files\":{},\"functions\":{},\"reachable_functions\":{},\"entry_points\":{}",
        stats.files, stats.functions, stats.reachable_functions, stats.entry_points
    ));
    s.push('}');

    s.push_str(",\"budgets\":[");
    let mut first = true;
    for (crate_key, counts) in actual {
        for &counter in budgets::COUNTERS {
            let used = counts.get(counter).copied().unwrap_or(0);
            let budget = budgets::budget_of(table, crate_key, counter);
            if used == 0 && budget == 0 {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str("{\"crate\":");
            escape_into(&mut s, crate_key);
            s.push_str(",\"counter\":");
            escape_into(&mut s, counter);
            s.push_str(&format!(",\"used\":{used},\"budget\":{budget}}}"));
        }
    }
    s.push(']');

    s.push_str(",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"file\":");
        escape_into(&mut s, &f.file);
        s.push_str(&format!(",\"line\":{},\"rule\":", f.line));
        escape_into(&mut s, f.rule);
        s.push_str(",\"message\":");
        escape_into(&mut s, &f.message);
        s.push('}');
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrinksvm_obs::json::{check, parse};

    fn stats() -> EngineStats {
        EngineStats {
            files: 3,
            functions: 12,
            reachable_functions: 5,
            entry_points: 4,
        }
    }

    #[test]
    fn report_validates_under_obs_json_check() {
        let mut actual = BudgetTable::new();
        actual
            .entry("crates/core".into())
            .or_default()
            .insert("unwrap".into(), 9);
        let findings = vec![Finding {
            file: "crates/core/src/x.rs".into(),
            line: 7,
            rule: "wall-clock",
            message: "a \"quoted\" message with \\ and control \u{1} chars".into(),
        }];
        let text = render(&stats(), &actual, &BudgetTable::new(), &findings);
        check(&text).expect("report must be valid JSON");
        let v = parse(&text).expect("parse");
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some(SCHEMA));
        assert_eq!(v.get("clean").and_then(|c| c.as_bool()), Some(false));
        assert_eq!(
            v.get("engine")
                .and_then(|e| e.get("entry_points"))
                .and_then(|n| n.as_f64()),
            Some(4.0)
        );
    }

    #[test]
    fn clean_report_has_empty_findings() {
        let text = render(&stats(), &BudgetTable::new(), &BudgetTable::new(), &[]);
        check(&text).expect("valid");
        assert!(text.contains("\"clean\":true"));
        assert!(text.contains("\"findings\":[]"));
    }
}
