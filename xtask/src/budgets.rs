//! The unified ratchet (D4): per-crate budgets for `unwrap`, `expect`,
//! `unsafe`, and `Ordering::Relaxed` sites, frozen in
//! `xtask/lint_budgets.toml`. Counts may only go down; when they do, the
//! file must be regenerated (`cargo xtask lint --update-budgets`) so the
//! debt burns down monotonically.
//!
//! The file is a small TOML subset parsed by hand (the engine is
//! dependency-free): `["crate key"]` table headers and `key = <integer>`
//! pairs, `#` comments. The renderer emits the same subset with sorted
//! keys so regeneration is deterministic.

use std::collections::BTreeMap;

/// The four ratcheted counters.
pub const COUNTERS: &[&str] = &["unwrap", "expect", "unsafe", "relaxed"];

/// Per-crate counter values (`counter name -> count`).
pub type CrateCounts = BTreeMap<String, usize>;

/// The whole table: crate key (`crates/core`, `src`) → counters.
pub type BudgetTable = BTreeMap<String, CrateCounts>;

/// Parse `lint_budgets.toml` text. Unknown keys are kept (forward
/// compatibility); malformed lines are ignored rather than fatal — a
/// hand-edited budget that drops a line simply reverts that counter to
/// the zero default, which fails closed.
pub fn parse(text: &str) -> BudgetTable {
    let mut table = BudgetTable::new();
    let mut current: Option<String> = None;
    for raw in text.lines() {
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(inner) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = inner.trim().trim_matches('"').to_string();
            table.entry(name.clone()).or_default();
            current = Some(name);
            continue;
        }
        if let (Some(cur), Some(eq)) = (&current, line.find('=')) {
            let key = line[..eq].trim();
            if let Ok(v) = line[eq + 1..].trim().parse::<usize>() {
                table
                    .entry(cur.clone())
                    .or_default()
                    .insert(key.to_string(), v);
            }
        }
    }
    table
}

/// Render a table back to budget-file text. Crates whose counters are all
/// zero are omitted — absence means "budget zero", so a first violation
/// in a clean crate fails immediately.
pub fn render(table: &BudgetTable) -> String {
    let mut out = String::from(
        "# lint_budgets.toml — per-crate ceilings for unwrap/expect/unsafe/Ordering::Relaxed\n\
         # sites outside #[cfg(test)]. Counts may only decrease; regenerate after paying\n\
         # debt down with: cargo xtask lint --update-budgets\n",
    );
    for (name, counts) in table {
        if counts.values().all(|&v| v == 0) {
            continue;
        }
        out.push_str(&format!("\n[\"{name}\"]\n"));
        for &c in COUNTERS {
            let v = counts.get(c).copied().unwrap_or(0);
            if v > 0 {
                out.push_str(&format!("{c} = {v}\n"));
            }
        }
    }
    out
}

/// Look up one counter's budget; missing crate or key means zero.
pub fn budget_of(table: &BudgetTable, crate_key: &str, counter: &str) -> usize {
    table
        .get(crate_key)
        .and_then(|c| c.get(counter))
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sections_and_values() {
        let t = parse(
            "# header\n[\"crates/core\"]\nunwrap = 9 # why\nexpect = 5\n\n[\"src\"]\nunsafe = 1\n",
        );
        assert_eq!(budget_of(&t, "crates/core", "unwrap"), 9);
        assert_eq!(budget_of(&t, "crates/core", "expect"), 5);
        assert_eq!(budget_of(&t, "crates/core", "relaxed"), 0);
        assert_eq!(budget_of(&t, "src", "unsafe"), 1);
        assert_eq!(budget_of(&t, "crates/missing", "unwrap"), 0);
    }

    #[test]
    fn render_roundtrips() {
        let mut t = BudgetTable::new();
        t.entry("crates/threads".into())
            .or_default()
            .insert("relaxed".into(), 9);
        t.entry("crates/zero".into())
            .or_default()
            .insert("unwrap".into(), 0);
        let text = render(&t);
        let back = parse(&text);
        assert_eq!(budget_of(&back, "crates/threads", "relaxed"), 9);
        assert!(!back.contains_key("crates/zero"), "all-zero crates omitted");
    }

    #[test]
    fn unquoted_headers_accepted() {
        let t = parse("[src]\nunwrap = 2\n");
        assert_eq!(budget_of(&t, "src", "unwrap"), 2);
    }
}
