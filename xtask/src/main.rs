use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/xtask, so the repo root is one level up from
    // this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-budgets");
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            match xtask::run_lint(&repo_root(), update) {
                Ok(outcome) => {
                    if let Some(path) = &json_path {
                        if let Err(e) = std::fs::write(path, &outcome.report) {
                            eprintln!("lint: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("lint: report written to {}", path.display());
                    }
                    if update {
                        println!(
                            "lint: budgets regenerated ({})",
                            xtask::manifest::BUDGETS_PATH
                        );
                    }
                    if outcome.findings.is_empty() {
                        println!("lint: clean");
                        ExitCode::SUCCESS
                    } else {
                        for f in &outcome.findings {
                            eprintln!("{f}");
                        }
                        eprintln!("lint: {} finding(s)", outcome.findings.len());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint: io error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-diff") => {
            let (Some(baseline), Some(candidate)) = (args.get(1), args.get(2)) else {
                eprintln!("usage: cargo xtask bench-diff <baseline> <candidate>");
                eprintln!("       (two BENCH_*.json files, or two directories of them)");
                return ExitCode::FAILURE;
            };
            match xtask::bench_diff::run_bench_diff(
                std::path::Path::new(baseline),
                std::path::Path::new(candidate),
            ) {
                Ok(report) => {
                    for line in &report.lines {
                        println!("{line}");
                    }
                    let regressions = report.regressions();
                    if regressions.is_empty() {
                        println!(
                            "bench-diff: clean ({} metric(s) checked)",
                            report.lines.len()
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("bench-diff: {} regression(s)", regressions.len());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("bench-diff: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--json <path>] [--update-budgets]");
            eprintln!("       cargo xtask bench-diff <baseline> <candidate>");
            ExitCode::FAILURE
        }
    }
}
