use std::path::PathBuf;
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // xtask lives at <repo>/xtask, so the repo root is one level up from
    // this crate's manifest.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let update = args.iter().any(|a| a == "--update-budgets");
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            match xtask::run_lint(&repo_root(), update) {
                Ok(outcome) => {
                    if let Some(path) = &json_path {
                        if let Err(e) = std::fs::write(path, &outcome.report) {
                            eprintln!("lint: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("lint: report written to {}", path.display());
                    }
                    if update {
                        println!(
                            "lint: budgets regenerated ({})",
                            xtask::manifest::BUDGETS_PATH
                        );
                    }
                    if outcome.findings.is_empty() {
                        println!("lint: clean");
                        ExitCode::SUCCESS
                    } else {
                        for f in &outcome.findings {
                            eprintln!("{f}");
                        }
                        eprintln!("lint: {} finding(s)", outcome.findings.len());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("lint: io error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("bench-diff") => {
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            // Positional operands, with the --json flag and its value
            // filtered out wherever they appear.
            let mut positional = args.iter().skip(1);
            let mut next_positional = || loop {
                match positional.next() {
                    Some(a) if a == "--json" => {
                        positional.next();
                    }
                    other => return other,
                }
            };
            let (Some(baseline), Some(candidate)) = (next_positional(), next_positional()) else {
                eprintln!("usage: cargo xtask bench-diff <baseline> <candidate> [--json <path>]");
                eprintln!("       (two BENCH_*.json files, or two directories of them)");
                return ExitCode::FAILURE;
            };
            match xtask::bench_diff::run_bench_diff(
                std::path::Path::new(baseline),
                std::path::Path::new(candidate),
            ) {
                Ok(report) => {
                    for line in &report.lines {
                        println!("{line}");
                    }
                    if let Some(path) = &json_path {
                        if let Err(e) = std::fs::write(path, report.to_json()) {
                            eprintln!("bench-diff: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("bench-diff: gate table written to {}", path.display());
                    }
                    let regressions = report.regressions();
                    if regressions.is_empty() {
                        println!(
                            "bench-diff: clean ({} metric(s) checked)",
                            report.lines.len()
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("bench-diff: {} regression(s)", regressions.len());
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("bench-diff: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("perf-diff") => {
            let json_path = args
                .iter()
                .position(|a| a == "--json")
                .and_then(|i| args.get(i + 1))
                .map(PathBuf::from);
            let mut positional = args.iter().skip(1);
            let mut next_positional = || loop {
                match positional.next() {
                    Some(a) if a == "--json" => {
                        positional.next();
                    }
                    other => return other,
                }
            };
            let (Some(baseline), Some(candidate)) = (next_positional(), next_positional()) else {
                eprintln!(
                    "usage: cargo xtask perf-diff <PERF_baseline.json> <PERF_candidate.json> \
                     [--json <path>]"
                );
                return ExitCode::FAILURE;
            };
            match xtask::perf_diff::run_perf_diff(
                std::path::Path::new(baseline),
                std::path::Path::new(candidate),
            ) {
                Ok(out) => {
                    print!("{}", out.text);
                    if let Some(path) = &json_path {
                        if let Err(e) = std::fs::write(path, &out.json) {
                            eprintln!("perf-diff: cannot write {}: {e}", path.display());
                            return ExitCode::FAILURE;
                        }
                        println!("perf-diff: report written to {}", path.display());
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("perf-diff: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("perf-history") => {
            let flag_val = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let ledger = flag_val("--ledger")
                .map(PathBuf::from)
                .unwrap_or_else(|| repo_root().join(xtask::perf_history::LEDGER_PATH));
            match args.get(1).map(String::as_str) {
                Some("record") => {
                    let Some(artifacts) = flag_val("--artifacts").map(PathBuf::from) else {
                        eprintln!(
                            "usage: cargo xtask perf-history record --artifacts <dir> \
                             [--ledger <path>] [--rev <rev>] [--gate <frac>]"
                        );
                        return ExitCode::FAILURE;
                    };
                    let rev = flag_val("--rev")
                        .unwrap_or_else(|| xtask::perf_history::head_rev(&repo_root()));
                    let gate = match flag_val("--gate") {
                        None => xtask::perf_history::DEFAULT_GATE,
                        Some(v) => match v.parse::<f64>() {
                            Ok(g) if g >= 0.0 => g,
                            _ => {
                                eprintln!(
                                    "perf-history: --gate wants a nonnegative fraction, got '{v}'"
                                );
                                return ExitCode::FAILURE;
                            }
                        },
                    };
                    match xtask::perf_history::run_record(&artifacts, &ledger, &rev, gate) {
                        Ok(out) => {
                            for line in &out.lines {
                                println!("{line}");
                            }
                            println!(
                                "perf-history: {} row(s) appended to {}",
                                out.rows.len(),
                                ledger.display()
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("perf-history: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Some("show") => match xtask::perf_history::run_show(&ledger) {
                    Ok(rendered) => {
                        print!("{rendered}");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("perf-history: {e}");
                        ExitCode::FAILURE
                    }
                },
                _ => {
                    eprintln!(
                        "usage: cargo xtask perf-history record --artifacts <dir> \
                         [--ledger <path>] [--rev <rev>] [--gate <frac>]"
                    );
                    eprintln!("       cargo xtask perf-history show [--ledger <path>]");
                    ExitCode::FAILURE
                }
            }
        }
        Some("doctor") => {
            let Some(artifact) = args.get(1) else {
                eprintln!(
                    "usage: cargo xtask doctor <FLIGHT|SOAK|BENCH|PERF|PROFILE artifact.json>"
                );
                return ExitCode::FAILURE;
            };
            match xtask::doctor::run_doctor(std::path::Path::new(artifact)) {
                Ok(rendered) => {
                    print!("{rendered}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("doctor: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("soak") => {
            let mut cfg = xtask::soak::SoakConfig::default();
            let mut out_dir = repo_root().join("target").join("soak");
            let flag_val = |name: &str| {
                args.iter()
                    .position(|a| a == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            if let Some(v) = flag_val("--out") {
                out_dir = PathBuf::from(v);
            }
            if let Some(v) = flag_val("--name") {
                cfg.name = v;
            }
            if let Some(v) = flag_val("--seeds") {
                match v
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<u64>, _>>()
                {
                    Ok(seeds) => cfg.seeds = seeds,
                    Err(_) => {
                        eprintln!("soak: --seeds wants a comma-separated u64 list, got '{v}'");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if let Some(v) = flag_val("--plans") {
                cfg.plans = v.split(',').map(str::to_string).collect();
            }
            if args.iter().any(|a| a == "--no-shrink") {
                cfg.shrink = false;
            }
            match xtask::soak::run_soak(&cfg) {
                Ok(report) => {
                    for c in &report.cases {
                        match &c.failure {
                            None => println!(
                                "soak: seed {} plan {}: pass ({} recoveries, {} corrupt gen)",
                                c.seed, c.plan, c.recoveries, c.corrupt_generations
                            ),
                            Some(class) => {
                                eprintln!("soak: seed {} plan {}: FAIL [{class}]", c.seed, c.plan);
                                if let Some(s) = &c.shrunk {
                                    eprintln!(
                                        "soak:   plan shrunk {} -> {} rule(s):\n{}",
                                        s.rules_before, s.rules_after, s.plan_text
                                    );
                                }
                            }
                        }
                    }
                    println!(
                        "soak: shrinker self-test [{}]: {} -> {} rule(s)",
                        report.selftest.class,
                        report.selftest.rules_before,
                        report.selftest.rules_after
                    );
                    let path = out_dir.join(format!("SOAK_{}.json", cfg.name));
                    if let Err(e) = std::fs::create_dir_all(&out_dir)
                        .and_then(|()| std::fs::write(&path, &report.json))
                    {
                        eprintln!("soak: cannot write {}: {e}", path.display());
                        return ExitCode::FAILURE;
                    }
                    println!("soak: report written to {}", path.display());
                    for c in &report.cases {
                        let Some(fj) = &c.flight_json else { continue };
                        let fpath = out_dir
                            .join(format!("FLIGHT_{}_s{}_{}.json", cfg.name, c.seed, c.plan));
                        if let Err(e) = std::fs::write(&fpath, fj) {
                            eprintln!("soak: cannot write {}: {e}", fpath.display());
                            return ExitCode::FAILURE;
                        }
                        println!("soak: flight recorder written to {}", fpath.display());
                    }
                    if report.failures == 0 && report.selftest.rules_after <= 2 {
                        println!("soak: clean ({} cell(s))", report.cases.len());
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("soak: {} failing cell(s)", report.failures);
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("soak: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--json <path>] [--update-budgets]");
            eprintln!("       cargo xtask bench-diff <baseline> <candidate> [--json <path>]");
            eprintln!("       cargo xtask perf-diff <PERF_a.json> <PERF_b.json> [--json <path>]");
            eprintln!(
                "       cargo xtask perf-history record --artifacts <dir> [--ledger <path>] \
                 [--rev <rev>] [--gate <frac>]"
            );
            eprintln!("       cargo xtask perf-history show [--ledger <path>]");
            eprintln!("       cargo xtask doctor <FLIGHT|SOAK|BENCH|PERF|PROFILE artifact.json>");
            eprintln!(
                "       cargo xtask soak [--out <dir>] [--name <name>] \
                 [--seeds a,b,c] [--plans crash,corrupt,ladder] [--no-shrink]"
            );
            ExitCode::FAILURE
        }
    }
}
