//! Conservative call-graph reachability from the simulated entry points.
//!
//! The graph is name-level: a call site `foo(…)` edges to every indexed
//! function named `foo`, `Type::foo(…)` narrows by impl type when the
//! type is known (use-aliases resolved), and `.foo(…)` method calls edge
//! to every method named `foo`. This over-approximates — distinct types
//! with same-named methods merge — which is the right direction for a
//! determinism lint: a function is only exempt from the simulated-path
//! rules when *no* plausible chain reaches it. Test items (`#[cfg(test)]`
//! / `#[test]`) are excluded from both the node set and the entry set.
//!
//! Each reachable function carries a witness chain (entry → … → fn) used
//! in diagnostics, so a surprising verdict can be audited by reading the
//! chain, not re-deriving the graph.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::index::FileIndex;
use crate::lexer::TokKind;
use crate::manifest::{EntryPoint, ENTRY_POINTS};

/// Reachability verdict for every function in the analyzed file set.
pub struct Reachability {
    /// `flags[file][fn]` — true when reachable from an entry point.
    flags: Vec<Vec<bool>>,
    /// Witness chains, parallel to `flags` (empty string when unreachable).
    chains: Vec<Vec<String>>,
    /// Total non-test functions in the graph.
    pub functions: usize,
    /// How many of them are reachable.
    pub reachable_count: usize,
}

impl Reachability {
    /// Is `fns[fn_i]` of `files[file_i]` reachable from an entry point?
    pub fn is_reachable(&self, file_i: usize, fn_i: usize) -> bool {
        self.flags[file_i][fn_i]
    }

    /// Witness chain (`entry -> … -> fn`) for a reachable function.
    pub fn chain(&self, file_i: usize, fn_i: usize) -> &str {
        &self.chains[file_i][fn_i]
    }
}

/// Rust keywords and control forms that look like `ident (` call sites
/// but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "else", "unsafe", "box",
    "ref", "mut", "dyn", "impl", "fn", "use", "let", "struct", "enum", "union", "trait", "where",
    "pub", "crate", "super", "break", "continue", "yield", "await", "const", "static", "type",
];

/// Compute reachability over the indexed files from [`ENTRY_POINTS`].
pub fn analyze(files: &[FileIndex]) -> Reachability {
    // global function table
    let mut ids: Vec<(usize, usize)> = Vec::new(); // gid -> (file, fn)
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ki, f) in file.fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let gid = ids.len();
            ids.push((fi, ki));
            by_name.entry(&f.name).or_default().push(gid);
            if let Some(q) = &f.qual {
                by_qual.entry((q, &f.name)).or_default().push(gid);
            }
        }
    }

    // edges
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); ids.len()];
    for (gid, &(fi, ki)) in ids.iter().enumerate() {
        let file = &files[fi];
        let f = &file.fns[ki];
        let (lo, hi) = f.body;
        let toks = &file.toks;
        let mut j = lo;
        while j < hi {
            if toks[j].kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|t| t.is_punct("(")) {
                j += 1;
                continue;
            }
            let name = toks[j].text.as_str();
            let prev = file.prev_code(j).map(|p| &toks[p]);
            let callees: Option<&Vec<usize>> = match prev {
                Some(p) if p.is_punct(".") => by_name.get(name), // method call
                Some(p) if p.is_punct("::") => {
                    // qualified: resolve the segment before `::` via uses
                    let qual = file
                        .prev_code(file.prev_code(j).unwrap_or(j))
                        .map(|q| toks[q].text.as_str())
                        .map(|q| file.uses.get(q).map_or(q, String::as_str));
                    match qual {
                        Some(q) => by_qual.get(&(q, name)).or_else(|| by_name.get(name)),
                        None => by_name.get(name),
                    }
                }
                Some(p) if p.is_ident("fn") => None, // a definition, not a call
                _ if NON_CALL_KEYWORDS.contains(&name) => None,
                _ => by_name.get(name), // bare call
            };
            if let Some(cs) = callees {
                edges[gid].extend(cs.iter().copied());
            }
            j += 1;
        }
    }

    // entry set
    let matches_entry = |qual: &Option<String>, name: &str, e: &EntryPoint| {
        name.starts_with(e.prefix)
            && match (e.qual, qual) {
                (Some(eq), Some(q)) => eq == q,
                (Some(_), None) => false,
                (None, _) => true,
            }
    };
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut pred: Vec<Option<usize>> = vec![None; ids.len()];
    let mut seen = vec![false; ids.len()];
    for (gid, &(fi, ki)) in ids.iter().enumerate() {
        let f = &files[fi].fns[ki];
        if ENTRY_POINTS
            .iter()
            .any(|e| matches_entry(&f.qual, &f.name, e))
        {
            seen[gid] = true;
            queue.push_back(gid);
        }
    }

    // BFS
    while let Some(g) = queue.pop_front() {
        for &n in &edges[g] {
            if !seen[n] {
                seen[n] = true;
                pred[n] = Some(g);
                queue.push_back(n);
            }
        }
    }

    // project back to per-file flags + witness chains
    let mut flags: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.fns.len()]).collect();
    let mut chains: Vec<Vec<String>> = files
        .iter()
        .map(|f| vec![String::new(); f.fns.len()])
        .collect();
    let qualified = |gid: usize| {
        let (fi, ki) = ids[gid];
        files[fi].fns[ki].qualified()
    };
    let reachable_count = seen.iter().filter(|&&s| s).count();
    for (gid, &(fi, ki)) in ids.iter().enumerate() {
        if !seen[gid] {
            continue;
        }
        flags[fi][ki] = true;
        let mut path = vec![qualified(gid)];
        let mut cur = gid;
        while let Some(p) = pred[cur] {
            path.push(qualified(p));
            cur = p;
        }
        path.reverse();
        chains[fi][ki] = path.join(" -> ");
    }

    Reachability {
        flags,
        chains,
        functions: ids.len(),
        reachable_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files(srcs: &[(&str, &str)]) -> Vec<FileIndex> {
        srcs.iter().map(|(p, s)| FileIndex::build(p, s)).collect()
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let fs = files(&[(
            "crates/core/src/x.rs",
            "impl DistSolver {
                 pub fn train(&self) { step(); }
             }
             fn step() { leaf(); }
             fn leaf() {}
             fn orphan() {}",
        )]);
        let r = analyze(&fs);
        let idx = |name: &str| fs[0].fns.iter().position(|f| f.name == name).unwrap();
        assert!(r.is_reachable(0, idx("train")));
        assert!(r.is_reachable(0, idx("step")));
        assert!(r.is_reachable(0, idx("leaf")));
        assert!(!r.is_reachable(0, idx("orphan")));
        assert_eq!(r.chain(0, idx("leaf")), "DistSolver::train -> step -> leaf");
    }

    #[test]
    fn entry_prefix_matches_variants() {
        let fs = files(&[(
            "crates/mpisim/src/u.rs",
            "impl Universe {
                 pub fn run_try_observed(&self) { helper(); }
             }
             fn helper() {}
             impl Other { fn run(&self) { other_leaf(); } }
             fn other_leaf() {}",
        )]);
        let r = analyze(&fs);
        let idx = |name: &str| fs[0].fns.iter().position(|f| f.name == name).unwrap();
        assert!(r.is_reachable(0, idx("helper")));
        // Other::run is not Universe::run — its callee stays unreachable
        assert!(!r.is_reachable(0, idx("other_leaf")));
    }

    #[test]
    fn method_calls_edge_across_files() {
        let fs = files(&[
            (
                "crates/core/src/a.rs",
                "pub fn train_rank() { let s = State::new(); s.sweep(); }",
            ),
            (
                "crates/core/src/b.rs",
                "impl State { pub fn new() -> Self { State } pub fn sweep(&self) { inner(); } }
                 fn inner() {}",
            ),
        ]);
        let r = analyze(&fs);
        let idx = |fi: usize, name: &str| fs[fi].fns.iter().position(|f| f.name == name).unwrap();
        assert!(r.is_reachable(1, idx(1, "sweep")));
        assert!(r.is_reachable(1, idx(1, "inner")));
    }

    #[test]
    fn test_functions_are_not_entries_or_nodes() {
        let fs = files(&[(
            "crates/core/src/a.rs",
            "#[cfg(test)]
             mod tests {
                 fn train_rank() { tainted(); }
             }
             fn tainted() {}",
        )]);
        let r = analyze(&fs);
        let idx = fs[0].fns.iter().position(|f| f.name == "tainted").unwrap();
        assert!(!r.is_reachable(0, idx));
    }

    #[test]
    fn use_alias_resolves_qualified_calls() {
        let fs = files(&[
            (
                "crates/core/src/a.rs",
                "use crate::u::Universe as U;
                 pub fn train_rank() { U::run_inner(); }",
            ),
            (
                "crates/core/src/u.rs",
                "impl Universe { pub fn run_inner() { leaf(); } }
                 fn leaf() {}",
            ),
        ]);
        let r = analyze(&fs);
        let idx = fs[1].fns.iter().position(|f| f.name == "leaf").unwrap();
        assert!(r.is_reachable(1, idx));
    }

    #[test]
    fn macro_invocations_are_not_calls() {
        let fs = files(&[(
            "crates/core/src/a.rs",
            "pub fn train_rank() { println!(\"x\"); }
             fn println() { tainted(); }
             fn tainted() {}",
        )]);
        let r = analyze(&fs);
        let idx = fs[0].fns.iter().position(|f| f.name == "tainted").unwrap();
        assert!(
            !r.is_reachable(0, idx),
            "println! must not edge to fn println"
        );
    }
}
