//! A hand-rolled Rust lexer for the lint engine.
//!
//! Produces a flat token stream with 1-based line numbers. The point of
//! lexing (rather than grepping lines) is that rules stop firing inside
//! places that are not code: string literals, raw strings, char literals,
//! and comments all become single opaque tokens, and lifetimes (`'a`) are
//! distinguished from char literals (`'a'`) so quote tracking never
//! desynchronizes. Comments are *kept* in the stream — the justification
//! escape hatches (`// allow-wall-clock:`, `// relaxed:`, `// lint:
//! ordered`, `// lint: uncharged`) live in comments, so rules need them —
//! but every structural pass skips them via [`Tok::is_code`].
//!
//! The lexer is intentionally forgiving: it never errors. Unterminated
//! literals run to end of file, and unknown bytes become one-character
//! punct tokens. A lint engine must degrade gracefully on code that
//! `rustc` itself would reject mid-edit.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, stored without `r#`).
    Ident,
    /// Lifetime such as `'a` (stored with the leading quote).
    Lifetime,
    /// Numeric literal (any base, with suffix).
    Num,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Punctuation. One character each, except `::` which is fused.
    Punct,
    /// Line or block comment, text included (`//…` / `/*…*/`).
    Comment,
}

/// One token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim source text (for `Str`, includes the quotes and prefix).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// True for tokens that participate in program structure (everything
    /// except comments).
    pub fn is_code(&self) -> bool {
        self.kind != TokKind::Comment
    }

    /// True when this is an `Ident` with exactly this text.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this is a `Punct` with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// Lex `src` into tokens. Never fails; see the module docs for the
/// degradation rules.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.pos < self.b.len() {
            let c = self.b[self.pos];
            match c {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' if self.raw_or_byte_string() => {}
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident(),
                b':' if self.peek(1) == Some(b':') => {
                    self.push(TokKind::Punct, self.pos, self.pos + 2, self.line);
                    self.pos += 2;
                }
                _ => {
                    self.push(TokKind::Punct, self.pos, self.pos + 1, self.line);
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: usize) {
        let text = String::from_utf8_lossy(&self.b[start..end.min(self.b.len())]).into_owned();
        self.out.push(Tok { kind, text, line });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::Comment, start, self.pos, self.line);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            match self.b[self.pos] {
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 2;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Comment, start, self.pos, line);
    }

    /// Cooked string body starting at the opening quote; `start` marks where
    /// the token began (possibly at a `b`/`c` prefix).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, start, self.pos, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`, and raw
    /// identifiers `r#ident`. Returns false when the current position is a
    /// plain identifier starting with r/b/c.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.pos;
        let mut i = self.pos;
        // consume the prefix letters (at most two: b, br, cr, r)
        let mut saw_r = false;
        for _ in 0..2 {
            match self.b.get(i) {
                Some(b'r') => {
                    saw_r = true;
                    i += 1;
                    break; // r is always last in a prefix
                }
                Some(b'b' | b'c') if !saw_r => i += 1,
                _ => break,
            }
        }
        let hashes_start = i;
        while self.b.get(i) == Some(&b'#') {
            i += 1;
        }
        let nhash = i - hashes_start;
        match self.b.get(i) {
            Some(b'"') if saw_r => {
                // raw string: runs to `"` followed by nhash `#`s
                let line = self.line;
                self.pos = i + 1;
                while self.pos < self.b.len() {
                    if self.b[self.pos] == b'\n' {
                        self.line += 1;
                        self.pos += 1;
                        continue;
                    }
                    if self.b[self.pos] == b'"'
                        && self.b[self.pos + 1..]
                            .iter()
                            .take(nhash)
                            .filter(|&&h| h == b'#')
                            .count()
                            == nhash
                    {
                        self.pos += 1 + nhash;
                        self.push(TokKind::Str, start, self.pos, line);
                        return true;
                    }
                    self.pos += 1;
                }
                self.push(TokKind::Str, start, self.pos, line);
                true
            }
            Some(b'"') if nhash == 0 => {
                // b"…" / c"…" cooked string with prefix
                self.pos = i;
                self.string(start);
                true
            }
            Some(b'\'') if nhash == 0 && i == self.pos + 1 && self.b[self.pos] == b'b' => {
                // byte char b'x'
                self.pos = i;
                self.char_literal(start);
                true
            }
            _ if saw_r && nhash > 0 => {
                // raw identifier r#ident: lex the ident part
                self.pos = hashes_start + nhash;
                let is = self.pos;
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                {
                    self.pos += 1;
                }
                self.push(TokKind::Ident, is, self.pos, self.line);
                true
            }
            _ => false, // plain identifier like `result` or `bytes`
        }
    }

    /// At a `'`: char literal or lifetime. A backslash or a
    /// single-char-then-quote form is a char literal; otherwise lifetime.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some(b'\\') => self.char_literal(self.pos),
            Some(c) if c == b'_' || c.is_ascii_alphabetic() => {
                // scan the ident run after the quote
                let mut j = self.pos + 1;
                while self
                    .b
                    .get(j)
                    .is_some_and(|&c| c == b'_' || c.is_ascii_alphanumeric())
                {
                    j += 1;
                }
                if self.b.get(j) == Some(&b'\'') {
                    self.char_literal(self.pos); // 'a' (multi-char is invalid Rust anyway)
                } else {
                    let start = self.pos;
                    self.pos = j;
                    self.push(TokKind::Lifetime, start, j, self.line);
                }
            }
            _ => self.char_literal(self.pos), // '∂', ' ', or stray quote
        }
    }

    fn char_literal(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote (or the b prefix consumed by caller)
        if self.b.get(self.pos) == Some(&b'\'') {
            self.pos += 1; // b' then ' — empty, tolerate
        }
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\\' => self.pos += 2,
                b'\n' => break, // stray quote: don't eat the rest of the file
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Char, start, self.pos, line);
    }

    fn number(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        // fraction: a `.` only when followed by a digit (so `0..n` and
        // `1.max(2)` split correctly)
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
        }
        // exponent sign: `1e-3` — the e was consumed above, take `+`/`-`
        if matches!(self.b.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(0), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
            while self.peek(0).is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        self.push(TokKind::Num, start, self.pos, self.line);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
        {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, self.pos, self.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = kinds("fn f(x: u8) -> u8 { x }");
        assert_eq!(t[0], (TokKind::Ident, "fn".into()));
        assert_eq!(t[1], (TokKind::Ident, "f".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == "{"));
    }

    #[test]
    fn double_colon_is_fused() {
        let t = kinds("Instant::now()");
        assert_eq!(t[0], (TokKind::Ident, "Instant".into()));
        assert_eq!(t[1], (TokKind::Punct, "::".into()));
        assert_eq!(t[2], (TokKind::Ident, "now".into()));
    }

    #[test]
    fn strings_are_opaque() {
        let t = kinds(r#"let s = "Instant::now() .unwrap()";"#);
        assert!(t.iter().all(|(k, s)| *k == TokKind::Str || s != "now"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r###"let s = r#"quote " inside"#; x"###);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("quote")));
        assert_eq!(t.last().unwrap(), &(TokKind::Ident, "x".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let t = kinds(r##"b"bytes" c"cstr" br#"raw"# after"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        assert_eq!(t.last().unwrap(), &(TokKind::Ident, "after".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn static_lifetime() {
        let t = kinds("&'static str");
        assert_eq!(t[1], (TokKind::Lifetime, "'static".into()));
    }

    #[test]
    fn comments_kept_with_lines() {
        let toks = lex("a // one\n/* two\nlines */ b");
        let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
        assert_eq!(toks.last().unwrap().line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("0..10 1.5e-3 0xff_u32 1.max(2)");
        let nums: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5e-3", "0xff_u32", "1", "2"]);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "max"));
    }

    #[test]
    fn raw_identifier() {
        let t = kinds("let r#fn = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "fn"));
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let t = kinds("let s = \"oops\nmore text");
        assert!(t.iter().any(|(k, _)| *k == TokKind::Str));
    }

    #[test]
    fn line_numbers_accurate() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
