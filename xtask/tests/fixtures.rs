//! The lint fixture suite: known-bad snippets must be flagged at the
//! right rule/file/line, known-good snippets must produce zero findings.
//!
//! Fixtures live in `lint_fixtures/` (a subdirectory, so cargo does not
//! compile them as test targets) and are fed to the engine with fake
//! repo-relative paths chosen per scenario — the path decides which rules
//! look at the file.

use xtask::budgets::BudgetTable;
use xtask::{analyze_files, Finding};

fn run(files: &[(&str, &str)], table: &BudgetTable) -> Vec<Finding> {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_files(&files, table, true).findings
}

/// 1-based line of the `nth` (0-based) occurrence of `needle` in `src`.
fn line_of(src: &str, needle: &str, nth: usize) -> usize {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(needle))
        .nth(nth)
        .map(|(i, _)| i + 1)
        .unwrap_or_else(|| panic!("needle {needle:?} (occurrence {nth}) not in fixture"))
}

#[test]
fn bad_wall_clock_in_simulated_tree() {
    let src = include_str!("lint_fixtures/bad_wall_clock.rs");
    let f = run(
        &[("crates/mpisim/src/fixture.rs", src)],
        &BudgetTable::new(),
    );
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f.iter().all(|x| x.rule == "wall-clock"));
    assert!(f.iter().all(|x| x.file == "crates/mpisim/src/fixture.rs"));
    assert_eq!(
        lines,
        vec![
            line_of(src, "Instant::now", 0),
            line_of(src, "thread::sleep", 0),
            line_of(src, "SystemTime::now", 0),
        ]
    );
}

#[test]
fn bad_wall_clock_reachable_with_chain_and_orphan_silent() {
    let src = include_str!("lint_fixtures/bad_wall_clock_reachable.rs");
    // crates/threads is NOT a simulated tree: only reachability applies
    let f = run(
        &[("crates/threads/src/fixture.rs", src)],
        &BudgetTable::new(),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "wall-clock");
    assert_eq!(f[0].line, line_of(src, "Instant::now", 0), "helper's read");
    assert!(
        f[0].message.contains("train_rank -> helper"),
        "witness chain missing: {}",
        f[0].message
    );
}

#[test]
fn bad_nondet_iter_three_shapes() {
    let src = include_str!("lint_fixtures/bad_nondet_iter.rs");
    let f = run(&[("crates/core/src/fixture.rs", src)], &BudgetTable::new());
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f.iter().all(|x| x.rule == "nondet-iter"));
    let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
    assert_eq!(
        lines,
        vec![
            line_of(src, "self.slots.iter()", 0),
            line_of(src, "map.values()", 0),
            line_of(src, "for v in set", 0),
        ]
    );
}

#[test]
fn bad_charge_flags_uncharged_loop_only() {
    let src = include_str!("lint_fixtures/bad_charge.rs");
    let f = run(
        &[("crates/core/src/dist/fixture.rs", src)],
        &BudgetTable::new(),
    );
    // exactly one finding: `norm` is uncharged, while `charged_norm`
    // (advance_compute*) and `recovery_norm` (charge_recovery*) both
    // discharge the rule
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "charge-coverage");
    assert_eq!(f[0].line, line_of(src, "for g in &self.grad", 0));
    assert!(f[0].message.contains("Rank::norm"));
    assert!(f[0].message.contains("charge_recovery"));
}

#[test]
fn bad_relaxed_flags_unjustified_site_and_budget() {
    let src = include_str!("lint_fixtures/bad_relaxed.rs");
    let f = run(
        &[("crates/threads/src/fixture.rs", src)],
        &BudgetTable::new(),
    );
    let relaxed: Vec<&Finding> = f.iter().filter(|x| x.rule == "relaxed-ordering").collect();
    assert_eq!(relaxed.len(), 1, "{f:?}");
    assert_eq!(relaxed[0].line, line_of(src, "Ordering::Relaxed);", 0));
    let budget: Vec<&Finding> = f.iter().filter(|x| x.rule == "budget").collect();
    assert_eq!(budget.len(), 1, "{f:?}");
    assert_eq!(budget[0].file, "crates/threads");
    assert_eq!(budget[0].line, 0);
    assert!(budget[0].message.contains("2 `relaxed`"));
    assert_eq!(f.len(), 2, "{f:?}");
}

#[test]
fn bad_scratch_outside_sparse() {
    let src = include_str!("lint_fixtures/bad_scratch.rs");
    let f = run(&[("crates/core/src/fixture.rs", src)], &BudgetTable::new());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "scratch-hygiene");
    assert_eq!(f[0].line, line_of(src, "ops::dot_scatter", 0));
    // the same file inside the scratch home is clean
    let g = run(
        &[("crates/sparse/src/fixture.rs", src)],
        &BudgetTable::new(),
    );
    assert!(g.is_empty(), "{g:?}");
}

#[test]
fn bad_budget_ratchets_against_table() {
    let src = include_str!("lint_fixtures/bad_budget.rs");
    let path = "crates/analyze/src/fixture.rs";
    let f = run(&[(path, src)], &BudgetTable::new());
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "budget");
    assert_eq!(f[0].file, "crates/analyze");
    assert!(f[0].message.contains("1 `unwrap`"));
    // granting the budget clears it
    let table = xtask::budgets::parse("[\"crates/analyze\"]\nunwrap = 1\n");
    assert!(run(&[(path, src)], &table).is_empty());
    // an over-generous budget is reported as burn-down debt
    let loose = xtask::budgets::parse("[\"crates/analyze\"]\nunwrap = 3\n");
    let d = run(&[(path, src)], &loose);
    assert_eq!(d.len(), 1, "{d:?}");
    assert!(d[0].message.contains("lock it in"));
}

#[test]
fn good_strings_and_comments_are_silent() {
    let src = include_str!("lint_fixtures/good_strings_comments.rs");
    let f = run(
        &[("crates/mpisim/src/fixture.rs", src)],
        &BudgetTable::new(),
    );
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn good_cfg_test_is_exempt_everywhere() {
    let src = include_str!("lint_fixtures/good_cfg_test.rs");
    // dist path: D1, D2, D3 and the ratchets all look here — and must
    // all skip the #[cfg(test)] module
    let f = run(
        &[("crates/core/src/dist/fixture.rs", src)],
        &BudgetTable::new(),
    );
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn good_justified_hatches_are_honored() {
    let src = include_str!("lint_fixtures/good_justified.rs");
    let f = run(
        &[("crates/core/src/dist/fixture.rs", src)],
        &BudgetTable::new(),
    );
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn engine_reproduces_prior_rule_verdicts_on_fixture_mix() {
    // A cross-file scenario: the entry lives in one file, the sin in
    // another, exercising the same path the real tree takes.
    let entry = "pub fn train_rank() { crate::leaf::work(); }\n";
    let leaf = "pub fn work() { std::thread::sleep(std::time::Duration::from_micros(1)); }\n";
    let f = run(
        &[
            ("crates/threads/src/entry.rs", entry),
            ("crates/threads/src/leaf.rs", leaf),
        ],
        &BudgetTable::new(),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "wall-clock");
    assert_eq!(f[0].file, "crates/threads/src/leaf.rs");
}
