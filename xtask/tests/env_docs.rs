//! Mechanical audit of the `SHRINKSVM_*` runtime tunables: every env var
//! the code reads must have a row in README's "Runtime tunables" table,
//! and every documented row must still have a reader in the code. The
//! scan is textual and dependency-free, so a new knob (or a renamed one)
//! fails this test until the docs move with it.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the repo")
        .to_path_buf()
}

/// Every `SHRINKSVM_[A-Z0-9_]+` token in the text, filtered of the
/// fixture names the env-parsing unit tests mint for themselves.
fn vars_in(text: &str, out: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(at) = text[i..].find("SHRINKSVM_") {
        let start = i + at;
        let mut end = start + "SHRINKSVM_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &text[start..end];
        if name.len() > "SHRINKSVM_".len() && !name.contains("ENV_TEST") {
            out.insert(name.to_string());
        }
        i = end;
    }
}

fn scan_rs_files(dir: &Path, out: &mut BTreeSet<String>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n == "target" || n.starts_with('.'));
            if !skip {
                scan_rs_files(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            vars_in(&text, out);
        }
    }
}

#[test]
fn every_env_var_is_documented_and_every_doc_row_is_live() {
    let root = repo_root();

    let mut in_code = BTreeSet::new();
    for dir in ["crates", "examples", "xtask/src"] {
        scan_rs_files(&root.join(dir), &mut in_code);
    }
    assert!(
        !in_code.is_empty(),
        "the scan found no tunables at all — is the repo layout intact?"
    );

    // Documented vars: the backticked first column of the tunables table.
    let readme = std::fs::read_to_string(root.join("README.md")).expect("read README");
    let mut documented = BTreeSet::new();
    for line in readme.lines() {
        if let Some(rest) = line.strip_prefix("| `SHRINKSVM_") {
            let name = rest.split('`').next().expect("split yields a head");
            documented.insert(format!("SHRINKSVM_{name}"));
        }
    }

    let undocumented: Vec<&String> = in_code.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "env vars read by code but missing from README's runtime-tunables \
         table: {undocumented:?}"
    );
    let stale: Vec<&String> = documented.difference(&in_code).collect();
    assert!(
        stale.is_empty(),
        "README documents tunables no code reads any more: {stale:?}"
    );
}

#[test]
fn the_scanner_extracts_names_and_skips_fixtures() {
    let mut out = BTreeSet::new();
    vars_in(
        "std::env::var(\"SHRINKSVM_FOO_2\") and SHRINKSVM_ENV_TEST_OK plus \
         a bare SHRINKSVM_ prefix and lowercase shrinksvm_bar",
        &mut out,
    );
    assert_eq!(
        out.into_iter().collect::<Vec<_>>(),
        ["SHRINKSVM_FOO_2"],
        "fixture names and the bare prefix must not count"
    );
}
