//! End-to-end checks for the chaos-soak harness: a small grid must pass
//! with a byte-deterministic report, and the planted shrinker self-test
//! must minimize to the acceptance bar.

use xtask::soak::{run_soak, SoakConfig, PLAN_TEMPLATES};

fn small_grid() -> SoakConfig {
    SoakConfig {
        name: "e2e".to_string(),
        seeds: vec![1],
        plans: vec!["crash".to_string()],
        shrink: true,
    }
}

#[test]
fn small_grid_passes_and_the_report_is_deterministic() {
    let a = run_soak(&small_grid()).expect("soak runs");
    assert_eq!(a.failures, 0, "{}", a.json);
    assert_eq!(a.cases.len(), 1);
    let c = &a.cases[0];
    assert!(c.failure.is_none(), "{c:?}");
    assert_eq!(c.recoveries, 1, "one crash, one restart");
    assert!(c.recovery_cost > 0.0);
    assert!(c.shrunk.is_none(), "passing cells are not shrunk");
    // the whole harness — training included — is byte-deterministic
    let b = run_soak(&small_grid()).expect("soak runs again");
    assert_eq!(a.json, b.json, "identical configs give identical bytes");
    assert!(a.json.contains("\"schema\":\"shrinksvm-soak/v1\""));
    assert!(a.json.contains("\"status\":\"pass\""));
}

#[test]
fn planted_shrinker_selftest_minimizes_to_at_most_two_rules() {
    let report = run_soak(&SoakConfig {
        shrink: false, // the self-test shrinks regardless
        ..small_grid()
    })
    .expect("soak runs");
    let st = &report.selftest;
    assert_eq!(st.class, "train-error:RankLost", "{st:?}");
    assert_eq!(st.rules_before, 4, "two delays + ckpt corruption + crash");
    assert!(
        st.rules_after <= 2,
        "the shrinker must strip the chaff: {st:?}"
    );
    assert!(
        st.plan_text.contains("rank crash"),
        "the crash rule is the failure's cause: {}",
        st.plan_text
    );
    assert!(
        !st.plan_text.contains("link delay"),
        "delay chaff must not survive: {}",
        st.plan_text
    );
}

#[test]
fn the_full_template_set_survives_one_seed() {
    let report = run_soak(&SoakConfig {
        name: "templates".to_string(),
        seeds: vec![2],
        plans: PLAN_TEMPLATES.iter().map(|s| (*s).to_string()).collect(),
        shrink: true,
    })
    .expect("soak runs");
    assert_eq!(report.failures, 0, "{}", report.json);
    assert_eq!(report.cases.len(), 3);
    let ladder = report
        .cases
        .iter()
        .find(|c| c.plan == "ladder")
        .expect("ladder cell present");
    assert_eq!(ladder.recoveries, 3, "{ladder:?}");
    assert!(ladder.corrupt_generations >= 1, "{ladder:?}");
    assert!(!ladder.degraded, "{ladder:?}");
}

#[test]
fn unknown_plan_is_rejected_before_any_training() {
    let err = run_soak(&SoakConfig {
        plans: vec!["gremlins".to_string()],
        ..small_grid()
    })
    .unwrap_err();
    assert!(err.contains("gremlins"), "{err}");
}
