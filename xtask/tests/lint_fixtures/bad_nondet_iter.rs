// Known-bad: hash-container iteration in a simulated tree with no
// ordering step — once via a hash-typed struct field, once via a
// hash-typed parameter, once via a bare for-header.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    slots: HashMap<u32, f64>,
}

impl Registry {
    pub fn total(&self) -> f64 {
        let mut acc = 0.0;
        for (_k, v) in self.slots.iter() {
            acc += v;
        }
        acc
    }
}

pub fn count_values(map: HashMap<u32, u32>) -> u32 {
    let mut n = 0;
    for v in map.values() {
        n += v;
    }
    n
}

pub fn drain_set(set: &mut HashSet<u64>) -> u64 {
    let mut acc = 0;
    for v in set {
        acc += *v;
    }
    acc
}
