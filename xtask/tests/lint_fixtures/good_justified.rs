// Known-good: every escape hatch and the sort-idiom discharge, in one
// file placed in the dist tree (so D1, D2 and D3 all look at it).

use std::collections::HashMap;

pub fn stamp() -> std::time::Instant {
    // allow-wall-clock: host-side profiling fence, not simulated time
    std::time::Instant::now()
}

pub fn sorted_keys(m: &HashMap<u32, f64>) -> Vec<u32> {
    let mut keys: Vec<u32> = m.keys().copied().collect();
    keys.sort_unstable();
    keys
}

pub fn hatch_sum(m: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    // commutative sum, order cannot reach any output. lint: ordered
    for (_k, v) in m.iter() {
        acc += v;
    }
    acc
}

pub struct Rank {
    grad: Vec<f64>,
}

impl Rank {
    pub fn snapshot(&self) -> Vec<f64> {
        // host-side debug snapshot of gradient state. lint: uncharged
        for g in &self.grad {
            let _ = g;
        }
        self.grad.clone()
    }
}
