// Known-bad (against a zero budget): one unwrap outside tests. The same
// file passes when the budget table grants the crate one unwrap.

pub fn parse(x: Option<u32>) -> u32 {
    x.unwrap()
}
