// Known-good: every rule's trigger, all inside #[cfg(test)] — test code
// is exempt from the determinism pack and the ratchets.

pub fn shipped() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn all_sins_allowed_here() {
        let t = std::time::Instant::now();
        let mut m = HashMap::new();
        m.insert(1u32, t.elapsed().as_nanos());
        let mut grad = vec![0.0f64];
        for v in m.values() {
            grad[0] += *v as f64;
        }
        let _ = grad.first().unwrap();
    }
}
