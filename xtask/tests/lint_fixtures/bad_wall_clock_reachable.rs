// Known-bad half: `helper` is reachable from the `train_rank` entry, so
// its host-clock read is flagged (with a witness chain) even though this
// file sits outside the simulated trees. `orphan` is NOT reachable and
// must stay silent — the reachability negative case.

pub fn train_rank() {
    helper();
}

fn helper() {
    let _ = std::time::Instant::now();
}

fn orphan() -> std::time::Instant {
    std::time::Instant::now()
}
