// Known-bad: a loop over gradient state in the dist tree whose function
// never charges simulated compute. The second function is the control:
// same loop, but the function calls an advance_compute* charge. The
// third routes through charge_recovery* — the driver's recovery-loop
// accounting — which discharges D3 the same way.

pub struct Rank {
    grad: Vec<f64>,
}

impl Rank {
    pub fn norm(&self) -> f64 {
        let mut s = 0.0;
        for g in &self.grad {
            s += g * g;
        }
        s.sqrt()
    }

    pub fn charged_norm(&self, comm: &mut Comm) -> f64 {
        let mut s = 0.0;
        for g in &self.grad {
            s += g * g;
        }
        comm.advance_compute(self.grad.len() as u64);
        s.sqrt()
    }

    pub fn recovery_norm(&self, summary: &mut RecoverySummary) -> f64 {
        let mut s = 0.0;
        for g in &self.grad {
            s += g * g;
        }
        charge_recovery(summary, s, 0.0);
        s.sqrt()
    }
}
