//! Known-good: banned names inside strings and comments are invisible to
//! the token-level rules.

// Prose mentions of Instant::now() and thread::sleep, plus
// HashMap.iter() and dot_scatter( — none of these are code.

pub fn describe() -> String {
    let a = "Instant::now() inside a string, and .unwrap() too";
    let b = r#"SystemTime::now() and map.values() in a raw string"#;
    let c = 'x';
    format!("{a}{b}{c} dot_scatter( Ordering::Relaxed")
}
