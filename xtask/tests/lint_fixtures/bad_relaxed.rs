// Known-bad: an unjustified Ordering::Relaxed (first fn) next to a
// justified one (second fn). Exactly the first site is flagged; both
// count toward the crate's relaxed budget.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn bump_justified(c: &AtomicU64) {
    // relaxed: independent event counter, no cross-thread ordering
    c.fetch_add(1, Ordering::Relaxed);
}
