// Known-bad: host-clock reads in a simulated tree are flagged even when
// no entry point reaches them — simulated files are covered wholesale.

pub fn tick() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
