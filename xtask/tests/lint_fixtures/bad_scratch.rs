// Known-bad: a raw dot_scatter call outside crates/sparse.

pub fn dot(row: RowView<'_>, dense: &[f64], occ: &[u64]) -> f64 {
    ops::dot_scatter(row, dense, occ)
}
