//! End-to-end exercise of `cargo xtask bench-diff` against real solver
//! runs: the gate must pass a byte-identical re-run and flag a run whose
//! LogGP latency was deliberately inflated.

use std::path::PathBuf;

use shrinksvm_core::dist::DistSolver;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::gaussian;
use shrinksvm_mpisim::CostParams;
use xtask::bench_diff::run_bench_diff;

/// Train the tiny 2-rank problem under `cost` and return its bench
/// report JSON.
fn bench_json(cost: CostParams) -> String {
    let ds = gaussian::two_blobs(120, 3, 4.0, 7);
    let params = SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(2.0))
        .with_epsilon(1e-3)
        .with_shrink(ShrinkPolicy::best());
    let run = DistSolver::new(&ds, params)
        .with_processes(2)
        .with_cost(cost)
        .train()
        .expect("train");
    let mut doc = run.bench_report("gate").to_json();
    doc.push('\n');
    doc
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask_bench_diff_e2e_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mk temp dir");
    dir
}

#[test]
fn identical_rerun_passes_and_latency_bump_is_flagged() {
    let baseline = bench_json(CostParams::fdr());
    let rerun = bench_json(CostParams::fdr());
    assert_eq!(baseline, rerun, "same-seed runs must be byte-identical");

    // A 1000x latency bump models a perf regression on the wire: the
    // solver converges to the same model (simulated time is observation,
    // not schedule here — 2 ranks, deterministic SMO), but the makespan
    // and transfer charges blow up far past every tolerance.
    let slow_cost = CostParams {
        latency: CostParams::fdr().latency * 1000.0,
        ..CostParams::fdr()
    };
    let slow = bench_json(slow_cost);
    assert_ne!(baseline, slow, "latency bump must move the modeled time");

    let dir = fresh_dir("files");
    let bp = dir.join("BENCH_gate.json");
    let rp = dir.join("BENCH_gate_rerun.json");
    let sp = dir.join("BENCH_gate_slow.json");
    std::fs::write(&bp, &baseline).expect("write baseline");
    std::fs::write(&rp, &rerun).expect("write rerun");
    std::fs::write(&sp, &slow).expect("write slow");

    let clean = run_bench_diff(&bp, &rp).expect("diff runs");
    assert!(
        clean.regressions().is_empty(),
        "identical re-run must pass: {:?}",
        clean.regressions()
    );

    let flagged = run_bench_diff(&bp, &sp).expect("diff runs");
    assert!(
        flagged
            .regressions()
            .iter()
            .any(|l| l.metric.ends_with("/modeled_time")),
        "latency bump must regress the makespan: {:?}",
        flagged.lines
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dir_mode_gates_a_whole_baseline_tree() {
    let baseline = bench_json(CostParams::fdr());
    let bd = fresh_dir("tree_base");
    let cd = fresh_dir("tree_cand");
    std::fs::write(bd.join("BENCH_gate.json"), &baseline).expect("write");
    std::fs::write(cd.join("BENCH_gate.json"), &baseline).expect("write");

    let clean = run_bench_diff(&bd, &cd).expect("diff runs");
    assert!(clean.regressions().is_empty(), "{:?}", clean.regressions());

    // Drop the candidate report: a vanished benchmark is a failure.
    std::fs::remove_file(cd.join("BENCH_gate.json")).expect("rm");
    let missing = run_bench_diff(&bd, &cd).expect("diff runs");
    assert_eq!(missing.regressions().len(), 1);

    std::fs::remove_dir_all(&bd).ok();
    std::fs::remove_dir_all(&cd).ok();
}
