//! Seeded observability smoke benchmark.
//!
//! Trains the paper's distributed solver on a small synthetic problem with
//! full telemetry enabled and writes every artifact of the unified
//! telemetry layer:
//!
//! * `trace_smoke.json` — Chrome trace-event timeline (load in Perfetto /
//!   `chrome://tracing`), one track per simulated rank
//! * `trace_smoke.txt` — the same timeline rendered as plain text
//! * `metrics_smoke.txt` — deterministic metrics snapshot (active-set
//!   size, KKT gap, kernel-cache hit rate, shrink/reconstruction counts)
//! * `BENCH_smoke.json` — machine-readable run report (modeled time,
//!   speedup vs the Original no-shrinking policy, comm/compute split)
//! * `PERF_smoke.json` / `PERF_smoke.txt` — PerfDoctor trace analysis:
//!   the exact critical path through the run's event DAG, the
//!   compute/transfer/idle/retransmit/recovery attribution, and what-if
//!   projections (zero-latency network, infinite cache, perfect balance)
//! * `PROFILE_smoke.{folded,svg,json}` — the hierarchical time profile
//!   (phase → op → charge class): collapsed-stack text for external
//!   flame-graph tools, a self-contained flame SVG, and the tree as JSON
//!
//! Everything is keyed on *simulated* time, so the run is executed twice
//! and the artifacts are asserted byte-identical before being written —
//! this binary doubles as the CI determinism gate.
//!
//! ```text
//! cargo run --release --example bench_smoke [out_dir]
//! ```

use std::path::PathBuf;

use shrinksvm::prelude::*;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::json;

struct Artifacts {
    trace_json: String,
    trace_text: String,
    metrics: String,
    bench: String,
    perf_json: String,
    perf_text: String,
    profile_folded: String,
    profile_svg: String,
    profile_json: String,
}

fn run_once() -> Artifacts {
    let ds = gaussian::two_blobs(240, 4, 3.0, 42);
    let params = SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.5)).with_epsilon(1e-3);

    // Original (no adaptive shrinking) — the speedup denominator.
    let original = DistSolver::new(&ds, params.clone().with_shrink(ShrinkPolicy::none()))
        .with_processes(4)
        .train()
        .expect("original run");

    // The paper's algorithm, fully instrumented.
    let run = DistSolver::new(&ds, params.clone().with_shrink(ShrinkPolicy::best()))
        .with_processes(4)
        .with_tracing()
        .train()
        .expect("traced run");

    // Sequential baseline contributes kernel-cache telemetry.
    let smo = SmoSolver::new(&ds, params.with_cache_bytes(8 << 20))
        .train()
        .expect("smo baseline");

    let mut metrics = run.metrics.clone();
    metrics.merge(&smo.metrics.namespaced("smo"));

    let mut report = run.bench_report("smoke");
    if run.makespan > 0.0 {
        report.speedup_vs_original = Some(original.makespan / run.makespan);
    }

    let perf = run.perf.as_ref().expect("traced runs attach a PerfDoctor");
    let profile = run.profile.as_ref().expect("traced runs attach a profile");
    Artifacts {
        trace_json: run.timeline.to_chrome_json(),
        trace_text: run.timeline.render_text(),
        metrics: metrics.snapshot(),
        bench: report.to_json(),
        perf_json: perf.to_json(),
        perf_text: perf.render_text(),
        profile_folded: profile.to_folded(),
        profile_svg: profile.to_svg(),
        profile_json: profile.to_json(),
    }
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".into())
        .into();

    let a = run_once();
    let b = run_once();
    assert_eq!(a.trace_json, b.trace_json, "trace must be deterministic");
    assert_eq!(
        a.trace_text, b.trace_text,
        "text trace must be deterministic"
    );
    assert_eq!(
        a.metrics, b.metrics,
        "metrics snapshot must be deterministic"
    );
    assert_eq!(a.bench, b.bench, "bench report must be deterministic");
    assert_eq!(
        a.perf_json, b.perf_json,
        "PerfDoctor report must be deterministic"
    );
    assert_eq!(a.perf_text, b.perf_text, "PerfDoctor text must be stable");
    assert_eq!(
        a.profile_folded, b.profile_folded,
        "folded profile must be deterministic"
    );
    assert_eq!(
        a.profile_svg, b.profile_svg,
        "flame SVG must be deterministic"
    );
    assert_eq!(
        a.profile_json, b.profile_json,
        "profile JSON must be deterministic"
    );

    json::check(&a.trace_json).expect("trace JSON well-formed");
    json::check(&a.bench).expect("bench JSON well-formed");
    json::check(&a.perf_json).expect("perf JSON well-formed");
    json::check(&a.profile_json).expect("profile JSON well-formed");
    shrinksvm_obs::profile::xml_check(&a.profile_svg).expect("flame SVG well-formed XML");

    std::fs::create_dir_all(&out).expect("create out dir");
    std::fs::write(out.join("trace_smoke.json"), &a.trace_json).expect("write trace json");
    std::fs::write(out.join("trace_smoke.txt"), &a.trace_text).expect("write trace text");
    std::fs::write(out.join("metrics_smoke.txt"), &a.metrics).expect("write metrics");
    std::fs::write(out.join("BENCH_smoke.json"), &a.bench).expect("write bench report");
    std::fs::write(out.join("PERF_smoke.json"), &a.perf_json).expect("write perf json");
    std::fs::write(out.join("PERF_smoke.txt"), &a.perf_text).expect("write perf text");
    std::fs::write(out.join("PROFILE_smoke.folded"), &a.profile_folded)
        .expect("write folded profile");
    std::fs::write(out.join("PROFILE_smoke.svg"), &a.profile_svg).expect("write flame svg");
    std::fs::write(out.join("PROFILE_smoke.json"), &a.profile_json).expect("write profile json");

    println!("{}", a.metrics);
    println!("{}", a.perf_text);
    println!(
        "artifacts written to {}: trace_smoke.json ({} events), metrics_smoke.txt, \
         BENCH_smoke.json, PERF_smoke.{{json,txt}}, PROFILE_smoke.{{folded,svg,json}}",
        out.display(),
        a.trace_json.matches("\"ph\"").count(),
    );
    println!("determinism: two same-seed runs produced byte-identical artifacts ✓");
}
