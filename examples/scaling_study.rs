//! Scaling study: train the HIGGS-like analog distributed at increasing
//! rank counts, really executing each configuration, and print the
//! simulated-time scaling plus a projection to supercomputer scale — a
//! miniature of the paper's Figure 3 pipeline.
//!
//! ```text
//! cargo run --release --example scaling_study [-- <scale>]
//! ```

use shrinksvm::prelude::*;
use shrinksvm_core::perfmodel::MachineModel;
use shrinksvm_datagen::PaperDataset;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let data = PaperDataset::Higgs.generate(scale);
    println!("dataset: {} — {}", data.name, data.train.summary());

    let params =
        SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq)).with_epsilon(1e-3);

    // Really execute at 1..8 ranks; the trajectory is identical, so the
    // simulated makespans are directly comparable.
    println!("\nreal threaded execution (simulated cluster clock):");
    println!(
        "{:>6} {:>10} {:>12} {:>10}",
        "procs", "iters", "sim time", "speedup"
    );
    let mut t1 = 0.0;
    for p in [1usize, 2, 4, 8] {
        let run = DistSolver::new(
            &data.train,
            params.clone().with_shrink(ShrinkPolicy::best()),
        )
        .with_processes(p)
        .train()
        .expect("training");
        if p == 1 {
            t1 = run.makespan;
        }
        println!(
            "{:>6} {:>10} {:>10.2}ms {:>10.2}",
            p,
            run.iterations,
            run.makespan * 1e3,
            t1 / run.makespan
        );
    }

    // Project the captured trace to the paper's process grid.
    let cap = DistSolver::new(&data.train, params.with_shrink(ShrinkPolicy::best()))
        .with_processes(4)
        .train()
        .expect("capture");
    let model = MachineModel::default();
    let row_bytes = 44.0 + 12.0 * data.train.x.mean_row_nnz();
    println!("\nmodel projection to cluster scale (same trace, Table-I cost model):");
    println!(
        "{:>6} {:>12} {:>10} {:>8}",
        "procs", "time", "speedup", "recon%"
    );
    let t1p = model.project(&cap.trace, 1, row_bytes).total();
    for p in [64usize, 256, 1024, 4096] {
        let proj = model.project(&cap.trace, p, row_bytes);
        println!(
            "{:>6} {:>10.2}ms {:>10.1} {:>7.2}%",
            p,
            proj.total() * 1e3,
            t1p / proj.total(),
            proj.recon_fraction() * 100.0
        );
    }
}
