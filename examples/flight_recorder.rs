//! Crash flight recorder demonstration — the observability layer's
//! black box, exercised end to end.
//!
//! A seeded chaos run injects probabilistic message drops under a tiny
//! retry budget with a fat retransmission backoff: early drops are
//! survivable (each one bills its backoff as a long receive wait —
//! exactly the straggler/stall evidence the health monitor looks for),
//! until one message exceeds the budget and the run dies with a
//! retry-exhaustion panic. The training never returns a result — but the
//! caller-held [`FlightRecorder`] `Arc` survives the unwind with every
//! rank's last-N events intact, including the terminal
//! `lost(src=…,attempts=…)` diagnostic recorded immediately before the
//! panic.
//!
//! The scenario runs **twice** and the resulting `shrinksvm-flight/v1`
//! dump is asserted byte-identical (everything is simulated time, so the
//! black box is as deterministic as the run it records), then the health
//! analysis is asserted to contain at least one straggler or
//! collective-stall event. Artifacts:
//!
//! * `FLIGHT_flight_recorder.json` — the black box, renderable with
//!   `cargo xtask doctor results/FLIGHT_flight_recorder.json`
//!
//! ```text
//! cargo run --release --example flight_recorder [out_dir]
//! ```

use std::panic;
use std::path::PathBuf;
use std::sync::Arc;

use shrinksvm::prelude::*;
use shrinksvm_core::dist::flight_capacity;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::flight::FlightRecorder;
use shrinksvm_obs::json;
use shrinksvm_obs::monitor::{self, HealthConfig, HealthRule};

/// The injected drops make rank threads die with *expected* panics (the
/// exhausted receive, then its peers' orphaned endpoints). Silence those
/// so the demonstration output is the flight recorder, not a backtrace
/// wall; anything unexpected still reaches the default hook.
fn quiet_expected_panics() {
    let prev = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        let expected = msg.is_some_and(|m| {
            m.contains("retry budget exhausted")
                || m.contains("can never complete")
                || m.contains("vanished (channel closed)")
        });
        if !expected {
            prev(info);
        }
    }));
}

fn run_once() -> String {
    let ds = gaussian::two_blobs(160, 4, 4.0, 7);
    let params = SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3);
    // Two injection rules under a one-retry budget with a fat 0.5 s
    // backoff. The first is a single survivable drop on the 1→0 link:
    // rank 0 absorbs the whole backoff as one dominating recv_wait span —
    // exactly the stall/straggler evidence the monitor flags. The second
    // drops a 2→0 message twice in a row, exhausting the budget: fatal.
    let plan = FaultPlan::new(7)
        .drop_messages(Some(1), Some(0), 1.0, 0.0, f64::INFINITY, 1)
        .drop_messages(Some(2), Some(0), 1.0, 0.4, f64::INFINITY, 2)
        .with_max_retries(1)
        .with_retry_backoff(0.5);
    let flight = Arc::new(FlightRecorder::new(3, flight_capacity()));
    let outcome = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        DistSolver::new(&ds, params)
            .with_processes(3)
            .with_faults(plan)
            .with_flight(Arc::clone(&flight))
            .train()
    }));
    assert!(
        outcome.is_err(),
        "the retry budget must exhaust — this scenario exists to crash"
    );

    let snap = flight.snapshot();
    assert!(!snap.is_empty(), "the black box must not be empty");
    let health = monitor::analyze(&snap.all_events(), &HealthConfig::default());
    assert!(
        health
            .iter()
            .any(|h| matches!(h.rule, HealthRule::Straggler | HealthRule::CollectiveStall)),
        "expected at least one straggler or collective-stall health event, got: {health:?}"
    );
    assert!(
        snap.all_events().iter().any(|e| matches!(
            e,
            shrinksvm_obs::timeline::Event::Instant { name, .. } if name.starts_with("lost(")
        )),
        "the terminal loss diagnostic must be on the rings"
    );
    snap.to_json("flight_recorder", "retry-budget-exhausted", &health)
}

fn main() {
    quiet_expected_panics();
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".into())
        .into();

    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "flight dump must be byte-deterministic");
    json::check(&a).expect("flight JSON well-formed");

    std::fs::create_dir_all(&out).expect("create out dir");
    let path = out.join("FLIGHT_flight_recorder.json");
    std::fs::write(&path, &a).expect("write flight dump");

    println!("flight dump written to {}", path.display());
    println!("health events: {}", a.matches("\"rule\":").count());
    println!("determinism: two same-seed crashes produced byte-identical black boxes ✓");
    println!("render it with: cargo xtask doctor {}", path.display());
}
