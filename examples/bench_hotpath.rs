//! Hot-path A/B benchmark: merge-join vs dense-scratch dots, cold vs warm
//! kernel row cache, and intra-rank threading — the three layers of the
//! distributed gradient-update rebuild.
//!
//! Four configurations train on the same seeded problem:
//!
//! * `merge_nocache_t1` — the pre-optimization hot path (two-pointer
//!   merge-join dots, no cache, one worker): the speedup denominator
//! * `scatter_nocache_t1` — dense-scratch dots only
//! * `scatter_cache_t1` — plus the shrink-aware pivot-row cache
//! * `scatter_cache_t4` — plus four intra-rank workers
//!
//! A fifth run re-trains the optimized configuration with the
//! overlapped-communication pipeline disabled (`with_overlap(false)`),
//! pinning the `makespan_overlap` / `makespan_no_overlap` A/B and the
//! `collective_rounds_per_iter` budget into the report's extras.
//!
//! Every configuration must produce a **byte-identical** model (the layer
//! is pure performance), and the full stack must cut the simulated
//! makespan by at least 1.5× — both asserted here, so this binary doubles
//! as the CI perf gate. The optimized configuration runs with tracing on
//! (observation only: it cannot move simulated time) and its PerfDoctor
//! analysis — exact critical path, makespan attribution, what-if
//! projections — is written as `PERF_hotpath.{json,txt}`, its
//! hierarchical time profile as `PROFILE_hotpath.{folded,svg,json}`, and
//! the no-overlap run's analysis as `PERF_hotpath_no_overlap.json` so
//! `cargo xtask perf-diff` can explain the overlap win mechanically. All
//! numbers are simulated time, so the whole comparison is run twice and
//! every artifact is asserted byte-identical before being written.
//!
//! ```text
//! cargo run --release --example bench_hotpath [out_dir]
//! ```

use std::path::PathBuf;

use shrinksvm::prelude::*;
use shrinksvm_core::dist::DotKind;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::json;

/// The optimized stack must beat the pre-optimization hot path by at
/// least this factor in simulated time.
const MIN_SPEEDUP: f64 = 1.5;

struct Config {
    name: &'static str,
    dots: DotKind,
    cache_bytes: usize,
    threads: usize,
}

const CONFIGS: [Config; 4] = [
    Config {
        name: "merge_nocache_t1",
        dots: DotKind::MergeJoin,
        cache_bytes: 0,
        threads: 1,
    },
    Config {
        name: "scatter_nocache_t1",
        dots: DotKind::Scatter,
        cache_bytes: 0,
        threads: 1,
    },
    Config {
        name: "scatter_cache_t1",
        dots: DotKind::Scatter,
        cache_bytes: 4 << 20,
        threads: 1,
    },
    Config {
        name: "scatter_cache_t4",
        dots: DotKind::Scatter,
        cache_bytes: 4 << 20,
        threads: 4,
    },
];

fn model_bytes(m: &SvmModel) -> Vec<u8> {
    let mut b = Vec::new();
    m.write_to(&mut b).expect("serializing to memory");
    b
}

struct Artifacts {
    bench: String,
    perf_json: String,
    perf_text: String,
    perf_no_overlap_json: String,
    profile_folded: String,
    profile_svg: String,
    profile_json: String,
}

fn run_once() -> Artifacts {
    let ds = gaussian::two_blobs(400, 12, 3.0, 7);
    let params = SvmParams::new(4.0, KernelKind::rbf_from_sigma_sq(2.0))
        .with_epsilon(1e-3)
        .with_shrink(ShrinkPolicy::best());

    let mut reference: Option<Vec<u8>> = None;
    let mut makespans = Vec::new();
    let mut last = None;
    for cfg in &CONFIGS {
        // Trace every configuration: tracing is observation-only (it
        // cannot move simulated time — the A/B makespans stay honest),
        // and it attaches the PerfDoctor analysis to the run.
        let run = DistSolver::new(&ds, params.clone().with_cache_bytes(cfg.cache_bytes))
            .with_processes(4)
            .with_threads(cfg.threads)
            .with_dots(cfg.dots)
            .with_tracing()
            .train()
            .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        assert!(run.converged, "{} converged", cfg.name);
        let bytes = model_bytes(&run.model);
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(
                *r, bytes,
                "{}: hot-path layers must not change the model",
                cfg.name
            ),
        }
        makespans.push((cfg.name, run.makespan));
        last = Some(run);
    }

    let optimized = last.expect("at least one config ran");

    // Overlap A/B: the optimized stack with the pipeline's nonblocking
    // collectives replaced by blocking rounds at the same program points.
    // The toggle is pure communication scheduling — the model and the
    // iteration count must not move.
    let no_overlap = DistSolver::new(&ds, params.clone().with_cache_bytes(4 << 20))
        .with_processes(4)
        .with_threads(4)
        .with_dots(DotKind::Scatter)
        .with_overlap(false)
        .with_tracing()
        .train()
        .expect("no-overlap run");
    assert!(no_overlap.converged, "no-overlap run converged");
    assert_eq!(
        reference.as_deref().expect("reference model recorded"),
        model_bytes(&no_overlap.model).as_slice(),
        "overlap toggle must not change the model"
    );
    assert_eq!(
        no_overlap.iterations, optimized.iterations,
        "overlap toggle must not change the iteration count"
    );

    let baseline_makespan = makespans[0].1;
    let speedup = baseline_makespan / optimized.makespan;
    assert!(
        speedup >= MIN_SPEEDUP,
        "optimized hot path must be ≥{MIN_SPEEDUP}× faster than the \
         pre-optimization path, got {speedup:.2}× \
         ({baseline_makespan:.6}s -> {:.6}s)",
        optimized.makespan
    );

    let mut report = optimized.bench_report("hotpath");
    report.speedup_vs_original = None;
    for (name, makespan) in &makespans {
        report.extras.insert(format!("makespan_{name}"), *makespan);
    }
    report
        .extras
        .insert("speedup_vs_merge_nocache_t1".to_string(), speedup);
    report
        .extras
        .insert("makespan_overlap".to_string(), optimized.makespan);
    report
        .extras
        .insert("makespan_no_overlap".to_string(), no_overlap.makespan);
    report.extras.insert(
        "speedup_overlap_vs_blocking".to_string(),
        no_overlap.makespan / optimized.makespan,
    );
    // Collective rounds per iteration (allreduces + bcasts + barriers on
    // rank 0 — nonblocking initiations count through their allreduce):
    // the budget the message fusion and β piggyback exist to hold down.
    let s0 = &optimized.rank_stats[0];
    report.extras.insert(
        "collective_rounds_per_iter".to_string(),
        (s0.allreduces + s0.bcasts + s0.barriers) as f64 / optimized.iterations as f64,
    );
    if let Some(hr) = optimized.metrics.gauge("kernel_cache_hit_rate_final") {
        report
            .extras
            .insert("kernel_cache_hit_rate_final".to_string(), hr);
    }
    report.extras.insert(
        "kernel_cache_hits".to_string(),
        optimized.metrics.counter("kernel_cache_hits") as f64,
    );
    report.extras.insert(
        "kernel_cache_misses".to_string(),
        optimized.metrics.counter("kernel_cache_misses") as f64,
    );
    let perf = optimized
        .perf
        .as_ref()
        .expect("traced runs attach a PerfDoctor");
    // The no-overlap PERF report makes the overlap win mechanically
    // explainable: `cargo xtask perf-diff PERF_hotpath.json
    // PERF_hotpath_no_overlap.json` (or the reverse) shows the buckets
    // and critical-path ops the pipeline moved.
    let perf_no_overlap = no_overlap
        .perf
        .as_ref()
        .expect("traced runs attach a PerfDoctor");
    let profile = optimized
        .profile
        .as_ref()
        .expect("traced runs attach a profile");
    Artifacts {
        bench: report.to_json(),
        perf_json: perf.to_json(),
        perf_text: perf.render_text(),
        perf_no_overlap_json: perf_no_overlap.to_json(),
        profile_folded: profile.to_folded(),
        profile_svg: profile.to_svg(),
        profile_json: profile.to_json(),
    }
}

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".into())
        .into();

    let a = run_once();
    let b = run_once();
    assert_eq!(a.bench, b.bench, "bench report must be deterministic");
    assert_eq!(
        a.perf_json, b.perf_json,
        "PerfDoctor report must be deterministic"
    );
    assert_eq!(
        a.perf_no_overlap_json, b.perf_no_overlap_json,
        "no-overlap PerfDoctor report must be deterministic"
    );
    assert_eq!(
        a.profile_folded, b.profile_folded,
        "folded profile must be deterministic"
    );
    assert_eq!(
        a.profile_svg, b.profile_svg,
        "flame SVG must be deterministic"
    );
    assert_eq!(
        a.profile_json, b.profile_json,
        "profile JSON must be deterministic"
    );
    json::check(&a.bench).expect("bench JSON well-formed");
    json::check(&a.perf_json).expect("perf JSON well-formed");
    json::check(&a.perf_no_overlap_json).expect("no-overlap perf JSON well-formed");
    json::check(&a.profile_json).expect("profile JSON well-formed");
    shrinksvm_obs::profile::xml_check(&a.profile_svg).expect("flame SVG well-formed XML");

    std::fs::create_dir_all(&out).expect("create out dir");
    std::fs::write(out.join("BENCH_hotpath.json"), &a.bench).expect("write bench report");
    std::fs::write(out.join("PERF_hotpath.json"), &a.perf_json).expect("write perf json");
    std::fs::write(out.join("PERF_hotpath.txt"), &a.perf_text).expect("write perf text");
    std::fs::write(
        out.join("PERF_hotpath_no_overlap.json"),
        &a.perf_no_overlap_json,
    )
    .expect("write no-overlap perf json");
    std::fs::write(out.join("PROFILE_hotpath.folded"), &a.profile_folded)
        .expect("write folded profile");
    std::fs::write(out.join("PROFILE_hotpath.svg"), &a.profile_svg).expect("write flame svg");
    std::fs::write(out.join("PROFILE_hotpath.json"), &a.profile_json).expect("write profile json");

    println!("{}", a.bench);
    println!("{}", a.perf_text);
    println!(
        "wrote {}, PERF_hotpath.{{json,txt}}, PERF_hotpath_no_overlap.json and \
         PROFILE_hotpath.{{folded,svg,json}}",
        out.join("BENCH_hotpath.json").display()
    );
    println!("determinism: two same-seed runs produced byte-identical reports ✓");
}
