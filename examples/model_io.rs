//! Model persistence and the libsvm dataset format: write a dataset to
//! disk in libsvm text format, read it back, train, save the model, reload
//! it and predict — the full round trip a downstream user needs.
//!
//! ```text
//! cargo run --release --example model_io
//! ```

use shrinksvm::prelude::*;
use shrinksvm_datagen::gaussian;
use shrinksvm_sparse::io::{read_libsvm, write_libsvm};

fn main() {
    let dir = std::env::temp_dir().join("shrinksvm-model-io-example");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let data_path = dir.join("rings.libsvm");
    let model_path = dir.join("rings.model");

    // 1. Write a dataset in the standard libsvm text format.
    let ds = gaussian::rings(500, 1.0, 0.05, 21);
    write_libsvm(&ds, &data_path).expect("write dataset");
    println!("wrote {} samples to {}", ds.len(), data_path.display());

    // 2. Read it back, exactly as a user would read a downloaded dataset.
    let loaded = read_libsvm(&data_path).expect("read dataset");
    assert_eq!(loaded.len(), ds.len());
    let (train, test) = loaded.split_at(400);

    // 3. Train with shrinking enabled and persist the model.
    let params =
        SvmParams::new(10.0, KernelKind::rbf_from_sigma_sq(0.5)).with_shrink(ShrinkPolicy::best());
    let run = DistSolver::new(&train, params)
        .with_processes(2)
        .train()
        .expect("train");
    run.model.save(&model_path).expect("save model");
    println!(
        "trained: {} SVs, bias {:+.4}; saved to {}",
        run.model.n_sv(),
        run.model.bias(),
        model_path.display()
    );

    // 4. Reload and predict.
    let model = SvmModel::load(&model_path).expect("load model");
    let acc = accuracy(&model, &test);
    println!("reloaded model test accuracy: {:.1}%", acc * 100.0);
    assert!(acc > 0.95, "rings should be nearly perfectly separable");

    // The reloaded model is byte-for-byte equivalent to the trained one.
    for i in 0..test.len() {
        assert_eq!(
            model.predict(test.x.row(i)),
            run.model.predict(test.x.row(i))
        );
    }
    println!("reloaded predictions identical ✓");

    std::fs::remove_dir_all(&dir).ok();
}
