//! Tour of the Table-II shrinking heuristics: train the same problem under
//! all 13 configurations, show that every one reaches the same classifier,
//! and compare how much γ-update work each eliminated.
//!
//! ```text
//! cargo run --release --example heuristic_tour
//! ```

use shrinksvm::prelude::*;
use shrinksvm_datagen::PaperDataset;

fn main() {
    let data = PaperDataset::Adult9.generate(0.3);
    let test = data.test.as_ref().expect("a9a has a test split");
    println!("dataset: {} — {}", data.name, data.train.summary());

    let base =
        SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq)).with_epsilon(1e-3);

    println!(
        "\n{:>12} {:>13} {:>8} {:>9} {:>7} {:>9}",
        "heuristic", "class", "iters", "saved%", "recons", "test acc"
    );
    let mut reference_acc = None;
    for policy in ShrinkPolicy::table2() {
        let run = DistSolver::new(&data.train, base.clone().with_shrink(policy))
            .with_processes(4)
            .train()
            .expect("training");
        let acc = accuracy(&run.model, test);
        println!(
            "{:>12} {:>13} {:>8} {:>8.1}% {:>7} {:>8.2}%",
            policy.name(),
            policy.class().to_string(),
            run.iterations,
            run.trace.work_saved() * 100.0,
            run.trace.recon_events.len(),
            acc * 100.0
        );
        match reference_acc {
            None => reference_acc = Some(acc),
            Some(r) => assert!(
                (acc - r).abs() < 0.02,
                "{} accuracy diverged: {acc} vs {r}",
                policy.name()
            ),
        }
    }
    println!("\nevery heuristic reached the same test accuracy ✓ (the paper's central claim)");
}
