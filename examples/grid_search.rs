//! Hyper-parameter selection by ten-fold cross-validation, as the paper
//! does for Table III (§V-C): sweep a `(C, σ²)` grid, report the best
//! point, then train the final model with it.
//!
//! ```text
//! cargo run --release --example grid_search
//! ```

use shrinksvm::prelude::*;
use shrinksvm_core::cv::{cross_validate, grid_search};
use shrinksvm_datagen::gaussian;

fn main() {
    let ds = gaussian::xor(300, 0.2, 5);
    let (train, test) = ds.split_at(240);
    println!("train: {}", train.summary());

    let base = SvmParams::new(1.0, KernelKind::Linear).with_epsilon(1e-3);
    let cs = [1.0, 10.0, 32.0];
    let sigma_sqs = [0.25, 4.0, 64.0];

    println!("\n(C, σ²) grid, 10-fold CV accuracy:");
    let points = grid_search(&train, &cs, &sigma_sqs, &base, 10, 42).expect("grid search");
    for p in &points {
        println!(
            "  C={:<5} σ²={:<6} -> {:.2}%",
            p.c,
            p.sigma_sq,
            p.mean_accuracy * 100.0
        );
    }
    let best = &points[0];
    println!("\nselected: C={} σ²={}", best.c, best.sigma_sq);

    // Confirm the selected point with a fresh CV and per-fold spread.
    let chosen = SvmParams::new(best.c, KernelKind::rbf_from_sigma_sq(best.sigma_sq));
    let cv = cross_validate(&train, &chosen, 10, 7).expect("cv");
    println!(
        "re-validated: {:.2}% ± {:.2}%",
        cv.mean() * 100.0,
        cv.stddev() * 100.0
    );

    // Final model on the full training split, evaluated on held-out data.
    let out = SmoSolver::new(&train, chosen).train().expect("final fit");
    println!(
        "final model: {} SVs, held-out accuracy {:.1}%",
        out.model.n_sv(),
        accuracy(&out.model, &test) * 100.0
    );
}
