//! Quickstart: train an SVM three ways — sequential, multicore and
//! distributed with shrinking — on a small synthetic problem, and verify
//! they produce the same classifier.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shrinksvm::prelude::*;
use shrinksvm_datagen::gaussian;

fn main() {
    // A nonlinear problem (XOR clusters) — an RBF kernel is required.
    let ds = gaussian::xor(400, 0.15, 7);
    let (train, test) = ds.split_at(320);
    println!("train: {}", train.summary());
    println!("test:  {}", test.summary());

    let params = SvmParams::new(10.0, KernelKind::rbf_from_sigma_sq(0.5)).with_epsilon(1e-3);

    // 1. Sequential SMO with a kernel cache — the libsvm analog.
    let seq = SmoSolver::new(&train, params.clone().with_cache_bytes(64 << 20))
        .train()
        .expect("sequential training");
    println!(
        "sequential:  {} iters, {} SVs, test accuracy {:.1}%",
        seq.iterations,
        seq.model.n_sv(),
        accuracy(&seq.model, &test) * 100.0
    );

    // 2. Multicore SMO — the libsvm-enhanced (OpenMP) analog.
    let pool = ThreadPool::new(4);
    let smp = SmoSolver::new(&train, params.clone().with_cache_bytes(64 << 20))
        .with_pool(&pool)
        .train()
        .expect("multicore training");
    println!(
        "multicore:   {} iters, {} SVs, test accuracy {:.1}% (identical math, {} threads)",
        smp.iterations,
        smp.model.n_sv(),
        accuracy(&smp.model, &test) * 100.0,
        pool.nthreads()
    );

    // 3. Distributed SMO with adaptive shrinking (the paper's algorithm),
    //    4 simulated MPI ranks, best heuristic (Multi5pc).
    let dist = DistSolver::new(&train, params.with_shrink(ShrinkPolicy::best()))
        .with_processes(4)
        .train()
        .expect("distributed training");
    println!(
        "distributed: {} iters, {} SVs, test accuracy {:.1}%, γ-update work saved {:.0}%, simulated time {:.2} ms",
        dist.iterations,
        dist.model.n_sv(),
        accuracy(&dist.model, &test) * 100.0,
        dist.trace.work_saved() * 100.0,
        dist.makespan * 1e3,
    );

    // All three agree (the paper's "accuracy remains intact" claim).
    assert_eq!(seq.model.n_sv(), smp.model.n_sv());
    let (a, b) = (accuracy(&seq.model, &test), accuracy(&dist.model, &test));
    assert!((a - b).abs() < 0.02, "accuracy drift: {a} vs {b}");
    println!("all three solvers agree ✓");
}
