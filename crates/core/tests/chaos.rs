//! Chaos suite: the distributed trainer under injected faults.
//!
//! Every scenario here runs a real training job through the fault fabric
//! and asserts one of two outcomes the robustness layer guarantees:
//! *survival* — the run converges to the fault-free model (transport
//! faults are absorbed in-flight; crashes are recovered from the last
//! consistent checkpoint) — or *fast failure with a named diagnosis*
//! (`CoreError::RankLost`), never a hang or an opaque panic.
//!
//! The trainer's trajectory is a pure function of its state, so a restore
//! of a consistent checkpoint continues the *exact* fault-free
//! trajectory: the tests assert bit-identical models, not just similar
//! accuracy.

use shrinksvm_core::dist::checkpoint::Checkpoint;
use shrinksvm_core::dist::{CheckpointPolicy, DistRunResult, DistSolver, RecoveryPolicy};
use shrinksvm_core::error::CoreError;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::model::SvmModel;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
use shrinksvm_datagen::gaussian;
use shrinksvm_mpisim::FaultPlan;
use shrinksvm_sparse::Dataset;

/// CI sweeps the whole suite over a seed grid by setting this offset; the
/// scenarios are written to hold for *any* seed (crash times are scheduled
/// against the per-seed fault-free makespan). A malformed value is a loud
/// panic, never a silent run of the wrong grid.
fn seed_offset() -> u64 {
    match shrinksvm_mpisim::env_u64("SHRINKSVM_CHAOS_SEED_OFFSET") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => panic!("{e}"),
    }
}

fn blobs(seed: u64) -> Dataset {
    gaussian::two_blobs(160, 4, 4.0, seed + seed_offset())
}

fn plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed + seed_offset())
}

fn params() -> SvmParams {
    SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3)
}

fn model_bytes(m: &SvmModel) -> Vec<u8> {
    let mut b = Vec::new();
    m.write_to(&mut b).expect("serializing to memory");
    b
}

/// Fault-free reference run (also provides the makespan that crash rules
/// are scheduled against).
fn baseline(ds: &Dataset, p: usize) -> DistRunResult {
    DistSolver::new(ds, params())
        .with_processes(p)
        .train()
        .expect("fault-free run trains")
}

#[test]
fn crash_with_checkpointing_recovers_the_exact_model_across_seeds() {
    for seed in [1u64, 2, 3] {
        let ds = blobs(seed);
        let clean = baseline(&ds, 3);
        let fp = plan(seed).crash_rank(1, 0.5 * clean.makespan);
        let run = DistSolver::new(&ds, params())
            .with_processes(3)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8))
            .train()
            .expect("crash must be recovered");
        assert!(run.converged, "seed {seed}: recovered run converges");
        assert_eq!(run.recoveries, 1, "seed {seed}: exactly one restart");
        assert!(
            run.faults_survived >= 1,
            "seed {seed}: the crash counts as a survived fault"
        );
        assert!(
            run.recovery_cost > 0.0,
            "seed {seed}: the aborted attempt has a modeled cost"
        );
        assert_eq!(
            model_bytes(&run.model),
            model_bytes(&clean.model),
            "seed {seed}: recovery must reproduce the fault-free model bit-for-bit"
        );
    }
}

#[test]
fn crash_with_an_outstanding_nonblocking_collective_recovers_the_exact_model() {
    // The overlapped pipeline keeps a fused candidate reduction in flight
    // for most of every iteration, so a mid-run crash almost surely lands
    // while a nonblocking collective is outstanding (crashes fire inside
    // `coll_wait`, exactly where the pipeline blocks). Recovery must
    // abandon the in-flight request with the attempt and replay from the
    // checkpoint to the bit-identical fault-free model.
    for seed in [61u64, 62] {
        let ds = blobs(seed);
        let clean = DistSolver::new(&ds, params())
            .with_processes(3)
            .with_overlap(true)
            .train()
            .expect("fault-free overlapped run trains");
        let fp = plan(seed).crash_rank(1, 0.6 * clean.makespan);
        let run = DistSolver::new(&ds, params())
            .with_processes(3)
            .with_overlap(true)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8))
            .train()
            .expect("crash must be recovered");
        assert!(run.converged, "seed {seed}: recovered run converges");
        assert_eq!(run.recoveries, 1, "seed {seed}: exactly one restart");
        assert_eq!(
            model_bytes(&run.model),
            model_bytes(&clean.model),
            "seed {seed}: recovery with an in-flight collective must \
             reproduce the fault-free model bit-for-bit"
        );
    }
}

#[test]
fn crash_without_checkpointing_fails_fast_with_named_diagnosis() {
    let ds = blobs(4);
    let clean = baseline(&ds, 2);
    let fp = plan(4).crash_rank(1, 0.4 * clean.makespan);
    let err = DistSolver::new(&ds, params())
        .with_processes(2)
        .with_faults(fp)
        .train();
    match err {
        Err(CoreError::RankLost { rank, sim_time }) => {
            assert_eq!(rank, 1);
            assert!(sim_time >= 0.4 * clean.makespan);
        }
        other => panic!("expected RankLost, got {other:?}"),
    }
}

#[test]
fn exhausted_recovery_budget_fails_fast() {
    let ds = blobs(5);
    let clean = baseline(&ds, 2);
    // two armed crash rules, budget for one recovery
    let fp = plan(5)
        .crash_rank(1, 0.4 * clean.makespan)
        .crash_rank(0, 0.2 * clean.makespan);
    let err = DistSolver::new(&ds, params())
        .with_processes(2)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(8).with_max_recoveries(1))
        .train();
    assert!(
        matches!(err, Err(CoreError::RankLost { .. })),
        "second crash must exhaust the budget: {err:?}"
    );
}

#[test]
fn repeated_crashes_are_survived_within_budget() {
    let ds = blobs(6);
    let clean = baseline(&ds, 3);
    let fp = plan(6)
        .crash_rank(1, 0.5 * clean.makespan)
        .crash_rank(2, 0.2 * clean.makespan);
    let run = DistSolver::new(&ds, params())
        .with_processes(3)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(8))
        .train()
        .expect("both crashes recovered");
    assert_eq!(run.recoveries, 2);
    assert!(run.converged);
    assert_eq!(
        model_bytes(&run.model),
        model_bytes(&clean.model),
        "two-crash recovery still lands on the fault-free model"
    );
}

#[test]
fn degraded_continuation_retrains_on_fewer_ranks() {
    let ds = blobs(7);
    let clean = baseline(&ds, 4);
    let fp = plan(7).crash_rank(3, 0.5 * clean.makespan);
    let run = DistSolver::new(&ds, params())
        .with_processes(4)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(8).degraded())
        .train()
        .expect("degraded continuation trains");
    assert!(run.converged);
    assert_eq!(run.recoveries, 1);
    assert_eq!(
        run.rank_stats.len(),
        3,
        "the fleet continued with one rank fewer"
    );
    // Algorithm 2's iterate trajectory is bit-identical for every process
    // count, so re-partitioning the restored state across 3 ranks lands on
    // the same multipliers; only the bias may differ at rounding level
    // (its allreduce summation order depends on p).
    assert_eq!(run.model.n_sv(), clean.model.n_sv());
    assert_eq!(run.model.coefficients(), clean.model.coefficients());
    let bias_err = (run.model.bias() - clean.model.bias()).abs();
    assert!(bias_err < 1e-12, "bias drift {bias_err}");
}

#[test]
fn multi_crash_with_corrupt_checkpoints_climbs_the_ladder_to_the_exact_model() {
    // The tentpole scenario: three injected crashes (the second and third
    // fire during recovery attempts) plus corrupted checkpoint
    // generations. Every generation after the iteration-0 cut is corrupt,
    // so each restore must *detect* the corruption and fall back to the
    // oldest verified generation — and with three crashes against
    // `same_p_rungs = 3`, the ladder recovers at full rank count and the
    // trajectory (a pure function of the restored cut) lands on the
    // fault-free model bit-for-bit.
    for seed in [21u64, 22, 23] {
        let ds = blobs(seed);
        let clean = baseline(&ds, 3);
        let fp = plan(seed)
            .crash_rank(0, 0.12 * clean.makespan)
            .crash_rank(2, 0.3 * clean.makespan)
            .crash_rank(1, 0.55 * clean.makespan)
            .corrupt_checkpoints(1, u64::MAX);
        let run = DistSolver::new(&ds, params())
            .with_processes(3)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8).with_keep_generations(4096))
            .with_recovery(RecoveryPolicy::new())
            .with_tracing()
            .train()
            .expect("the ladder must survive all three crashes");
        assert!(run.converged, "seed {seed}");
        assert_eq!(run.recoveries, 3, "seed {seed}: one restart per crash");
        assert_eq!(
            run.rank_stats.len(),
            3,
            "seed {seed}: three crashes stay under the same-p rungs — no degrade"
        );
        assert!(
            run.recovery.corrupt_generations >= 1,
            "seed {seed}: the corrupted generations must be detected, got {:?}",
            run.recovery
        );
        assert!(!run.recovery.degraded, "seed {seed}");
        assert!(run.recovery.waste > 0.0, "seed {seed}");
        assert_eq!(
            run.recovery_cost,
            run.recovery.cost(),
            "seed {seed}: cost = waste + backoff"
        );
        assert_eq!(
            model_bytes(&run.model),
            model_bytes(&clean.model),
            "seed {seed}: full recovery must reproduce the fault-free model bit-for-bit"
        );
        // ladder rungs land on the timeline as recovery-category instants
        let json = run.timeline.to_chrome_json();
        assert!(json.contains("\"recovery_restart\""), "seed {seed}");
        assert!(json.contains("\"recovery_ckpt_corrupt\""), "seed {seed}");
        assert!(json.contains("\"recovery\""), "seed {seed}");
    }
}

#[test]
fn ladder_degrades_rank_by_rank_to_the_single_rank_floor() {
    // With a checkpoint cadence too sparse to ever bank progress beyond
    // the iteration-0 cut, every recovery is a no-progress recovery; at
    // `same_p_rungs = 1` the ladder sheds one rank per rung: 3 → 2 → 1.
    let ds = blobs(24);
    let clean = baseline(&ds, 3);
    let fp = plan(24)
        .crash_rank(1, 0.2 * clean.makespan)
        .crash_rank(2, 0.45 * clean.makespan)
        .crash_rank(0, 0.7 * clean.makespan);
    let run = DistSolver::new(&ds, params())
        .with_processes(3)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(1_000_000))
        .with_recovery(
            RecoveryPolicy::new()
                .with_same_p_rungs(1)
                .with_max_recoveries(8),
        )
        .train()
        .expect("degraded continuation reaches the floor and finishes");
    assert!(run.converged);
    assert_eq!(run.recoveries, 3);
    assert_eq!(
        run.rank_stats.len(),
        1,
        "single-rank fallback: the fleet degraded 3 -> 2 -> 1"
    );
    assert!(run.recovery.degraded);
    assert_eq!(run.recovery.final_ranks, 1);
    assert!(
        run.recovery.backoff > 0.0,
        "the ladder charges simulated backoff before retries"
    );
    // Algorithm 2's iterate trajectory is bit-identical at every process
    // count, so the degraded run lands on the same multipliers; only the
    // bias may differ at rounding level (allreduce order depends on p).
    assert_eq!(run.model.n_sv(), clean.model.n_sv());
    assert_eq!(run.model.coefficients(), clean.model.coefficients());
    let bias_err = (run.model.bias() - clean.model.bias()).abs();
    assert!(bias_err < 1e-12, "bias drift {bias_err}");
}

#[test]
fn recovery_cost_charges_only_unbanked_work() {
    // An attempt that banked checkpoints before dying is not a total
    // loss: the retry resumes past the restored cut, so only the clock
    // *beyond* the cut counts as waste — strictly less than the crash
    // time whenever a checkpoint promoted before the crash.
    let ds = blobs(25);
    let clean = baseline(&ds, 3);
    let crash_t = 0.5 * clean.makespan;
    let fp = plan(25).crash_rank(1, crash_t);
    let run = DistSolver::new(&ds, params())
        .with_processes(3)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(8))
        .train()
        .expect("crash recovered");
    assert_eq!(run.recoveries, 1);
    assert!(run.recovery.waste > 0.0);
    assert!(
        run.recovery.waste < crash_t,
        "banked checkpoint work must not be charged: waste {} vs crash at {crash_t}",
        run.recovery.waste
    );
    assert_eq!(run.recovery_cost, run.recovery.cost());
    assert_eq!(
        model_bytes(&run.model),
        model_bytes(&clean.model),
        "accounting change must not touch the trajectory"
    );
}

#[test]
fn transport_faults_leave_the_model_intact_and_cost_simulated_time() {
    let ds = blobs(8);
    let clean = baseline(&ds, 3);
    let fp = plan(8)
        .drop_messages(None, None, 0.05, 0.0, f64::INFINITY, 40)
        .corrupt_messages(None, None, 0.05, 0.0, f64::INFINITY, 40)
        .delay_messages(None, None, 5e-4, 0.05, 0.0, f64::INFINITY, 40)
        .with_max_retries(8);
    let run = DistSolver::new(&ds, params())
        .with_processes(3)
        .with_faults(fp)
        .train()
        .expect("transport faults are absorbed in-flight");
    assert_eq!(run.recoveries, 0, "no crash, no restart");
    assert!(
        run.faults_survived > 0,
        "the plan must actually have injected faults"
    );
    assert!(
        run.makespan > clean.makespan,
        "retransmission and delay must cost simulated time \
         ({} vs clean {})",
        run.makespan,
        clean.makespan
    );
    assert_eq!(
        model_bytes(&run.model),
        model_bytes(&clean.model),
        "transport faults must not perturb the trajectory"
    );
}

#[test]
fn chaos_runs_are_deterministic_for_identical_seeds() {
    let ds = blobs(9);
    let clean = baseline(&ds, 3);
    let make_plan = || {
        plan(9)
            .drop_messages(None, None, 0.05, 0.0, f64::INFINITY, 20)
            .crash_rank(1, 0.5 * clean.makespan)
            .with_max_retries(8)
    };
    let run = |fp: FaultPlan| {
        DistSolver::new(&ds, params())
            .with_processes(3)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8))
            .with_validation()
            .train()
            .expect("chaos run survives")
    };
    let a = run(make_plan());
    let b = run(make_plan());
    assert_eq!(model_bytes(&a.model), model_bytes(&b.model));
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.recovery_cost.to_bits(), b.recovery_cost.to_bits());
    assert_eq!(a.faults_survived, b.faults_survived);
    assert_eq!(
        a.report.to_string(),
        b.report.to_string(),
        "identical seeds must give byte-identical reports"
    );
}

#[test]
fn shrinking_policies_survive_crash_recovery() {
    // the stage machine must resume Algorithm 4/5 mid-flight, not just
    // the no-shrink Algorithm 2
    let ds = blobs(10);
    for policy in [
        ShrinkPolicy::best(),
        ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Single),
    ] {
        let p = params().with_shrink(policy);
        let clean = DistSolver::new(&ds, p.clone())
            .with_processes(3)
            .train()
            .expect("fault-free run trains");
        let fp = plan(10).crash_rank(1, 0.6 * clean.makespan);
        let run = DistSolver::new(&ds, p)
            .with_processes(3)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8))
            .train()
            .expect("crash under shrinking recovered");
        assert!(run.converged);
        assert_eq!(run.recoveries, 1);
        assert_eq!(
            run.model.n_sv(),
            clean.model.n_sv(),
            "recovered run finds the same support-vector set"
        );
    }
}

#[test]
fn checkpoints_mirror_to_disk_and_reload() {
    let dir = std::env::temp_dir().join("shrinksvm-chaos-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trainer.ckpt");
    let ds = blobs(11);
    let clean = baseline(&ds, 2);
    let fp = plan(11).crash_rank(1, 0.5 * clean.makespan);
    let run = DistSolver::new(&ds, params())
        .with_processes(2)
        .with_faults(fp)
        .with_checkpointing(CheckpointPolicy::every(8).with_disk(&path))
        .train()
        .expect("crash recovered");
    assert!(run.converged);
    let ck = Checkpoint::read_from(std::fs::File::open(&path).expect("checkpoint file exists"))
        .expect("on-disk checkpoint parses");
    assert_eq!(ck.n, ds.len());
    assert_eq!(ck.ranks.len(), 2);
    std::fs::remove_file(&path).ok();
}
