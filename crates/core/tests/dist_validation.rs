//! Validation of the distributed solver against the sequential baseline
//! and of the paper's central claim: shrinking + gradient reconstruction
//! leaves the solution exact, for every heuristic and process count.

use shrinksvm_core::dist::DistSolver;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::metrics::accuracy;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
use shrinksvm_core::smo::SmoSolver;
use shrinksvm_datagen::planted::{FeatureStyle, PlantedConfig};
use shrinksvm_datagen::{gaussian, PaperDataset};
use shrinksvm_mpisim::CostParams;
use shrinksvm_sparse::Dataset;

fn blobs(n: usize) -> Dataset {
    gaussian::two_blobs(n, 4, 4.0, 42)
}

fn params(c: f64, sigma_sq: f64) -> SvmParams {
    SvmParams::new(c, KernelKind::rbf_from_sigma_sq(sigma_sq)).with_epsilon(1e-3)
}

#[test]
fn original_p1_matches_sequential_solver_bitwise() {
    let ds = blobs(240);
    let p = params(4.0, 2.0);
    let seq = SmoSolver::new(&ds, p.clone()).train().unwrap();
    let dist = DistSolver::new(&ds, p).with_processes(1).train().unwrap();
    assert_eq!(seq.iterations, dist.iterations);
    assert_eq!(
        seq.model.bias(),
        dist.model.bias(),
        "bias must be bit-identical"
    );
    assert_eq!(seq.model.n_sv(), dist.model.n_sv());
    assert_eq!(seq.model.coefficients(), dist.model.coefficients());
}

#[test]
fn trajectory_is_bit_identical_across_process_counts() {
    let ds = blobs(200);
    let p = params(2.0, 1.0);
    let reference = DistSolver::new(&ds, p.clone())
        .with_processes(1)
        .train()
        .unwrap();
    for procs in [2usize, 3, 4, 7, 8] {
        let run = DistSolver::new(&ds, p.clone())
            .with_processes(procs)
            .train()
            .unwrap();
        assert_eq!(reference.iterations, run.iterations, "p={procs}");
        // α trajectory is bit-identical; the bias epilogue sums partial
        // per-rank contributions, so only its association differs.
        assert_eq!(
            reference.model.coefficients(),
            run.model.coefficients(),
            "p={procs}"
        );
        assert!(
            (reference.model.bias() - run.model.bias()).abs() < 1e-12,
            "p={procs}"
        );
        assert!(run.converged);
    }
}

#[test]
fn shrinking_with_reconstruction_matches_across_process_counts() {
    // Reconstruction sums ring blocks in rank order, so bit-exactness
    // across p is only guaranteed up to the first reconstruction; after it
    // every trajectory must still land on an equivalent 2ε-optimum.
    let ds = blobs(200);
    let p = params(2.0, 1.0).with_shrink(ShrinkPolicy::best());
    let reference = DistSolver::new(&ds, p.clone())
        .with_processes(1)
        .train()
        .unwrap();
    for procs in [2usize, 4, 5] {
        let run = DistSolver::new(&ds, p.clone())
            .with_processes(procs)
            .train()
            .unwrap();
        assert!(run.converged, "p={procs}");
        assert!(run.trace.final_gap <= 2e-3 + 1e-12, "p={procs}");
        assert!(
            (reference.model.bias() - run.model.bias()).abs() < 1e-3,
            "p={procs}: bias {} vs {}",
            reference.model.bias(),
            run.model.bias()
        );
        // identical predictions on the training set
        for i in 0..ds.len() {
            assert_eq!(
                reference.model.predict(ds.x.row(i)),
                run.model.predict(ds.x.row(i)),
                "p={procs} sample {i}"
            );
        }
    }
}

#[test]
fn all_table2_heuristics_keep_accuracy_intact() {
    // The paper's Table V claim: testing accuracy with shrinking matches
    // the exact solver's.
    let data = PaperDataset::W7a.generate(0.15);
    let (train, test) = (&data.train, data.test.as_ref().unwrap());
    let base = params(data.c, data.sigma_sq);
    let exact = SmoSolver::new(train, base.clone()).train().unwrap();
    let exact_acc = accuracy(&exact.model, test);
    assert!(exact_acc > 0.8, "baseline accuracy {exact_acc}");
    for policy in ShrinkPolicy::table2() {
        let run = DistSolver::new(train, base.clone().with_shrink(policy))
            .with_processes(3)
            .train()
            .unwrap();
        assert!(run.converged, "{} did not converge", policy.name());
        let acc = accuracy(&run.model, test);
        assert!(
            (acc - exact_acc).abs() < 0.01,
            "{}: accuracy {acc} vs exact {exact_acc}",
            policy.name()
        );
        // optimality gap honored
        assert!(run.trace.final_gap <= 2.0 * base.epsilon + 1e-12);
    }
}

#[test]
fn shrinking_reduces_gamma_update_work() {
    // A hard, noisy problem with a long optimization tail (HIGGS-like):
    // once the β bracket tightens, the bulk of the samples leave it and
    // the aggressive heuristics must eliminate a large share of the
    // γ-update work.
    let cfg = PlantedConfig {
        n: 400,
        dim: 28,
        nnz_per_row: 28,
        sv_fraction: 0.4,
        label_noise: 0.08,
        margin_scale: 1.0,
        style: FeatureStyle::Dense,
        target_norm: None,
        feature_skew: 0.0,
        seed: 8,
    };
    let ds = cfg.generate();
    let base = params(32.0, 64.0);
    let original = DistSolver::new(&ds, base.clone())
        .with_processes(2)
        .train()
        .unwrap();
    let shrunk = DistSolver::new(
        &ds,
        base.clone().with_shrink(ShrinkPolicy::new(
            Heuristic::NumSamples(0.05),
            ReconPolicy::Multi,
        )),
    )
    .with_processes(2)
    .train()
    .unwrap();
    assert!(original.converged && shrunk.converged);
    assert_eq!(original.trace.work_saved(), 0.0);
    assert!(
        shrunk.trace.work_saved() > 0.3,
        "expected large savings, got {}",
        shrunk.trace.work_saved()
    );
    // and the models agree
    assert!((original.model.bias() - shrunk.model.bias()).abs() < 1e-6);
}

#[test]
fn original_never_reconstructs_and_shrinkers_record_events() {
    let ds = blobs(150);
    let base = params(2.0, 1.0);
    let orig = DistSolver::new(&ds, base.clone())
        .with_processes(2)
        .train()
        .unwrap();
    assert!(orig.trace.recon_events.is_empty());
    assert_eq!(orig.recon_time, 0.0);

    let multi = DistSolver::new(
        &ds,
        base.with_shrink(ShrinkPolicy::new(Heuristic::Random(2), ReconPolicy::Multi)),
    )
    .with_processes(2)
    .train()
    .unwrap();
    assert!(
        !multi.trace.recon_events.is_empty(),
        "aggressive multi must reconstruct at least once"
    );
}

#[test]
fn simulated_time_improves_with_processes_on_compute_bound_problems() {
    let ds = gaussian::two_blobs(400, 16, 3.0, 9);
    let base = params(4.0, 4.0);
    let t = |p: usize| {
        DistSolver::new(&ds, base.clone())
            .with_processes(p)
            .with_cost(CostParams::fdr())
            .train()
            .unwrap()
            .makespan
    };
    let t1 = t(1);
    let t4 = t(4);
    assert!(
        t4 < t1 * 0.6,
        "4 ranks should cut simulated time substantially: {t1} -> {t4}"
    );
}

#[test]
fn late_threshold_degenerates_to_original() {
    // The paper's MNIST observation (§V-D4): when the initial threshold
    // exceeds the iteration count, Shrinking(Worst) ≡ Default.
    let ds = blobs(160);
    let base = params(2.0, 1.0);
    let orig = DistSolver::new(&ds, base.clone())
        .with_processes(2)
        .train()
        .unwrap();
    let worst = DistSolver::new(&ds, base.clone().with_shrink(ShrinkPolicy::worst()))
        .with_processes(2)
        .train()
        .unwrap();
    // 50% of 160 = 80-iteration threshold; if the problem converges sooner,
    // traces must match the Original exactly.
    if orig.iterations <= 80 {
        assert_eq!(orig.iterations, worst.iterations);
        assert_eq!(orig.trace.sum_active, worst.trace.sum_active);
        assert!(worst.trace.recon_events.is_empty());
    } else {
        // otherwise shrinking fired; it must still converge exactly
        assert!(worst.converged);
    }
}

#[test]
fn rank_stats_report_collective_traffic() {
    let ds = blobs(120);
    let run = DistSolver::new(&ds, params(2.0, 1.0))
        .with_processes(3)
        .train()
        .unwrap();
    assert_eq!(run.rank_stats.len(), 3);
    for s in &run.rank_stats {
        assert!(
            s.allreduces >= run.iterations,
            "≥2 allreduces per iteration"
        );
        assert!(s.bcasts >= run.iterations);
        assert!(s.compute_time > 0.0);
    }
}

#[test]
fn xor_needs_rbf_distributed_too() {
    let ds = gaussian::xor(200, 0.15, 3);
    let run = DistSolver::new(
        &ds,
        SvmParams::new(10.0, KernelKind::rbf_from_sigma_sq(0.5)).with_shrink(ShrinkPolicy::best()),
    )
    .with_processes(4)
    .train()
    .unwrap();
    let correct = (0..ds.len())
        .filter(|&i| run.model.predict(ds.x.row(i)) == ds.y[i])
        .count();
    assert!(correct as f64 / 200.0 > 0.97, "{correct}/200");
}

#[test]
fn permanent_elimination_converges_but_skips_the_exactness_proof() {
    // The CA-SVM-style design the paper argues against (§IV): with
    // ReconPolicy::Never the active-set optimum is returned as-is.
    let cfg = PlantedConfig {
        n: 400,
        dim: 28,
        nnz_per_row: 28,
        sv_fraction: 0.4,
        label_noise: 0.08,
        margin_scale: 1.0,
        style: FeatureStyle::Dense,
        target_norm: None,
        feature_skew: 0.0,
        seed: 9,
    };
    let ds = cfg.generate();
    let base = params(32.0, 64.0);
    let exact = DistSolver::new(&ds, base.clone().with_shrink(ShrinkPolicy::best()))
        .with_processes(2)
        .train()
        .unwrap();
    let perm = DistSolver::new(
        &ds,
        base.with_shrink(ShrinkPolicy::new(
            Heuristic::NumSamples(0.05),
            ReconPolicy::Never,
        )),
    )
    .with_processes(2)
    .train()
    .unwrap();
    assert!(perm.converged, "active-set convergence");
    assert!(perm.trace.recon_events.is_empty(), "never reconstructs");
    // permanent elimination does at most as much work as the exact run
    assert!(perm.trace.sum_active <= exact.trace.sum_active);
    // and it stopped EARLIER than the exact run (false eliminations were
    // never revisited), which is exactly why its result is unproven
    assert!(perm.iterations <= exact.iterations);
}

#[test]
fn subsequent_policy_changes_pass_cadence_not_the_answer() {
    let ds = blobs(200);
    let mk = |sub| {
        let mut policy = ShrinkPolicy::new(Heuristic::Random(2), ReconPolicy::Multi);
        policy.subsequent = sub;
        DistSolver::new(&ds, params(2.0, 1.0).with_shrink(policy))
            .with_processes(2)
            .train()
            .unwrap()
    };
    let adaptive = mk(shrinksvm_core::SubsequentPolicy::ActiveSetSize);
    let fixed = mk(shrinksvm_core::SubsequentPolicy::SameAsInitial);
    assert!(adaptive.converged && fixed.converged);
    // identical final classifier regardless of cadence
    assert!((adaptive.model.bias() - fixed.model.bias()).abs() < 1e-6);
    assert_eq!(adaptive.model.n_sv(), fixed.model.n_sv());
    // a fixed 2-iteration threshold shrinks far more often
    assert!(
        fixed.trace.active_curve.len() >= adaptive.trace.active_curve.len(),
        "fixed cadence must fire at least as many passes ({} vs {})",
        fixed.trace.active_curve.len(),
        adaptive.trace.active_curve.len()
    );
}
