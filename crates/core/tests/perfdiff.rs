//! Differential perf attribution, end-to-end through the real solver.
//!
//! Reproduces the overlapped-communication A/B mechanically: the same
//! seeded problem is trained with the nonblocking pipeline on and off,
//! both traced, and `PerfDiff` must explain the win the way the perf
//! work was argued by hand — blocking-collective idle turns into
//! overlap-covered transfer, `iallreduce` ops enter the critical path
//! while blocking `allreduce` hops leave it, and compute does not move.

use shrinksvm_core::dist::{DistRunResult, DistSolver, DotKind};
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::json::{self, parse};
use shrinksvm_obs::perfdiff::PerfDiff;

/// The optimized hot-path stack on the smoke problem, overlap toggled.
fn traced_run(overlap: bool) -> DistRunResult {
    let ds = gaussian::two_blobs(240, 4, 3.0, 42);
    let params = SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.5))
        .with_epsilon(1e-3)
        .with_shrink(ShrinkPolicy::best())
        .with_cache_bytes(4 << 20);
    DistSolver::new(&ds, params)
        .with_processes(4)
        .with_threads(4)
        .with_dots(DotKind::Scatter)
        .with_overlap(overlap)
        .with_tracing()
        .train()
        .expect("traced run")
}

fn diff_between(blocking: &DistRunResult, overlapped: &DistRunResult) -> PerfDiff {
    let a = parse(&blocking.perf.as_ref().expect("perf a").to_json()).expect("parse a");
    let b = parse(&overlapped.perf.as_ref().expect("perf b").to_json()).expect("parse b");
    PerfDiff::between(&a, &b, "no_overlap", "overlap").expect("diff")
}

#[test]
fn perf_diff_explains_the_overlap_win_mechanically() {
    let blocking = traced_run(false);
    let overlapped = traced_run(true);
    // The toggle is pure communication scheduling.
    assert_eq!(blocking.iterations, overlapped.iterations);
    assert!(overlapped.makespan <= blocking.makespan);

    let diff = diff_between(&blocking, &overlapped);

    let bucket = |name: &str| {
        diff.buckets
            .iter()
            .find(|(k, _, _)| *k == name)
            .map(|&(_, a, b)| (a, b))
            .unwrap_or_else(|| panic!("bucket {name} missing"))
    };
    // Compute is untouched by the pipeline: same sweeps, same dots.
    let (ca, cb) = bucket("compute");
    assert!(
        (ca - cb).abs() <= 1e-9 * ca.max(1e-9),
        "compute {ca} vs {cb}"
    );
    // The win is idle turning into overlap-covered transfer: idle shrinks,
    // and the sum of the two buckets cannot grow (total rank-time is
    // p * makespan, and makespan did not grow).
    let (ia, ib) = bucket("idle");
    let (ta, tb) = bucket("transfer");
    assert!(ib < ia, "idle must shrink: {ia} -> {ib}");
    assert!(tb + ib <= ta + ia + 1e-9, "{ta}+{ia} -> {tb}+{ib}");

    // The critical path restructures: nonblocking collective ops appear
    // only on the overlapped side, and at least one op enters or leaves.
    let entered: Vec<&str> = diff
        .ops
        .iter()
        .filter(|(_, op)| op.status() == "entered")
        .map(|(k, _)| k.as_str())
        .collect();
    assert!(
        entered.iter().any(|k| k.contains("iallreduce")),
        "expected iallreduce to enter the path, entered: {entered:?}"
    );
    let text = diff.render_text();
    assert!(text.contains("ENTERED the path"), "{text}");
    assert!(text.contains("== perf-diff: no_overlap -> overlap =="));
}

#[test]
fn perf_diff_json_is_byte_identical_across_same_seed_generations() {
    let d1 = diff_between(&traced_run(false), &traced_run(true));
    let d2 = diff_between(&traced_run(false), &traced_run(true));
    let (j1, j2) = (d1.to_json(), d2.to_json());
    assert_eq!(j1, j2, "same-seed perf-diff JSON must be byte-identical");
    json::check(&j1).expect("diff JSON well-formed");
    assert_eq!(d1.render_text(), d2.render_text());
}
