//! Hot-path identity suite: the rebuilt gradient-update path — dense-scratch
//! dots, the shrink-aware kernel row cache and intra-rank threading — is a
//! pure performance layer. At a fixed process count the solver trajectory
//! is a function of the problem alone, so every combination of
//! {thread count} × {cache on/off} × {dot implementation} × {overlapped
//! communication on/off} must produce a **byte-identical** model and an
//! identical iteration count; only the simulated clock may move.
//!
//! The suite also drives the cache through the two events that rebuild the
//! active span wholesale — gradient reconstruction and a checkpoint restore
//! under an injected rank crash — since a stale positional row surviving
//! either would corrupt gradients silently.

use shrinksvm_core::dist::{CheckpointPolicy, DistRunResult, DistSolver, DotKind};
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::model::SvmModel;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::gaussian;
use shrinksvm_mpisim::{FaultPlan, TraceEvent};
use shrinksvm_sparse::Dataset;

const THREADS: [usize; 3] = [1, 2, 4];
const DOTS: [DotKind; 2] = [DotKind::MergeJoin, DotKind::Scatter];
const CACHE: [usize; 2] = [0, 1 << 20];
const OVERLAP: [bool; 2] = [false, true];
const SEEDS: [u64; 3] = [11, 12, 13];

fn blobs(seed: u64) -> Dataset {
    gaussian::two_blobs(180, 4, 4.0, seed)
}

fn params(cache_bytes: usize) -> SvmParams {
    SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.0))
        .with_epsilon(1e-3)
        .with_shrink(ShrinkPolicy::best())
        .with_cache_bytes(cache_bytes)
}

fn run(
    ds: &Dataset,
    p: usize,
    threads: usize,
    dots: DotKind,
    cache_bytes: usize,
    overlap: bool,
) -> DistRunResult {
    DistSolver::new(ds, params(cache_bytes))
        .with_processes(p)
        .with_threads(threads)
        .with_dots(dots)
        .with_overlap(overlap)
        .train()
        .expect("training succeeds")
}

fn model_bytes(m: &SvmModel) -> Vec<u8> {
    let mut b = Vec::new();
    m.write_to(&mut b).expect("serializing to memory");
    b
}

#[test]
fn every_hotpath_config_is_byte_identical() {
    for seed in SEEDS {
        let ds = blobs(seed);
        // Reference: the pre-optimization configuration (sequential
        // merge-join, no cache, one worker, blocking collectives).
        let reference = run(&ds, 2, 1, DotKind::MergeJoin, 0, false);
        let ref_bytes = model_bytes(&reference.model);
        for threads in THREADS {
            for dots in DOTS {
                for cache_bytes in CACHE {
                    for overlap in OVERLAP {
                        let r = run(&ds, 2, threads, dots, cache_bytes, overlap);
                        let tag = format!(
                            "seed={seed} threads={threads} dots={dots:?} \
                             cache={cache_bytes} overlap={overlap}"
                        );
                        assert_eq!(reference.iterations, r.iterations, "{tag}: iterations");
                        assert_eq!(ref_bytes, model_bytes(&r.model), "{tag}: model bytes");
                        assert!(r.converged, "{tag}: converged");
                    }
                }
            }
        }
    }
}

#[test]
fn hotpath_identity_holds_on_a_single_rank_too() {
    let ds = blobs(17);
    let reference = run(&ds, 1, 1, DotKind::MergeJoin, 0, false);
    let fast = run(&ds, 1, 4, DotKind::Scatter, 1 << 20, true);
    assert_eq!(reference.iterations, fast.iterations);
    assert_eq!(model_bytes(&reference.model), model_bytes(&fast.model));
}

#[test]
fn optimized_config_cuts_simulated_time() {
    // The point of the layer: same answer, smaller simulated makespan. The
    // cache converts repeat pivot evaluations into lookups and the threads
    // divide the sweep's critical path.
    let ds = blobs(19);
    let slow = run(&ds, 2, 1, DotKind::MergeJoin, 0, false);
    let fast = run(&ds, 2, 4, DotKind::Scatter, 1 << 20, true);
    assert_eq!(model_bytes(&slow.model), model_bytes(&fast.model));
    assert!(
        fast.makespan < slow.makespan,
        "optimized path must be faster in simulated time: {} vs {}",
        fast.makespan,
        slow.makespan
    );
}

#[test]
fn cache_metrics_and_sweep_span_are_recorded() {
    let ds = blobs(23);
    let r = DistSolver::new(&ds, params(1 << 20))
        .with_processes(2)
        .with_threads(2)
        .with_tracing()
        .train()
        .unwrap();
    // epoch series sampled on rank 0 (iteration 0 is an epoch boundary)
    assert!(
        !r.metrics.series("kernel_cache_hit_rate").is_empty(),
        "hit-rate epoch series present"
    );
    assert!(r.metrics.counter("kernel_cache_insertions") > 0);
    assert!(
        r.metrics.counter("kernel_cache_hits") > 0,
        "pivot reselection must produce cache hits"
    );
    let json = r.timeline.to_chrome_json();
    assert!(json.contains("\"fused_sweep\""), "fused_sweep span traced");
    // uncached runs record neither the series nor the counters
    let cold = DistSolver::new(&ds, params(0))
        .with_processes(2)
        .train()
        .unwrap();
    assert!(cold.metrics.series("kernel_cache_hit_rate").is_empty());
    assert_eq!(cold.metrics.counter("kernel_cache_hits"), 0);
}

#[test]
fn overlap_fuses_candidate_collectives_and_keeps_the_model() {
    // The pipelined sweep folds next iteration's MinLoc/MaxLoc candidates
    // into the γ-sweep and ships them as ONE fused reduction per iteration
    // (β rides the pivot broadcast); before fusion the candidate exchange
    // cost two blocking rounds. The trace makes that budget checkable:
    // with overlap on the fused round is a nonblocking "iallreduce" span,
    // with overlap off the *same* round runs blocking at the same program
    // point. Either way the pivot selections — and hence the model — must
    // be bit-identical, and rank 0's candidate rounds per iteration stay
    // well under the pre-fusion 2×.
    let ds = blobs(29);
    let traced = |overlap: bool| {
        DistSolver::new(&ds, params(1 << 20))
            .with_processes(3)
            .with_threads(2)
            .with_dots(DotKind::Scatter)
            .with_overlap(overlap)
            .with_tracing()
            .train()
            .expect("training succeeds")
    };
    let on = traced(true);
    let off = traced(false);
    assert_eq!(on.iterations, off.iterations, "iteration count");
    assert_eq!(
        model_bytes(&on.model),
        model_bytes(&off.model),
        "overlap toggle must not change the model"
    );

    // Count rank-0 collective spans by name.
    let spans = |r: &DistRunResult, which: &str| {
        r.timeline
            .events()
            .iter()
            .filter(|e| {
                matches!(e, TraceEvent::Span { track, name, cat, .. }
                    if *track == 0 && cat == "coll" && name == which)
            })
            .count()
    };
    let iters = on.iterations as usize;
    let (ia_on, ar_on) = (spans(&on, "iallreduce"), spans(&on, "allreduce"));
    let (ia_off, ar_off) = (spans(&off, "iallreduce"), spans(&off, "allreduce"));
    assert!(
        ia_on >= iters,
        "overlap on: one nonblocking fused round per iteration (got {ia_on} for {iters} iters)"
    );
    assert_eq!(ia_off, 0, "overlap off posts no nonblocking collectives");
    // Fused candidate round + occasional survivors-count round: strictly
    // fewer collective spans than the two-round pre-fusion exchange.
    assert!(
        ia_on + ar_on < 3 * iters / 2,
        "overlap on: {ia_on}+{ar_on} allreduce-family spans for {iters} iters"
    );
    assert!(
        ar_off < 3 * iters / 2,
        "overlap off: {ar_off} allreduce spans for {iters} iters"
    );
}

#[test]
fn cache_survives_crash_recovery_with_the_exact_model() {
    // Chaos scenario: a rank crash mid-run forces a checkpoint restore,
    // which replaces the active flags wholesale — cached rows from before
    // the crash must be dropped, not reused positionally. Recovery must
    // land on the fault-free model bit-for-bit, with the full optimized
    // path (threads + cache + scatter) enabled.
    for seed in [31u64, 32] {
        let ds = blobs(seed);
        let clean = run(&ds, 3, 2, DotKind::Scatter, 1 << 20, true);
        // Also pin the clean optimized run to the unoptimized reference
        // before injecting any faults.
        let reference = run(&ds, 3, 1, DotKind::MergeJoin, 0, false);
        assert_eq!(model_bytes(&clean.model), model_bytes(&reference.model));
        let fp = FaultPlan::new(seed).crash_rank(1, 0.5 * clean.makespan);
        let recovered = DistSolver::new(&ds, params(1 << 20))
            .with_processes(3)
            .with_threads(2)
            .with_dots(DotKind::Scatter)
            .with_faults(fp)
            .with_checkpointing(CheckpointPolicy::every(8))
            .train()
            .expect("crash must be recovered");
        assert!(recovered.converged, "seed {seed}");
        assert_eq!(recovered.recoveries, 1, "seed {seed}");
        assert_eq!(
            model_bytes(&recovered.model),
            model_bytes(&clean.model),
            "seed {seed}: recovery must reproduce the fault-free model bit-for-bit"
        );
    }
}
