//! PerfDoctor acceptance suite on the 4-rank bench problem.
//!
//! The ISSUE-level guarantees, checked end-to-end through the real
//! distributed solver (not synthetic dependency logs):
//!
//! * the critical-path walk reproduces the makespan **bit-for-bit** — the
//!   hop chain telescopes from 0.0 to the makespan with no gaps;
//! * the five attribution buckets (compute, transfer, idle, retransmit,
//!   recovery) reconcile to total rank-time `p · makespan + recovery`
//!   within the checked tolerance;
//! * two same-seed runs emit **byte-identical** PerfDoctor JSON.

use shrinksvm_core::dist::{DistRunResult, DistSolver};
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::gaussian;
use shrinksvm_obs::json;

/// The bench_smoke configuration: 240 samples, 4 features, 4 ranks.
fn traced_run() -> DistRunResult {
    let ds = gaussian::two_blobs(240, 4, 3.0, 42);
    let params = SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.5))
        .with_epsilon(1e-3)
        .with_shrink(ShrinkPolicy::best());
    DistSolver::new(&ds, params)
        .with_processes(4)
        .with_tracing()
        .train()
        .expect("traced bench run")
}

#[test]
fn critical_path_reproduces_the_makespan_bit_for_bit() {
    let run = traced_run();
    let doc = run.perf.as_ref().expect("tracing attaches a PerfDoctor");

    assert_eq!(
        doc.makespan.to_bits(),
        run.makespan.to_bits(),
        "analyzer makespan must equal the solver makespan exactly"
    );
    let path = &doc.critical_path;
    assert!(path.start == 0.0 && path.start.is_sign_positive());
    assert_eq!(
        path.end.to_bits(),
        run.makespan.to_bits(),
        "path must terminate exactly at the makespan"
    );
    assert_eq!(
        path.total().to_bits(),
        run.makespan.to_bits(),
        "hop chain must telescope to the makespan bitwise"
    );
    // Contiguity: each hop starts exactly where the previous ended.
    for w in path.hops.windows(2) {
        assert_eq!(
            w[0].t1.to_bits(),
            w[1].t0.to_bits(),
            "gap between hops {:?} and {:?}",
            w[0],
            w[1]
        );
    }
    assert!(!path.hops.is_empty(), "a real run has a nonempty path");
    // The solver's fused sweep must show up as on-path compute.
    assert!(
        path.by_op.keys().any(|k| k.contains("fused_sweep")),
        "ops on path: {:?}",
        path.by_op.keys().collect::<Vec<_>>()
    );
}

#[test]
fn attribution_buckets_reconcile_to_total_rank_time() {
    let run = traced_run();
    let doc = run.perf.as_ref().expect("perf doctor");
    let attr = &doc.attribution;

    assert_eq!(attr.per_rank.len(), 4);
    let tol = 1e-9 * run.makespan.max(1e-9);

    // Per-rank: the four event buckets fill that rank's [0, makespan].
    let mut summed = 0.0;
    for (r, b) in attr.per_rank.iter().enumerate() {
        assert!(
            b.compute >= 0.0 && b.transfer >= 0.0 && b.idle >= 0.0 && b.retransmit >= 0.0,
            "negative bucket on rank {r}: {b:?}"
        );
        assert!(
            (b.total() - run.makespan).abs() <= tol,
            "rank {r} buckets sum to {} not makespan {}",
            b.total(),
            run.makespan
        );
        summed += b.total();
    }
    // Totals row equals the per-rank sum, and the five buckets (four
    // event buckets + recovery) reconcile to p·makespan + recovery.
    assert!((attr.totals.total() - summed).abs() <= 4.0 * tol);
    let five_bucket_sum = attr.totals.total() + attr.recovery;
    assert!(
        (five_bucket_sum - attr.total_rank_time(run.makespan)).abs() <= 4.0 * tol,
        "five buckets {} vs total rank-time {}",
        five_bucket_sum,
        attr.total_rank_time(run.makespan)
    );
    assert!(attr.reconcile_error <= 4.0 * tol);
    // A faultless run charges nothing to retransmit or recovery.
    assert_eq!(attr.totals.retransmit, 0.0);
    assert_eq!(attr.recovery, 0.0);
}

#[test]
fn perfdoctor_json_is_byte_identical_across_same_seed_runs() {
    let a = traced_run();
    let b = traced_run();
    let (da, db) = (a.perf.expect("perf a"), b.perf.expect("perf b"));
    let (ja, jb) = (da.to_json(), db.to_json());
    assert_eq!(ja, jb, "same-seed PerfDoctor JSON must be byte-identical");
    json::check(&ja).expect("PerfDoctor JSON well-formed");
    // And the text rendering, which feeds CI artifacts, is stable too.
    assert_eq!(da.render_text(), db.render_text());
}

#[test]
fn projections_bound_the_makespan_sensibly() {
    let run = traced_run();
    let doc = run.perf.expect("perf doctor");
    let p = &doc.projections;
    // What-if worlds only remove cost, so no projection exceeds reality.
    let slack = 1e-12 * run.makespan.max(1.0);
    assert!(p.zero_network <= run.makespan + slack, "{p:?}");
    assert!(p.perfect_balance <= run.makespan + slack, "{p:?}");
    assert!(p.infinite_cache <= run.makespan + slack, "{p:?}");
    // And none of them collapses to zero: compute is still charged.
    assert!(p.zero_network > 0.0 && p.perfect_balance > 0.0 && p.infinite_cache > 0.0);
}

#[test]
fn untraced_runs_carry_no_perf_report() {
    let ds = gaussian::two_blobs(120, 3, 4.0, 7);
    let params =
        SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(2.0)).with_shrink(ShrinkPolicy::best());
    let run = DistSolver::new(&ds, params)
        .with_processes(2)
        .train()
        .expect("untraced run");
    assert!(run.perf.is_none());
}
