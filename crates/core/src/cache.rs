//! LRU kernel-row cache.
//!
//! The paper grants the libsvm baseline "a compute node's entire memory as
//! a kernel cache" (§V-A); our distributed solver additionally reuses the
//! same structure per rank for the pivot rows of consecutive iterations
//! (the worst-violator pair is frequently reselected, exactly the locality
//! libsvm's cache exploits). This module is that cache: full kernel rows
//! keyed by sample index, evicted least-recently-used, with
//! hit/miss/insertion/eviction accounting so benchmarks can report cache
//! behavior, plus [`KernelCache::resize_rows`] so the distributed solver
//! can compact cached rows when a shrink pass contracts the active set.
//!
//! Rows are stored behind `Arc` so a caller can hold the two rows of the
//! current working pair while later fetches evict freely underneath.

// lint: ordered — the only iteration over this map (resize_rows) sorts
// the collected indices; lookups are order-blind O(1) on the hot path.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::Arc;

/// Intrusive doubly-linked-list node over a slab, giving O(1) LRU updates.
#[derive(Debug)]
struct Node {
    key: usize,
    prev: usize,
    next: usize,
    data: Arc<Vec<f64>>,
}

const NIL: usize = usize::MAX;

/// Hit/miss/insertion/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rows served from cache.
    pub hits: u64,
    /// Rows that had to be computed.
    pub misses: u64,
    /// Rows stored after a miss (misses with nonzero capacity).
    pub insertions: u64,
    /// Rows evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (zero when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of full kernel rows.
#[derive(Debug)]
#[allow(clippy::disallowed_types)]
pub struct KernelCache {
    map: HashMap<usize, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity_rows: usize,
    stats: CacheStats,
}

impl KernelCache {
    /// A cache holding at most `capacity_rows` rows (each `row_len` values).
    #[allow(clippy::disallowed_types)]
    pub fn with_capacity_rows(capacity_rows: usize) -> Self {
        KernelCache {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity_rows,
            stats: CacheStats::default(),
        }
    }

    /// A cache sized from a byte budget for rows of `row_len` `f64`s.
    ///
    /// A zero budget disables caching entirely (capacity 0). Any nonzero
    /// budget is granted **at least 2 rows**, even if it nominally pays for
    /// fewer: the solvers always work on a pivot *pair*, and a 1-row cache
    /// would evict one pivot to admit the other every single iteration —
    /// pure thrash that is strictly worse than the 2-row floor.
    pub fn with_byte_budget(bytes: usize, row_len: usize) -> Self {
        if bytes == 0 {
            return KernelCache::with_capacity_rows(0);
        }
        let row_bytes = row_len.max(1) * std::mem::size_of::<f64>();
        KernelCache::with_capacity_rows((bytes / row_bytes).max(2))
    }

    /// Maximum rows held.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no rows are held.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Fetch row `key`, computing it with `compute` on a miss. Never stores
    /// anything when the capacity is zero (every call recomputes).
    pub fn get_or_compute<F>(&mut self, key: usize, compute: F) -> Arc<Vec<f64>>
    where
        F: FnOnce() -> Vec<f64>,
    {
        if let Some(&idx) = self.map.get(&key) {
            self.stats.hits += 1;
            self.touch(idx);
            return Arc::clone(&self.nodes[idx].data);
        }
        self.stats.misses += 1;
        let data = Arc::new(compute());
        if self.capacity_rows == 0 {
            return data;
        }
        if self.map.len() >= self.capacity_rows {
            self.evict_lru();
        }
        let idx = self.alloc_node(key, Arc::clone(&data));
        self.push_front(idx);
        self.map.insert(key, idx);
        self.stats.insertions += 1;
        data
    }

    /// Compact every cached row in place: new row `j` is old row `keep[j]`.
    ///
    /// The distributed solver's cached rows span the rank's *active* local
    /// samples in local order; when a shrink pass removes samples, `keep`
    /// lists the old positions that survive (strictly ascending), and this
    /// gathers each cached row down to exactly the new active span. Rows are
    /// rebuilt behind fresh `Arc`s, so outstanding clones of the old,
    /// longer rows stay valid.
    ///
    /// # Panics
    /// Debug builds panic if `keep` is not strictly ascending or indexes
    /// past the end of a cached row.
    pub fn resize_rows(&mut self, keep: &[usize]) {
        debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
        let mut idxs: Vec<usize> = self.map.values().copied().collect();
        idxs.sort_unstable();
        for idx in idxs {
            let old = &self.nodes[idx].data;
            let new: Vec<f64> = keep.iter().map(|&p| old[p]).collect();
            self.nodes[idx].data = Arc::new(new);
        }
    }

    /// Drop every cached row (the solver calls this when α deltas
    /// invalidate nothing — rows are α-independent — so this exists for
    /// tests and memory pressure, not correctness).
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn alloc_node(&mut self, key: usize, data: Arc<Vec<f64>>) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                prev: NIL,
                next: NIL,
                data,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
                data,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert!(victim != NIL, "evict called on empty cache");
        self.unlink(victim);
        let key = self.nodes[victim].key;
        self.map.remove(&key);
        self.nodes[victim].data = Arc::new(Vec::new());
        self.free.push(victim);
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Vec<f64> {
        vec![v; 4]
    }

    #[test]
    fn hit_after_miss() {
        let mut c = KernelCache::with_capacity_rows(2);
        let a = c.get_or_compute(7, || row(7.0));
        assert_eq!(a[0], 7.0);
        let b = c.get_or_compute(7, || panic!("must not recompute"));
        assert_eq!(b[0], 7.0);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                insertions: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = KernelCache::with_capacity_rows(2);
        c.get_or_compute(1, || row(1.0));
        c.get_or_compute(2, || row(2.0));
        c.get_or_compute(1, || unreachable!()); // touch 1: now 2 is LRU
        c.get_or_compute(3, || row(3.0)); // evicts 2
        assert_eq!(c.len(), 2);
        c.get_or_compute(1, || panic!("1 must still be cached"));
        c.get_or_compute(3, || panic!("3 must still be cached"));
        let mut recomputed = false;
        c.get_or_compute(2, || {
            recomputed = true;
            row(2.0)
        });
        assert!(recomputed, "2 was evicted and must recompute");
        assert_eq!(c.stats().evictions, 2); // 2 evicted, then (1 or 3)
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = KernelCache::with_capacity_rows(3);
        for k in 0..50 {
            c.get_or_compute(k, || row(k as f64));
            assert!(c.len() <= 3);
        }
        assert_eq!(c.stats().misses, 50);
        assert_eq!(c.stats().evictions, 47);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut c = KernelCache::with_capacity_rows(0);
        let mut computes = 0;
        for _ in 0..3 {
            c.get_or_compute(1, || {
                computes += 1;
                row(1.0)
            });
        }
        assert_eq!(computes, 3);
        assert!(c.is_empty());
    }

    #[test]
    fn byte_budget_sizing() {
        // 4 f64s per row = 32 bytes; 100 bytes → 3 rows
        let c = KernelCache::with_byte_budget(100, 4);
        assert_eq!(c.capacity_rows(), 3);
        // A nonzero budget always fits the working pair: floor of 2 rows.
        let c = KernelCache::with_byte_budget(10, 4);
        assert_eq!(c.capacity_rows(), 2);
        let c = KernelCache::with_byte_budget(33, 4);
        assert_eq!(c.capacity_rows(), 2);
        // Zero budget means "no cache", not "tiny cache".
        let c = KernelCache::with_byte_budget(0, 4);
        assert_eq!(c.capacity_rows(), 0);
    }

    #[test]
    fn outstanding_arcs_survive_eviction() {
        let mut c = KernelCache::with_capacity_rows(1);
        let held = c.get_or_compute(1, || row(1.0));
        c.get_or_compute(2, || row(2.0)); // evicts 1
        assert_eq!(held[0], 1.0); // still alive through our Arc
    }

    #[test]
    fn clear_empties() {
        let mut c = KernelCache::with_capacity_rows(4);
        c.get_or_compute(1, || row(1.0));
        c.get_or_compute(2, || row(2.0));
        c.clear();
        assert!(c.is_empty());
        let mut recomputed = false;
        c.get_or_compute(1, || {
            recomputed = true;
            row(1.0)
        });
        assert!(recomputed);
    }

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-15);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn insertions_counted_only_when_stored() {
        let mut c = KernelCache::with_capacity_rows(0);
        c.get_or_compute(1, || row(1.0));
        assert_eq!(c.stats().insertions, 0, "capacity 0 never stores");
        let mut c = KernelCache::with_capacity_rows(1);
        c.get_or_compute(1, || row(1.0));
        c.get_or_compute(2, || row(2.0)); // evicts 1, inserts 2
        c.get_or_compute(2, || unreachable!()); // hit: no insert
        assert_eq!(c.stats().insertions, 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn resize_rows_compacts_every_cached_row() {
        let mut c = KernelCache::with_capacity_rows(4);
        c.get_or_compute(10, || vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        c.get_or_compute(20, || vec![5.0, 6.0, 7.0, 8.0, 9.0]);
        let held = c.get_or_compute(10, || unreachable!());
        // Positions 0, 2, 4 survive the shrink pass.
        c.resize_rows(&[0, 2, 4]);
        let r10 = c.get_or_compute(10, || panic!("10 must still be cached"));
        let r20 = c.get_or_compute(20, || panic!("20 must still be cached"));
        assert_eq!(*r10, vec![0.0, 2.0, 4.0]);
        assert_eq!(*r20, vec![5.0, 7.0, 9.0]);
        // Clones taken before compaction keep the old span.
        assert_eq!(held.len(), 5);
    }

    #[test]
    fn resize_rows_on_empty_cache_is_noop() {
        let mut c = KernelCache::with_capacity_rows(2);
        c.resize_rows(&[0, 1]);
        assert!(c.is_empty());
    }

    #[test]
    fn slab_reuse_is_consistent() {
        // hammer a small cache with a cyclic pattern; internal slab/free-list
        // must stay consistent
        let mut c = KernelCache::with_capacity_rows(2);
        for round in 0..10 {
            for k in 0..4 {
                let v = c.get_or_compute(k, || row(k as f64));
                assert_eq!(v[0], k as f64, "round {round}");
            }
        }
    }
}
