//! Kernel functions.
//!
//! The paper evaluates with the Gaussian kernel
//! `Φ(x, y) = exp(−γ‖x − y‖²)` and notes the infrastructure "allows us to
//! plugin other kernels (such as linear, polynomial)" (§V-C); all four
//! libsvm kernels are provided. Table III reports the kernel width `σ²`,
//! mapped to `γ = 1/(2σ²)` (the conventional reading of "width").
//!
//! [`KernelEval`] binds a kernel to a dataset and precomputes the per-row
//! squared norms so an RBF evaluation costs exactly one sparse dot product
//! — this is the paper's `λ` (Table I).

use crate::error::CoreError;
use shrinksvm_sparse::{ops, CsrMatrix, RowView};

/// Kernel family and parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelKind {
    /// `exp(−γ‖x−y‖²)` — the paper's evaluation kernel.
    Rbf {
        /// Width parameter `γ`.
        gamma: f64,
    },
    /// `⟨x, y⟩`.
    Linear,
    /// `(γ⟨x,y⟩ + coef0)^degree`.
    Poly {
        /// Scale applied to the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
    /// `tanh(γ⟨x,y⟩ + coef0)`.
    Sigmoid {
        /// Scale applied to the inner product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
}

impl KernelKind {
    /// Gaussian kernel from the paper's `σ²` convention: `γ = 1/(2σ²)`.
    pub fn rbf_from_sigma_sq(sigma_sq: f64) -> Self {
        KernelKind::Rbf {
            gamma: 1.0 / (2.0 * sigma_sq),
        }
    }

    /// Check parameter ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        let ok = match self {
            KernelKind::Rbf { gamma } => *gamma > 0.0,
            KernelKind::Linear => true,
            KernelKind::Poly { gamma, degree, .. } => *gamma > 0.0 && *degree >= 1,
            KernelKind::Sigmoid { gamma, .. } => *gamma > 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(CoreError::BadParams(format!(
                "invalid kernel parameters: {self:?}"
            )))
        }
    }

    /// Evaluate on two rows given their squared norms (norms are only used
    /// by the RBF branch).
    #[inline]
    pub fn eval(&self, a: RowView<'_>, b: RowView<'_>, a_sq: f64, b_sq: f64) -> f64 {
        self.eval_from_dot(ops::dot(a, b), a_sq, b_sq)
    }

    /// Evaluate from an already-computed inner product `⟨a, b⟩`.
    ///
    /// Every kernel family is a function of the dot product (plus the
    /// squared norms, for RBF), so [`eval`](Self::eval) is this applied to
    /// the merge-join dot. Callers that obtain the dot another way — e.g.
    /// the distributed solver's dense-scratch gather
    /// ([`shrinksvm_sparse::ops::dot_scatter`]), which is bit-identical to
    /// the merge-join — get bit-identical kernel values because the
    /// post-dot arithmetic is literally this one function either way.
    #[inline]
    pub fn eval_from_dot(&self, dot_ab: f64, a_sq: f64, b_sq: f64) -> f64 {
        match *self {
            KernelKind::Rbf { gamma } => {
                let d2 = ops::squared_distance_from_dot(dot_ab, a_sq, b_sq);
                (-gamma * d2).exp()
            }
            KernelKind::Linear => dot_ab,
            KernelKind::Poly {
                gamma,
                coef0,
                degree,
            } => (gamma * dot_ab + coef0).powi(degree as i32),
            KernelKind::Sigmoid { gamma, coef0 } => (gamma * dot_ab + coef0).tanh(),
        }
    }

    /// Evaluate without cached norms (computes them on the fly).
    pub fn eval_direct(&self, a: RowView<'_>, b: RowView<'_>) -> f64 {
        self.eval(a, b, a.squared_norm(), b.squared_norm())
    }

    /// Short display name used by model files and reports.
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::Rbf { .. } => "rbf",
            KernelKind::Linear => "linear",
            KernelKind::Poly { .. } => "poly",
            KernelKind::Sigmoid { .. } => "sigmoid",
        }
    }
}

/// A kernel bound to one dataset, with cached row norms.
pub struct KernelEval<'a> {
    kind: KernelKind,
    x: &'a CsrMatrix,
    sq_norms: Vec<f64>,
}

impl<'a> KernelEval<'a> {
    /// Bind `kind` to `x`, computing the per-row squared norms once.
    pub fn new(kind: KernelKind, x: &'a CsrMatrix) -> Self {
        KernelEval {
            kind,
            x,
            sq_norms: x.row_squared_norms(),
        }
    }

    /// The bound kernel.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The bound matrix.
    pub fn matrix(&self) -> &'a CsrMatrix {
        self.x
    }

    /// Cached squared norm of row `i`.
    #[inline]
    pub fn sq_norm(&self, i: usize) -> f64 {
        self.sq_norms[i]
    }

    /// `K(x_i, x_j)` between two bound rows.
    #[inline]
    pub fn k(&self, i: usize, j: usize) -> f64 {
        self.kind.eval(
            self.x.row(i),
            self.x.row(j),
            self.sq_norms[i],
            self.sq_norms[j],
        )
    }

    /// `K(x_i, v)` between a bound row and a foreign vector with known
    /// squared norm (how the distributed solver evaluates received rows).
    #[inline]
    pub fn k_vs(&self, i: usize, v: RowView<'_>, v_sq: f64) -> f64 {
        self.kind.eval(self.x.row(i), v, self.sq_norms[i], v_sq)
    }

    /// Fill `out[j] = K(x_i, x_j)` for all bound rows (a full kernel row —
    /// what the baseline's cache stores).
    pub fn fill_row(&self, i: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.x.nrows());
        let ri = self.x.row(i);
        let sqi = self.sq_norms[i];
        for (j, slot) in out.iter_mut().enumerate() {
            *slot = self.kind.eval(ri, self.x.row(j), sqi, self.sq_norms[j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CsrMatrix {
        CsrMatrix::from_dense(
            &[
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![0.5, -0.5],
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn rbf_self_is_one_and_bounded() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.5 }, &x);
        for i in 0..4 {
            assert!((ke.k(i, i) - 1.0).abs() < 1e-15);
            for j in 0..4 {
                let v = ke.k(i, j);
                assert!(v > 0.0 && v <= 1.0, "rbf out of (0,1]: {v}");
                assert!((v - ke.k(j, i)).abs() < 1e-15, "symmetry");
            }
        }
    }

    #[test]
    fn rbf_matches_closed_form() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 2.0 }, &x);
        // ||x0 - x1||^2 = 2
        assert!((ke.k(0, 1) - (-4.0f64).exp()).abs() < 1e-15);
    }

    #[test]
    fn sigma_sq_convention() {
        let k = KernelKind::rbf_from_sigma_sq(4.0);
        match k {
            KernelKind::Rbf { gamma } => assert!((gamma - 0.125).abs() < 1e-15),
            _ => unreachable!(),
        }
    }

    #[test]
    fn linear_is_dot() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Linear, &x);
        assert_eq!(ke.k(0, 2), 1.0);
        assert_eq!(ke.k(2, 3), 0.0);
    }

    #[test]
    fn poly_matches_manual() {
        let x = matrix();
        let ke = KernelEval::new(
            KernelKind::Poly {
                gamma: 1.0,
                coef0: 1.0,
                degree: 2,
            },
            &x,
        );
        // (⟨x0,x2⟩ + 1)^2 = (1+1)^2 = 4
        assert_eq!(ke.k(0, 2), 4.0);
    }

    #[test]
    fn sigmoid_is_tanh() {
        let x = matrix();
        let ke = KernelEval::new(
            KernelKind::Sigmoid {
                gamma: 1.0,
                coef0: 0.0,
            },
            &x,
        );
        assert!((ke.k(0, 2) - 1.0f64.tanh()).abs() < 1e-15);
    }

    #[test]
    fn foreign_row_eval_matches_bound() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 1.0 }, &x);
        let foreign = x.row(3);
        let fsq = foreign.squared_norm();
        for i in 0..4 {
            assert!((ke.k_vs(i, foreign, fsq) - ke.k(i, 3)).abs() < 1e-15);
        }
    }

    #[test]
    fn fill_row_matches_pointwise() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.7 }, &x);
        let mut row = vec![0.0; 4];
        ke.fill_row(2, &mut row);
        for (j, v) in row.iter().enumerate() {
            assert_eq!(*v, ke.k(2, j));
        }
    }

    #[test]
    fn eval_from_dot_bitwise_matches_eval() {
        let x = matrix();
        let kinds = [
            KernelKind::Rbf { gamma: 0.7 },
            KernelKind::Linear,
            KernelKind::Poly {
                gamma: 0.5,
                coef0: 1.0,
                degree: 3,
            },
            KernelKind::Sigmoid {
                gamma: 0.5,
                coef0: -0.5,
            },
        ];
        for kind in kinds {
            let ke = KernelEval::new(kind, &x);
            for i in 0..4 {
                for j in 0..4 {
                    let d = shrinksvm_sparse::ops::dot(x.row(i), x.row(j));
                    let via = kind.eval_from_dot(d, ke.sq_norm(i), ke.sq_norm(j));
                    assert_eq!(via.to_bits(), ke.k(i, j).to_bits(), "{kind:?} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn eval_direct_matches_cached() {
        let x = matrix();
        let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.3 }, &x);
        let v = KernelKind::Rbf { gamma: 0.3 }.eval_direct(x.row(0), x.row(1));
        assert!((v - ke.k(0, 1)).abs() < 1e-15);
    }

    #[test]
    fn names() {
        assert_eq!(KernelKind::Linear.name(), "linear");
        assert_eq!(KernelKind::Rbf { gamma: 1.0 }.name(), "rbf");
    }
}
