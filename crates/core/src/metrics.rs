//! Evaluation metrics (Table V reports testing accuracy).

use shrinksvm_sparse::Dataset;

use crate::model::SvmModel;

/// Confusion counts for a binary classifier (+1 = positive class).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Positive predicted positive.
    pub tp: usize,
    /// Negative predicted positive.
    pub fp: usize,
    /// Negative predicted negative.
    pub tn: usize,
    /// Positive predicted negative.
    pub fn_: usize,
}

impl Confusion {
    /// Evaluate `model` on `ds`.
    pub fn evaluate(model: &SvmModel, ds: &Dataset) -> Confusion {
        let mut c = Confusion::default();
        for i in 0..ds.len() {
            let pred = model.predict(ds.x.row(i));
            match (ds.y[i] > 0.0, pred > 0.0) {
                (true, true) => c.tp += 1,
                (false, true) => c.fp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Fraction classified correctly.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// Positive-class precision `tp/(tp+fp)` (0 when nothing predicted
    /// positive).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Positive-class recall `tp/(tp+fn)`.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Test-set accuracy of `model` on `ds` in `[0, 1]`.
pub fn accuracy(model: &SvmModel, ds: &Dataset) -> f64 {
    Confusion::evaluate(model, ds).accuracy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use shrinksvm_sparse::CsrMatrix;

    fn axis_model() -> SvmModel {
        // D(x) = x0 (predict sign of first coordinate)
        let sv = CsrMatrix::from_dense(&[vec![1.0, 0.0]], 2).unwrap();
        SvmModel::new(KernelKind::Linear, sv, vec![1.0], 0.0).unwrap()
    }

    fn ds(rows: &[(f64, f64)]) -> Dataset {
        let x: Vec<Vec<f64>> = rows.iter().map(|(v, _)| vec![*v, 0.0]).collect();
        let y: Vec<f64> = rows.iter().map(|(_, l)| *l).collect();
        Dataset::new(CsrMatrix::from_dense(&x, 2).unwrap(), y).unwrap()
    }

    #[test]
    fn confusion_counts_each_quadrant() {
        let m = axis_model();
        let data = ds(&[
            (1.0, 1.0),
            (2.0, -1.0),
            (-1.0, -1.0),
            (-2.0, 1.0),
            (3.0, 1.0),
        ]);
        let c = Confusion::evaluate(&m, &data);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-15);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-15);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-15);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let m = axis_model();
        let data = ds(&[(1.0, 1.0), (-1.0, -1.0)]);
        assert_eq!(accuracy(&m, &data), 1.0);
        let c = Confusion::evaluate(&m, &data);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn empty_dataset_is_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}
