//! Execution traces of a training run.
//!
//! A [`Trace`] records what the performance projector
//! ([`crate::perfmodel`]) needs to model the run at any process count:
//! the iteration count, the *sum over iterations of the global active-set
//! size* (which divided by `p` is each rank's γ-update work), and every
//! gradient-reconstruction event with the volumes it moved. A sampled
//! active-set curve is kept for reports like the paper's §V-D3/D4
//! narratives ("shrinking continues almost to convergence", "75% of
//! iterations ran with 20% of samples active").

/// One gradient-reconstruction event (Algorithm 3 invocation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReconEvent {
    /// Global iteration index at which reconstruction ran.
    pub at_iteration: u64,
    /// Globally shrunk samples whose gradients were recomputed (and which
    /// were reactivated).
    pub reactivated: u64,
    /// Samples with `α > 0` circulated around the ring.
    pub sv_count: u64,
    /// Total payload bytes circulated (sum over ranks of their block).
    pub sv_bytes: u64,
}

/// Merged (global) trace of one training run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Global sample count.
    pub n: u64,
    /// Mean stored entries per sample.
    pub mean_row_nnz: f64,
    /// Total SMO iterations.
    pub iterations: u64,
    /// `Σ_t A_t`: the global active-set size summed over iterations.
    pub sum_active: u128,
    /// Reconstruction events, in order.
    pub recon_events: Vec<ReconEvent>,
    /// Sampled `(iteration, global active count)` pairs (recorded at every
    /// shrink pass and reconstruction).
    pub active_curve: Vec<(u64, u64)>,
    /// Whether the run reached optimality.
    pub converged: bool,
    /// Final `β_low − β_up`.
    pub final_gap: f64,
}

impl Trace {
    /// Mean active-set size per iteration (equals `n` for no-shrinking
    /// runs).
    pub fn mean_active(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.sum_active as f64 / self.iterations as f64
        }
    }

    /// Fraction of γ-update work eliminated by shrinking, relative to a
    /// run that kept every sample active.
    pub fn work_saved(&self) -> f64 {
        let full = self.n as u128 * self.iterations as u128;
        if full == 0 {
            0.0
        } else {
            1.0 - self.sum_active as f64 / full as f64
        }
    }

    /// Fraction of iterations during which at most `frac·n` samples were
    /// active (from the sampled curve; the §V-D4 "75% of iterations had
    /// ≤ 20% active" style statistic). Returns `None` when the curve has
    /// fewer than two points.
    pub fn fraction_of_iterations_below(&self, frac: f64) -> Option<f64> {
        if self.active_curve.len() < 2 || self.iterations == 0 {
            return None;
        }
        let threshold = self.n as f64 * frac;
        let mut below = 0u64;
        // treat each curve segment as constant at its left endpoint
        for w in self.active_curve.windows(2) {
            if (w[0].1 as f64) <= threshold {
                below += w[1].0 - w[0].0;
            }
        }
        // tail segment to the end of the run
        if let Some(&(it, a)) = self.active_curve.last() {
            if (a as f64) <= threshold {
                below += self.iterations.saturating_sub(it);
            }
        }
        Some(below as f64 / self.iterations as f64)
    }
}

/// Per-rank trace fragment, merged by the driver into a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct RankTrace {
    /// `Σ_t` (local active count) on this rank.
    pub sum_active_local: u128,
    /// Iterations this rank executed (identical on every rank).
    pub iterations: u64,
    /// Reconstruction events (identical on every rank — all fields come
    /// from allreduced values).
    pub recon_events: Vec<ReconEvent>,
    /// Sampled global active counts (identical on every rank).
    pub active_curve: Vec<(u64, u64)>,
    /// Local kernel-evaluation count.
    pub kernel_evals: u64,
}

/// Merge per-rank fragments (summing local fields, taking global fields
/// from rank 0).
pub fn merge_rank_traces(
    ranks: &[RankTrace],
    n: u64,
    mean_row_nnz: f64,
    converged: bool,
    final_gap: f64,
) -> Trace {
    assert!(!ranks.is_empty());
    let sum_active = ranks.iter().map(|r| r.sum_active_local).sum();
    Trace {
        n,
        mean_row_nnz,
        iterations: ranks[0].iterations,
        sum_active,
        recon_events: ranks[0].recon_events.clone(),
        active_curve: ranks[0].active_curve.clone(),
        converged,
        final_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_active_and_work_saved() {
        let t = Trace {
            n: 100,
            iterations: 10,
            sum_active: 500, // mean 50 of 100 → half the work saved
            ..Default::default()
        };
        assert_eq!(t.mean_active(), 50.0);
        assert!((t.work_saved() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_iteration_trace_is_safe() {
        let t = Trace::default();
        assert_eq!(t.mean_active(), 0.0);
        assert_eq!(t.work_saved(), 0.0);
        assert!(t.fraction_of_iterations_below(0.5).is_none());
    }

    #[test]
    fn fraction_below_integrates_curve() {
        let t = Trace {
            n: 100,
            iterations: 100,
            active_curve: vec![(0, 100), (25, 10), (75, 5)],
            ..Default::default()
        };
        // [0,25): 100 active (above 20%); [25,75): 10 (below); [75,100): 5 (below)
        let f = t.fraction_of_iterations_below(0.2).unwrap();
        assert!((f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_local_and_keeps_global() {
        let r0 = RankTrace {
            sum_active_local: 30,
            iterations: 7,
            recon_events: vec![ReconEvent {
                at_iteration: 5,
                reactivated: 4,
                sv_count: 2,
                sv_bytes: 64,
            }],
            active_curve: vec![(5, 6)],
            kernel_evals: 10,
        };
        let r1 = RankTrace {
            sum_active_local: 12,
            iterations: 7,
            recon_events: r0.recon_events.clone(),
            active_curve: r0.active_curve.clone(),
            kernel_evals: 11,
        };
        let t = merge_rank_traces(&[r0, r1], 10, 3.5, true, 1e-4);
        assert_eq!(t.sum_active, 42);
        assert_eq!(t.iterations, 7);
        assert_eq!(t.recon_events.len(), 1);
        assert_eq!(t.n, 10);
        assert!(t.converged);
    }
}
