//! Shrinking heuristics — Table II of the paper.
//!
//! A shrinking configuration is three choices:
//!
//! 1. **Initial threshold** ([`Heuristic`]): how many iterations to run
//!    before the first shrink pass — a fixed count (`random: k`, after
//!    Lin et al.'s libsvm default) or a fraction of the sample count
//!    (`numsamples: x%`, from the paper's `ζ ≪ N` intuition, §IV-A1).
//! 2. **Subsequent threshold** ([`SubsequentPolicy`]): after a shrink pass,
//!    wait either the global *active working-set size* (the paper's
//!    adaptive choice, Algorithm 4 lines 27–29) or the initial threshold
//!    again (§IV-A2's "default approach").
//! 3. **Reconstruction policy** ([`ReconPolicy`]): reconstruct gradients
//!    once at the end (Algorithm 4) or repeatedly, starting at `20ε`
//!    (Algorithm 5).
//!
//! [`ShrinkPolicy::table2`] enumerates the paper's 13 rows with their
//! aggressive/average/conservative classification.

/// Initial-shrinking-threshold heuristic (§IV-A1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Heuristic {
    /// Never shrink — the *Original* algorithm (`n = ∞`).
    None,
    /// First shrink pass after a fixed number of iterations
    /// (the paper's `random: k` rows; k ∈ {2, 500, 1000}).
    Random(u64),
    /// First shrink pass after `fraction · N` iterations
    /// (the paper's `numsamples: x%` rows; x ∈ {5, 10, 50}).
    NumSamples(f64),
}

/// When to re-arm the shrink counter after a pass (§IV-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubsequentPolicy {
    /// Next threshold = current global active-set size (Algorithm 4's
    /// Allreduce of `δ_new`) — every active sample gets visited at least
    /// once before the next pass.
    ActiveSetSize,
    /// Reuse the initial threshold.
    SameAsInitial,
}

/// How gradient reconstruction restores exactness (§IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReconPolicy {
    /// Algorithm 4: converge the active set to `2ε`, reconstruct once,
    /// disable shrinking, converge again.
    Single,
    /// Algorithm 5: converge the active set to `20ε`, reconstruct, then
    /// repeat converge-to-`2ε`/reconstruct (shrinking stays enabled) until
    /// optimality survives a reconstruction.
    Multi,
    /// No reconstruction: samples are eliminated *permanently* — the
    /// design the paper rejects (§IV, citing Communication-Avoiding SVM
    /// \[27\]) because it can return an inexact solution. Provided for the
    /// accuracy-loss ablation; never part of Table II.
    Never,
}

/// Aggressiveness class from Table II (★ aggressive, ◇ average,
/// • conservative).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeuristicClass {
    /// Early elimination (★).
    Aggressive,
    /// Middle ground (◇).
    Average,
    /// Late elimination (•).
    Conservative,
    /// The no-shrinking Original row.
    NotApplicable,
}

impl std::fmt::Display for HeuristicClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HeuristicClass::Aggressive => "aggressive",
            HeuristicClass::Average => "average",
            HeuristicClass::Conservative => "conservative",
            HeuristicClass::NotApplicable => "n/a",
        };
        f.write_str(s)
    }
}

/// A complete shrinking configuration (one row of Table II).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShrinkPolicy {
    /// Initial threshold heuristic.
    pub heuristic: Heuristic,
    /// Subsequent threshold policy.
    pub subsequent: SubsequentPolicy,
    /// Gradient-reconstruction policy.
    pub recon: ReconPolicy,
}

impl ShrinkPolicy {
    /// The *Original* (no-shrinking) configuration.
    pub fn none() -> Self {
        ShrinkPolicy {
            heuristic: Heuristic::None,
            subsequent: SubsequentPolicy::ActiveSetSize,
            recon: ReconPolicy::Single,
        }
    }

    /// A named configuration with the paper's adaptive subsequent policy.
    pub fn new(heuristic: Heuristic, recon: ReconPolicy) -> Self {
        ShrinkPolicy {
            heuristic,
            subsequent: SubsequentPolicy::ActiveSetSize,
            recon,
        }
    }

    /// True when this policy never shrinks.
    pub fn is_none(&self) -> bool {
        matches!(self.heuristic, Heuristic::None)
    }

    /// Iterations before the first shrink pass for an `n`-sample problem;
    /// `None` when shrinking is disabled.
    pub fn initial_threshold(&self, n: usize) -> Option<u64> {
        match self.heuristic {
            Heuristic::None => None,
            Heuristic::Random(k) => Some(k.max(1)),
            Heuristic::NumSamples(f) => Some(((n as f64 * f) as u64).max(1)),
        }
    }

    /// The paper's name for this configuration ("Multi5pc", "Single500",
    /// "Original", …).
    pub fn name(&self) -> String {
        let prefix = match (self.is_none(), self.recon) {
            (true, _) => return "Original".to_string(),
            (false, ReconPolicy::Single) => "Single",
            (false, ReconPolicy::Multi) => "Multi",
            (false, ReconPolicy::Never) => "Permanent",
        };
        match self.heuristic {
            Heuristic::None => unreachable!(),
            Heuristic::Random(k) => format!("{prefix}{k}"),
            Heuristic::NumSamples(f) => format!("{prefix}{}pc", (f * 100.0).round() as u64),
        }
    }

    /// Aggressiveness class per Table II.
    pub fn class(&self) -> HeuristicClass {
        match self.heuristic {
            Heuristic::None => HeuristicClass::NotApplicable,
            Heuristic::Random(k) if k <= 500 => HeuristicClass::Aggressive,
            Heuristic::Random(_) => HeuristicClass::Average,
            Heuristic::NumSamples(f) if f <= 0.05 => HeuristicClass::Aggressive,
            Heuristic::NumSamples(f) if f <= 0.10 => HeuristicClass::Average,
            Heuristic::NumSamples(_) => HeuristicClass::Conservative,
        }
    }

    /// All 13 rows of Table II, in table order.
    pub fn table2() -> Vec<ShrinkPolicy> {
        let mut rows = vec![ShrinkPolicy::none()];
        for recon in [ReconPolicy::Single, ReconPolicy::Multi] {
            for h in [
                Heuristic::Random(2),
                Heuristic::Random(500),
                Heuristic::Random(1000),
                Heuristic::NumSamples(0.05),
                Heuristic::NumSamples(0.10),
                Heuristic::NumSamples(0.50),
            ] {
                rows.push(ShrinkPolicy::new(h, recon));
            }
        }
        rows
    }

    /// Parse a Table-II-style name ("Original", "Single500", "Multi5pc",
    /// "Permanent10pc", ...). Case-insensitive. Returns `None` for
    /// unrecognized names.
    pub fn parse(name: &str) -> Option<ShrinkPolicy> {
        let lower = name.to_ascii_lowercase();
        if lower == "original" || lower == "none" {
            return Some(ShrinkPolicy::none());
        }
        let (recon, rest) = if let Some(r) = lower.strip_prefix("single") {
            (ReconPolicy::Single, r)
        } else if let Some(r) = lower.strip_prefix("multi") {
            (ReconPolicy::Multi, r)
        } else if let Some(r) = lower.strip_prefix("permanent") {
            (ReconPolicy::Never, r)
        } else {
            return None;
        };
        let heuristic = if let Some(pc) = rest.strip_suffix("pc") {
            let v: f64 = pc.parse().ok()?;
            if !(0.0..=100.0).contains(&v) {
                return None;
            }
            Heuristic::NumSamples(v / 100.0)
        } else {
            let k: u64 = rest.parse().ok()?;
            Heuristic::Random(k)
        };
        Some(ShrinkPolicy::new(heuristic, recon))
    }

    /// The paper's overall best heuristic (§V-D2): `Multi5pc`.
    pub fn best() -> Self {
        ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Multi)
    }

    /// The paper's overall worst heuristic (§V-D1): `Single50pc`.
    pub fn worst() -> Self {
        ShrinkPolicy::new(Heuristic::NumSamples(0.50), ReconPolicy::Single)
    }
}

/// Decide whether a sample may be shrunk — Eq. (9) / Figure 2.
///
/// `in_up_only` means the sample is in `I1 ∪ I2` (participates only in the
/// `β_up` scan); `in_low_only` means `I3 ∪ I4`. Samples in `I0` are in both
/// scans and never shrinkable.
#[inline]
pub fn shrinkable(
    gamma: f64,
    in_up_only: bool,
    in_low_only: bool,
    beta_up: f64,
    beta_low: f64,
) -> bool {
    (in_low_only && gamma < beta_up) || (in_up_only && gamma > beta_low)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_13_rows_with_paper_names() {
        let rows = ShrinkPolicy::table2();
        assert_eq!(rows.len(), 13);
        let names: Vec<String> = rows.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec![
                "Original",
                "Single2",
                "Single500",
                "Single1000",
                "Single5pc",
                "Single10pc",
                "Single50pc",
                "Multi2",
                "Multi500",
                "Multi1000",
                "Multi5pc",
                "Multi10pc",
                "Multi50pc",
            ]
        );
    }

    #[test]
    fn table2_classes_match_paper() {
        use HeuristicClass::*;
        let classes: Vec<HeuristicClass> =
            ShrinkPolicy::table2().iter().map(|r| r.class()).collect();
        assert_eq!(
            classes,
            vec![
                NotApplicable,
                Aggressive,
                Aggressive,
                Average,
                Aggressive,
                Average,
                Conservative,
                Aggressive,
                Aggressive,
                Average,
                Aggressive,
                Average,
                Conservative,
            ]
        );
    }

    #[test]
    fn initial_threshold_math() {
        assert_eq!(ShrinkPolicy::none().initial_threshold(1000), None);
        assert_eq!(
            ShrinkPolicy::new(Heuristic::Random(500), ReconPolicy::Single).initial_threshold(9),
            Some(500)
        );
        assert_eq!(
            ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Multi)
                .initial_threshold(60_000),
            Some(3_000)
        );
        // MNIST §V-D4: 50% of 60k = 30k iterations — past convergence.
        assert_eq!(
            ShrinkPolicy::worst().initial_threshold(60_000),
            Some(30_000)
        );
        // floors at 1
        assert_eq!(
            ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Multi).initial_threshold(3),
            Some(1)
        );
    }

    #[test]
    fn best_and_worst_are_paper_findings() {
        assert_eq!(ShrinkPolicy::best().name(), "Multi5pc");
        assert_eq!(ShrinkPolicy::worst().name(), "Single50pc");
    }

    #[test]
    fn shrink_condition_eq9() {
        // β_up = -1, β_low = +1 (still optimizing).
        let (bu, bl) = (-1.0, 1.0);
        // I3∪I4 sample with γ below β_up → shrink
        assert!(shrinkable(-2.0, false, true, bu, bl));
        // I3∪I4 sample inside the bracket → keep
        assert!(!shrinkable(0.0, false, true, bu, bl));
        // I1∪I2 sample with γ above β_low → shrink
        assert!(shrinkable(2.0, true, false, bu, bl));
        // I1∪I2 sample inside bracket → keep
        assert!(!shrinkable(0.5, true, false, bu, bl));
        // I0 (neither flag) → never
        assert!(!shrinkable(5.0, false, false, bu, bl));
        assert!(!shrinkable(-5.0, false, false, bu, bl));
    }

    #[test]
    fn display_classes() {
        assert_eq!(HeuristicClass::Aggressive.to_string(), "aggressive");
    }

    #[test]
    fn parse_round_trips_table2_names() {
        for policy in ShrinkPolicy::table2() {
            let parsed = ShrinkPolicy::parse(&policy.name()).unwrap();
            assert_eq!(parsed.heuristic, policy.heuristic, "{}", policy.name());
            assert_eq!(parsed.recon, policy.recon, "{}", policy.name());
        }
    }

    #[test]
    fn parse_handles_case_aliases_and_garbage() {
        assert_eq!(
            ShrinkPolicy::parse("original").unwrap(),
            ShrinkPolicy::none()
        );
        assert_eq!(ShrinkPolicy::parse("NONE").unwrap(), ShrinkPolicy::none());
        assert_eq!(
            ShrinkPolicy::parse("multi5pc").unwrap().recon,
            ReconPolicy::Multi
        );
        assert_eq!(
            ShrinkPolicy::parse("Permanent10pc").unwrap().recon,
            ReconPolicy::Never
        );
        assert!(ShrinkPolicy::parse("").is_none());
        assert!(ShrinkPolicy::parse("turbo9000").is_none());
        assert!(ShrinkPolicy::parse("multi").is_none());
        assert!(ShrinkPolicy::parse("single200pc").is_none());
    }
}
