//! The Table-I cost model: calibrated compute rates plus the LogGP network
//! parameters, used two ways —
//!
//! 1. **online**, by the distributed solver, to charge simulated clock time
//!    per kernel evaluation while `mpisim` charges the communication; and
//! 2. **offline**, by [`MachineModel::project`], to re-cost a measured
//!    [`Trace`] at an arbitrary process count `p` — how the harness
//!    produces the paper's 512–4096-process points on a single host
//!    (substitution documented in DESIGN.md §4).
//!
//! The projection mirrors the paper's complexity analysis: per iteration,
//! each rank performs `A_t/p` gradient updates of two kernel evaluations
//! each (§III-B2), a three-evaluation α solve, two scalar Allreduces of
//! `Θ(l·log p)` and the two-row broadcast (§III-B1); each reconstruction
//! costs `(|ω|/p)·|ζ|` evaluations of compute and `Θ(|X−Ȧ|·G)` of ring
//! bandwidth (§IV-B1/B2).

use std::time::Instant;

use shrinksvm_mpisim::CostParams;
use shrinksvm_sparse::CsrMatrix;

use crate::kernel::{KernelEval, KernelKind};
use crate::trace::Trace;

/// Per-kernel-evaluation compute charges (the paper's `λ`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeCharge {
    /// Seconds per stored entry touched by the sparse merge-join
    /// (an evaluation of rows with `a`/`b` entries touches `a + b`).
    /// The dense-scratch gather dot touches only `a` per evaluation, plus
    /// one scatter/unscatter of `b` per pivot — charged at this same rate.
    pub lambda_per_nnz: f64,
    /// Fixed seconds per evaluation (exp call, loop setup).
    pub kernel_overhead: f64,
    /// Fixed seconds per kernel-cache probe (hash lookup + LRU touch).
    /// Charged on hits in place of the evaluation they avoided.
    pub cache_lookup: f64,
    /// Seconds per dense fused multiply-add, charged when a γ update reads
    /// a cached kernel value instead of evaluating: the sweep still pays
    /// one fma per active sample, just never the sparse dot. Dense
    /// streaming is cheaper than the merge-join's branchy walk, hence a
    /// rate below `lambda_per_nnz`.
    pub fma_per_elem: f64,
}

impl ComputeCharge {
    /// Cost of one kernel evaluation between rows totalling `nnz` stored
    /// entries.
    #[inline]
    pub fn eval_cost(&self, nnz: usize) -> f64 {
        self.kernel_overhead + self.lambda_per_nnz * nnz as f64
    }
}

impl Default for ComputeCharge {
    fn default() -> Self {
        // Typical single-core figures for the sparse f64 merge-join;
        // `MachineModel::calibrate` replaces these with measurements.
        ComputeCharge {
            lambda_per_nnz: 2.0e-9,
            kernel_overhead: 25.0e-9,
            cache_lookup: 30.0e-9,
            fma_per_elem: 0.5e-9,
        }
    }
}

/// The full machine model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineModel {
    /// Kernel-evaluation charges.
    pub charge: ComputeCharge,
    /// Per-iteration scalar bookkeeping seconds (set scans, counters).
    pub iter_overhead: f64,
    /// Network parameters (Table I's `l` and `1/G`).
    pub net: CostParams,
}

impl Default for MachineModel {
    fn default() -> Self {
        MachineModel {
            charge: ComputeCharge::default(),
            iter_overhead: 2.0e-7,
            net: CostParams::fdr(),
        }
    }
}

impl MachineModel {
    /// Measure `λ` on this host by timing kernel evaluations over a sample
    /// of `x`'s rows. Deterministic row choice; ~1 ms of measurement.
    pub fn calibrate(kind: KernelKind, x: &CsrMatrix) -> MachineModel {
        let n = x.nrows();
        let mut model = MachineModel::default();
        if n < 2 {
            return model;
        }
        let ke = KernelEval::new(kind, x);
        // Warm up, then time a deterministic pseudo-random pair sweep.
        let pairs: Vec<(usize, usize)> = (0..4096usize)
            .map(|k| {
                let a = (k.wrapping_mul(2654435761)) % n;
                let b = (k.wrapping_mul(40503) + 7) % n;
                (a, b)
            })
            .collect();
        let mut sink = 0.0f64;
        for &(a, b) in pairs.iter().take(256) {
            sink += ke.k(a, b);
        }
        let mut nnz_touched = 0usize;
        #[allow(clippy::disallowed_methods)]
        // allow-wall-clock: calibrating real kernel throughput on the host
        let start = Instant::now();
        for &(a, b) in &pairs {
            sink += ke.k(a, b);
            nnz_touched += x.row_nnz(a) + x.row_nnz(b);
        }
        let elapsed = start.elapsed().as_secs_f64();
        std::hint::black_box(sink);
        if nnz_touched > 0 && elapsed > 0.0 {
            let per_eval_fixed = model.charge.kernel_overhead * pairs.len() as f64;
            let var = (elapsed - per_eval_fixed).max(elapsed * 0.2);
            model.charge.lambda_per_nnz = var / nnz_touched as f64;
        }
        model
    }

    /// Critical-path time of a `log p`-round scalar collective.
    pub fn allreduce_time(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * (self.net.send_overhead + self.net.wire_time(bytes))
    }

    /// Critical-path time of a binomial-tree broadcast.
    pub fn bcast_time(&self, p: usize, bytes: usize) -> f64 {
        self.allreduce_time(p, bytes)
    }

    /// Project a measured trace to `p` processes.
    ///
    /// `row_bytes` is the serialized size of one sample (for the pair
    /// broadcast and ring volumes).
    pub fn project(&self, trace: &Trace, p: usize, row_bytes: f64) -> Projection {
        assert!(p >= 1);
        let pf = p as f64;
        let eval = self
            .charge
            .eval_cost(trace.mean_row_nnz.ceil() as usize * 2);
        let iters = trace.iterations as f64;

        // γ updates: Σ_t ceil(A_t / p) · 2 evals ≤ (Σ A_t / p + iters) · 2.
        let gamma_compute = (trace.sum_active as f64 / pf + iters) * 2.0 * eval;
        // α solve: 3 kernel evaluations + scalar bookkeeping per iteration.
        let alpha_compute = iters * (3.0 * eval + self.iter_overhead);
        // Pair agreement: two 16-byte MINLOC/MAXLOC allreduces, the
        // owner→root routing of two rows, and the two-row broadcast.
        let route = 2.0 * (self.net.send_overhead + self.net.wire_time(row_bytes as usize));
        let pair_comm = iters
            * (2.0 * self.allreduce_time(p, 16)
                + if p > 1 { route } else { 0.0 }
                + self.bcast_time(p, (2.0 * row_bytes) as usize));

        // Reconstructions: (|ω|/p)·|ζ| evaluations; ring moves the SV block
        // through p hops — Θ(|ζ|·row_bytes·G) + p latencies (§IV-B2).
        let mut recon_compute = 0.0;
        let mut recon_comm = 0.0;
        for ev in &trace.recon_events {
            recon_compute += (ev.reactivated as f64 / pf).ceil() * ev.sv_count as f64 * eval;
            if p > 1 {
                recon_comm += ev.sv_bytes as f64 * self.net.gap_per_byte
                    + pf * (self.net.latency + self.net.send_overhead);
            }
        }

        Projection {
            p,
            gamma_compute,
            alpha_compute,
            pair_comm,
            recon_compute,
            recon_comm,
        }
    }

    /// Modeled time of the multicore baseline at `threads` threads given a
    /// measured single-thread time and its kernel-evaluation fraction
    /// (Amdahl on the parallelized part — the paper's OpenMP enhancement
    /// parallelizes kernel rows and γ updates).
    pub fn baseline_threads(t_single: f64, kernel_fraction: f64, threads: usize) -> f64 {
        let kf = kernel_fraction.clamp(0.0, 1.0);
        t_single * (kf / threads.max(1) as f64 + (1.0 - kf))
    }
}

/// Modeled per-rank time breakdown at a given process count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projection {
    /// Process count this projection is for.
    pub p: usize,
    /// γ-update compute seconds.
    pub gamma_compute: f64,
    /// α-solve compute seconds.
    pub alpha_compute: f64,
    /// Pair-agreement communication seconds (allreduces + routing +
    /// broadcast).
    pub pair_comm: f64,
    /// Reconstruction compute seconds.
    pub recon_compute: f64,
    /// Reconstruction communication seconds.
    pub recon_comm: f64,
}

impl Projection {
    /// Total modeled seconds.
    pub fn total(&self) -> f64 {
        self.gamma_compute
            + self.alpha_compute
            + self.pair_comm
            + self.recon_compute
            + self.recon_comm
    }

    /// Fraction of total time spent in gradient reconstruction (Figure 8's
    /// metric).
    pub fn recon_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.recon_compute + self.recon_comm) / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ReconEvent;

    fn toy_trace() -> Trace {
        Trace {
            n: 10_000,
            mean_row_nnz: 30.0,
            iterations: 1_000,
            sum_active: 5_000_000, // mean 5000 active
            recon_events: vec![ReconEvent {
                at_iteration: 800,
                reactivated: 6_000,
                sv_count: 500,
                sv_bytes: 500 * 400,
            }],
            active_curve: vec![],
            converged: true,
            final_gap: 0.0,
        }
    }

    #[test]
    fn compute_shrinks_with_p() {
        let m = MachineModel::default();
        let t = toy_trace();
        let p1 = m.project(&t, 1, 400.0);
        let p16 = m.project(&t, 16, 400.0);
        let p256 = m.project(&t, 256, 400.0);
        assert!(p16.gamma_compute < p1.gamma_compute / 8.0);
        assert!(p256.gamma_compute < p16.gamma_compute);
        assert!(p256.recon_compute <= p16.recon_compute);
    }

    #[test]
    fn comm_grows_with_p() {
        let m = MachineModel::default();
        let t = toy_trace();
        let p2 = m.project(&t, 2, 400.0);
        let p256 = m.project(&t, 256, 400.0);
        assert!(p256.pair_comm > p2.pair_comm);
        // single-process run has no communication at all
        let p1 = m.project(&t, 1, 400.0);
        assert_eq!(p1.pair_comm, 0.0);
        assert_eq!(p1.recon_comm, 0.0);
    }

    #[test]
    fn speedup_saturates_like_the_paper() {
        // strong scaling must be near-linear at small p and sublinear at
        // very large p (communication floor) — the shape of Figs. 3–7.
        // HIGGS-scale trace: 2.6M samples, ~1M mean active.
        let big = Trace {
            n: 2_600_000,
            mean_row_nnz: 28.0,
            iterations: 100_000,
            sum_active: 100_000u128 * 1_000_000u128,
            recon_events: vec![],
            active_curve: vec![],
            converged: true,
            final_gap: 0.0,
        };
        let m = MachineModel::default();
        let t1 = m.project(&big, 1, 400.0).total();
        let s64 = t1 / m.project(&big, 64, 400.0).total();
        let s4096 = t1 / m.project(&big, 4096, 400.0).total();
        assert!(s64 > 40.0, "s64 = {s64}");
        assert!(s4096 > s64, "a HIGGS-sized problem still gains at 4096");
        assert!(s4096 < 4096.0 * 0.8, "efficiency must drop at 4096");

        // A small problem stops scaling long before 4096 — the paper's
        // "overall efficiency reduces with scale" lesson (§V-D3/D5).
        let small = toy_trace();
        let st1 = m.project(&small, 1, 400.0).total();
        let s64s = st1 / m.project(&small, 64, 400.0).total();
        let s4096s = st1 / m.project(&small, 4096, 400.0).total();
        assert!(
            s4096s < s64s,
            "small problems must saturate: {s64s} vs {s4096s}"
        );
    }

    #[test]
    fn recon_fraction_decreases_with_scale() {
        // §V-D6: the recon share of total time falls as p grows.
        let m = MachineModel::default();
        let t = toy_trace();
        let f64_ = m.project(&t, 64, 400.0).recon_fraction();
        let f1024 = m.project(&t, 1024, 400.0).recon_fraction();
        assert!(f1024 < f64_, "recon fraction must fall: {f64_} -> {f1024}");
    }

    #[test]
    fn allreduce_time_is_logarithmic() {
        let m = MachineModel::default();
        assert_eq!(m.allreduce_time(1, 8), 0.0);
        let t4 = m.allreduce_time(4, 8);
        let t16 = m.allreduce_time(16, 8);
        assert!((t16 / t4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_threads_amdahl() {
        let t16 = MachineModel::baseline_threads(100.0, 0.9, 16);
        assert!((t16 - (100.0 * (0.9 / 16.0 + 0.1))).abs() < 1e-12);
        assert_eq!(MachineModel::baseline_threads(100.0, 0.9, 1), 100.0);
    }

    #[test]
    fn calibration_produces_positive_lambda() {
        let x = CsrMatrix::from_dense(
            &(0..64)
                .map(|i| (0..16).map(|j| ((i * j) % 7) as f64).collect())
                .collect::<Vec<_>>(),
            16,
        )
        .unwrap();
        let m = MachineModel::calibrate(KernelKind::Rbf { gamma: 0.1 }, &x);
        assert!(m.charge.lambda_per_nnz > 0.0);
        assert!(
            m.charge.lambda_per_nnz < 1e-5,
            "implausibly slow calibration"
        );
    }

    #[test]
    fn eval_cost_scales_with_nnz() {
        let c = ComputeCharge::default();
        assert!(c.eval_cost(100) > c.eval_cost(10));
        assert!(c.eval_cost(0) >= c.kernel_overhead);
    }
}
