//! Cross-validation and hyper-parameter grid search.
//!
//! The paper selects `(C, σ²)` by ten-fold cross-validation with libsvm
//! (§V-C, Table III); this module reproduces that machinery on the
//! sequential solver.

use shrinksvm_sparse::Dataset;

use crate::error::CoreError;
use crate::kernel::KernelKind;
use crate::metrics::accuracy;
use crate::params::SvmParams;
use crate::smo::SmoSolver;

/// Result of one k-fold cross-validation.
#[derive(Clone, Debug)]
pub struct CvResult {
    /// Accuracy per fold, in fold order.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation across folds (0 for < 2 folds).
    pub fn stddev(&self) -> f64 {
        let k = self.fold_accuracies.len();
        if k < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .fold_accuracies
            .iter()
            .map(|a| (a - m) * (a - m))
            .sum::<f64>()
            / (k - 1) as f64;
        var.sqrt()
    }
}

/// k-fold cross-validation of `params` on `ds`. Folds where training fails
/// degenerately (single-class fold) are skipped with accuracy 0.
pub fn cross_validate(
    ds: &Dataset,
    params: &SvmParams,
    k: usize,
    seed: u64,
) -> Result<CvResult, CoreError> {
    params.validate()?;
    let folds = ds.kfold_indices(k, seed);
    let mut fold_accuracies = Vec::with_capacity(k);
    for (train_idx, test_idx) in folds {
        let train = ds.select(&train_idx)?;
        let test = ds.select(&test_idx)?;
        match SmoSolver::new(&train, params.clone()).train() {
            Ok(out) => fold_accuracies.push(accuracy(&out.model, &test)),
            Err(CoreError::DegenerateProblem(_)) => fold_accuracies.push(0.0),
            Err(e) => return Err(e),
        }
    }
    Ok(CvResult { fold_accuracies })
}

/// One evaluated grid point.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// Box constraint tried.
    pub c: f64,
    /// Kernel width tried.
    pub sigma_sq: f64,
    /// Cross-validated mean accuracy.
    pub mean_accuracy: f64,
}

/// Exhaustive `(C, σ²)` grid search by k-fold CV with the Gaussian kernel.
/// Returns all evaluated points, best first (ties: smaller `C`, then
/// smaller `σ²` — prefer the simpler model).
pub fn grid_search(
    ds: &Dataset,
    cs: &[f64],
    sigma_sqs: &[f64],
    base: &SvmParams,
    k: usize,
    seed: u64,
) -> Result<Vec<GridPoint>, CoreError> {
    let mut points = Vec::with_capacity(cs.len() * sigma_sqs.len());
    for &c in cs {
        for &s2 in sigma_sqs {
            let mut p = base.clone();
            p.c = c;
            p.kernel = KernelKind::rbf_from_sigma_sq(s2);
            let cv = cross_validate(ds, &p, k, seed)?;
            points.push(GridPoint {
                c,
                sigma_sq: s2,
                mean_accuracy: cv.mean(),
            });
        }
    }
    points.sort_by(|a, b| {
        b.mean_accuracy
            .partial_cmp(&a.mean_accuracy)
            .unwrap()
            .then(a.c.partial_cmp(&b.c).unwrap())
            .then(a.sigma_sq.partial_cmp(&b.sigma_sq).unwrap())
    });
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrinksvm_datagen::gaussian;

    #[test]
    fn cv_scores_separable_data_high() {
        let ds = gaussian::two_blobs(200, 3, 6.0, 11);
        let p = SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(2.0));
        let cv = cross_validate(&ds, &p, 5, 1).unwrap();
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(cv.mean() > 0.95, "mean {}", cv.mean());
        assert!(cv.stddev() < 0.1);
    }

    #[test]
    fn cv_rejects_bad_params() {
        let ds = gaussian::two_blobs(50, 2, 4.0, 12);
        let p = SvmParams::new(-1.0, KernelKind::Linear);
        assert!(cross_validate(&ds, &p, 3, 1).is_err());
    }

    #[test]
    fn grid_search_prefers_sane_region() {
        let ds = gaussian::xor(120, 0.15, 13);
        let base = SvmParams::new(1.0, KernelKind::Linear);
        // σ² = 0.25 suits XOR at unit scale; σ² = 400 is far too wide
        let pts = grid_search(&ds, &[1.0, 10.0], &[0.25, 400.0], &base, 3, 1).unwrap();
        assert_eq!(pts.len(), 4);
        assert!(pts
            .windows(2)
            .all(|w| w[0].mean_accuracy >= w[1].mean_accuracy));
        assert_eq!(pts[0].sigma_sq, 0.25, "narrow kernel must win on XOR");
        assert!(pts[0].mean_accuracy > 0.9);
    }

    #[test]
    fn cv_result_statistics() {
        let r = CvResult {
            fold_accuracies: vec![0.8, 1.0, 0.9],
        };
        assert!((r.mean() - 0.9).abs() < 1e-12);
        assert!((r.stddev() - 0.1).abs() < 1e-12);
        assert_eq!(
            CvResult {
                fold_accuracies: vec![]
            }
            .mean(),
            0.0
        );
        assert_eq!(
            CvResult {
                fold_accuracies: vec![0.5]
            }
            .stddev(),
            0.0
        );
    }
}
