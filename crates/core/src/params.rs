//! Training hyper-parameters.

use crate::error::CoreError;
use crate::kernel::KernelKind;
use crate::shrink::ShrinkPolicy;

/// All knobs of a training run.
///
/// `epsilon` is the paper's user-specified tolerance `ε`: optimization stops
/// when `β_up + 2ε ≥ β_low` (Eq. 5). `tau` is the positive-semidefinite
/// floor used when the pair curvature `η = K_uu + K_ll − 2K_ul` degenerates
/// (Platt's fallback case, §III).
#[derive(Clone, Debug)]
pub struct SvmParams {
    /// Box constraint `C` (Table III).
    pub c: f64,
    /// Kernel function.
    pub kernel: KernelKind,
    /// Convergence tolerance `ε`.
    pub epsilon: f64,
    /// Safety cap on iterations; training reports `converged = false` when
    /// hit.
    pub max_iter: u64,
    /// Shrinking configuration (Table II); `ShrinkPolicy::none()` recovers
    /// the *Original* algorithm.
    pub shrink: ShrinkPolicy,
    /// Kernel-cache budget in bytes (`0` disables). The
    /// sequential/multicore baseline caches full kernel rows; the
    /// distributed solver uses the same budget per rank for a
    /// shrink-aware pivot-row cache over its active span (plus a small
    /// fixed-size memo of the selected pair's `k_uu/k_ll/k_ul` triple).
    pub cache_bytes: usize,
    /// Degenerate-curvature floor.
    pub tau: f64,
    /// Consecutive zero-progress iterations tolerated before declaring a
    /// numerical stall.
    pub stall_limit: u64,
    /// Per-class multipliers `(w₊, w₋)` of the box constraint:
    /// `Cᵢ = C · w_{yᵢ}` (libsvm's `-w` option, for class imbalance).
    pub class_weights: (f64, f64),
    /// Working-set selection strategy for the *sequential* solver (the
    /// distributed algorithm always uses the maximal violating pair, as
    /// the paper's Algorithm 2 does).
    pub wss: WssKind,
}

/// Working-set selection strategy (Keerthi et al., cited in §II-A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WssKind {
    /// First-order: the maximal violating pair `(argmin γ, argmax γ)` —
    /// what the paper's distributed algorithm uses.
    #[default]
    MaxViolatingPair,
    /// Second-order (libsvm's default): `i = argmin γ` over the up set,
    /// then `j` maximizing the guaranteed objective decrease
    /// `(γᵢ − γⱼ)²/ηᵢⱼ` among violating low-set members.
    SecondOrder,
}

impl SvmParams {
    /// Parameters with the paper's defaults: `ε = 1e-3`, no shrinking,
    /// no cache.
    pub fn new(c: f64, kernel: KernelKind) -> Self {
        SvmParams {
            c,
            kernel,
            epsilon: 1e-3,
            max_iter: 50_000_000,
            shrink: ShrinkPolicy::none(),
            cache_bytes: 0,
            tau: 1e-12,
            stall_limit: 1_000,
            class_weights: (1.0, 1.0),
            wss: WssKind::MaxViolatingPair,
        }
    }

    /// Set per-class weights `(w₊, w₋)`.
    pub fn with_class_weights(mut self, pos: f64, neg: f64) -> Self {
        self.class_weights = (pos, neg);
        self
    }

    /// Set the sequential solver's working-set selection strategy.
    pub fn with_wss(mut self, wss: WssKind) -> Self {
        self.wss = wss;
        self
    }

    /// Effective box constraint for a sample with label `y`.
    #[inline]
    pub fn c_for(&self, y: f64) -> f64 {
        self.c
            * if y > 0.0 {
                self.class_weights.0
            } else {
                self.class_weights.1
            }
    }

    /// Set the tolerance `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set the iteration cap.
    pub fn with_max_iter(mut self, max_iter: u64) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Set the shrinking policy.
    pub fn with_shrink(mut self, shrink: ShrinkPolicy) -> Self {
        self.shrink = shrink;
        self
    }

    /// Set the baseline solver's kernel-cache budget.
    pub fn with_cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Validate ranges; called by the solvers before training.
    // `!(x > 0.0)` is deliberate: it rejects NaN, which `x <= 0.0` lets through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(self.c > 0.0) {
            return Err(CoreError::BadParams(format!(
                "C must be positive, got {}",
                self.c
            )));
        }
        if !(self.epsilon > 0.0) {
            return Err(CoreError::BadParams(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !(self.tau > 0.0) {
            return Err(CoreError::BadParams("tau must be positive".into()));
        }
        if !(self.class_weights.0 > 0.0 && self.class_weights.1 > 0.0) {
            return Err(CoreError::BadParams(format!(
                "class weights must be positive, got {:?}",
                self.class_weights
            )));
        }
        self.kernel.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let p = SvmParams::new(10.0, KernelKind::Linear)
            .with_epsilon(1e-4)
            .with_max_iter(5)
            .with_cache_bytes(1 << 20);
        assert_eq!(p.c, 10.0);
        assert_eq!(p.epsilon, 1e-4);
        assert_eq!(p.max_iter, 5);
        assert_eq!(p.cache_bytes, 1 << 20);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(SvmParams::new(0.0, KernelKind::Linear).validate().is_err());
        assert!(SvmParams::new(-1.0, KernelKind::Linear).validate().is_err());
        assert!(SvmParams::new(1.0, KernelKind::Linear)
            .with_epsilon(0.0)
            .validate()
            .is_err());
        assert!(SvmParams::new(1.0, KernelKind::Rbf { gamma: -1.0 })
            .validate()
            .is_err());
    }
}
