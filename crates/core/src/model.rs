//! The trained classifier.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use shrinksvm_sparse::{CsrBuilder, CsrMatrix, RowView};

use crate::error::CoreError;
use crate::kernel::KernelKind;
use crate::smo::solver::support_indices;

/// A trained SVM: the support vectors, their coefficients `αᵢyᵢ`, the bias
/// `β` and the kernel. The decision function is
/// `D(x) = Σᵢ coefᵢ·K(svᵢ, x) − β`, predicting `sign(D(x))`.
#[derive(Clone, Debug)]
pub struct SvmModel {
    kernel: KernelKind,
    sv: CsrMatrix,
    sv_sq_norms: Vec<f64>,
    coef: Vec<f64>,
    bias: f64,
    /// Row indices of the SVs in the training set (empty after load-from-file).
    training_indices: Vec<usize>,
}

impl SvmModel {
    /// Assemble from raw parts (support vectors + coefficients + bias).
    pub fn new(
        kernel: KernelKind,
        sv: CsrMatrix,
        coef: Vec<f64>,
        bias: f64,
    ) -> Result<Self, CoreError> {
        if sv.nrows() != coef.len() {
            return Err(CoreError::ModelFormat(format!(
                "{} SVs but {} coefficients",
                sv.nrows(),
                coef.len()
            )));
        }
        let sv_sq_norms = sv.row_squared_norms();
        Ok(SvmModel {
            kernel,
            sv,
            sv_sq_norms,
            coef,
            bias,
            training_indices: Vec::new(),
        })
    }

    /// Extract the model from a finished training state: keeps rows with
    /// `α > 0` and records their training indices.
    pub fn from_training(
        kernel: KernelKind,
        x: &CsrMatrix,
        y: &[f64],
        alpha: &[f64],
        bias: f64,
        c: f64,
    ) -> Result<Self, CoreError> {
        let idx = support_indices(alpha, c);
        let sv = x.select_rows(&idx)?;
        let coef: Vec<f64> = idx.iter().map(|&i| alpha[i] * y[i]).collect();
        let mut m = SvmModel::new(kernel, sv, coef, bias)?;
        m.training_indices = idx;
        Ok(m)
    }

    /// Number of support vectors.
    pub fn n_sv(&self) -> usize {
        self.coef.len()
    }

    /// The bias `β`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The kernel.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Coefficients `αᵢyᵢ`, parallel to the SV rows.
    pub fn coefficients(&self) -> &[f64] {
        &self.coef
    }

    /// The support vectors.
    pub fn support_vectors(&self) -> &CsrMatrix {
        &self.sv
    }

    /// Training-set row indices of the SVs (empty for deserialized models).
    pub fn training_indices(&self) -> &[usize] {
        &self.training_indices
    }

    /// Decision value `D(x)`.
    pub fn decision(&self, x: RowView<'_>) -> f64 {
        let x_sq = x.squared_norm();
        let mut acc = 0.0;
        for (j, &cj) in self.coef.iter().enumerate() {
            acc += cj
                * self
                    .kernel
                    .eval(self.sv.row(j), x, self.sv_sq_norms[j], x_sq);
        }
        acc - self.bias
    }

    /// Predicted label (`+1.0` / `-1.0`; ties go positive).
    pub fn predict(&self, x: RowView<'_>) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    // ------------------------------------------------------------- storage

    /// Serialize to the crate's text format.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), CoreError> {
        let mut w = BufWriter::new(writer);
        writeln!(w, "shrinksvm-model v1")?;
        match self.kernel {
            KernelKind::Rbf { gamma } => writeln!(w, "kernel rbf {gamma:e}")?,
            KernelKind::Linear => writeln!(w, "kernel linear")?,
            KernelKind::Poly {
                gamma,
                coef0,
                degree,
            } => {
                writeln!(w, "kernel poly {gamma:e} {coef0:e} {degree}")?;
            }
            KernelKind::Sigmoid { gamma, coef0 } => {
                writeln!(w, "kernel sigmoid {gamma:e} {coef0:e}")?;
            }
        }
        writeln!(w, "bias {:e}", self.bias)?;
        writeln!(w, "nsv {} ncols {}", self.n_sv(), self.sv.ncols())?;
        for (j, &cj) in self.coef.iter().enumerate() {
            write!(w, "{cj:e}")?;
            for (c, v) in self.sv.row(j).iter() {
                write!(w, " {}:{v:e}", c + 1)?;
            }
            writeln!(w)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Serialize to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), CoreError> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Deserialize from the crate's text format.
    pub fn read_from<R: Read>(reader: R) -> Result<Self, CoreError> {
        let mut lines = BufReader::new(reader).lines();
        let mut next = |what: &str| -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::ModelFormat(format!("missing {what}")))?
                .map_err(CoreError::Io)
        };
        let magic = next("header")?;
        if magic.trim() != "shrinksvm-model v1" {
            return Err(CoreError::ModelFormat(format!("bad header '{magic}'")));
        }
        let kline = next("kernel line")?;
        let ktoks: Vec<&str> = kline.split_whitespace().collect();
        let parse = |s: &str| -> Result<f64, CoreError> {
            s.parse()
                .map_err(|_| CoreError::ModelFormat(format!("bad float '{s}'")))
        };
        let kernel = match ktoks.as_slice() {
            ["kernel", "rbf", g] => KernelKind::Rbf { gamma: parse(g)? },
            ["kernel", "linear"] => KernelKind::Linear,
            ["kernel", "poly", g, c0, d] => KernelKind::Poly {
                gamma: parse(g)?,
                coef0: parse(c0)?,
                degree: d
                    .parse()
                    .map_err(|_| CoreError::ModelFormat(format!("bad degree '{d}'")))?,
            },
            ["kernel", "sigmoid", g, c0] => KernelKind::Sigmoid {
                gamma: parse(g)?,
                coef0: parse(c0)?,
            },
            _ => return Err(CoreError::ModelFormat(format!("bad kernel line '{kline}'"))),
        };
        let bline = next("bias line")?;
        let bias = match bline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["bias", b] => parse(b)?,
            _ => return Err(CoreError::ModelFormat(format!("bad bias line '{bline}'"))),
        };
        let nline = next("nsv line")?;
        let (nsv, ncols) = match nline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["nsv", k, "ncols", d] => (
                k.parse::<usize>()
                    .map_err(|_| CoreError::ModelFormat("bad nsv".into()))?,
                d.parse::<usize>()
                    .map_err(|_| CoreError::ModelFormat("bad ncols".into()))?,
            ),
            _ => return Err(CoreError::ModelFormat(format!("bad nsv line '{nline}'"))),
        };
        let mut b = CsrBuilder::new(ncols);
        // `nsv` is untrusted input: preallocate only a sane amount and let
        // the vector grow if a (valid) giant model really has more rows —
        // a garbled count must not force a huge allocation up front.
        let mut coef = Vec::with_capacity(nsv.min(1 << 20));
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for k in 0..nsv {
            let line = next(&format!("sv row {k}"))?;
            let mut toks = line.split_whitespace();
            let c = toks
                .next()
                .ok_or_else(|| CoreError::ModelFormat(format!("empty sv row {k}")))?;
            coef.push(parse(c)?);
            idx.clear();
            val.clear();
            for t in toks {
                let (ci, vi) = t
                    .split_once(':')
                    .ok_or_else(|| CoreError::ModelFormat(format!("bad entry '{t}'")))?;
                let ci: u64 = ci
                    .parse()
                    .map_err(|_| CoreError::ModelFormat(format!("bad column '{ci}'")))?;
                if ci == 0 {
                    return Err(CoreError::ModelFormat("columns are 1-based".into()));
                }
                idx.push((ci - 1) as u32);
                val.push(parse(vi)?);
            }
            b.push_row(&idx, &val)
                .map_err(|e| CoreError::ModelFormat(e.to_string()))?;
        }
        SvmModel::new(kernel, b.finish(), coef, bias)
    }

    /// Deserialize from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CoreError> {
        SvmModel::read_from(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> SvmModel {
        // two SVs on the axes, coefficients ±1, linear kernel, bias 0:
        // D(x) = x0 − x1
        let sv = CsrMatrix::from_dense(&[vec![1.0, 0.0], vec![0.0, 1.0]], 2).unwrap();
        SvmModel::new(KernelKind::Linear, sv, vec![1.0, -1.0], 0.0).unwrap()
    }

    #[test]
    fn decision_matches_manual_linear_form() {
        let m = toy_model();
        let x = CsrMatrix::from_dense(&[vec![3.0, 1.0]], 2).unwrap();
        assert!((m.decision(x.row(0)) - 2.0).abs() < 1e-15);
        assert_eq!(m.predict(x.row(0)), 1.0);
        let x = CsrMatrix::from_dense(&[vec![0.0, 2.0]], 2).unwrap();
        assert_eq!(m.predict(x.row(0)), -1.0);
    }

    #[test]
    fn tie_goes_positive() {
        let m = toy_model();
        let x = CsrMatrix::from_dense(&[vec![1.0, 1.0]], 2).unwrap();
        assert_eq!(m.predict(x.row(0)), 1.0);
    }

    #[test]
    fn bias_shifts_decision() {
        let sv = CsrMatrix::from_dense(&[vec![1.0, 0.0]], 2).unwrap();
        let m = SvmModel::new(KernelKind::Linear, sv, vec![1.0], 0.5).unwrap();
        let x = CsrMatrix::from_dense(&[vec![1.0, 0.0]], 2).unwrap();
        assert!((m.decision(x.row(0)) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn mismatched_coef_count_rejected() {
        let sv = CsrMatrix::from_dense(&[vec![1.0]], 1).unwrap();
        assert!(SvmModel::new(KernelKind::Linear, sv, vec![1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn roundtrip_through_text_format() {
        let sv = CsrMatrix::from_dense(&[vec![0.25, 0.0, -1.5], vec![0.0, 2.0, 0.0]], 3).unwrap();
        let m =
            SvmModel::new(KernelKind::Rbf { gamma: 0.125 }, sv, vec![1.5, -0.75], -0.3).unwrap();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let back = SvmModel::read_from(&buf[..]).unwrap();
        assert_eq!(back.kernel(), m.kernel());
        assert_eq!(back.bias(), m.bias());
        assert_eq!(back.coefficients(), m.coefficients());
        assert_eq!(back.support_vectors(), m.support_vectors());
        // predictions identical
        let x = CsrMatrix::from_dense(&[vec![0.2, 1.0, -0.5]], 3).unwrap();
        assert_eq!(back.decision(x.row(0)), m.decision(x.row(0)));
    }

    #[test]
    fn roundtrip_all_kernel_kinds() {
        let sv = CsrMatrix::from_dense(&[vec![1.0]], 1).unwrap();
        for kind in [
            KernelKind::Linear,
            KernelKind::Rbf { gamma: 2.0 },
            KernelKind::Poly {
                gamma: 0.5,
                coef0: 1.0,
                degree: 3,
            },
            KernelKind::Sigmoid {
                gamma: 0.1,
                coef0: -0.2,
            },
        ] {
            let m = SvmModel::new(kind, sv.clone(), vec![1.0], 0.0).unwrap();
            let mut buf = Vec::new();
            m.write_to(&mut buf).unwrap();
            let back = SvmModel::read_from(&buf[..]).unwrap();
            assert_eq!(back.kernel(), kind);
        }
    }

    #[test]
    fn read_rejects_garbage() {
        assert!(SvmModel::read_from("not a model".as_bytes()).is_err());
        assert!(SvmModel::read_from("shrinksvm-model v1\nkernel warp 1\n".as_bytes()).is_err());
        let truncated = "shrinksvm-model v1\nkernel linear\nbias 0\nnsv 2 ncols 1\n1 1:1\n";
        assert!(SvmModel::read_from(truncated.as_bytes()).is_err());
    }

    #[test]
    fn read_survives_every_truncation_without_panicking() {
        let sv = CsrMatrix::from_dense(&[vec![0.25, 0.0, -1.5], vec![0.0, 2.0, 0.0]], 3).unwrap();
        let m =
            SvmModel::new(KernelKind::Rbf { gamma: 0.125 }, sv, vec![1.5, -0.75], -0.3).unwrap();
        let mut buf = Vec::new();
        m.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let body_start = text.find("nsv").expect("nsv line present");
        for cut in 0..text.len() {
            // must never panic; header/metadata truncations must error
            let r = SvmModel::read_from(&text.as_bytes()[..cut]);
            if cut <= body_start {
                assert!(r.is_err(), "{cut}-byte prefix parsed as a model");
            }
        }
    }

    #[test]
    fn read_caps_preallocation_for_hostile_counts() {
        // claims an absurd SV count with no rows: must fail with a typed
        // error quickly instead of preallocating by the header's say-so
        let evil = "shrinksvm-model v1\nkernel linear\nbias 0\nnsv 99999999999 ncols 2\n";
        assert!(matches!(
            SvmModel::read_from(evil.as_bytes()),
            Err(CoreError::ModelFormat(_))
        ));
    }

    #[test]
    fn save_load_save_is_byte_identical() {
        let sv = CsrMatrix::from_dense(
            &[
                vec![0.25, 0.0, -1.5e-7],
                vec![0.0, 2.0, 0.0],
                vec![1e300, -1e-300, 3.5],
            ],
            3,
        )
        .unwrap();
        let m = SvmModel::new(
            KernelKind::Poly {
                gamma: 0.5,
                coef0: -1.25,
                degree: 4,
            },
            sv,
            vec![1.5, -0.75, 1e-17],
            -0.3,
        )
        .unwrap();
        let mut first = Vec::new();
        m.write_to(&mut first).unwrap();
        let back = SvmModel::read_from(&first[..]).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second, "save→load→save must be byte-identical");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("shrinksvm-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.model");
        let m = toy_model();
        m.save(&path).unwrap();
        let back = SvmModel::load(&path).unwrap();
        assert_eq!(back.n_sv(), 2);
        std::fs::remove_file(&path).ok();
    }
}
