//! # shrinksvm-core
//!
//! The paper's contribution: SMO-based SVM training with **adaptive sample
//! shrinking** and **distributed gradient reconstruction**, plus every
//! solver the evaluation compares against.
//!
//! Solvers:
//!
//! * [`smo::SmoSolver`] — sequential SMO with an LRU kernel-row cache and
//!   optional multicore gradient updates via `shrinksvm-threads` — the
//!   "libsvm / libsvm-enhanced" baseline of §V-A.
//! * [`dist::DistSolver`] — the paper's cache-free distributed solver over
//!   `shrinksvm-mpisim`: Algorithm 2 (*Original*, no shrinking),
//!   Algorithm 4 (shrinking + single gradient reconstruction) and
//!   Algorithm 5 (multiple reconstruction), driven by the 13 heuristic
//!   configurations of Table II ([`shrink`]).
//!
//! Support modules: [`kernel`] (Gaussian/linear/polynomial/sigmoid),
//! [`cache`] (the kernel-row LRU granted to the baseline; the distributed
//! path deliberately has none, §III-A2), [`model`]/[`metrics`]/[`cv`]
//! (prediction, accuracy, k-fold CV and grid search for §V-C), [`trace`]
//! (execution traces) and [`perfmodel`] (the Table-I cost model used to
//! project measured traces to large process counts).

pub mod cache;
pub mod cv;
pub mod dist;
pub mod error;
pub mod kernel;
pub mod metrics;
pub mod model;
pub mod params;
pub mod perfmodel;
pub mod shrink;
pub mod smo;
pub mod trace;

pub use error::CoreError;
pub use kernel::KernelKind;
pub use model::SvmModel;
pub use params::SvmParams;
pub use shrink::{Heuristic, HeuristicClass, ReconPolicy, ShrinkPolicy, SubsequentPolicy};
