//! The sequential / multicore SMO solver (the libsvm baseline of §V-A).
//!
//! Maximal-violating-pair working-set selection (Keerthi et al.), an LRU
//! kernel-row cache sized by [`crate::params::SvmParams::cache_bytes`]
//! (the paper grants libsvm the node's entire memory as cache), and — the
//! paper's "libsvm-enhanced" contribution — OpenMP-style parallel kernel-row
//! computation and gradient updates through a
//! [`shrinksvm_threads::ThreadPool`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use shrinksvm_obs::MetricsRegistry;
use shrinksvm_sparse::Dataset;
use shrinksvm_threads::ThreadPool;

use crate::cache::{CacheStats, KernelCache};
use crate::dist::solver::metrics_epoch;
use crate::error::CoreError;
use crate::kernel::KernelEval;
use crate::model::SvmModel;
use crate::params::{SvmParams, WssKind};
use crate::smo::state::{bound_tol, classify, in_low_set, in_up_set, IndexSet};
use crate::smo::update::solve_pair_weighted;

/// Everything a training run produced.
#[derive(Clone, Debug)]
pub struct TrainOutput {
    /// The trained classifier.
    pub model: SvmModel,
    /// SMO iterations executed.
    pub iterations: u64,
    /// Whether the `β_up + 2ε ≥ β_low` condition was reached (false ⇒ the
    /// iteration cap stopped training first).
    pub converged: bool,
    /// Kernel evaluations actually computed (cache misses × n).
    pub kernel_evals: u64,
    /// Kernel-cache counters.
    pub cache_stats: CacheStats,
    /// Wall-clock training time.
    pub wall_time: Duration,
    /// Final optimality gap `β_low − β_up`.
    pub final_gap: f64,
    /// Solver telemetry: a `cache_hit_rate` series sampled every
    /// [`metrics_epoch`] iterations, plus final-state gauges.
    pub metrics: MetricsRegistry,
}

/// Sequential / multicore SMO trainer.
pub struct SmoSolver<'a> {
    ds: &'a Dataset,
    params: SvmParams,
    pool: Option<&'a ThreadPool>,
}

impl<'a> SmoSolver<'a> {
    /// A solver for `ds` with `params`.
    pub fn new(ds: &'a Dataset, params: SvmParams) -> Self {
        SmoSolver {
            ds,
            params,
            pool: None,
        }
    }

    /// Attach a thread pool — the "libsvm-enhanced with OpenMP"
    /// configuration. Kernel rows and gradient updates are then computed in
    /// parallel; everything else stays identical, so results match the
    /// sequential solver exactly.
    pub fn with_pool(mut self, pool: &'a ThreadPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Train, consuming the solver.
    pub fn train(self) -> Result<TrainOutput, CoreError> {
        self.params.validate()?;
        let n = self.ds.len();
        if n < 2 {
            return Err(CoreError::DegenerateProblem(format!("{n} samples")));
        }
        let (pos, neg) = self.ds.class_counts();
        if pos == 0 || neg == 0 {
            return Err(CoreError::DegenerateProblem(
                "all samples share one class".into(),
            ));
        }

        #[allow(clippy::disallowed_methods)]
        // allow-wall-clock: host-side metric (reported solve time), not simulated time
        let start = Instant::now();
        let c_pos = self.params.c_for(1.0);
        let c_neg = self.params.c_for(-1.0);
        let eps = self.params.epsilon;
        let y = &self.ds.y;
        let ke = KernelEval::new(self.params.kernel, &self.ds.x);
        let mut cache = KernelCache::with_byte_budget(self.params.cache_bytes, n);
        // kernel diagonal, needed by second-order selection's gain formula
        let diag: Vec<f64> = if self.params.wss == WssKind::SecondOrder {
            (0..n).map(|i| ke.k(i, i)).collect()
        } else {
            Vec::new()
        };

        let mut alpha = vec![0.0f64; n];
        let mut grad: Vec<f64> = y.iter().map(|yi| -yi).collect();

        let mut iterations = 0u64;
        let mut converged = false;
        let mut stall = 0u64;
        let mut metrics = MetricsRegistry::new();
        #[allow(unused_assignments)]
        let mut final_gap = f64::INFINITY;

        loop {
            if iterations > 0 && iterations.is_multiple_of(metrics_epoch()) {
                let s = cache.stats();
                let lookups = s.hits + s.misses;
                if lookups > 0 {
                    metrics.sample("cache_hit_rate", iterations, s.hits as f64 / lookups as f64);
                }
            }
            // Working-set selection: the maximal violating pair.
            let Some((i_up, g_up, mvp_low, g_low)) =
                select_pair_weighted(y, &alpha, &grad, c_pos, c_neg)
            else {
                // one scan set went empty — optimal by convention
                converged = true;
                final_gap = 0.0;
                break;
            };
            final_gap = g_low - g_up;
            if g_up + 2.0 * eps > g_low {
                converged = true;
                break;
            }
            if iterations >= self.params.max_iter {
                break;
            }

            let row_up = self.kernel_row(&ke, &mut cache, i_up, n);
            // Second-order selection (libsvm's WSS): maximize the
            // guaranteed decrease (γ_up − γ_j)²/η among violators.
            let i_low = match self.params.wss {
                WssKind::MaxViolatingPair => mvp_low,
                WssKind::SecondOrder => {
                    let mut best = mvp_low;
                    let mut best_gain = f64::NEG_INFINITY;
                    for j in 0..n {
                        let cj = if y[j] > 0.0 { c_pos } else { c_neg };
                        if !in_low_set(y[j], alpha[j], cj) {
                            continue;
                        }
                        let b = grad[j] - g_up;
                        if b <= 0.0 {
                            continue; // not a violator against i_up
                        }
                        let eta = (row_up[i_up] + diag[j] - 2.0 * row_up[j]).max(self.params.tau);
                        let gain = b * b / eta;
                        if gain > best_gain {
                            best_gain = gain;
                            best = j;
                        }
                    }
                    best
                }
            };
            let row_low = self.kernel_row(&ke, &mut cache, i_low, n);
            let sol = solve_pair_weighted(
                y[i_up],
                y[i_low],
                alpha[i_up],
                alpha[i_low],
                g_up,
                grad[i_low],
                row_up[i_up],
                row_low[i_low],
                row_up[i_low],
                if y[i_up] > 0.0 { c_pos } else { c_neg },
                if y[i_low] > 0.0 { c_pos } else { c_neg },
                self.params.tau,
            );
            if sol.is_null() {
                stall += 1;
                if stall > self.params.stall_limit {
                    return Err(CoreError::Stalled {
                        at_iteration: iterations,
                    });
                }
            } else {
                stall = 0;
            }
            alpha[i_up] = sol.alpha_up;
            alpha[i_low] = sol.alpha_low;

            // Gradient update (Eq. 2) — the hot loop the paper's OpenMP
            // enhancement parallelizes.
            let cu = y[i_up] * sol.delta_up;
            let cl = y[i_low] * sol.delta_low;
            if cu != 0.0 || cl != 0.0 {
                let ru = &row_up;
                let rl = &row_low;
                match self.pool {
                    Some(pool) => pool.parallel_for_slices(&mut grad, |off, chunk| {
                        for (k, g) in chunk.iter_mut().enumerate() {
                            let j = off + k;
                            *g += cu * ru[j] + cl * rl[j];
                        }
                    }),
                    None => {
                        for (j, g) in grad.iter_mut().enumerate() {
                            *g += cu * ru[j] + cl * rl[j];
                        }
                    }
                }
            }
            iterations += 1;
        }

        let bias = compute_bias_weighted(y, &alpha, &grad, c_pos, c_neg);
        let model = SvmModel::from_training(
            self.params.kernel,
            &self.ds.x,
            y,
            &alpha,
            bias,
            c_pos.max(c_neg),
        )?;
        let cache_stats = cache.stats();
        let lookups = cache_stats.hits + cache_stats.misses;
        if lookups > 0 {
            metrics.set_gauge("cache_hit_rate", cache_stats.hits as f64 / lookups as f64);
        }
        metrics.set_gauge("iterations", iterations as f64);
        Ok(TrainOutput {
            model,
            iterations,
            converged,
            kernel_evals: cache_stats.misses * n as u64,
            cache_stats,
            wall_time: start.elapsed(),
            final_gap,
            metrics,
        })
    }

    /// Fetch (or compute, in parallel when a pool is attached) the full
    /// kernel row for sample `i`.
    fn kernel_row(
        &self,
        ke: &KernelEval<'_>,
        cache: &mut KernelCache,
        i: usize,
        n: usize,
    ) -> Arc<Vec<f64>> {
        let pool = self.pool;
        cache.get_or_compute(i, || {
            let mut row = vec![0.0f64; n];
            match pool {
                Some(pool) => {
                    let x = ke.matrix();
                    let ri = x.row(i);
                    let sqi = ke.sq_norm(i);
                    let kind = ke.kind();
                    pool.parallel_for_slices(&mut row, |off, chunk| {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let j = off + k;
                            *slot = kind.eval(ri, x.row(j), sqi, ke.sq_norm(j));
                        }
                    });
                }
                None => ke.fill_row(i, &mut row),
            }
            row
        })
    }
}

/// Scan for the maximal violating pair over all samples. Returns
/// `(i_up, γ_up, i_low, γ_low)`, or `None` if either scan set is empty.
pub fn select_pair(
    y: &[f64],
    alpha: &[f64],
    grad: &[f64],
    c: f64,
) -> Option<(usize, f64, usize, f64)> {
    select_pair_weighted(y, alpha, grad, c, c)
}

/// [`select_pair`] with per-class bounds.
pub fn select_pair_weighted(
    y: &[f64],
    alpha: &[f64],
    grad: &[f64],
    c_pos: f64,
    c_neg: f64,
) -> Option<(usize, f64, usize, f64)> {
    let mut i_up = usize::MAX;
    let mut g_up = f64::INFINITY;
    let mut i_low = usize::MAX;
    let mut g_low = f64::NEG_INFINITY;
    for i in 0..y.len() {
        let g = grad[i];
        let ci = if y[i] > 0.0 { c_pos } else { c_neg };
        if in_up_set(y[i], alpha[i], ci) && g < g_up {
            g_up = g;
            i_up = i;
        }
        if in_low_set(y[i], alpha[i], ci) && g > g_low {
            g_low = g;
            i_low = i;
        }
    }
    if i_up == usize::MAX || i_low == usize::MAX {
        None
    } else {
        Some((i_up, g_up, i_low, g_low))
    }
}

/// Hyperplane threshold `β` (§III): the mean gradient over `I0`, or the
/// bracket midpoint when no free vectors exist.
pub fn compute_bias(y: &[f64], alpha: &[f64], grad: &[f64], c: f64) -> f64 {
    compute_bias_weighted(y, alpha, grad, c, c)
}

/// [`compute_bias`] with per-class bounds.
pub fn compute_bias_weighted(
    y: &[f64],
    alpha: &[f64],
    grad: &[f64],
    c_pos: f64,
    c_neg: f64,
) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut b_up = f64::INFINITY;
    let mut b_low = f64::NEG_INFINITY;
    for i in 0..y.len() {
        let c = if y[i] > 0.0 { c_pos } else { c_neg };
        if classify(y[i], alpha[i], c) == IndexSet::I0 {
            sum += grad[i];
            count += 1;
        }
        if in_up_set(y[i], alpha[i], c) {
            b_up = b_up.min(grad[i]);
        }
        if in_low_set(y[i], alpha[i], c) {
            b_low = b_low.max(grad[i]);
        }
    }
    if count > 0 {
        sum / count as f64
    } else {
        (b_low + b_up) / 2.0
    }
}

/// Indices with `α` meaningfully above zero (the support vectors).
pub fn support_indices(alpha: &[f64], c: f64) -> Vec<usize> {
    let tol = bound_tol(c);
    (0..alpha.len()).filter(|&i| alpha[i] > tol).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use crate::smo::dual_objective;
    use shrinksvm_datagen::gaussian;
    use shrinksvm_datagen::planted::PlantedConfig;
    use shrinksvm_sparse::CsrMatrix;

    fn params(c: f64, sigma_sq: f64) -> SvmParams {
        SvmParams::new(c, KernelKind::rbf_from_sigma_sq(sigma_sq)).with_epsilon(1e-3)
    }

    #[test]
    fn trains_separable_blobs_to_high_accuracy() {
        let ds = gaussian::two_blobs(200, 4, 6.0, 1);
        let out = SmoSolver::new(&ds, params(1.0, 2.0)).train().unwrap();
        assert!(out.converged);
        let correct = (0..ds.len())
            .filter(|&i| out.model.predict(ds.x.row(i)) == ds.y[i])
            .count();
        assert!(correct >= 198, "train accuracy {correct}/200");
        // separable blobs → few SVs
        assert!(out.model.n_sv() < 100, "{} SVs", out.model.n_sv());
    }

    #[test]
    fn solves_xor_with_rbf() {
        let ds = gaussian::xor(160, 0.15, 2);
        let out = SmoSolver::new(&ds, params(10.0, 0.5)).train().unwrap();
        assert!(out.converged);
        let correct = (0..ds.len())
            .filter(|&i| out.model.predict(ds.x.row(i)) == ds.y[i])
            .count();
        assert!(correct as f64 / 160.0 > 0.97, "xor accuracy {correct}/160");
    }

    #[test]
    fn linear_kernel_on_planted_data() {
        let ds = PlantedConfig::small_demo(3).generate();
        let p = SvmParams::new(10.0, KernelKind::Linear).with_epsilon(1e-3);
        let out = SmoSolver::new(&ds, p).train().unwrap();
        assert!(out.converged);
        let correct = (0..ds.len())
            .filter(|&i| out.model.predict(ds.x.row(i)) == ds.y[i])
            .count();
        assert_eq!(correct, ds.len(), "clean planted data is separable");
    }

    #[test]
    fn pool_and_sequential_agree_exactly() {
        let ds = gaussian::rings(120, 1.0, 0.05, 4);
        let seq = SmoSolver::new(&ds, params(4.0, 0.5)).train().unwrap();
        let pool = ThreadPool::new(3);
        let par = SmoSolver::new(&ds, params(4.0, 0.5))
            .with_pool(&pool)
            .train()
            .unwrap();
        assert_eq!(seq.iterations, par.iterations);
        assert_eq!(seq.model.bias(), par.model.bias());
        assert_eq!(seq.model.n_sv(), par.model.n_sv());
    }

    #[test]
    fn cache_reduces_kernel_evals() {
        let ds = gaussian::two_blobs(150, 4, 3.0, 5);
        let no_cache = SmoSolver::new(&ds, params(1.0, 2.0)).train().unwrap();
        let cached = SmoSolver::new(&ds, params(1.0, 2.0).with_cache_bytes(64 << 20))
            .train()
            .unwrap();
        assert_eq!(no_cache.iterations, cached.iterations);
        assert!(cached.kernel_evals < no_cache.kernel_evals);
        assert!(cached.cache_stats.hits > 0);
    }

    #[test]
    fn max_iter_caps_and_reports_unconverged() {
        let ds = gaussian::two_blobs(100, 4, 1.0, 6);
        let out = SmoSolver::new(&ds, params(1.0, 2.0).with_max_iter(3))
            .train()
            .unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert!(out.final_gap > 0.0);
    }

    #[test]
    fn rejects_degenerate_problems() {
        let x = CsrMatrix::from_dense(&[vec![1.0], vec![2.0]], 1).unwrap();
        let one_class = Dataset::new(x, vec![1.0, 1.0]).unwrap();
        assert!(matches!(
            SmoSolver::new(&one_class, params(1.0, 1.0)).train(),
            Err(CoreError::DegenerateProblem(_))
        ));
    }

    #[test]
    fn feasibility_invariants_hold_after_training() {
        let ds = gaussian::two_blobs(120, 3, 2.0, 7);
        let c = 2.0;
        // re-run the internal loop manually to inspect alpha
        let p = params(c, 1.0);
        let out = SmoSolver::new(&ds, p).train().unwrap();
        // reconstruct alpha from the model: Σ coef·y consistency
        // coef = α y, so Σ coef = Σ α y must be ~0.
        let sum: f64 = out.model.coefficients().iter().sum();
        assert!(sum.abs() < 1e-9, "Σ α y = {sum}");
        for &coef in out.model.coefficients() {
            assert!(coef.abs() <= c + 1e-9, "|coef| {coef} exceeds C");
        }
    }

    #[test]
    fn objective_decreases_across_run() {
        // train twice with different iteration caps; the longer run must
        // reach a lower (better) dual objective.
        let ds = gaussian::two_blobs(80, 3, 1.5, 8);
        let ke = KernelEval::new(KernelKind::rbf_from_sigma_sq(1.0), &ds.x);
        let alpha_after = |iters: u64| {
            let out = SmoSolver::new(&ds, params(1.0, 1.0).with_max_iter(iters))
                .train()
                .unwrap();
            // rebuild a full alpha vector from the model SV list
            let mut alpha = vec![0.0; ds.len()];
            for (k, &idx) in out.model.training_indices().iter().enumerate() {
                alpha[idx] = out.model.coefficients()[k] * ds.y[idx];
            }
            alpha
        };
        let a_short = alpha_after(5);
        let a_long = alpha_after(200);
        let o_short = dual_objective(&ke, &ds.y, &a_short);
        let o_long = dual_objective(&ke, &ds.y, &a_long);
        assert!(
            o_long <= o_short + 1e-12,
            "objective must not increase: {o_short} -> {o_long}"
        );
    }

    #[test]
    fn select_pair_finds_worst_violators() {
        let y = [1.0, -1.0, 1.0, -1.0];
        let alpha = [0.0, 0.0, 0.0, 0.0];
        let grad = [-1.0, 1.0, -3.0, 2.0];
        // up-set: I1 = {0, 2}; low-set: I4 = {1, 3}
        let (iu, gu, il, gl) = select_pair(&y, &alpha, &grad, 1.0).unwrap();
        assert_eq!((iu, il), (2, 3));
        assert_eq!((gu, gl), (-3.0, 2.0));
    }

    #[test]
    fn bias_midpoint_when_no_free_vectors() {
        let y = [1.0, -1.0];
        let alpha = [0.0, 0.0];
        let grad = [-1.0, 1.0];
        let b = compute_bias(&y, &alpha, &grad, 1.0);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn second_order_wss_reaches_the_same_model_faster_or_equal() {
        use crate::params::WssKind;
        let ds = gaussian::two_blobs(200, 6, 2.0, 21);
        let base = params(4.0, 2.0);
        let mvp = SmoSolver::new(&ds, base.clone()).train().unwrap();
        let so = SmoSolver::new(&ds, base.with_wss(WssKind::SecondOrder))
            .train()
            .unwrap();
        assert!(so.converged);
        // same classifier quality
        let agree = (0..ds.len())
            .filter(|&i| mvp.model.predict(ds.x.row(i)) == so.model.predict(ds.x.row(i)))
            .count();
        assert!(
            agree as f64 / ds.len() as f64 > 0.99,
            "{agree}/{}",
            ds.len()
        );
        // second-order selection should not need wildly more iterations
        assert!(
            so.iterations <= mvp.iterations * 2,
            "so {} vs mvp {}",
            so.iterations,
            mvp.iterations
        );
    }

    #[test]
    fn class_weights_shift_the_boundary_toward_the_heavy_class() {
        // strongly imbalanced penalty: the positive class becomes much more
        // expensive to misclassify, so positive recall rises.
        let ds = gaussian::two_blobs(300, 3, 1.2, 22); // overlapping blobs
        let plain = SmoSolver::new(&ds, params(1.0, 1.0)).train().unwrap();
        let weighted = SmoSolver::new(&ds, params(1.0, 1.0).with_class_weights(10.0, 1.0))
            .train()
            .unwrap();
        let recall = |m: &crate::model::SvmModel| {
            let mut tp = 0;
            let mut pos = 0;
            for i in 0..ds.len() {
                if ds.y[i] > 0.0 {
                    pos += 1;
                    if m.predict(ds.x.row(i)) > 0.0 {
                        tp += 1;
                    }
                }
            }
            tp as f64 / pos as f64
        };
        assert!(
            recall(&weighted.model) >= recall(&plain.model),
            "weighting the positive class must not reduce its recall"
        );
        // feasibility under per-class caps
        for (k, &idx) in weighted.model.training_indices().iter().enumerate() {
            let coef = weighted.model.coefficients()[k];
            let cap = if ds.y[idx] > 0.0 { 10.0 } else { 1.0 };
            assert!(coef.abs() <= cap + 1e-9, "coef {coef} exceeds cap {cap}");
        }
    }

    #[test]
    fn invalid_class_weights_rejected() {
        let ds = gaussian::two_blobs(20, 2, 3.0, 23);
        let p = params(1.0, 1.0).with_class_weights(0.0, 1.0);
        assert!(SmoSolver::new(&ds, p).train().is_err());
    }
}
