//! Index-set algebra — Eq. (4) of the paper.
//!
//! Every sample belongs to exactly one of `I0..I4` given `(y, α, C)`:
//!
//! * `I0 = {0 < α < C}` — free support vectors,
//! * `I1 = {y = +1, α = 0}`, `I2 = {y = −1, α = C}` — participate only in
//!   the `β_up` (minimum) scan,
//! * `I3 = {y = +1, α = C}`, `I4 = {y = −1, α = 0}` — participate only in
//!   the `β_low` (maximum) scan.
//!
//! Bound comparisons use a relative tolerance so that clipping residue of
//! order machine-epsilon never misclassifies a bound sample (libsvm does
//! the same).

/// Which of the paper's five index sets a sample is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexSet {
    /// Free support vector (`0 < α < C`).
    I0,
    /// `y = +1, α = 0`.
    I1,
    /// `y = −1, α = C`.
    I2,
    /// `y = +1, α = C`.
    I3,
    /// `y = −1, α = 0`.
    I4,
}

/// Tolerance used for `α = 0` / `α = C` bound tests.
#[inline]
pub fn bound_tol(c: f64) -> f64 {
    1e-12 * c.max(1.0)
}

/// True when `α` sits at the lower bound.
#[inline]
pub fn at_lower(alpha: f64, c: f64) -> bool {
    alpha <= bound_tol(c)
}

/// True when `α` sits at the upper bound `C`.
#[inline]
pub fn at_upper(alpha: f64, c: f64) -> bool {
    alpha >= c - bound_tol(c)
}

/// Membership in the `β_up` scan set `I0 ∪ I1 ∪ I2`.
#[inline]
pub fn in_up_set(y: f64, alpha: f64, c: f64) -> bool {
    if y > 0.0 {
        !at_upper(alpha, c)
    } else {
        !at_lower(alpha, c)
    }
}

/// Membership in the `β_low` scan set `I0 ∪ I3 ∪ I4`.
#[inline]
pub fn in_low_set(y: f64, alpha: f64, c: f64) -> bool {
    if y > 0.0 {
        !at_lower(alpha, c)
    } else {
        !at_upper(alpha, c)
    }
}

/// Full classification into `I0..I4`.
pub fn classify(y: f64, alpha: f64, c: f64) -> IndexSet {
    let lo = at_lower(alpha, c);
    let hi = at_upper(alpha, c);
    match (y > 0.0, lo, hi) {
        (_, false, false) => IndexSet::I0,
        (true, true, _) => IndexSet::I1,
        (false, _, true) => IndexSet::I2,
        (true, _, true) => IndexSet::I3,
        (false, true, _) => IndexSet::I4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 10.0;

    #[test]
    fn classification_covers_eq4() {
        assert_eq!(classify(1.0, 5.0, C), IndexSet::I0);
        assert_eq!(classify(-1.0, 5.0, C), IndexSet::I0);
        assert_eq!(classify(1.0, 0.0, C), IndexSet::I1);
        assert_eq!(classify(-1.0, C, C), IndexSet::I2);
        assert_eq!(classify(1.0, C, C), IndexSet::I3);
        assert_eq!(classify(-1.0, 0.0, C), IndexSet::I4);
    }

    #[test]
    fn up_low_membership_matches_union_definitions() {
        for (y, alpha) in [
            (1.0, 0.0),
            (1.0, 5.0),
            (1.0, C),
            (-1.0, 0.0),
            (-1.0, 5.0),
            (-1.0, C),
        ] {
            let set = classify(y, alpha, C);
            let in_up = matches!(set, IndexSet::I0 | IndexSet::I1 | IndexSet::I2);
            let in_low = matches!(set, IndexSet::I0 | IndexSet::I3 | IndexSet::I4);
            assert_eq!(in_up_set(y, alpha, C), in_up, "y={y} a={alpha}");
            assert_eq!(in_low_set(y, alpha, C), in_low, "y={y} a={alpha}");
        }
    }

    #[test]
    fn every_sample_is_in_at_least_one_scan_set() {
        for y in [1.0, -1.0] {
            for alpha in [0.0, 1e-15, 3.0, C - 1e-15, C] {
                assert!(
                    in_up_set(y, alpha, C) || in_low_set(y, alpha, C),
                    "y={y} a={alpha} in neither set"
                );
            }
        }
    }

    #[test]
    fn tolerance_absorbs_clipping_residue() {
        // residue from floating-point clipping must classify as bound
        assert!(at_lower(1e-14, C));
        assert!(at_upper(C - 1e-14, C));
        assert_eq!(classify(1.0, 1e-14, C), IndexSet::I1);
        assert_eq!(classify(1.0, C - 1e-14, C), IndexSet::I3);
    }

    #[test]
    fn free_region_is_exclusive() {
        assert!(!at_lower(0.5, C) && !at_upper(0.5, C));
        assert_eq!(classify(-1.0, 0.5, C), IndexSet::I0);
    }
}
