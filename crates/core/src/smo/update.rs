//! The two-variable analytical solve — Eq. (6)/(7) of the paper.
//!
//! Given the maximal violating pair `(i_up, i_low)`, the dual subproblem in
//! `(α_up, α_low)` has the closed form
//!
//! ```text
//! ρ = 2K_ul − K_uu − K_ll            (Eq. 7; ρ < 0 for PD kernels)
//! α_low' = α_low − y_low (γ_up − γ_low)/ρ
//! α_up'  = α_up  + y_up y_low (α_low − α_low')
//! ```
//!
//! `α_low'` must then be clipped so both variables stay in `[0, C]` while
//! preserving the equality constraint `Σ αᵢ yᵢ = 0`. When `ρ` degenerates
//! (`ρ ≥ −τ`, possible with duplicate samples), the curvature is floored at
//! `τ` — Platt's fallback case referenced in §III.

/// Result of one pair solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairSolution {
    /// New `α` for the up sample, clipped.
    pub alpha_up: f64,
    /// New `α` for the low sample, clipped.
    pub alpha_low: f64,
    /// `α_up' − α_up`.
    pub delta_up: f64,
    /// `α_low' − α_low`.
    pub delta_low: f64,
}

impl PairSolution {
    /// True when the step moved neither variable (numerical stall signal).
    pub fn is_null(&self) -> bool {
        self.delta_up == 0.0 && self.delta_low == 0.0
    }
}

/// Solve the two-variable subproblem.
///
/// Arguments are the pair's labels, current multipliers, gradients
/// (`γ = f(x) − y`), the three kernel values, the box constraint and the
/// degeneracy floor `tau`. Both samples share the bound `c`; use
/// [`solve_pair_weighted`] for per-class bounds.
#[allow(clippy::too_many_arguments)]
pub fn solve_pair(
    y_up: f64,
    y_low: f64,
    alpha_up: f64,
    alpha_low: f64,
    g_up: f64,
    g_low: f64,
    k_uu: f64,
    k_ll: f64,
    k_ul: f64,
    c: f64,
    tau: f64,
) -> PairSolution {
    solve_pair_weighted(
        y_up, y_low, alpha_up, alpha_low, g_up, g_low, k_uu, k_ll, k_ul, c, c, tau,
    )
}

/// [`solve_pair`] with distinct box constraints for the two samples
/// (class-weighted SVM: `C_i = C · w_{y_i}`). The feasible segment for
/// `α_low` is derived from the conservation law and both caps.
#[allow(clippy::too_many_arguments)]
pub fn solve_pair_weighted(
    y_up: f64,
    y_low: f64,
    alpha_up: f64,
    alpha_low: f64,
    g_up: f64,
    g_low: f64,
    k_uu: f64,
    k_ll: f64,
    k_ul: f64,
    c_up: f64,
    c_low: f64,
    tau: f64,
) -> PairSolution {
    // η = −ρ = K_uu + K_ll − 2K_ul ≥ 0 for PSD kernels.
    let mut eta = k_uu + k_ll - 2.0 * k_ul;
    if eta < tau {
        eta = tau;
    }
    let s = y_up * y_low;

    let unclipped = alpha_low + y_low * (g_up - g_low) / eta;

    // Feasible segment for α_low given the equality constraint.
    let (lo, hi) = if s > 0.0 {
        // α_up + α_low conserved
        let k = alpha_up + alpha_low;
        ((k - c_up).max(0.0), k.min(c_low))
    } else {
        // α_low − α_up conserved
        let k = alpha_low - alpha_up;
        (k.max(0.0), (c_up + k).min(c_low))
    };
    let new_low = unclipped.clamp(lo, hi);
    let mut new_up = alpha_up + s * (alpha_low - new_low);
    // guard fp residue
    new_up = new_up.clamp(0.0, c_up);

    PairSolution {
        alpha_up: new_up,
        alpha_low: new_low,
        delta_up: new_up - alpha_up,
        delta_low: new_low - alpha_low,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 1.0;
    const TAU: f64 = 1e-12;

    #[test]
    fn textbook_two_point_problem_converges_in_one_step() {
        // x1=(1,0) y=+1, x2=(0,1) y=-1, linear kernel.
        // γ init: γ1=-1, γ2=+1; pair (up=1, low=2).
        let sol = solve_pair(1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, 0.0, C, TAU);
        assert!((sol.alpha_low - 1.0).abs() < 1e-15);
        assert!((sol.alpha_up - 1.0).abs() < 1e-15);
    }

    #[test]
    fn equality_constraint_is_preserved() {
        // Σ αᵢyᵢ must not change: y_up·Δup + y_low·Δlow = 0.
        for (y_up, y_low) in [(1.0, -1.0), (1.0, 1.0), (-1.0, 1.0), (-1.0, -1.0)] {
            for (au, al) in [(0.0, 0.0), (0.3, 0.7), (0.0, 1.0), (0.9, 0.1)] {
                let sol = solve_pair(y_up, y_low, au, al, -2.0, 1.5, 1.0, 1.0, 0.2, C, TAU);
                let drift = y_up * sol.delta_up + y_low * sol.delta_low;
                assert!(
                    drift.abs() < 1e-12,
                    "drift {drift} for y=({y_up},{y_low}) a=({au},{al})"
                );
            }
        }
    }

    #[test]
    fn solution_stays_in_box() {
        let grids = [-5.0, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0];
        for &g_up in &grids {
            for &g_low in &grids {
                for (au, al) in [(0.0, 0.0), (0.5, 0.5), (1.0, 0.0), (0.2, 0.9)] {
                    for (yu, yl) in [(1.0, -1.0), (1.0, 1.0), (-1.0, -1.0), (-1.0, 1.0)] {
                        let sol = solve_pair(yu, yl, au, al, g_up, g_low, 1.0, 1.0, 0.3, C, TAU);
                        assert!((0.0..=C).contains(&sol.alpha_up), "{sol:?}");
                        assert!((0.0..=C).contains(&sol.alpha_low), "{sol:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn violating_pair_always_progresses() {
        // When g_up < g_low (a violation) and the pair is scan-eligible,
        // the step must strictly move α_low in its feasible direction.
        // y_low = +1, α_low interior → movable down; y_low picked so the
        // update direction is feasible.
        let sol = solve_pair(1.0, 1.0, 0.0, 0.5, -1.0, 1.0, 1.0, 1.0, 0.0, C, TAU);
        assert!(sol.delta_low < 0.0);
        assert!(!sol.is_null());
    }

    #[test]
    fn clipping_binds_at_box_edges() {
        // huge violation, α_low already near the feasible edge
        let sol = solve_pair(1.0, -1.0, 0.0, 0.9, -100.0, 100.0, 1.0, 1.0, 0.0, C, TAU);
        // s = -1: k = 0.9; hi = min(C, C + 0.9) = 1.0
        assert_eq!(sol.alpha_low, 1.0);
        assert!((sol.alpha_up - 0.1).abs() < 1e-15);
    }

    #[test]
    fn degenerate_curvature_uses_tau_floor() {
        // identical samples: η = 0; update must remain finite and in-box.
        let sol = solve_pair(1.0, -1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, 1.0, C, TAU);
        assert!(sol.alpha_low.is_finite());
        assert!((0.0..=C).contains(&sol.alpha_low));
        // with a tiny floor the step slams into the box edge
        assert_eq!(sol.alpha_low, C);
    }

    #[test]
    fn null_step_when_box_blocks() {
        // α_low at its feasible maximum already and update pushes further up.
        let sol = solve_pair(-1.0, 1.0, 0.0, 0.0, -1.0, 1.0, 1.0, 1.0, 0.0, C, TAU);
        // y_low=+1: α_low' = 0 + (-2)/2 = -1 → clipped to lo.
        // s = -1: k = 0; lo = 0 → α_low' = 0: null step.
        assert!(sol.is_null());
    }

    #[test]
    fn same_class_pair_conserves_sum() {
        let sol = solve_pair(1.0, 1.0, 0.4, 0.6, -3.0, 2.0, 1.0, 1.0, 0.1, C, TAU);
        assert!(((sol.alpha_up + sol.alpha_low) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_caps_bind_independently() {
        // c_up = 2, c_low = 0.5: a same-class transfer must respect both.
        let sol = solve_pair_weighted(1.0, 1.0, 1.5, 0.3, -9.0, 9.0, 1.0, 1.0, 0.0, 2.0, 0.5, TAU);
        assert!(sol.alpha_up <= 2.0 + 1e-15);
        assert!(sol.alpha_low <= 0.5 + 1e-15);
        // conservation: sum preserved
        assert!(((sol.alpha_up + sol.alpha_low) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn weighted_reduces_to_plain_when_equal() {
        let a = solve_pair(1.0, -1.0, 0.2, 0.4, -1.0, 2.0, 1.0, 1.0, 0.3, 1.0, TAU);
        let b = solve_pair_weighted(1.0, -1.0, 0.2, 0.4, -1.0, 2.0, 1.0, 1.0, 0.3, 1.0, 1.0, TAU);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_opposite_class_cap() {
        // s = -1: α_low can rise to min(c_low, c_up + k)
        let sol = solve_pair_weighted(
            1.0, -1.0, 0.0, 0.0, -5.0, 5.0, 1.0, 1.0, 0.0, 0.25, 1.0, TAU,
        );
        // α_up' = α_up + s(α_low − α_low') = α_low' must stay ≤ c_up = 0.25
        assert!(sol.alpha_up <= 0.25 + 1e-15);
        assert_eq!(sol.alpha_low, 0.25);
    }
}
