//! Sequential Minimal Optimization (Algorithm 1) and its multicore variant
//! — the "libsvm" / "libsvm-enhanced" baselines of §V-A.
//!
//! * [`state`] — the per-sample index-set algebra of Eq. (4),
//! * [`update`] — the two-variable analytical solve of Eq. (6)/(7),
//! * [`solver`] — [`SmoSolver`]: maximal-violating-pair SMO with an LRU
//!   kernel-row cache and optional OpenMP-style parallel gradient updates.

pub mod solver;
pub mod state;
pub mod update;

pub use solver::{SmoSolver, TrainOutput};

use crate::kernel::KernelEval;

/// Dual objective `½ Σᵢⱼ αᵢαⱼyᵢyⱼK(xᵢ,xⱼ) − Σᵢαᵢ` — `O(n²)`, for tests and
/// diagnostics only (monotone non-increasing across SMO steps).
pub fn dual_objective(ke: &KernelEval<'_>, y: &[f64], alpha: &[f64]) -> f64 {
    let n = y.len();
    let mut quad = 0.0;
    for i in 0..n {
        if alpha[i] == 0.0 {
            continue;
        }
        for j in 0..n {
            if alpha[j] == 0.0 {
                continue;
            }
            quad += alpha[i] * alpha[j] * y[i] * y[j] * ke.k(i, j);
        }
    }
    0.5 * quad - alpha.iter().sum::<f64>()
}
