//! Error type for the solver crate.

use std::fmt;

/// Errors surfaced by training and evaluation.
#[derive(Debug)]
pub enum CoreError {
    /// Training data had no samples or only one class.
    DegenerateProblem(String),
    /// Invalid hyper-parameters.
    BadParams(String),
    /// The optimizer made no progress for an implausible number of
    /// consecutive iterations (numerical stall guard).
    Stalled {
        /// Iteration at which the stall was declared.
        at_iteration: u64,
    },
    /// Propagated sparse-layer failure.
    Sparse(shrinksvm_sparse::SparseError),
    /// Model (de)serialization failure.
    ModelFormat(String),
    /// Checkpoint (de)serialization failure.
    CheckpointFormat(String),
    /// A rank died (injected crash) and the recovery budget — or the lack
    /// of a checkpoint policy — left no way to continue.
    RankLost {
        /// Rank that died.
        rank: usize,
        /// Simulated time of death.
        sim_time: f64,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DegenerateProblem(m) => write!(f, "degenerate problem: {m}"),
            CoreError::BadParams(m) => write!(f, "bad parameters: {m}"),
            CoreError::Stalled { at_iteration } => {
                write!(f, "optimizer stalled at iteration {at_iteration}")
            }
            CoreError::Sparse(e) => write!(f, "sparse layer: {e}"),
            CoreError::ModelFormat(m) => write!(f, "model format: {m}"),
            CoreError::CheckpointFormat(m) => write!(f, "checkpoint format: {m}"),
            CoreError::RankLost { rank, sim_time } => write!(
                f,
                "rank {rank} lost at simulated time {sim_time:.6}s with no recovery path"
            ),
            CoreError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sparse(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<shrinksvm_sparse::SparseError> for CoreError {
    fn from(e: shrinksvm_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = CoreError::Stalled { at_iteration: 42 };
        assert!(e.to_string().contains("42"));
        let e = CoreError::BadParams("C must be positive".into());
        assert!(e.to_string().contains("C must be positive"));
    }
}
