//! Launching a distributed training run and merging the per-rank outcomes.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use shrinksvm_mpisim::{CommStats, CostParams, FaultPlan, Universe, ValidationReport};
use shrinksvm_obs::flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
use shrinksvm_obs::monitor::{self, HealthConfig, HealthRule};
use shrinksvm_obs::timeline::{Event, Timeline};
use shrinksvm_obs::{attrib, BenchReport, MetricsRegistry, PerfDoctor, Profile};
use shrinksvm_sparse::Dataset;

use crate::dist::checkpoint::{
    Checkpoint, CheckpointCtx, CheckpointPolicy, CheckpointStore, RestoreScan,
};
use crate::dist::recovery::{LadderAction, RecoveryLadder, RecoveryPolicy, RecoverySummary};
use crate::dist::solver::{train_rank, DistConfig, DotKind};
use crate::error::CoreError;
use crate::model::SvmModel;
use crate::params::SvmParams;
use crate::perfmodel::ComputeCharge;
use crate::trace::{merge_rank_traces, Trace};

/// Merged result of a distributed run.
#[derive(Clone, Debug)]
pub struct DistRunResult {
    /// The trained model (identical on every rank; rank 0's copy).
    pub model: SvmModel,
    /// Total SMO iterations.
    pub iterations: u64,
    /// Whether optimality was reached.
    pub converged: bool,
    /// Merged execution trace.
    pub trace: Trace,
    /// Fleet makespan in *simulated* seconds (max rank clock).
    pub makespan: f64,
    /// Max simulated seconds any rank spent inside gradient
    /// reconstruction (Figure 8's numerator).
    pub recon_time: f64,
    /// Real wall-clock time of the whole simulated run.
    pub wall_time: Duration,
    /// Per-rank communication statistics (of the final, successful
    /// attempt).
    pub rank_stats: Vec<CommStats>,
    /// Injected faults survived: transport faults absorbed by
    /// retransmission or delay, plus rank crashes recovered from.
    pub faults_survived: u64,
    /// Simulated seconds lost to crash-aborted attempts (re-executed
    /// time plus ladder backoff; see [`DistRunResult::recovery`] for the
    /// split). The total modeled cost of the run is
    /// `makespan + recovery_cost`.
    pub recovery_cost: f64,
    /// Crash-recovery restarts performed.
    pub recoveries: u32,
    /// Full recovery-ladder accounting: rungs climbed, corrupt
    /// generations detected, waste/backoff split, final rank count.
    pub recovery: RecoverySummary,
    /// Validation report of the final attempt (violations plus the
    /// fault-injection ledger; empty without
    /// [`DistSolver::with_validation`]).
    pub report: ValidationReport,
    /// Merged simulated-time timeline of the final attempt (empty without
    /// [`DistSolver::with_tracing`]). Driver-side crash recoveries appear
    /// as `recovery_restart` instants at each aborted attempt's crash
    /// time.
    pub timeline: Timeline,
    /// Merged solver metrics across ranks: counters sum to global totals,
    /// epoch series (active-set size, KKT gap) are recorded once on
    /// rank 0.
    pub metrics: MetricsRegistry,
    /// Trace-analysis report of the final attempt (`None` without
    /// [`DistSolver::with_tracing`]): the exact critical path through the
    /// event DAG, the five-bucket makespan attribution (crash-recovery
    /// cost from aborted attempts fills the recovery bucket), and the
    /// what-if projections. Render with [`PerfDoctor::render_text`] /
    /// [`PerfDoctor::to_json`].
    pub perf: Option<PerfDoctor>,
    /// Hierarchical time profile of the final attempt (`None` without
    /// [`DistSolver::with_tracing`]): per-rank and merged phase → op →
    /// charge-class trees reconciled against the attribution buckets.
    /// Export with [`Profile::to_folded`] / [`Profile::to_svg`] /
    /// [`Profile::write`].
    pub profile: Option<Profile>,
}

impl DistRunResult {
    /// Fraction of simulated time spent in gradient reconstruction.
    pub fn recon_fraction(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.recon_time / self.makespan
        }
    }

    /// Summarize this run as a machine-readable [`BenchReport`] named
    /// `name` (written to disk as `BENCH_<name>.json`). Speedup vs the
    /// Original baseline is unknown here; callers comparing policies fill
    /// in [`BenchReport::speedup_vs_original`] themselves.
    pub fn bench_report(&self, name: &str) -> BenchReport {
        let mut agg = CommStats::default();
        for s in &self.rank_stats {
            agg.merge(s);
        }
        let mut r = BenchReport::new(name);
        r.modeled_time = self.makespan;
        r.iterations = self.iterations;
        r.converged = self.converged;
        r.ranks = self.rank_stats.len() as u32;
        r.compute_time = agg.compute_time;
        r.transfer_time = agg.transfer_time;
        r.idle_time = agg.idle_time;
        r.faults_survived = self.faults_survived;
        r.recoveries = self.recoveries as u64;
        r.recovery_cost = self.recovery_cost;
        r.extras
            .insert("recovery_waste".to_string(), self.recovery.waste);
        r.extras
            .insert("recovery_backoff".to_string(), self.recovery.backoff);
        r.extras.insert(
            "recovery_corrupt_generations".to_string(),
            self.recovery.corrupt_generations as f64,
        );
        r.extras.insert("recon_time".to_string(), self.recon_time);
        r.extras
            .insert("n_sv".to_string(), self.model.n_sv() as f64);
        if let Some(doc) = &self.perf {
            for (k, v) in attrib::bench_extras(doc) {
                r.extras.insert(k.to_string(), v);
            }
        }
        r
    }
}

/// Builder-style front end: configures process count, network model and
/// compute charges, then trains.
///
/// ```
/// use shrinksvm_core::dist::DistSolver;
/// use shrinksvm_core::kernel::KernelKind;
/// use shrinksvm_core::params::SvmParams;
/// use shrinksvm_core::shrink::ShrinkPolicy;
/// use shrinksvm_datagen::gaussian;
///
/// let ds = gaussian::two_blobs(120, 3, 5.0, 1);
/// let params = SvmParams::new(1.0, KernelKind::rbf_from_sigma_sq(2.0))
///     .with_shrink(ShrinkPolicy::best());
/// let result = DistSolver::new(&ds, params).with_processes(4).train().unwrap();
/// assert!(result.converged);
/// ```
pub struct DistSolver<'a> {
    ds: &'a Dataset,
    cfg: DistConfig,
    p: usize,
    cost: CostParams,
    validate: bool,
    faults: Option<FaultPlan>,
    checkpoint: Option<CheckpointPolicy>,
    recovery: Option<RecoveryPolicy>,
    liveness: Option<Duration>,
    tracing: bool,
    flight: Option<Arc<FlightRecorder>>,
}

/// Flight-recorder ring capacity (events kept per rank):
/// `SHRINKSVM_FLIGHT_CAP` when set (clamped to ≥ 1), else
/// [`DEFAULT_FLIGHT_CAPACITY`]. Read at recorder-construction time, not
/// cached — harnesses size each run's black box independently.
///
/// Panics with a named diagnosis when the override is set to a
/// non-numeric value — a misconfigured knob must not silently fall back
/// to the default.
pub fn flight_capacity() -> usize {
    match shrinksvm_mpisim::env_u64("SHRINKSVM_FLIGHT_CAP") {
        Ok(Some(v)) => v.max(1) as usize,
        Ok(None) => DEFAULT_FLIGHT_CAPACITY,
        Err(e) => panic!("{e}"),
    }
}

impl<'a> DistSolver<'a> {
    /// A single-process distributed solver (add ranks with
    /// [`DistSolver::with_processes`]).
    pub fn new(ds: &'a Dataset, params: SvmParams) -> Self {
        DistSolver {
            ds,
            cfg: DistConfig::new(params),
            p: 1,
            cost: CostParams::fdr(),
            validate: false,
            faults: None,
            checkpoint: None,
            recovery: None,
            liveness: None,
            tracing: false,
            flight: None,
        }
    }

    /// Set the number of simulated ranks.
    pub fn with_processes(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one process");
        self.p = p;
        self
    }

    /// Set the network cost model.
    pub fn with_cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Set the compute charges applied to simulated clocks.
    pub fn with_charge(mut self, charge: ComputeCharge) -> Self {
        self.cfg.charge = charge;
        self
    }

    /// Set the intra-rank worker-thread count for the fused
    /// γ-update/shrink sweep and the candidate scan (the paper's hybrid
    /// MPI+OpenMP layout). Results are bit-identical at every thread
    /// count; only the simulated critical-path charge changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        self.cfg.threads = threads;
        self
    }

    /// Select the sparse dot-product implementation for the gradient hot
    /// path (defaults to [`DotKind::Scatter`]; both are bit-identical).
    pub fn with_dots(mut self, dots: DotKind) -> Self {
        self.cfg.dots = dots;
        self
    }

    /// Toggle the overlapped-communication pipeline: the fused candidate
    /// reduction becomes a nonblocking collective initiated after the
    /// sweep head and waited on only at the pivot decision. Defaults to
    /// the `SHRINKSVM_OVERLAP` environment override, else on. Models and
    /// iteration counts are bit-identical either way; only simulated
    /// time moves.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.cfg.overlap = overlap;
        self
    }

    /// Run the solver under the substrate's full communication validation
    /// ([`Universe::validated`]): vector-clock happens-before checks,
    /// collective lockstep fingerprints, message conservation and tag
    /// discipline. Training panics with the validation report if the
    /// communication pattern is incorrect. Adds `O(p)` bookkeeping per
    /// message, so it is off by default.
    pub fn with_validation(mut self) -> Self {
        self.validate = true;
        self
    }

    /// Install a seeded [`FaultPlan`] — injected message drops,
    /// corruptions and delays, rank crashes and slowdowns, all keyed on
    /// simulated time. Transport faults are absorbed by the substrate's
    /// retransmission; crashes are recoverable when
    /// [`DistSolver::with_checkpointing`] is also set.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable periodic checkpointing and crash recovery: every rank
    /// snapshots its solver state on the policy's cadence, and on an
    /// injected rank death training restarts from the last consistent
    /// checkpoint — at the same rank count, or (with
    /// [`CheckpointPolicy::allow_degraded`]) re-partitioned across one
    /// rank fewer.
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Install an explicit recovery ladder (see [`RecoveryPolicy`]).
    /// Without this, a checkpointing run uses the legacy policy implied
    /// by its [`CheckpointPolicy`] (restore the newest cut, degrade
    /// eagerly iff `allow_degraded`, no backoff), and a run without
    /// checkpointing does not recover at all.
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Override the substrate's liveness timeout (how long a blocked
    /// receive waits before declaring the peer dead).
    pub fn with_liveness_timeout(mut self, timeout: Duration) -> Self {
        self.liveness = Some(timeout);
        self
    }

    /// Record a per-rank simulated-time timeline (compute spans,
    /// collectives, receive waits, retransmissions, solver phases) into
    /// [`DistRunResult::timeline`]. Purely simulated-time bookkeeping, so
    /// the artifact is byte-identical across same-seed runs.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Attach a crash flight recorder: every rank mirrors its last N
    /// events (compute spans, receive waits, retransmissions, terminal
    /// fault diagnostics) into `flight`'s bounded per-rank rings,
    /// independent of tracing. The caller keeps the `Arc` — it survives
    /// the panic unwind of a crashed attempt, so the black box is
    /// readable even when the run never returns a result. Driver-level
    /// recovery-ladder actions are mirrored in too. Size the rings with
    /// [`flight_capacity`].
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Run the training. With a fault plan installed, transport faults are
    /// absorbed in-flight; an injected rank crash aborts the attempt and —
    /// if the recovery ladder's budget allows — the driver disarms the
    /// fired crash rule, restores a verified consistent checkpoint and
    /// retrains. Repeated no-progress crashes escalate through the
    /// [`RecoveryPolicy`] rungs: older generations, fewer ranks, deeper
    /// skips at the floor, then a named [`CoreError::RankLost`].
    pub fn train(self) -> Result<DistRunResult, CoreError> {
        #[allow(clippy::disallowed_methods)]
        // allow-wall-clock: host-side metric (reported wall_time), not simulated time
        let start = Instant::now();
        let ds = self.ds;
        let mut faults = self.faults;
        let policy = self.recovery.unwrap_or_else(|| match &self.checkpoint {
            Some(pol) => RecoveryPolicy::legacy(pol),
            None => RecoveryPolicy::none(),
        });
        let store = self.checkpoint.as_ref().map(|pol| {
            let s = Arc::new(CheckpointStore::new(
                self.p,
                pol.disk_path.clone(),
                pol.keep_generations,
            ));
            if let Some(plan) = &faults {
                s.plant_corruptions(&plan.checkpoint_corruption_windows());
            }
            s
        });
        let mut ladder = RecoveryLadder::new(policy, self.p);
        let mut summary = RecoverySummary::default();
        let mut resume: Option<Arc<Checkpoint>> = None;
        let mut resumed_seq: Option<u64> = None;
        // (rank, sim_time, kind) instants surfaced on the final timeline.
        let mut marks: Vec<(usize, f64, &'static str)> = Vec::new();
        // How many of `marks` are already mirrored into the flight
        // recorder (each crash appends a batch; mirror it once).
        let mut marks_mirrored = 0usize;
        loop {
            let p = ladder.p();
            let mut universe = Universe::new(p).with_cost(self.cost);
            if self.validate {
                universe = universe.validated();
            }
            if self.tracing {
                universe = universe.with_tracing();
            }
            if let Some(lv) = self.liveness {
                universe = universe.with_liveness_timeout(lv);
            }
            if let Some(plan) = &faults {
                universe = universe.with_faults(plan.clone());
            }
            if let Some(fr) = &self.flight {
                universe = universe.with_flight(Arc::clone(fr));
            }
            let mut cfg = self.cfg.clone();
            if let (Some(store), Some(pol)) = (&store, &self.checkpoint) {
                cfg.checkpoint = Some(CheckpointCtx {
                    store: Arc::clone(store),
                    every_iters: pol.every_iters,
                });
                cfg.resume = resume.clone();
            }
            // Promote-seq watermark at attempt start: generations at or
            // past it were banked by *this* attempt.
            let seq_floor = store.as_ref().map_or(0, |s| s.promote_seq());
            let (outcomes, mut report, mut timeline, deps) =
                match universe.run_try_observed(|comm| train_rank(comm, ds, &cfg)) {
                    Ok(result) => result,
                    Err(notice) => {
                        marks.push((notice.rank, notice.sim_time, "recovery_restart"));
                        // Did the verified frontier move past the cut we
                        // resumed from? That is the ladder's notion of
                        // progress.
                        let frontier = store
                            .as_ref()
                            .map_or_else(RestoreScan::default, |s| s.restore_verified(0));
                        let action = ladder.on_crash(frontier.seq > resumed_seq);
                        let LadderAction::Restore {
                            p: next_p,
                            skip_generations,
                            backoff,
                        } = action
                        else {
                            return Err(CoreError::RankLost {
                                rank: notice.rank,
                                sim_time: notice.sim_time,
                            });
                        };
                        if let Some(plan) = &mut faults {
                            // the fault already fired; re-injecting it on the
                            // retry would loop forever
                            plan.disarm_rank_rule(notice.rule);
                        }
                        let scan = store.as_ref().map_or_else(RestoreScan::default, |s| {
                            s.restore_verified(skip_generations)
                        });
                        // Work banked into a cut this attempt promoted is
                        // not waste — the retry resumes past it. Only the
                        // clock beyond the restored cut is re-executed.
                        let banked = if scan.seq.is_some_and(|s| s >= seq_floor) {
                            scan.sim_time
                        } else {
                            0.0
                        };
                        charge_recovery(&mut summary, (notice.sim_time - banked).max(0.0), backoff);
                        summary.recoveries += 1;
                        summary.corrupt_generations += scan.corrupt_seqs.len() as u64;
                        summary.generations_skipped += scan.skipped_valid as u64;
                        if !scan.corrupt_seqs.is_empty() {
                            marks.push((notice.rank, notice.sim_time, "recovery_ckpt_corrupt"));
                        }
                        if next_p < p {
                            summary.degraded = true;
                            marks.push((notice.rank, notice.sim_time, "recovery_degrade"));
                        }
                        if scan.checkpoint.is_none() {
                            summary.cold_restarts += 1;
                        }
                        if let Some(store) = &store {
                            // Drop generations newer than the restore
                            // target (the retry re-posts their keys) and
                            // retarget the store at the retry's rank count.
                            store.rewind_to(scan.seq);
                            store.begin_attempt(summary.recoveries, next_p);
                        }
                        if let Some(fr) = &self.flight {
                            // Mirror this crash's ladder actions into the
                            // black box as they happen — the rings must
                            // tell the recovery story even if a later
                            // attempt dies without returning.
                            for &(rank, sim_time, kind) in &marks[marks_mirrored..] {
                                fr.record(Event::Instant {
                                    track: rank as u32,
                                    name: kind.to_string(),
                                    cat: "recovery".to_string(),
                                    t: sim_time,
                                });
                            }
                            marks_mirrored = marks.len();
                        }
                        resume = scan.checkpoint.clone();
                        resumed_seq = scan.seq;
                        continue;
                    }
                };
            if self.validate && !report.is_clean() {
                panic!("{report}");
            }

            // Error paths are driven by globally-agreed values, so either
            // every rank succeeded or every rank failed identically; report
            // rank 0's.
            let mut values = Vec::with_capacity(outcomes.len());
            let mut rank_stats = Vec::with_capacity(outcomes.len());
            let mut makespan = 0.0f64;
            let mut recon_time = 0.0f64;
            for o in outcomes {
                makespan = makespan.max(o.clock);
                rank_stats.push(o.stats);
                values.push(o.value?);
            }
            for v in &values {
                recon_time = recon_time.max(v.recon_sim_time);
            }
            let transport_faults: u64 = rank_stats.iter().map(CommStats::transport_faults).sum();
            let mut metrics = MetricsRegistry::new();
            for v in &values {
                metrics.merge(&v.metrics);
            }
            if self.tracing && !marks.is_empty() {
                // The timeline covers only the final (successful) attempt;
                // mark where earlier attempts died — and which ladder rungs
                // fired — so recoveries are visible on the affected rank's
                // track.
                for &(rank, sim_time, kind) in &marks {
                    timeline.push(Event::Instant {
                        track: rank as u32,
                        name: kind.to_string(),
                        cat: "recovery".to_string(),
                        t: sim_time,
                    });
                }
                timeline.normalize();
                // Ladder-churn health: the per-attempt analysis inside the
                // universe never sees these driver-level recovery marks, so
                // the churn rule is evaluated here, over the final merged
                // timeline, and only its events are new (every other rule
                // already fired — or didn't — inside the universe).
                let churn: Vec<_> = monitor::analyze(timeline.events(), &HealthConfig::default())
                    .into_iter()
                    .filter(|h| h.rule == HealthRule::RecoveryChurn)
                    .collect();
                if !churn.is_empty() {
                    for h in &churn {
                        let instant = h.to_instant();
                        if let Some(fr) = &self.flight {
                            fr.record(instant.clone());
                        }
                        timeline.push(instant);
                    }
                    timeline.normalize();
                }
            }
            if let Some(fr) = &self.flight {
                // Refresh the report's black-box rendering so it includes
                // any driver-level events mirrored after the universe
                // returned.
                report.flight = fr.snapshot().render_lines();
            }
            // Trace analysis of the final attempt. A failure here is a
            // simulator bug (the dep log must replay bit-for-bit), so it
            // dies loudly rather than shipping wrong numbers.
            let perf = if self.tracing {
                match PerfDoctor::analyze_split(&deps, summary.waste, summary.backoff) {
                    Ok(doc) => Some(doc),
                    Err(e) => panic!("PerfDoctor analysis failed: {e}"),
                }
            } else {
                None
            };
            // The hierarchical profile shares the doctor's failure
            // contract: it reconciles the same walk against the same
            // buckets, so an error is a simulator bug, not bad input.
            let profile = if self.tracing {
                match Profile::from_run(&deps, &timeline) {
                    Ok(p) => Some(p),
                    Err(e) => panic!("profile construction failed: {e}"),
                }
            } else {
                None
            };
            summary.final_ranks = rank_stats.len();
            if summary.recoveries > 0 {
                metrics.inc("recoveries", u64::from(summary.recoveries));
                metrics.inc("recovery_corrupt_generations", summary.corrupt_generations);
                metrics.inc("recovery_generations_skipped", summary.generations_skipped);
                metrics.inc("recovery_cold_restarts", u64::from(summary.cold_restarts));
                metrics.set_gauge("recovery_waste", summary.waste);
                metrics.set_gauge("recovery_backoff", summary.backoff);
                metrics.set_gauge("recovery_final_ranks", summary.final_ranks as f64);
            }
            // Per-rule health-event counts, registered only when an event
            // actually fired — a fault-free run's registry (and every
            // artifact derived from it) is byte-identical to one produced
            // before the monitor existed.
            let mut health_counts: BTreeMap<String, u64> = BTreeMap::new();
            for e in timeline.events() {
                if let Event::Instant { name, cat, .. } = e {
                    if cat == "health" {
                        let rule = name.split(':').next().unwrap_or("unknown");
                        *health_counts.entry(format!("health_{rule}")).or_insert(0) += 1;
                    }
                }
            }
            for (k, n) in &health_counts {
                metrics.inc(k, *n);
            }
            let first = &values[0];
            let traces: Vec<_> = values.iter().map(|v| v.trace.clone()).collect();
            let trace = merge_rank_traces(
                &traces,
                ds.len() as u64,
                ds.x.mean_row_nnz(),
                first.converged,
                first.final_gap,
            );
            return Ok(DistRunResult {
                model: first.model.clone(),
                iterations: first.iterations,
                converged: first.converged,
                trace,
                makespan,
                recon_time,
                wall_time: start.elapsed(),
                rank_stats,
                faults_survived: u64::from(summary.recoveries) + transport_faults,
                recovery_cost: summary.cost(),
                recoveries: summary.recoveries,
                report,
                timeline,
                metrics,
                perf,
                profile,
                recovery: summary,
            });
        }
    }
}

/// Book one aborted attempt's cost into the run's recovery summary:
/// `waste` is the attempt's re-executed simulated time (its crash clock
/// minus whatever it banked into the restored cut), `backoff` the
/// ladder's pre-retry charge. Lives as a named function so the charge
/// lint can require recovery-loop accounting to route through it.
fn charge_recovery(summary: &mut RecoverySummary, waste: f64, backoff: f64) {
    summary.waste += waste;
    summary.backoff += backoff;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelKind;
    use crate::shrink::ShrinkPolicy;
    use shrinksvm_datagen::gaussian;

    fn quick_params() -> SvmParams {
        SvmParams::new(2.0, KernelKind::rbf_from_sigma_sq(1.0)).with_epsilon(1e-3)
    }

    #[test]
    fn builder_configures_and_trains() {
        let ds = gaussian::two_blobs(100, 3, 5.0, 31);
        let run = DistSolver::new(&ds, quick_params())
            .with_processes(3)
            .with_cost(CostParams::zero())
            .with_charge(ComputeCharge::default())
            .train()
            .unwrap();
        assert!(run.converged);
        assert_eq!(run.rank_stats.len(), 3);
        assert!(run.model.n_sv() > 0);
        assert!(run.wall_time.as_nanos() > 0);
    }

    #[test]
    fn zero_cost_network_still_tracks_compute_time() {
        let ds = gaussian::two_blobs(80, 3, 4.0, 32);
        let run = DistSolver::new(&ds, quick_params())
            .with_processes(2)
            .with_cost(CostParams::zero())
            .train()
            .unwrap();
        // compute is charged through the charge model even when the
        // network is free
        assert!(run.makespan > 0.0);
        for s in &run.rank_stats {
            assert!(s.compute_time > 0.0);
            assert_eq!(s.comm_time(), 0.0);
        }
    }

    #[test]
    fn recon_fraction_is_a_fraction() {
        let ds = gaussian::two_blobs(120, 3, 2.0, 33);
        let run = DistSolver::new(&ds, quick_params().with_shrink(ShrinkPolicy::best()))
            .with_processes(2)
            .train()
            .unwrap();
        let f = run.recon_fraction();
        assert!((0.0..1.0).contains(&f), "recon fraction {f}");
    }

    #[test]
    fn tracing_and_metrics_populate_the_run_result() {
        let ds = gaussian::two_blobs(120, 3, 4.0, 35);
        let run = DistSolver::new(&ds, quick_params().with_shrink(ShrinkPolicy::best()))
            .with_processes(2)
            .with_tracing()
            .train()
            .unwrap();
        assert!(!run.timeline.is_empty());
        assert_eq!(run.timeline.tracks(), 2);
        let json = run.timeline.to_chrome_json();
        shrinksvm_obs::json::check(&json).unwrap();
        assert!(json.contains("\"compute\""));
        assert!(json.contains("\"allreduce\""));
        // rank-0 epoch series merged into the run-level registry
        assert!(!run.metrics.series("active_set").is_empty());
        assert!(run.metrics.counter("shrink_passes") > 0);
        let report = run.bench_report("unit").to_json();
        shrinksvm_obs::json::check(&report).unwrap();
        assert!(report.contains("\"modeled_time\""));
    }

    #[test]
    fn untraced_run_has_an_empty_timeline() {
        let ds = gaussian::two_blobs(80, 3, 4.0, 36);
        let run = DistSolver::new(&ds, quick_params())
            .with_processes(2)
            .train()
            .unwrap();
        assert!(run.timeline.is_empty());
        // metrics are collected unconditionally — they cost a few counters
        assert!(run.metrics.gauge("final_gap").is_some());
    }

    #[test]
    fn degenerate_input_errors_cleanly() {
        let ds = gaussian::two_blobs(100, 3, 5.0, 34);
        let one_class = ds
            .select(&(0..100).filter(|i| i % 2 == 0).collect::<Vec<_>>())
            .unwrap();
        let err = DistSolver::new(&one_class, quick_params())
            .with_processes(2)
            .train();
        assert!(matches!(err, Err(CoreError::DegenerateProblem(_))));
    }
}
