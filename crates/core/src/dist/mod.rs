//! The distributed solver — the paper's contribution.
//!
//! * [`partition`] — contiguous block ownership of samples by rank,
//! * [`msg`] — wire encodings for the pair broadcast (Algorithm 2 lines
//!   3–9) and the ring SV blocks (Algorithm 3),
//! * [`solver`] — the per-rank training program: Algorithm 2 (*Original*),
//!   Algorithm 4 (single reconstruction) and Algorithm 5 (multiple
//!   reconstruction), selected by the [`crate::shrink::ShrinkPolicy`],
//! * [`convergence`] — online convergence telemetry: KKT-gap slope,
//!   active-set shrink velocity and a warmup/shrinking/plateau/polish
//!   phase classifier, published as epoch series (no communication),
//! * [`recon`] — distributed gradient reconstruction (Algorithm 3),
//! * [`checkpoint`] — multi-generation, checksummed consistent-checkpoint
//!   store for crash recovery,
//! * [`recovery`] — the degradation ladder: escalating crash-recovery
//!   policy (older generations → fewer ranks → give up),
//! * [`driver`] — [`DistSolver`]: launches a `mpisim` universe, runs the
//!   per-rank program on every rank, merges the outcomes, and recovers
//!   from injected rank crashes via the checkpoint store and the ladder.

pub mod checkpoint;
pub mod convergence;
pub mod driver;
pub mod msg;
pub mod partition;
pub mod recon;
pub mod recovery;
pub mod solver;

pub use checkpoint::{
    Checkpoint, CheckpointPolicy, CheckpointStore, RankSnapshot, RestoreScan,
    DEFAULT_KEEP_GENERATIONS,
};
pub use convergence::{ConvergencePhase, ConvergenceTracker};
pub use driver::{flight_capacity, DistRunResult, DistSolver};
pub use recovery::{LadderAction, RecoveryLadder, RecoveryPolicy, RecoverySummary};
pub use solver::{metrics_epoch, overlap_default, train_rank, DistConfig, DotKind, RankOutput};
