//! Checkpoint/restart state for the distributed trainer.
//!
//! Every rank periodically snapshots its solver state (multipliers,
//! gradients, active flags, iteration counter) into a shared
//! [`CheckpointStore`]. A generation is **promoted** to "last consistent
//! checkpoint" only once *all* ranks have posted a snapshot for the same
//! `(iteration, stage)` key — the solver is lockstep, so every rank
//! reaches each key at the same point of the trajectory, and a crash
//! mid-generation simply leaves that generation unpromoted. On rank death
//! the driver restarts from a promoted checkpoint (same rank count) or
//! re-partitions the state across the survivors (degraded continuation):
//! snapshots carry *global* sample indices, so restoring under a
//! different partition is a plain overlapping copy.
//!
//! The store keeps a bounded history of promoted **generations**
//! ([`CheckpointPolicy::keep_generations`]), each carrying its serialized
//! cut and an FNV-1a checksum computed at promotion.
//! [`CheckpointStore::restore_verified`] walks newest → oldest, verifies
//! each generation's bytes against its checksum, and skips damaged ones —
//! so a corrupted checkpoint (injected by a [`FaultPlan`] `ckpt` rule, or
//! real bit rot in a future disk-backed store) degrades recovery by one
//! generation instead of poisoning the trajectory.
//!
//! The store is in-memory; [`CheckpointPolicy::disk_path`] additionally
//! mirrors every promoted generation to a versioned-header text file with
//! a checksum trailer that [`Checkpoint::read_from`] verifies before
//! parsing — truncation and bit flips are named errors, never garbage
//! state.
//!
//! [`FaultPlan`]: shrinksvm_mpisim::FaultPlan

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::CoreError;

/// When and how the driver checkpoints and recovers.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Snapshot every this many SMO iterations (also at iteration 0, so a
    /// recoverable baseline always exists).
    pub every_iters: u64,
    /// On rank death, continue with one rank fewer (re-partitioning the
    /// dead rank's samples across survivors) instead of restarting at the
    /// original rank count.
    pub allow_degraded: bool,
    /// Give up after this many recoveries.
    pub max_recoveries: u32,
    /// Mirror every promoted checkpoint to this file (versioned text
    /// format), best-effort: a write failure is recorded on the store,
    /// not fatal to training.
    pub disk_path: Option<PathBuf>,
    /// How many promoted generations the store retains (newest first).
    /// Older generations are the recovery ladder's fallback when the
    /// newest is corrupt or keeps leading to dead ends.
    pub keep_generations: usize,
}

/// Default bound on retained checkpoint generations.
pub const DEFAULT_KEEP_GENERATIONS: usize = 3;

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_iters: 64,
            allow_degraded: false,
            max_recoveries: 4,
            disk_path: None,
            keep_generations: DEFAULT_KEEP_GENERATIONS,
        }
    }
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every_iters` iterations.
    pub fn every(every_iters: u64) -> Self {
        assert!(every_iters > 0, "checkpoint cadence must be positive");
        CheckpointPolicy {
            every_iters,
            ..CheckpointPolicy::default()
        }
    }

    /// Allow degraded continuation on rank death.
    pub fn degraded(mut self) -> Self {
        self.allow_degraded = true;
        self
    }

    /// Set the recovery budget.
    pub fn with_max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }

    /// Mirror promoted checkpoints to a file.
    pub fn with_disk(mut self, path: impl Into<PathBuf>) -> Self {
        self.disk_path = Some(path.into());
        self
    }

    /// Set how many promoted generations the store retains.
    pub fn with_keep_generations(mut self, n: usize) -> Self {
        assert!(n >= 1, "must retain at least one generation");
        self.keep_generations = n;
        self
    }
}

/// The handle each rank carries into training: the shared store plus the
/// snapshot cadence.
#[derive(Clone, Debug)]
pub struct CheckpointCtx {
    /// Shared store all ranks post into.
    pub store: Arc<CheckpointStore>,
    /// Snapshot every this many iterations.
    pub every_iters: u64,
}

/// One rank's solver state at a checkpoint generation, in *global* sample
/// indices (`lo` = first owned sample).
#[derive(Clone, Debug, PartialEq)]
pub struct RankSnapshot {
    /// Posting rank.
    pub rank: usize,
    /// First global sample index owned by the rank.
    pub lo: usize,
    /// `α` for owned samples.
    pub alpha: Vec<f64>,
    /// `γ` for owned samples.
    pub grad: Vec<f64>,
    /// Active flags for owned samples.
    pub active: Vec<bool>,
    /// Iterations until the next shrink pass (globally lockstep).
    pub shrink_countdown: Option<u64>,
}

/// A consistent, promoted checkpoint: every rank's snapshot at one
/// `(iteration, stage)` point of the lockstep trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// SMO iteration the snapshot was taken at.
    pub iterations: u64,
    /// Phase-machine stage (0 = first optimization phase; 1 = inside the
    /// post-reconstruction phase of Algorithm 4 / the reconstruction loop
    /// of Algorithm 5).
    pub stage: u32,
    /// Last allreduced `(β_up, β_low)`.
    pub last_betas: (f64, f64),
    /// Global sample count (restore sanity check).
    pub n: usize,
    /// Per-rank snapshots, in rank order.
    pub ranks: Vec<RankSnapshot>,
}

impl Checkpoint {
    /// Serialize the body (header through snapshots, no integrity
    /// trailer) — the bytes the store checksums and the disk mirror
    /// writes. Floats use `{:e}`, which round-trips `f64` exactly.
    pub(crate) fn body(&self) -> Result<Vec<u8>, CoreError> {
        let mut buf = Vec::new();
        self.write_body(&mut buf)?;
        Ok(buf)
    }

    /// Serialize to the versioned text format: the body followed by a
    /// `checksum <fnv1a>` trailer line over the body bytes, so a reader
    /// can tell truncation and bit flips from a valid file.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<(), CoreError> {
        let body = self.body()?;
        writer.write_all(&body)?;
        writeln!(
            writer,
            "checksum {}",
            shrinksvm_mpisim::fault::checksum(&body)
        )?;
        writer.flush()?;
        Ok(())
    }

    fn write_body<W: Write>(&self, writer: W) -> Result<(), CoreError> {
        let mut w = BufWriter::new(writer);
        writeln!(w, "shrinksvm-checkpoint v1")?;
        writeln!(w, "iterations {} stage {}", self.iterations, self.stage)?;
        writeln!(w, "betas {:e} {:e}", self.last_betas.0, self.last_betas.1)?;
        writeln!(w, "n {} ranks {}", self.n, self.ranks.len())?;
        // Checkpoint serialization is a host-side disk mirror; the recovery
        // cost model charges restore, not writes. lint: uncharged
        for s in &self.ranks {
            let cd = s
                .shrink_countdown
                .map_or("none".to_string(), |c| c.to_string());
            writeln!(
                w,
                "rank {} lo {} len {} countdown {cd}",
                s.rank,
                s.lo,
                s.alpha.len()
            )?;
            write!(w, "alpha")?;
            for a in &s.alpha {
                write!(w, " {a:e}")?;
            }
            writeln!(w)?;
            write!(w, "grad")?;
            // lint: uncharged — same host-side serialization as above.
            for g in &s.grad {
                write!(w, " {g:e}")?;
            }
            writeln!(w)?;
            write!(w, "active ")?;
            for &f in &s.active {
                write!(w, "{}", u8::from(f))?;
            }
            writeln!(w)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Parse the text format produced by [`Checkpoint::write_to`]: read
    /// everything, verify the `checksum` trailer over the body bytes,
    /// then parse the body. A truncated or bit-flipped file fails with a
    /// named [`CoreError::CheckpointFormat`] — never a plausible-looking
    /// wrong state.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Self, CoreError> {
        let bad = |m: String| CoreError::CheckpointFormat(m);
        let mut buf = Vec::new();
        reader.read_to_end(&mut buf)?;
        // split off the trailer: the last (possibly newline-terminated)
        // line must be `checksum <u64>`
        let trimmed: &[u8] = if buf.last() == Some(&b'\n') {
            &buf[..buf.len() - 1]
        } else {
            &buf[..]
        };
        let line_start = trimmed
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let trailer = std::str::from_utf8(&trimmed[line_start..])
            .map_err(|_| bad("checkpoint trailer is not UTF-8".to_string()))?;
        let expect = match trailer.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["checksum", sum] => sum
                .parse::<u64>()
                .map_err(|_| bad(format!("bad checksum value '{sum}' in checkpoint trailer")))?,
            _ => return Err(bad("missing checksum trailer (truncated file?)".to_string())),
        };
        let body = &buf[..line_start];
        let actual = shrinksvm_mpisim::fault::checksum(body);
        if actual != expect {
            return Err(bad(format!(
                "checkpoint checksum mismatch: file says {expect}, body hashes to {actual} \
                 (torn write or bit flip)"
            )));
        }
        Self::parse_body(body)
    }

    /// Parse a checkpoint body (everything before the trailer).
    fn parse_body(body: &[u8]) -> Result<Self, CoreError> {
        let bad = |m: String| CoreError::CheckpointFormat(m);
        let mut lines = BufReader::new(body).lines();
        let mut next = |what: &str| -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::CheckpointFormat(format!("missing {what}")))?
                .map_err(CoreError::Io)
        };
        let header = next("header")?;
        if header.trim() != "shrinksvm-checkpoint v1" {
            return Err(bad(format!("bad header '{header}'")));
        }
        let pu = |s: &str| -> Result<u64, CoreError> {
            s.parse::<u64>()
                .map_err(|_| CoreError::CheckpointFormat(format!("bad integer '{s}'")))
        };
        let pf = |s: &str| -> Result<f64, CoreError> {
            s.parse::<f64>()
                .map_err(|_| CoreError::CheckpointFormat(format!("bad float '{s}'")))
        };
        let iline = next("iterations line")?;
        let (iterations, stage) = match iline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["iterations", i, "stage", s] => (pu(i)?, pu(s)? as u32),
            _ => return Err(bad(format!("bad iterations line '{iline}'"))),
        };
        let bline = next("betas line")?;
        let last_betas = match bline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["betas", a, b] => (pf(a)?, pf(b)?),
            _ => return Err(bad(format!("bad betas line '{bline}'"))),
        };
        let nline = next("n line")?;
        let (n, nranks) = match nline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["n", n, "ranks", r] => (pu(n)? as usize, pu(r)? as usize),
            _ => return Err(bad(format!("bad n line '{nline}'"))),
        };
        // Cap preallocations by what the declared sample count implies —
        // a garbled count cannot force a huge allocation.
        let mut ranks = Vec::with_capacity(nranks.min(n.max(1)));
        // Host-side parse of the on-disk format; the simulated restore
        // path charges its own recovery cost. lint: uncharged
        for _ in 0..nranks {
            let rline = next("rank line")?;
            let (rank, lo, len, cd) = match rline.split_whitespace().collect::<Vec<_>>().as_slice()
            {
                ["rank", r, "lo", lo, "len", len, "countdown", cd] => (
                    pu(r)? as usize,
                    pu(lo)? as usize,
                    pu(len)? as usize,
                    if *cd == "none" { None } else { Some(pu(cd)?) },
                ),
                _ => return Err(bad(format!("bad rank line '{rline}'"))),
            };
            if lo + len > n {
                return Err(bad(format!(
                    "rank {rank} claims samples {lo}..{} of {n}",
                    lo + len
                )));
            }
            let floats = |line: String, label: &str| -> Result<Vec<f64>, CoreError> {
                let mut toks = line.split_whitespace();
                if toks.next() != Some(label) {
                    return Err(CoreError::CheckpointFormat(format!(
                        "expected '{label}' line, got '{line}'"
                    )));
                }
                let vals = toks.map(pf).collect::<Result<Vec<f64>, _>>()?;
                if vals.len() != len {
                    return Err(CoreError::CheckpointFormat(format!(
                        "{label}: {} values for a {len}-sample rank",
                        vals.len()
                    )));
                }
                Ok(vals)
            };
            let alpha = floats(next("alpha line")?, "alpha")?;
            let grad = floats(next("grad line")?, "grad")?;
            let aline = next("active line")?;
            let flags = aline
                .strip_prefix("active ")
                .ok_or_else(|| bad(format!("bad active line '{aline}'")))?;
            let active = flags
                .trim()
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    _ => Err(bad(format!("bad active flag '{c}'"))),
                })
                .collect::<Result<Vec<bool>, _>>()?;
            if active.len() != len {
                return Err(bad(format!(
                    "active: {} flags for a {len}-sample rank",
                    active.len()
                )));
            }
            ranks.push(RankSnapshot {
                rank,
                lo,
                alpha,
                grad,
                active,
                shrink_countdown: cd,
            });
        }
        Ok(Checkpoint {
            iterations,
            stage,
            last_betas,
            n,
            ranks,
        })
    }
}

/// Survive a poisoned lock: a crashing rank (an *injected* panic) must not
/// cascade into opaque `PoisonError` panics on the survivors.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
struct Pending {
    last_betas: (f64, f64),
    n: usize,
    /// Max simulated clock among the posting ranks — the cut's place on
    /// the attempt's time axis, used by the driver's waste accounting.
    sim_time: f64,
    ranks: Vec<Option<RankSnapshot>>,
}

/// One promoted generation: the parsed cut plus its serialized bytes and
/// the checksum computed over the *pristine* serialization (a planted
/// corruption flips bytes after checksumming, so verification fails the
/// way real bit rot would).
#[derive(Debug)]
struct Gen {
    /// Global promote sequence number (monotone across the store's life,
    /// never reset — so fault plans can target generations by seq).
    seq: u64,
    /// Driver attempt index that promoted this generation.
    attempt: u32,
    /// The cut's simulated time within its attempt.
    sim_time: f64,
    /// Serialized cut (possibly corrupted by a planted window).
    bytes: Vec<u8>,
    /// FNV-1a over the pristine serialization.
    sum: u64,
    /// The parsed, pristine cut.
    ck: Arc<Checkpoint>,
}

impl Gen {
    fn valid(&self) -> bool {
        shrinksvm_mpisim::fault::checksum(&self.bytes) == self.sum
    }
}

/// What [`CheckpointStore::restore_verified`] found: the chosen
/// generation (if any), the corrupt generations detected while walking
/// newest → oldest, and how many *valid* generations were deliberately
/// skipped (the ladder's restore-older rung).
#[derive(Clone, Debug, Default)]
pub struct RestoreScan {
    /// The chosen consistent cut, or `None` for a cold restart.
    pub checkpoint: Option<Arc<Checkpoint>>,
    /// Promote sequence number of the chosen generation.
    pub seq: Option<u64>,
    /// Driver attempt that promoted the chosen generation.
    pub attempt: Option<u32>,
    /// The chosen cut's simulated time within its attempt (0 when none).
    pub sim_time: f64,
    /// Sequence numbers that failed checksum verification during the
    /// scan, newest first.
    pub corrupt_seqs: Vec<u64>,
    /// Valid generations deliberately skipped (≤ the requested skip; the
    /// scan clamps to the oldest valid generation rather than falling all
    /// the way to a cold start).
    pub skipped_valid: usize,
}

#[derive(Debug)]
struct StoreInner {
    p: usize,
    attempt: u32,
    staging: BTreeMap<(u64, u32), Pending>,
    /// Promoted generations, oldest → newest, bounded by `keep`.
    history: Vec<Gen>,
    keep: usize,
    next_seq: u64,
    /// Planted corruption windows `[from, until)` over promote seqs.
    corrupt_windows: Vec<(u64, u64)>,
    disk_path: Option<PathBuf>,
    disk_error: Option<String>,
}

/// The shared checkpoint store: ranks post snapshots, the driver reads the
/// last consistent checkpoint back out after a crash.
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
}

impl CheckpointStore {
    /// An empty store expecting snapshots from `p` ranks, retaining up to
    /// `keep_generations` promoted generations.
    pub fn new(p: usize, disk_path: Option<PathBuf>, keep_generations: usize) -> Self {
        CheckpointStore {
            inner: Mutex::new(StoreInner {
                p,
                attempt: 0,
                staging: BTreeMap::new(),
                history: Vec::new(),
                keep: keep_generations.max(1),
                next_seq: 0,
                corrupt_windows: Vec::new(),
                disk_path,
                disk_error: None,
            }),
        }
    }

    /// Plant checkpoint-corruption windows from a fault plan: every
    /// generation whose promote seq falls in a `[from, until)` window has
    /// one byte of its serialized cut flipped *after* checksumming.
    pub fn plant_corruptions(&self, windows: &[(u64, u64)]) {
        lock(&self.inner).corrupt_windows.extend_from_slice(windows);
    }

    /// Post one rank's snapshot for generation `(iterations, stage)` at
    /// the rank's simulated clock `sim_time`. The generation is promoted
    /// once all `p` ranks have posted it. Posts at or below the newest
    /// promoted key are ignored (re-posts from a resumed run).
    pub fn post(
        &self,
        iterations: u64,
        stage: u32,
        last_betas: (f64, f64),
        n: usize,
        sim_time: f64,
        snap: RankSnapshot,
    ) {
        let mut inner = lock(&self.inner);
        let key = (iterations, stage);
        if let Some(last) = inner.history.last() {
            if key <= (last.ck.iterations, last.ck.stage) {
                return;
            }
        }
        let p = inner.p;
        let pending = inner.staging.entry(key).or_insert_with(|| Pending {
            last_betas,
            n,
            sim_time,
            ranks: (0..p).map(|_| None).collect(),
        });
        pending.sim_time = pending.sim_time.max(sim_time);
        let slot = snap.rank;
        if slot < pending.ranks.len() {
            pending.ranks[slot] = Some(snap);
        }
        if !pending.ranks.iter().all(Option::is_some) {
            return;
        }
        if let Some(pending) = inner.staging.remove(&key) {
            let ck = Arc::new(Checkpoint {
                iterations,
                stage,
                last_betas: pending.last_betas,
                n: pending.n,
                ranks: pending.ranks.into_iter().flatten().collect(),
            });
            // Everything staged at or below the promoted key is obsolete.
            inner.staging.retain(|k, _| *k > key);
            inner.promote(ck, pending.sim_time);
        }
    }

    /// The newest promoted checkpoint, if any — *unverified*; recovery
    /// paths should use [`CheckpointStore::restore_verified`].
    pub fn last(&self) -> Option<Arc<Checkpoint>> {
        lock(&self.inner).history.last().map(|g| Arc::clone(&g.ck))
    }

    /// Promoted generations currently retained.
    pub fn generations(&self) -> usize {
        lock(&self.inner).history.len()
    }

    /// The next promote sequence number (equivalently: how many
    /// generations have ever been promoted). The driver samples this at
    /// attempt start to tell whether an aborted attempt banked anything.
    pub fn promote_seq(&self) -> u64 {
        lock(&self.inner).next_seq
    }

    /// Walk the history newest → oldest, verifying each generation's
    /// bytes against its promotion-time checksum. Corrupt generations are
    /// recorded and passed over; of the valid ones, up to `skip_valid`
    /// are deliberately skipped (the ladder's restore-older rung) —
    /// clamped so the scan settles on the *oldest* valid generation
    /// rather than discarding recoverable state, and returns a cold
    /// restart only when no generation verifies at all.
    pub fn restore_verified(&self, skip_valid: usize) -> RestoreScan {
        let inner = lock(&self.inner);
        let mut scan = RestoreScan::default();
        let mut chosen: Option<&Gen> = None;
        for g in inner.history.iter().rev() {
            if chosen.is_some() && scan.skipped_valid >= skip_valid {
                break;
            }
            if !g.valid() {
                scan.corrupt_seqs.push(g.seq);
                continue;
            }
            if chosen.is_some() {
                // walking past a valid choice onto an older valid one
                scan.skipped_valid += 1;
            }
            chosen = Some(g);
        }
        if let Some(g) = chosen {
            scan.checkpoint = Some(Arc::clone(&g.ck));
            scan.seq = Some(g.seq);
            scan.attempt = Some(g.attempt);
            scan.sim_time = g.sim_time;
        }
        scan
    }

    /// Drop every generation newer than `seq` (all of them when `None`),
    /// plus all staging. The driver calls this after choosing a restore
    /// target: the resumed run will re-post keys the dropped generations
    /// covered, and the stale-post guard compares against the newest
    /// *retained* generation — without the rewind, those legitimate
    /// re-posts would be silently ignored.
    pub fn rewind_to(&self, seq: Option<u64>) {
        let mut inner = lock(&self.inner);
        inner.staging.clear();
        match seq {
            None => inner.history.clear(),
            Some(s) => inner.history.retain(|g| g.seq <= s),
        }
    }

    /// Start a recovery attempt: drop all partial generations, retarget
    /// the store at `p` ranks and stamp subsequent promotions with the
    /// attempt index (promoted generations survive — their snapshots are
    /// in global indices).
    pub fn begin_attempt(&self, attempt: u32, p: usize) {
        let mut inner = lock(&self.inner);
        inner.staging.clear();
        inner.p = p;
        inner.attempt = attempt;
    }

    /// Drop all partial generations and retarget the store at `p` ranks.
    pub fn reset_ranks(&self, p: usize) {
        let mut inner = lock(&self.inner);
        inner.staging.clear();
        inner.p = p;
    }

    /// The first disk-mirroring failure, if any (mirroring is
    /// best-effort).
    pub fn disk_error(&self) -> Option<String> {
        lock(&self.inner).disk_error.clone()
    }
}

impl StoreInner {
    /// Promote a fully-posted cut: serialize, checksum the pristine
    /// bytes, apply any planted corruption window, mirror to disk, and
    /// append to the bounded history.
    fn promote(&mut self, ck: Arc<Checkpoint>, sim_time: f64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut bytes = match ck.body() {
            Ok(b) => b,
            Err(e) => {
                // Serialization to memory cannot realistically fail; if it
                // does, record it like a mirror failure and keep the
                // parsed cut usable (empty bytes hash consistently).
                self.disk_error.get_or_insert(e.to_string());
                Vec::new()
            }
        };
        let sum = shrinksvm_mpisim::fault::checksum(&bytes);
        if self
            .corrupt_windows
            .iter()
            .any(|&(from, until)| seq >= from && seq < until)
        {
            bytes = shrinksvm_mpisim::fault::corrupt_copy(&bytes, seq);
        }
        if let Some(path) = self.disk_path.clone() {
            if let Err(e) = write_checkpoint_file(&path, &bytes, sum) {
                self.disk_error = Some(e.to_string());
            }
        }
        self.history.push(Gen {
            seq,
            attempt: self.attempt,
            sim_time,
            bytes,
            sum,
            ck,
        });
        if self.history.len() > self.keep {
            self.history.remove(0);
        }
    }
}

/// Mirror a generation's (possibly corrupted) bytes with the pristine
/// checksum trailer — so a corrupted in-memory generation yields a disk
/// file [`Checkpoint::read_from`] rejects, exactly like real bit rot.
fn write_checkpoint_file(path: &PathBuf, bytes: &[u8], sum: u64) -> Result<(), CoreError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(bytes)?;
    writeln!(w, "checksum {sum}")?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rank: usize, lo: usize, vals: &[f64]) -> RankSnapshot {
        RankSnapshot {
            rank,
            lo,
            alpha: vals.to_vec(),
            grad: vals.iter().map(|v| -v).collect(),
            active: vals.iter().map(|v| *v > 0.0).collect(),
            shrink_countdown: Some(3),
        }
    }

    #[test]
    fn promotion_requires_all_ranks() {
        let store = CheckpointStore::new(2, None, 3);
        store.post(4, 0, (0.1, 0.9), 4, 1.0, snap(0, 0, &[1.0, 2.0]));
        assert!(
            store.last().is_none(),
            "half-posted generation must not promote"
        );
        store.post(4, 0, (0.1, 0.9), 4, 1.5, snap(1, 2, &[3.0, 4.0]));
        let ck = store.last().expect("fully-posted generation promotes");
        assert_eq!(ck.iterations, 4);
        assert_eq!(ck.ranks.len(), 2);
        assert_eq!(ck.ranks[1].alpha, vec![3.0, 4.0]);
        // the cut's sim_time is the max posting clock
        let scan = store.restore_verified(0);
        assert_eq!(scan.sim_time, 1.5);
        assert_eq!(scan.seq, Some(0));
    }

    #[test]
    fn stale_reposts_are_ignored_and_generations_advance() {
        let store = CheckpointStore::new(1, None, 3);
        store.post(4, 0, (0.0, 0.0), 2, 0.1, snap(0, 0, &[1.0, 1.0]));
        store.post(4, 0, (9.9, 9.9), 2, 0.1, snap(0, 0, &[9.0, 9.0])); // re-post after resume
        assert_eq!(store.last().expect("promoted").last_betas, (0.0, 0.0));
        store.post(8, 0, (0.5, 0.5), 2, 0.2, snap(0, 0, &[2.0, 2.0]));
        assert_eq!(store.last().expect("promoted").iterations, 8);
        // a later *stage* at the same iteration also advances
        store.post(8, 1, (0.25, 0.25), 2, 0.3, snap(0, 0, &[3.0, 3.0]));
        assert_eq!(store.last().expect("promoted").stage, 1);
    }

    #[test]
    fn reset_ranks_keeps_last_checkpoint() {
        let store = CheckpointStore::new(2, None, 3);
        store.post(0, 0, (0.0, 0.0), 4, 0.0, snap(0, 0, &[1.0, 2.0]));
        store.post(0, 0, (0.0, 0.0), 4, 0.0, snap(1, 2, &[3.0, 4.0]));
        store.post(4, 0, (0.0, 0.0), 4, 0.1, snap(0, 0, &[5.0, 6.0])); // partial
        store.reset_ranks(1);
        let ck = store.last().expect("promoted checkpoint survives reset");
        assert_eq!(ck.iterations, 0);
        // the partial generation is gone: a single post at the new p promotes
        store.post(4, 0, (0.0, 0.0), 4, 0.2, snap(0, 0, &[7.0, 8.0, 9.0, 10.0]));
        assert_eq!(store.last().expect("promoted").iterations, 4);
    }

    #[test]
    fn history_is_bounded_and_seqs_are_global() {
        let store = CheckpointStore::new(1, None, 2);
        for i in 0..4u64 {
            store.post(i * 4, 0, (0.0, 0.0), 2, i as f64, snap(0, 0, &[1.0, 1.0]));
        }
        assert_eq!(store.generations(), 2, "history bounded by keep");
        assert_eq!(store.promote_seq(), 4, "seqs keep counting past eviction");
        let newest = store.restore_verified(0);
        assert_eq!(newest.seq, Some(3));
        // skipping past the end clamps to the oldest retained generation
        let oldest = store.restore_verified(9);
        assert_eq!(oldest.seq, Some(2));
        assert_eq!(oldest.skipped_valid, 1);
    }

    #[test]
    fn restore_verified_skips_corrupt_generations() {
        let store = CheckpointStore::new(1, None, 4);
        store.plant_corruptions(&[(1, 3)]); // seqs 1 and 2 corrupt
        for i in 0..4u64 {
            store.post(i * 8, 0, (0.0, 0.0), 2, i as f64, snap(0, 0, &[1.0, 1.0]));
        }
        // newest (seq 3) is fine
        let scan = store.restore_verified(0);
        assert_eq!(scan.seq, Some(3));
        assert!(scan.corrupt_seqs.is_empty());
        // skipping the newest valid walks over both corrupt generations
        let scan = store.restore_verified(1);
        assert_eq!(scan.seq, Some(0));
        assert_eq!(scan.corrupt_seqs, vec![2, 1]);
        assert_eq!(scan.skipped_valid, 1);
    }

    #[test]
    fn rewind_reopens_the_stale_post_guard() {
        let store = CheckpointStore::new(1, None, 4);
        store.post(0, 0, (0.0, 0.0), 2, 0.0, snap(0, 0, &[1.0, 1.0]));
        store.post(8, 0, (0.0, 0.0), 2, 1.0, snap(0, 0, &[2.0, 2.0]));
        store.post(16, 0, (0.0, 0.0), 2, 2.0, snap(0, 0, &[3.0, 3.0]));
        // restore to seq 0 (iteration 0) and rewind
        store.rewind_to(Some(0));
        assert_eq!(store.generations(), 1);
        // the resumed run re-posts iteration 8 — it must promote again,
        // not be swallowed by the stale-post guard
        store.post(8, 0, (0.5, 0.5), 2, 1.0, snap(0, 0, &[4.0, 4.0]));
        let ck = store.last().expect("re-posted generation promotes");
        assert_eq!(ck.iterations, 8);
        assert_eq!(ck.ranks[0].alpha, vec![4.0, 4.0]);
        store.rewind_to(None);
        assert_eq!(store.generations(), 0);
        assert!(store.restore_verified(0).checkpoint.is_none());
    }

    #[test]
    fn all_corrupt_generations_mean_cold_restart() {
        let store = CheckpointStore::new(1, None, 3);
        store.plant_corruptions(&[(0, u64::MAX)]);
        store.post(0, 0, (0.0, 0.0), 2, 0.0, snap(0, 0, &[1.0, 1.0]));
        store.post(8, 0, (0.0, 0.0), 2, 1.0, snap(0, 0, &[2.0, 2.0]));
        let scan = store.restore_verified(0);
        assert!(scan.checkpoint.is_none());
        assert_eq!(scan.corrupt_seqs, vec![1, 0]);
    }

    #[test]
    fn checkpoint_text_roundtrips_exactly() {
        let ck = Checkpoint {
            iterations: 128,
            stage: 1,
            last_betas: (-0.125, f64::INFINITY),
            n: 5,
            ranks: vec![
                snap(0, 0, &[0.5, 0.0, 1e-17]),
                RankSnapshot {
                    rank: 1,
                    lo: 3,
                    alpha: vec![2.0, 0.0],
                    grad: vec![-1.0, 1.0],
                    active: vec![true, false],
                    shrink_countdown: None,
                },
            ],
        };
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn read_rejects_truncated_and_garbled_input() {
        assert!(Checkpoint::read_from(&b""[..]).is_err());
        assert!(Checkpoint::read_from(&b"shrinksvm-checkpoint v0\n"[..]).is_err());
        let ck = Checkpoint {
            iterations: 2,
            stage: 0,
            last_betas: (0.0, 0.0),
            n: 2,
            ranks: vec![snap(0, 0, &[1.0, 2.0])],
        };
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // every content-truncating prefix must fail cleanly (typed error,
        // no panic); dropping only the final newline still parses
        for cut in 0..text.len() - 1 {
            let r = Checkpoint::read_from(&text.as_bytes()[..cut]);
            assert!(
                r.is_err(),
                "prefix of {cut} bytes unexpectedly parsed as a full checkpoint"
            );
        }
        // out-of-range rank claims are rejected
        let evil = text.replace("lo 0 len 2", "lo 7 len 2");
        assert!(matches!(
            Checkpoint::read_from(evil.as_bytes()),
            Err(CoreError::CheckpointFormat(_))
        ));
    }

    #[test]
    fn read_rejects_every_single_bit_flip() {
        let ck = Checkpoint {
            iterations: 6,
            stage: 1,
            last_betas: (0.5, -0.5),
            n: 4,
            ranks: vec![snap(0, 0, &[1.0, 0.0]), snap(1, 2, &[0.25, 2.0])],
        };
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        assert_eq!(Checkpoint::read_from(&buf[..]).unwrap(), ck);
        // flip one bit at a time across the whole file: every mutation
        // must either fail the checksum or (if it hit the trailer) fail
        // trailer parsing — never parse into a *different* checkpoint
        for byte in 0..buf.len() {
            for bit in 0..8u8 {
                let mut evil = buf.clone();
                evil[byte] ^= 1 << bit;
                if let Ok(parsed) = Checkpoint::read_from(&evil[..]) {
                    assert_eq!(
                        parsed, ck,
                        "bit {bit} of byte {byte} flipped into a different checkpoint"
                    );
                }
            }
        }
    }

    #[test]
    fn disk_mirror_writes_promoted_checkpoints() {
        let dir = std::env::temp_dir().join("shrinksvm-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.ckpt");
        let store = CheckpointStore::new(1, Some(path.clone()), 3);
        store.post(16, 0, (0.0, 1.0), 3, 0.5, snap(0, 0, &[1.0, 2.0, 3.0]));
        assert!(store.disk_error().is_none());
        let back = Checkpoint::read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.iterations, 16);
        assert_eq!(back.ranks[0].alpha, vec![1.0, 2.0, 3.0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_mirror_save_load_save_is_byte_identical_across_generations() {
        let dir = std::env::temp_dir().join("shrinksvm-ckpt-gen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gens.ckpt");
        let store = CheckpointStore::new(1, Some(path.clone()), 3);
        for (i, v) in [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]].iter().enumerate() {
            store.post(i as u64 * 8, 0, (0.1, 0.9), 2, i as f64, snap(0, 0, v));
            assert!(store.disk_error().is_none());
            let first = std::fs::read(&path).unwrap();
            // load the mirror, re-serialize, and compare bytes
            let back = Checkpoint::read_from(&first[..]).unwrap();
            let mut second = Vec::new();
            back.write_to(&mut second).unwrap();
            assert_eq!(
                first, second,
                "generation {i}: save -> load -> save drifted"
            );
            assert_eq!(back.ranks[0].alpha, v.to_vec());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_mirror_of_planted_corruption_is_rejected_on_read() {
        let dir = std::env::temp_dir().join("shrinksvm-ckpt-corrupt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ckpt");
        let store = CheckpointStore::new(1, Some(path.clone()), 3);
        store.plant_corruptions(&[(0, u64::MAX)]);
        store.post(8, 0, (0.0, 0.0), 2, 0.0, snap(0, 0, &[1.0, 2.0]));
        // the mirror carries the corrupted bytes with the pristine
        // checksum, exactly like real bit rot — the reader must refuse it
        let err = Checkpoint::read_from(std::fs::File::open(&path).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "unexpected error: {err}"
        );
        std::fs::remove_file(&path).ok();
    }
}
