//! Checkpoint/restart state for the distributed trainer.
//!
//! Every rank periodically snapshots its solver state (multipliers,
//! gradients, active flags, iteration counter) into a shared
//! [`CheckpointStore`]. A generation is **promoted** to "last consistent
//! checkpoint" only once *all* ranks have posted a snapshot for the same
//! `(iteration, stage)` key — the solver is lockstep, so every rank
//! reaches each key at the same point of the trajectory, and a crash
//! mid-generation simply leaves that generation unpromoted. On rank death
//! the driver restarts from the last promoted checkpoint (same rank
//! count) or re-partitions the state across the survivors (degraded
//! continuation): snapshots carry *global* sample indices, so restoring
//! under a different partition is a plain overlapping copy.
//!
//! The store is in-memory; [`CheckpointPolicy::disk_path`] additionally
//! mirrors every promoted checkpoint to a versioned-header text file that
//! [`Checkpoint::read_from`] can load back.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::CoreError;

/// When and how the driver checkpoints and recovers.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Snapshot every this many SMO iterations (also at iteration 0, so a
    /// recoverable baseline always exists).
    pub every_iters: u64,
    /// On rank death, continue with one rank fewer (re-partitioning the
    /// dead rank's samples across survivors) instead of restarting at the
    /// original rank count.
    pub allow_degraded: bool,
    /// Give up after this many recoveries.
    pub max_recoveries: u32,
    /// Mirror every promoted checkpoint to this file (versioned text
    /// format), best-effort: a write failure is recorded on the store,
    /// not fatal to training.
    pub disk_path: Option<PathBuf>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_iters: 64,
            allow_degraded: false,
            max_recoveries: 4,
            disk_path: None,
        }
    }
}

impl CheckpointPolicy {
    /// A policy snapshotting every `every_iters` iterations.
    pub fn every(every_iters: u64) -> Self {
        assert!(every_iters > 0, "checkpoint cadence must be positive");
        CheckpointPolicy {
            every_iters,
            ..CheckpointPolicy::default()
        }
    }

    /// Allow degraded continuation on rank death.
    pub fn degraded(mut self) -> Self {
        self.allow_degraded = true;
        self
    }

    /// Set the recovery budget.
    pub fn with_max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }

    /// Mirror promoted checkpoints to a file.
    pub fn with_disk(mut self, path: impl Into<PathBuf>) -> Self {
        self.disk_path = Some(path.into());
        self
    }
}

/// The handle each rank carries into training: the shared store plus the
/// snapshot cadence.
#[derive(Clone, Debug)]
pub struct CheckpointCtx {
    /// Shared store all ranks post into.
    pub store: Arc<CheckpointStore>,
    /// Snapshot every this many iterations.
    pub every_iters: u64,
}

/// One rank's solver state at a checkpoint generation, in *global* sample
/// indices (`lo` = first owned sample).
#[derive(Clone, Debug, PartialEq)]
pub struct RankSnapshot {
    /// Posting rank.
    pub rank: usize,
    /// First global sample index owned by the rank.
    pub lo: usize,
    /// `α` for owned samples.
    pub alpha: Vec<f64>,
    /// `γ` for owned samples.
    pub grad: Vec<f64>,
    /// Active flags for owned samples.
    pub active: Vec<bool>,
    /// Iterations until the next shrink pass (globally lockstep).
    pub shrink_countdown: Option<u64>,
}

/// A consistent, promoted checkpoint: every rank's snapshot at one
/// `(iteration, stage)` point of the lockstep trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// SMO iteration the snapshot was taken at.
    pub iterations: u64,
    /// Phase-machine stage (0 = first optimization phase; 1 = inside the
    /// post-reconstruction phase of Algorithm 4 / the reconstruction loop
    /// of Algorithm 5).
    pub stage: u32,
    /// Last allreduced `(β_up, β_low)`.
    pub last_betas: (f64, f64),
    /// Global sample count (restore sanity check).
    pub n: usize,
    /// Per-rank snapshots, in rank order.
    pub ranks: Vec<RankSnapshot>,
}

impl Checkpoint {
    /// Serialize to the versioned text format. Floats use `{:e}`, which
    /// round-trips `f64` exactly.
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), CoreError> {
        let mut w = BufWriter::new(writer);
        writeln!(w, "shrinksvm-checkpoint v1")?;
        writeln!(w, "iterations {} stage {}", self.iterations, self.stage)?;
        writeln!(w, "betas {:e} {:e}", self.last_betas.0, self.last_betas.1)?;
        writeln!(w, "n {} ranks {}", self.n, self.ranks.len())?;
        // Checkpoint serialization is a host-side disk mirror; the recovery
        // cost model charges restore, not writes. lint: uncharged
        for s in &self.ranks {
            let cd = s
                .shrink_countdown
                .map_or("none".to_string(), |c| c.to_string());
            writeln!(
                w,
                "rank {} lo {} len {} countdown {cd}",
                s.rank,
                s.lo,
                s.alpha.len()
            )?;
            write!(w, "alpha")?;
            for a in &s.alpha {
                write!(w, " {a:e}")?;
            }
            writeln!(w)?;
            write!(w, "grad")?;
            // lint: uncharged — same host-side serialization as above.
            for g in &s.grad {
                write!(w, " {g:e}")?;
            }
            writeln!(w)?;
            write!(w, "active ")?;
            for &f in &s.active {
                write!(w, "{}", u8::from(f))?;
            }
            writeln!(w)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Parse the text format produced by [`Checkpoint::write_to`].
    pub fn read_from<R: Read>(reader: R) -> Result<Self, CoreError> {
        let bad = |m: String| CoreError::CheckpointFormat(m);
        let mut lines = BufReader::new(reader).lines();
        let mut next = |what: &str| -> Result<String, CoreError> {
            lines
                .next()
                .ok_or_else(|| CoreError::CheckpointFormat(format!("missing {what}")))?
                .map_err(CoreError::Io)
        };
        let header = next("header")?;
        if header.trim() != "shrinksvm-checkpoint v1" {
            return Err(bad(format!("bad header '{header}'")));
        }
        let pu = |s: &str| -> Result<u64, CoreError> {
            s.parse::<u64>()
                .map_err(|_| CoreError::CheckpointFormat(format!("bad integer '{s}'")))
        };
        let pf = |s: &str| -> Result<f64, CoreError> {
            s.parse::<f64>()
                .map_err(|_| CoreError::CheckpointFormat(format!("bad float '{s}'")))
        };
        let iline = next("iterations line")?;
        let (iterations, stage) = match iline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["iterations", i, "stage", s] => (pu(i)?, pu(s)? as u32),
            _ => return Err(bad(format!("bad iterations line '{iline}'"))),
        };
        let bline = next("betas line")?;
        let last_betas = match bline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["betas", a, b] => (pf(a)?, pf(b)?),
            _ => return Err(bad(format!("bad betas line '{bline}'"))),
        };
        let nline = next("n line")?;
        let (n, nranks) = match nline.split_whitespace().collect::<Vec<_>>().as_slice() {
            ["n", n, "ranks", r] => (pu(n)? as usize, pu(r)? as usize),
            _ => return Err(bad(format!("bad n line '{nline}'"))),
        };
        // Cap preallocations by what the declared sample count implies —
        // a garbled count cannot force a huge allocation.
        let mut ranks = Vec::with_capacity(nranks.min(n.max(1)));
        // Host-side parse of the on-disk format; the simulated restore
        // path charges its own recovery cost. lint: uncharged
        for _ in 0..nranks {
            let rline = next("rank line")?;
            let (rank, lo, len, cd) = match rline.split_whitespace().collect::<Vec<_>>().as_slice()
            {
                ["rank", r, "lo", lo, "len", len, "countdown", cd] => (
                    pu(r)? as usize,
                    pu(lo)? as usize,
                    pu(len)? as usize,
                    if *cd == "none" { None } else { Some(pu(cd)?) },
                ),
                _ => return Err(bad(format!("bad rank line '{rline}'"))),
            };
            if lo + len > n {
                return Err(bad(format!(
                    "rank {rank} claims samples {lo}..{} of {n}",
                    lo + len
                )));
            }
            let floats = |line: String, label: &str| -> Result<Vec<f64>, CoreError> {
                let mut toks = line.split_whitespace();
                if toks.next() != Some(label) {
                    return Err(CoreError::CheckpointFormat(format!(
                        "expected '{label}' line, got '{line}'"
                    )));
                }
                let vals = toks.map(pf).collect::<Result<Vec<f64>, _>>()?;
                if vals.len() != len {
                    return Err(CoreError::CheckpointFormat(format!(
                        "{label}: {} values for a {len}-sample rank",
                        vals.len()
                    )));
                }
                Ok(vals)
            };
            let alpha = floats(next("alpha line")?, "alpha")?;
            let grad = floats(next("grad line")?, "grad")?;
            let aline = next("active line")?;
            let flags = aline
                .strip_prefix("active ")
                .ok_or_else(|| bad(format!("bad active line '{aline}'")))?;
            let active = flags
                .trim()
                .chars()
                .map(|c| match c {
                    '0' => Ok(false),
                    '1' => Ok(true),
                    _ => Err(bad(format!("bad active flag '{c}'"))),
                })
                .collect::<Result<Vec<bool>, _>>()?;
            if active.len() != len {
                return Err(bad(format!(
                    "active: {} flags for a {len}-sample rank",
                    active.len()
                )));
            }
            ranks.push(RankSnapshot {
                rank,
                lo,
                alpha,
                grad,
                active,
                shrink_countdown: cd,
            });
        }
        Ok(Checkpoint {
            iterations,
            stage,
            last_betas,
            n,
            ranks,
        })
    }
}

/// Survive a poisoned lock: a crashing rank (an *injected* panic) must not
/// cascade into opaque `PoisonError` panics on the survivors.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Debug)]
struct Pending {
    last_betas: (f64, f64),
    n: usize,
    ranks: Vec<Option<RankSnapshot>>,
}

#[derive(Debug)]
struct StoreInner {
    p: usize,
    staging: BTreeMap<(u64, u32), Pending>,
    last: Option<Arc<Checkpoint>>,
    disk_path: Option<PathBuf>,
    disk_error: Option<String>,
}

/// The shared checkpoint store: ranks post snapshots, the driver reads the
/// last consistent checkpoint back out after a crash.
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
}

impl CheckpointStore {
    /// An empty store expecting snapshots from `p` ranks.
    pub fn new(p: usize, disk_path: Option<PathBuf>) -> Self {
        CheckpointStore {
            inner: Mutex::new(StoreInner {
                p,
                staging: BTreeMap::new(),
                last: None,
                disk_path,
                disk_error: None,
            }),
        }
    }

    /// Post one rank's snapshot for generation `(iterations, stage)`. The
    /// generation is promoted to "last consistent checkpoint" once all `p`
    /// ranks have posted it. Posts at or below an already-promoted key are
    /// ignored (they are re-posts from a resumed run).
    pub fn post(
        &self,
        iterations: u64,
        stage: u32,
        last_betas: (f64, f64),
        n: usize,
        snap: RankSnapshot,
    ) {
        let mut inner = lock(&self.inner);
        let key = (iterations, stage);
        if let Some(last) = &inner.last {
            if key <= (last.iterations, last.stage) {
                return;
            }
        }
        let p = inner.p;
        let pending = inner.staging.entry(key).or_insert_with(|| Pending {
            last_betas,
            n,
            ranks: (0..p).map(|_| None).collect(),
        });
        let slot = snap.rank;
        if slot < pending.ranks.len() {
            pending.ranks[slot] = Some(snap);
        }
        if !pending.ranks.iter().all(Option::is_some) {
            return;
        }
        if let Some(pending) = inner.staging.remove(&key) {
            let ck = Arc::new(Checkpoint {
                iterations,
                stage,
                last_betas: pending.last_betas,
                n: pending.n,
                ranks: pending.ranks.into_iter().flatten().collect(),
            });
            // Everything staged at or below the promoted key is obsolete.
            inner.staging.retain(|k, _| *k > key);
            if let Some(path) = inner.disk_path.clone() {
                if let Err(e) = write_checkpoint_file(&path, &ck) {
                    inner.disk_error = Some(e.to_string());
                }
            }
            inner.last = Some(ck);
        }
    }

    /// The last consistent (fully-posted) checkpoint, if any.
    pub fn last(&self) -> Option<Arc<Checkpoint>> {
        lock(&self.inner).last.clone()
    }

    /// Drop all partial generations and retarget the store at `p` ranks
    /// (the driver calls this between recovery attempts; the promoted
    /// checkpoint survives — its snapshots are in global indices).
    pub fn reset_ranks(&self, p: usize) {
        let mut inner = lock(&self.inner);
        inner.staging.clear();
        inner.p = p;
    }

    /// The first disk-mirroring failure, if any (mirroring is
    /// best-effort).
    pub fn disk_error(&self) -> Option<String> {
        lock(&self.inner).disk_error.clone()
    }
}

fn write_checkpoint_file(path: &PathBuf, ck: &Checkpoint) -> Result<(), CoreError> {
    ck.write_to(std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(rank: usize, lo: usize, vals: &[f64]) -> RankSnapshot {
        RankSnapshot {
            rank,
            lo,
            alpha: vals.to_vec(),
            grad: vals.iter().map(|v| -v).collect(),
            active: vals.iter().map(|v| *v > 0.0).collect(),
            shrink_countdown: Some(3),
        }
    }

    #[test]
    fn promotion_requires_all_ranks() {
        let store = CheckpointStore::new(2, None);
        store.post(4, 0, (0.1, 0.9), 4, snap(0, 0, &[1.0, 2.0]));
        assert!(
            store.last().is_none(),
            "half-posted generation must not promote"
        );
        store.post(4, 0, (0.1, 0.9), 4, snap(1, 2, &[3.0, 4.0]));
        let ck = store.last().expect("fully-posted generation promotes");
        assert_eq!(ck.iterations, 4);
        assert_eq!(ck.ranks.len(), 2);
        assert_eq!(ck.ranks[1].alpha, vec![3.0, 4.0]);
    }

    #[test]
    fn stale_reposts_are_ignored_and_generations_advance() {
        let store = CheckpointStore::new(1, None);
        store.post(4, 0, (0.0, 0.0), 2, snap(0, 0, &[1.0, 1.0]));
        store.post(4, 0, (9.9, 9.9), 2, snap(0, 0, &[9.0, 9.0])); // re-post after resume
        assert_eq!(store.last().expect("promoted").last_betas, (0.0, 0.0));
        store.post(8, 0, (0.5, 0.5), 2, snap(0, 0, &[2.0, 2.0]));
        assert_eq!(store.last().expect("promoted").iterations, 8);
        // a later *stage* at the same iteration also advances
        store.post(8, 1, (0.25, 0.25), 2, snap(0, 0, &[3.0, 3.0]));
        assert_eq!(store.last().expect("promoted").stage, 1);
    }

    #[test]
    fn reset_ranks_keeps_last_checkpoint() {
        let store = CheckpointStore::new(2, None);
        store.post(0, 0, (0.0, 0.0), 4, snap(0, 0, &[1.0, 2.0]));
        store.post(0, 0, (0.0, 0.0), 4, snap(1, 2, &[3.0, 4.0]));
        store.post(4, 0, (0.0, 0.0), 4, snap(0, 0, &[5.0, 6.0])); // partial
        store.reset_ranks(1);
        let ck = store.last().expect("promoted checkpoint survives reset");
        assert_eq!(ck.iterations, 0);
        // the partial generation is gone: a single post at the new p promotes
        store.post(4, 0, (0.0, 0.0), 4, snap(0, 0, &[7.0, 8.0, 9.0, 10.0]));
        assert_eq!(store.last().expect("promoted").iterations, 4);
    }

    #[test]
    fn checkpoint_text_roundtrips_exactly() {
        let ck = Checkpoint {
            iterations: 128,
            stage: 1,
            last_betas: (-0.125, f64::INFINITY),
            n: 5,
            ranks: vec![
                snap(0, 0, &[0.5, 0.0, 1e-17]),
                RankSnapshot {
                    rank: 1,
                    lo: 3,
                    alpha: vec![2.0, 0.0],
                    grad: vec![-1.0, 1.0],
                    active: vec![true, false],
                    shrink_countdown: None,
                },
            ],
        };
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let back = Checkpoint::read_from(&buf[..]).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn read_rejects_truncated_and_garbled_input() {
        assert!(Checkpoint::read_from(&b""[..]).is_err());
        assert!(Checkpoint::read_from(&b"shrinksvm-checkpoint v0\n"[..]).is_err());
        let ck = Checkpoint {
            iterations: 2,
            stage: 0,
            last_betas: (0.0, 0.0),
            n: 2,
            ranks: vec![snap(0, 0, &[1.0, 2.0])],
        };
        let mut buf = Vec::new();
        ck.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // every content-truncating prefix must fail cleanly (typed error,
        // no panic); dropping only the final newline still parses
        for cut in 0..text.len() - 1 {
            let r = Checkpoint::read_from(&text.as_bytes()[..cut]);
            assert!(
                r.is_err(),
                "prefix of {cut} bytes unexpectedly parsed as a full checkpoint"
            );
        }
        // out-of-range rank claims are rejected
        let evil = text.replace("lo 0 len 2", "lo 7 len 2");
        assert!(matches!(
            Checkpoint::read_from(evil.as_bytes()),
            Err(CoreError::CheckpointFormat(_))
        ));
    }

    #[test]
    fn disk_mirror_writes_promoted_checkpoints() {
        let dir = std::env::temp_dir().join("shrinksvm-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.ckpt");
        let store = CheckpointStore::new(1, Some(path.clone()));
        store.post(16, 0, (0.0, 1.0), 3, snap(0, 0, &[1.0, 2.0, 3.0]));
        assert!(store.disk_error().is_none());
        let back = Checkpoint::read_from(std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(back.iterations, 16);
        assert_eq!(back.ranks[0].alpha, vec![1.0, 2.0, 3.0]);
        std::fs::remove_file(&path).ok();
    }
}
