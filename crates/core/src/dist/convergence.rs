//! Online convergence telemetry for the distributed solver.
//!
//! The epoch loop feeds the tracker two signals it already computes for
//! free — the allreduced KKT gap `β_low − β_up` and the global active-set
//! size after each shrink pass — and gets back three derived series:
//!
//! * **KKT-gap slope**: per-iteration change of the gap over a bounded
//!   sliding window (secant over the window endpoints, so it is exact,
//!   cheap, and independent of the window's interior samples),
//! * **active-set shrink velocity**: samples shrunk per iteration between
//!   consecutive shrink passes,
//! * **[`ConvergencePhase`]**: a four-state classification of where the
//!   run is — `Warmup` → `Shrinking` → `Plateau` → `Polish` — published
//!   as a numeric epoch series (see [`ConvergencePhase::code`]).
//!
//! Everything here is pure arithmetic over values every rank (or rank 0,
//! where the driver samples) already holds: the tracker performs **no
//! communication and charges no simulated time**, so enabling the series
//! cannot perturb the trajectory or the modeled makespan — the
//! byte-identity bench gates pin that.

use std::collections::VecDeque;

/// Where the optimization currently is, classified from the gap
/// trajectory and the shrink activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvergencePhase {
    /// Not enough history yet to say anything.
    Warmup,
    /// The active set is still contracting (a shrink pass removed samples
    /// within the current observation window).
    Shrinking,
    /// The gap is far from tolerance but barely improving — the
    /// slow-middle regime where shrinking has settled and the solver
    /// grinds on a stable active set.
    Plateau,
    /// The gap is within an order of magnitude of the target `2ε` — the
    /// endgame.
    Polish,
}

impl ConvergencePhase {
    /// Stable numeric encoding for the `convergence_phase` epoch series
    /// (0 = warmup, 1 = shrinking, 2 = plateau, 3 = polish).
    pub fn code(self) -> f64 {
        match self {
            ConvergencePhase::Warmup => 0.0,
            ConvergencePhase::Shrinking => 1.0,
            ConvergencePhase::Plateau => 2.0,
            ConvergencePhase::Polish => 3.0,
        }
    }

    /// Human-readable name (used by post-mortem rendering).
    pub fn name(self) -> &'static str {
        match self {
            ConvergencePhase::Warmup => "warmup",
            ConvergencePhase::Shrinking => "shrinking",
            ConvergencePhase::Plateau => "plateau",
            ConvergencePhase::Polish => "polish",
        }
    }
}

/// Gap samples kept in the sliding window (epochs, not iterations — at
/// the default cadence this spans `8 × 256` iterations of history).
const WINDOW: usize = 8;

/// Relative improvement across a full window below which the trajectory
/// counts as flat (plateau), provided the gap is still far from target.
const PLATEAU_REL_IMPROVEMENT: f64 = 0.01;

/// `gap ≤ POLISH_FACTOR · ε` marks the endgame.
const POLISH_FACTOR: f64 = 10.0;

/// Bounded-memory convergence tracker. One per run, fed at epoch
/// cadence; all methods are O(1) (the window is a fixed-size deque).
#[derive(Clone, Debug)]
pub struct ConvergenceTracker {
    epsilon: f64,
    /// `(iteration, gap)` history, oldest first, at most [`WINDOW`] deep.
    gaps: VecDeque<(u64, f64)>,
    /// Last two `(iteration, active_set_size)` shrink observations.
    active: VecDeque<(u64, f64)>,
    /// Iteration of the most recent shrink pass that removed samples.
    last_shrink_at: Option<u64>,
}

impl ConvergenceTracker {
    /// Tracker for a run targeting optimality tolerance `epsilon`.
    pub fn new(epsilon: f64) -> Self {
        ConvergenceTracker {
            epsilon,
            gaps: VecDeque::with_capacity(WINDOW),
            active: VecDeque::with_capacity(2),
            last_shrink_at: None,
        }
    }

    /// Record the allreduced KKT gap at `iter`. Non-finite gaps (±∞
    /// candidates from empty scan sets) are ignored — they terminate the
    /// phase anyway and would poison the slope.
    pub fn observe_gap(&mut self, iter: u64, gap: f64) {
        if !gap.is_finite() {
            return;
        }
        if self.gaps.len() == WINDOW {
            self.gaps.pop_front();
        }
        self.gaps.push_back((iter, gap));
    }

    /// Record the global active-set size right after a shrink pass at
    /// `iter`. `removed` is how many samples that pass shrank away.
    pub fn observe_active(&mut self, iter: u64, active: f64, removed: u64) {
        if self.active.len() == 2 {
            self.active.pop_front();
        }
        self.active.push_back((iter, active));
        if removed > 0 {
            self.last_shrink_at = Some(iter);
        }
    }

    /// Per-iteration gap slope over the window (negative = improving), or
    /// `None` with fewer than two samples.
    pub fn kkt_slope(&self) -> Option<f64> {
        let (i0, g0) = *self.gaps.front()?;
        let (i1, g1) = *self.gaps.back()?;
        if i1 <= i0 {
            return None;
        }
        Some((g1 - g0) / (i1 - i0) as f64)
    }

    /// Samples shrunk per iteration between the last two shrink passes
    /// (positive = still contracting), or `None` with fewer than two
    /// observations.
    pub fn shrink_velocity(&self) -> Option<f64> {
        if self.active.len() < 2 {
            return None;
        }
        let (i0, a0) = self.active[0];
        let (i1, a1) = self.active[1];
        if i1 <= i0 {
            return None;
        }
        Some((a0 - a1) / (i1 - i0) as f64)
    }

    /// Classify the current phase. Precedence: `Polish` (the gap target
    /// is in sight) beats everything; then `Shrinking` (the active set
    /// moved within the gap window); then `Plateau` (full window, flat
    /// trajectory); else `Warmup`.
    pub fn phase(&self) -> ConvergencePhase {
        let Some(&(_, gap)) = self.gaps.back() else {
            return ConvergencePhase::Warmup;
        };
        if gap <= POLISH_FACTOR * self.epsilon {
            return ConvergencePhase::Polish;
        }
        if let (Some(at), Some(&(win_start, _))) = (self.last_shrink_at, self.gaps.front()) {
            if at >= win_start {
                return ConvergencePhase::Shrinking;
            }
        }
        if self.gaps.len() == WINDOW {
            let (_, g0) = self.gaps[0];
            if g0 > 0.0 && (g0 - gap) / g0 < PLATEAU_REL_IMPROVEMENT {
                return ConvergencePhase::Plateau;
            }
        }
        ConvergencePhase::Warmup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tracker_is_warmup_with_no_slopes() {
        let t = ConvergenceTracker::new(1e-3);
        assert_eq!(t.phase(), ConvergencePhase::Warmup);
        assert!(t.kkt_slope().is_none());
        assert!(t.shrink_velocity().is_none());
    }

    #[test]
    fn slope_is_the_window_secant() {
        let mut t = ConvergenceTracker::new(1e-3);
        t.observe_gap(0, 10.0);
        t.observe_gap(100, 8.0);
        t.observe_gap(200, 6.0);
        // (6 - 10) / (200 - 0)
        assert_eq!(t.kkt_slope(), Some(-0.02));
    }

    #[test]
    fn window_is_bounded_and_slides() {
        let mut t = ConvergenceTracker::new(1e-3);
        for k in 0..20u64 {
            t.observe_gap(k * 10, 100.0 - k as f64);
        }
        // window spans samples 12..=19: iters 120..=190, gaps 88..=81
        assert_eq!(t.kkt_slope(), Some((81.0 - 88.0) / 70.0));
    }

    #[test]
    fn non_finite_gaps_are_ignored() {
        let mut t = ConvergenceTracker::new(1e-3);
        t.observe_gap(0, f64::INFINITY);
        t.observe_gap(10, f64::NAN);
        assert!(t.kkt_slope().is_none());
        assert_eq!(t.phase(), ConvergencePhase::Warmup);
    }

    #[test]
    fn shrink_velocity_between_passes() {
        let mut t = ConvergenceTracker::new(1e-3);
        t.observe_active(100, 1000.0, 200);
        t.observe_active(300, 600.0, 400);
        // (1000 - 600) / (300 - 100)
        assert_eq!(t.shrink_velocity(), Some(2.0));
    }

    #[test]
    fn polish_beats_shrinking() {
        let mut t = ConvergenceTracker::new(1e-3);
        t.observe_active(5, 500.0, 100);
        t.observe_gap(10, 5e-3); // ≤ 10ε = 1e-2
        assert_eq!(t.phase(), ConvergencePhase::Polish);
    }

    #[test]
    fn recent_shrink_classifies_as_shrinking() {
        let mut t = ConvergenceTracker::new(1e-6);
        t.observe_gap(0, 10.0);
        t.observe_active(3, 500.0, 100);
        t.observe_gap(10, 9.0);
        assert_eq!(t.phase(), ConvergencePhase::Shrinking);
    }

    #[test]
    fn stale_shrink_does_not_stick() {
        let mut t = ConvergenceTracker::new(1e-6);
        t.observe_active(0, 500.0, 100);
        // fill the window entirely past the shrink observation
        for k in 1..=WINDOW as u64 {
            t.observe_gap(k * 100, 10.0 - k as f64);
        }
        assert_ne!(t.phase(), ConvergencePhase::Shrinking);
    }

    #[test]
    fn flat_full_window_far_from_target_is_plateau() {
        let mut t = ConvergenceTracker::new(1e-6);
        for k in 0..WINDOW as u64 {
            t.observe_gap(k * 100, 10.0 - 1e-4 * k as f64);
        }
        assert_eq!(t.phase(), ConvergencePhase::Plateau);
    }

    #[test]
    fn improving_full_window_is_not_plateau() {
        let mut t = ConvergenceTracker::new(1e-9);
        for k in 0..WINDOW as u64 {
            t.observe_gap(k * 100, 10.0 / (k + 1) as f64);
        }
        assert_eq!(t.phase(), ConvergencePhase::Warmup);
    }

    #[test]
    fn phase_codes_are_stable() {
        assert_eq!(ConvergencePhase::Warmup.code(), 0.0);
        assert_eq!(ConvergencePhase::Shrinking.code(), 1.0);
        assert_eq!(ConvergencePhase::Plateau.code(), 2.0);
        assert_eq!(ConvergencePhase::Polish.code(), 3.0);
        assert_eq!(ConvergencePhase::Polish.name(), "polish");
    }
}
