//! Block partitioning of samples across ranks.

use std::ops::Range;

/// Contiguous block partition of `n` samples over `p` ranks; block sizes
/// differ by at most one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    n: usize,
    p: usize,
}

impl Partition {
    /// A partition of `n` samples over `p` ranks.
    pub fn new(n: usize, p: usize) -> Self {
        assert!(p >= 1);
        Partition { n, p }
    }

    /// Global sample count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rank count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The global index range owned by `rank`.
    #[inline]
    pub fn range(&self, rank: usize) -> Range<usize> {
        debug_assert!(rank < self.p);
        (rank * self.n / self.p)..((rank + 1) * self.n / self.p)
    }

    /// Samples owned by `rank`.
    pub fn len(&self, rank: usize) -> usize {
        self.range(rank).len()
    }

    /// The rank owning global sample `i`.
    pub fn owner(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        // initial guess, then correct for integer-division boundaries
        let mut q = (i * self.p / self.n).min(self.p - 1);
        while i < self.range(q).start {
            q -= 1;
        }
        while i >= self.range(q).end {
            q += 1;
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        for n in [1usize, 7, 64, 1000, 1003] {
            for p in [1usize, 2, 3, 7, 16, 64] {
                let part = Partition::new(n, p);
                let mut covered = 0;
                let mut expected_start = 0;
                for q in 0..p {
                    let r = part.range(q);
                    assert_eq!(r.start, expected_start);
                    covered += r.len();
                    expected_start = r.end;
                }
                assert_eq!(covered, n, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn blocks_are_balanced() {
        let part = Partition::new(1003, 16);
        let sizes: Vec<usize> = (0..16).map(|q| part.len(q)).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn owner_is_consistent_with_range() {
        for n in [5usize, 100, 1003] {
            for p in [1usize, 3, 8, 17] {
                let part = Partition::new(n, p);
                for i in 0..n {
                    let q = part.owner(i);
                    assert!(part.range(q).contains(&i), "n={n} p={p} i={i} q={q}");
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_samples() {
        let part = Partition::new(3, 8);
        let total: usize = (0..8).map(|q| part.len(q)).sum();
        assert_eq!(total, 3);
        for i in 0..3 {
            let q = part.owner(i);
            assert!(part.range(q).contains(&i));
        }
    }
}
