//! Distributed gradient reconstruction — Algorithm 3.
//!
//! Shrunk samples stopped receiving γ updates, so before the solution can
//! be declared exact their gradients are recomputed *from scratch*:
//! `γ_i = Σ_{j: α_j>0} α_j y_j K(x_j, x_i) − y_i`. The `α_j > 0` samples
//! live on all ranks, so each rank's block of them is streamed around a
//! ring (Isend/Irecv per hop via
//! [`shrinksvm_mpisim::Comm::ring_shift`]); after `p` steps every rank has
//! applied the whole candidate set to its shrunk samples — without any
//! rank ever buffering the full dataset, the reason the paper rejects
//! `MPI_Allgatherv` here (§IV-B2).
//!
//! All shrunk samples are then reactivated; the caller's next phase scan
//! recomputes `β_up`/`β_low` over the full index sets.

use shrinksvm_mpisim::Comm;

use crate::dist::msg::{decode_sv_block, encode_sv_block, SvEntry};
use crate::dist::solver::RankState;
use crate::smo::state::bound_tol;
use crate::trace::ReconEvent;

/// Run one gradient reconstruction. Returns the event record (also pushed
/// onto the rank's trace). A globally-empty shrunk set short-circuits after
/// one counting allreduce.
pub(crate) fn reconstruct(st: &mut RankState<'_>, comm: &mut Comm) -> ReconEvent {
    let clock_before = comm.clock();
    let ln = st.local_n();
    let tol = bound_tol(st.c());

    // ω_q: locally shrunk samples (Algorithm 3 line 1).
    let omega: Vec<usize> = (0..ln).filter(|&li| !st.active[li]).collect();
    let reactivated = comm.allreduce_u64_sum(omega.len() as u64);
    if reactivated == 0 {
        // nothing was ever shrunk — gradients are already exact.
        return ReconEvent {
            at_iteration: st.iterations,
            reactivated: 0,
            sv_count: 0,
            sv_bytes: 0,
        };
    }
    let omega_nnz_sum: u64 = omega.iter().map(|&li| st.row(li).nnz() as u64).sum();

    // Local α>0 block.
    let mut entries = Vec::new();
    for li in 0..ln {
        if st.alpha[li] > tol {
            entries.push(SvEntry {
                coef: st.alpha[li] * st.y(li),
                sq_norm: st.sq[li],
                cols: st.row(li).indices.to_vec(),
                vals: st.row(li).values.to_vec(),
            });
        }
    }
    let my_block = encode_sv_block(&entries);
    let sv_count = comm.allreduce_u64_sum(entries.len() as u64);
    let sv_bytes = comm.allreduce_u64_sum(my_block.len() as u64);

    // Ring: process own block, then p−1 shifted blocks (lines 2–6).
    let p = comm.size();
    let mut gtmp = vec![0.0f64; omega.len()];
    let mut cur = my_block;
    for step in 0..p {
        let block = decode_sv_block(&cur).expect("well-formed ring block");
        let mut madds = 0u64;
        for sv in &block {
            let svr = sv.row();
            for (k, &li) in omega.iter().enumerate() {
                gtmp[k] += sv.coef * st.k_vs(li, svr, sv.sq_norm);
            }
            madds += svr.nnz() as u64 * omega.len() as u64 + omega_nnz_sum;
        }
        let evals = block.len() as u64 * omega.len() as u64;
        st.trace.kernel_evals += evals;
        comm.advance_compute_classed(
            madds as f64 * st.charge.lambda_per_nnz + evals as f64 * st.charge.kernel_overhead,
            "recon",
            None,
        );
        if step + 1 < p {
            cur = comm.ring_shift(&cur);
        }
    }

    // Write back and reactivate (lines 5–6 + §IV-B re-introduction).
    for (k, &li) in omega.iter().enumerate() {
        st.grad[li] = gtmp[k] - st.y(li);
        st.active[li] = true;
    }
    // The active span is the full block again: rebuild the iteration list
    // and drop cached kernel rows (they span the pre-recon active list).
    st.on_reconstruction();

    st.add_recon_time(comm.clock() - clock_before);
    comm.trace_span("reconstruction", "solver", clock_before, comm.clock());
    comm.trace_counter("active_set", st.part.n() as f64);
    if comm.rank() == 0 {
        st.metrics.inc("reconstructions", 1);
        st.metrics.inc("samples_reactivated", reactivated);
        st.metrics
            .sample("active_set", st.iterations, st.part.n() as f64);
    }
    let event = ReconEvent {
        at_iteration: st.iterations,
        reactivated,
        sv_count,
        sv_bytes,
    };
    st.trace.recon_events.push(event);
    st.trace
        .active_curve
        .push((st.iterations, st.part.n() as u64));
    event
}
