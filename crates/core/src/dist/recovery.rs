//! The degradation ladder: escalating crash-recovery policy.
//!
//! A single crash is cheap — restore the newest consistent cut on the
//! same `p` ranks and re-run. But faults cluster: a rank can crash
//! *during* recovery, a checkpoint can be torn, the same deadline can
//! fire attempt after attempt. Retrying the identical configuration
//! forever turns one fault into a livelock. [`RecoveryPolicy`] instead
//! escalates through rungs as consecutive *no-progress* recoveries pile
//! up:
//!
//! 1. restore the newest verified checkpoint on the same `p` ranks;
//! 2. restore progressively *older* generations (a torn or subtly bad
//!    newest cut stops being re-selected);
//! 3. degrade to `p-1`, `p-2`, … ranks — the consistent cut carries
//!    global sample indices, so survivors re-partition the full problem;
//! 4. single-rank fallback at the [`RecoveryPolicy::min_ranks`] floor,
//!    where only deeper generation skips remain;
//! 5. give up with a named error once the retry budget is spent.
//!
//! "Progress" means a new generation promoted since the last restore —
//! any rung that advances the checkpoint frontier resets the streak, so
//! a long run surviving many well-spaced crashes never degrades. Each
//! rung also charges exponentially growing simulated-time backoff, which
//! shows up in the recovery accounting rather than being hidden.
//!
//! [`RecoveryLadder`] is the tiny deterministic state machine the driver
//! steps on every [`CrashNotice`]; it owns no I/O and is exhaustively
//! unit-tested below.
//!
//! [`CrashNotice`]: shrinksvm_mpisim::CrashNotice

/// How the driver escalates across repeated crashes. Defaults are
/// deliberately patient: three same-`p` rungs before shedding a rank,
/// eight recoveries total, millisecond-scale base backoff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryPolicy {
    /// Total recovery attempts before giving up with
    /// [`CoreError::RankLost`](crate::CoreError::RankLost).
    pub max_recoveries: u32,
    /// Consecutive no-progress recoveries tolerated at the current `p`
    /// before degrading to `p-1`. Rung `k` of a streak restores the
    /// `k`-th-newest verified generation, so the same bad cut is never
    /// re-selected twice in a row.
    pub same_p_rungs: u32,
    /// Simulated seconds charged before the first retry; doubles with
    /// each consecutive no-progress recovery (capped at `2^16·base`).
    pub base_backoff: f64,
    /// Degradation floor: never shed ranks below this.
    pub min_ranks: usize,
    /// Whether shedding ranks is allowed at all. When `false` the ladder
    /// stays at the starting `p` and only deepens generation skips.
    pub allow_degraded: bool,
    /// Legacy eager mode: degrade on *every* crash (the pre-ladder
    /// behaviour of `CheckpointPolicy::degraded()`), still honouring
    /// `min_ranks` and the retry budget.
    pub degrade_every_crash: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_recoveries: 8,
            same_p_rungs: 3,
            base_backoff: 1e-3,
            min_ranks: 1,
            allow_degraded: true,
            degrade_every_crash: false,
        }
    }
}

impl RecoveryPolicy {
    /// Patient default ladder (see type docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// No recovery at all: the first crash surfaces as an error.
    pub fn none() -> Self {
        RecoveryPolicy {
            max_recoveries: 0,
            ..Self::default()
        }
    }

    /// The ladder implied by a pre-ladder [`CheckpointPolicy`]: same
    /// retry budget, degrade eagerly iff the policy allowed degraded
    /// continuation, no backoff charges (so existing runs and tests keep
    /// their exact timings).
    ///
    /// [`CheckpointPolicy`]: super::checkpoint::CheckpointPolicy
    pub fn legacy(pol: &super::checkpoint::CheckpointPolicy) -> Self {
        RecoveryPolicy {
            max_recoveries: pol.max_recoveries,
            same_p_rungs: 3,
            base_backoff: 0.0,
            min_ranks: 1,
            allow_degraded: pol.allow_degraded,
            degrade_every_crash: pol.allow_degraded,
        }
    }

    /// Set the total retry budget.
    pub fn with_max_recoveries(mut self, n: u32) -> Self {
        self.max_recoveries = n;
        self
    }

    /// Set how many no-progress recoveries run at the same `p` before
    /// degrading (must be ≥ 1).
    pub fn with_same_p_rungs(mut self, n: u32) -> Self {
        assert!(n >= 1, "same_p_rungs must be >= 1");
        self.same_p_rungs = n;
        self
    }

    /// Set the base simulated-time backoff (seconds).
    pub fn with_base_backoff(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0, "backoff must be non-negative");
        self.base_backoff = secs;
        self
    }

    /// Set the degradation floor (must be ≥ 1).
    pub fn with_min_ranks(mut self, p: usize) -> Self {
        assert!(p >= 1, "min_ranks must be >= 1");
        self.min_ranks = p;
        self
    }

    /// Forbid shedding ranks; the ladder only deepens generation skips.
    pub fn without_degradation(mut self) -> Self {
        self.allow_degraded = false;
        self.degrade_every_crash = false;
        self
    }
}

/// Aggregated recovery accounting for one driver run: how many rungs
/// were climbed and what they cost in simulated time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoverySummary {
    /// Crash-recovery restarts performed.
    pub recoveries: u32,
    /// Rank count of the final, successful attempt.
    pub final_ranks: usize,
    /// Whether the run shed ranks at any point.
    pub degraded: bool,
    /// Checksum-failed generations detected during restore scans.
    pub corrupt_generations: u64,
    /// Valid generations deliberately passed over by restore-older rungs.
    pub generations_skipped: u64,
    /// Recoveries that found no usable checkpoint and restarted cold.
    pub cold_restarts: u32,
    /// Re-executed simulated seconds: aborted attempts' clocks past the
    /// cut they banked (work captured in a restored checkpoint is not
    /// waste).
    pub waste: f64,
    /// Simulated ladder backoff charged before retries.
    pub backoff: f64,
}

impl RecoverySummary {
    /// Total modeled recovery cost: `waste + backoff`.
    pub fn cost(&self) -> f64 {
        self.waste + self.backoff
    }
}

/// What the ladder tells the driver to do after a crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LadderAction {
    /// Restore and retry: on `p` ranks, skipping the newest
    /// `skip_generations` *verified* generations, after charging
    /// `backoff` simulated seconds.
    Restore {
        /// Rank count for the retry.
        p: usize,
        /// How many verified generations to pass over (0 = newest).
        skip_generations: usize,
        /// Simulated seconds charged before the retry starts.
        backoff: f64,
    },
    /// Retry budget exhausted — surface the crash as an error.
    GiveUp,
}

/// Deterministic per-run ladder state: the current rank count and the
/// streak of consecutive no-progress recoveries.
#[derive(Clone, Debug)]
pub struct RecoveryLadder {
    policy: RecoveryPolicy,
    p: usize,
    recoveries: u32,
    streak: u32,
}

impl RecoveryLadder {
    /// A fresh ladder starting at `p` ranks.
    pub fn new(policy: RecoveryPolicy, p: usize) -> Self {
        RecoveryLadder {
            policy,
            p,
            recoveries: 0,
            streak: 0,
        }
    }

    /// Rank count the next attempt will run on.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Recoveries consumed so far.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// Current no-progress streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Step the ladder on a crash. `progress` is whether a new
    /// generation promoted since the previous restore (always `true`
    /// for the first crash of a run that has checkpointed at all —
    /// pass whether the verified frontier moved).
    pub fn on_crash(&mut self, progress: bool) -> LadderAction {
        if self.recoveries >= self.policy.max_recoveries {
            return LadderAction::GiveUp;
        }
        self.recoveries += 1;
        if progress {
            self.streak = 0;
        } else {
            self.streak += 1;
        }
        let backoff = self.backoff();
        if self.policy.degrade_every_crash {
            // Legacy eager mode: shed a rank on every crash down to the
            // floor, always restoring the newest verified cut.
            if self.p > self.policy.min_ranks {
                self.p -= 1;
                self.streak = 0;
            }
            return LadderAction::Restore {
                p: self.p,
                skip_generations: 0,
                backoff,
            };
        }
        if self.streak >= self.policy.same_p_rungs
            && self.policy.allow_degraded
            && self.p > self.policy.min_ranks
        {
            // Same-p rungs exhausted: shed a rank and restart the streak
            // (the new configuration deserves its own patience).
            self.p -= 1;
            self.streak = 0;
            return LadderAction::Restore {
                p: self.p,
                skip_generations: 0,
                backoff,
            };
        }
        // Same-p rung `streak`: skip that many newest verified
        // generations so a bad cut is never re-selected twice in a row.
        // At the floor (or with degradation off) the streak keeps
        // growing, so the skips keep deepening.
        LadderAction::Restore {
            p: self.p,
            skip_generations: self.streak as usize,
            backoff,
        }
    }

    fn backoff(&self) -> f64 {
        if self.policy.base_backoff == 0.0 {
            return 0.0;
        }
        let exp = self.streak.min(16);
        self.policy.base_backoff * f64::from(1u32 << exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restore(p: usize, skip: usize) -> (usize, usize) {
        (p, skip)
    }

    fn step(l: &mut RecoveryLadder, progress: bool) -> (usize, usize) {
        match l.on_crash(progress) {
            LadderAction::Restore {
                p,
                skip_generations,
                ..
            } => (p, skip_generations),
            LadderAction::GiveUp => panic!("unexpected GiveUp"),
        }
    }

    #[test]
    fn progress_keeps_the_ladder_on_rung_zero() {
        let mut l = RecoveryLadder::new(RecoveryPolicy::default(), 4);
        for _ in 0..5 {
            assert_eq!(step(&mut l, true), restore(4, 0));
        }
        assert_eq!(l.streak(), 0);
    }

    #[test]
    fn no_progress_escalates_skip_then_degrades() {
        let mut l = RecoveryLadder::new(RecoveryPolicy::default().with_max_recoveries(20), 4);
        // first crash after real progress: newest cut, same p
        assert_eq!(step(&mut l, true), restore(4, 0));
        // stuck: deepen the generation skip at the same p
        assert_eq!(step(&mut l, false), restore(4, 1));
        assert_eq!(step(&mut l, false), restore(4, 2));
        // third consecutive no-progress recovery: shed a rank
        assert_eq!(step(&mut l, false), restore(3, 0));
        // progress on the smaller machine resets the streak
        assert_eq!(step(&mut l, true), restore(3, 0));
    }

    #[test]
    fn floor_deepens_skips_instead_of_degrading() {
        let pol = RecoveryPolicy::default()
            .with_min_ranks(2)
            .with_same_p_rungs(1)
            .with_max_recoveries(10);
        let mut l = RecoveryLadder::new(pol, 3);
        assert_eq!(step(&mut l, false), restore(2, 0)); // 3 -> 2
        assert_eq!(step(&mut l, false), restore(2, 1)); // at floor: skip deepens
        assert_eq!(step(&mut l, false), restore(2, 2));
    }

    #[test]
    fn budget_exhaustion_gives_up() {
        let mut l = RecoveryLadder::new(RecoveryPolicy::default().with_max_recoveries(2), 2);
        step(&mut l, true);
        step(&mut l, true);
        assert_eq!(l.on_crash(true), LadderAction::GiveUp);
        assert_eq!(l.recoveries(), 2);
    }

    #[test]
    fn none_gives_up_immediately() {
        let mut l = RecoveryLadder::new(RecoveryPolicy::none(), 4);
        assert_eq!(l.on_crash(true), LadderAction::GiveUp);
    }

    #[test]
    fn legacy_mode_degrades_on_every_crash() {
        let pol = crate::dist::checkpoint::CheckpointPolicy::default().degraded();
        let mut l = RecoveryLadder::new(RecoveryPolicy::legacy(&pol), 3);
        assert_eq!(step(&mut l, true), restore(2, 0));
        assert_eq!(step(&mut l, false), restore(1, 0));
        // at the floor legacy mode retries the newest cut forever
        assert_eq!(step(&mut l, false), restore(1, 0));
    }

    #[test]
    fn legacy_without_degradation_stays_at_p() {
        let pol = crate::dist::checkpoint::CheckpointPolicy::default();
        assert!(!pol.allow_degraded);
        let mut l = RecoveryLadder::new(RecoveryPolicy::legacy(&pol), 4);
        assert_eq!(step(&mut l, true), restore(4, 0));
        assert_eq!(step(&mut l, false), restore(4, 1));
    }

    #[test]
    fn backoff_doubles_with_the_streak_and_caps() {
        let pol = RecoveryPolicy::default()
            .with_base_backoff(0.5)
            .without_degradation()
            .with_max_recoveries(40);
        let mut l = RecoveryLadder::new(pol, 2);
        let b = |l: &mut RecoveryLadder, progress: bool| match l.on_crash(progress) {
            LadderAction::Restore { backoff, .. } => backoff,
            LadderAction::GiveUp => panic!("unexpected GiveUp"),
        };
        assert_eq!(b(&mut l, true), 0.5); // streak 0
        assert_eq!(b(&mut l, false), 1.0); // streak 1
        assert_eq!(b(&mut l, false), 2.0); // streak 2
        for _ in 0..20 {
            let v = b(&mut l, false);
            assert!(v <= 0.5 * 65536.0);
        }
        // progress snaps back to the base charge
        assert_eq!(b(&mut l, true), 0.5);
    }
}
