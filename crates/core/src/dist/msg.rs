//! Wire encodings for the distributed solver's messages.
//!
//! Two message families exist:
//!
//! * [`PairSample`] — one selected working-set sample (row + scalars),
//!   routed owner → rank 0 → broadcast each iteration (Algorithm 2
//!   lines 3–9);
//! * [`SvEntry`] blocks — a rank's `α > 0` samples, streamed around the ring
//!   during gradient reconstruction (Algorithm 3).
//!
//! Encodings are little-endian and self-delimiting; decoders validate
//! lengths and return `None` on malformed input (a malformed message is a
//! bug, surfaced by the caller as a panic with rank context).

use shrinksvm_sparse::RowView;

/// A working-set sample as shipped between ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct PairSample {
    /// Global sample index.
    pub index: u64,
    /// Label.
    pub y: f64,
    /// Current multiplier `α`.
    pub alpha: f64,
    /// Current gradient `γ`.
    pub gamma: f64,
    /// Squared norm of the row (so receivers skip recomputing it).
    pub sq_norm: f64,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl PairSample {
    /// Gather from local state.
    pub fn from_parts(
        index: u64,
        y: f64,
        alpha: f64,
        gamma: f64,
        sq_norm: f64,
        row: RowView<'_>,
    ) -> Self {
        PairSample {
            index,
            y,
            alpha,
            gamma,
            sq_norm,
            cols: row.indices.to_vec(),
            vals: row.values.to_vec(),
        }
    }

    /// Borrow the row.
    pub fn row(&self) -> RowView<'_> {
        RowView {
            indices: &self.cols,
            values: &self.vals,
        }
    }

    /// Append the encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
        out.extend_from_slice(&self.alpha.to_le_bytes());
        out.extend_from_slice(&self.gamma.to_le_bytes());
        out.extend_from_slice(&self.sq_norm.to_le_bytes());
        out.extend_from_slice(&(self.cols.len() as u32).to_le_bytes());
        self.row().to_bytes(out);
    }

    /// Decode one sample from `bytes` starting at `*pos`, advancing it.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let need_header = 8 * 5 + 4;
        if bytes.len() < *pos + need_header {
            return None;
        }
        let take8 = |p: &mut usize| {
            let v = u64::from_le_bytes(bytes[*p..*p + 8].try_into().unwrap());
            *p += 8;
            v
        };
        let index = take8(pos);
        let y = f64::from_bits(take8(pos));
        let alpha = f64::from_bits(take8(pos));
        let gamma = f64::from_bits(take8(pos));
        let sq_norm = f64::from_bits(take8(pos));
        let nnz = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap()) as usize;
        *pos += 4;
        if bytes.len() < *pos + nnz * 12 {
            return None;
        }
        let (cols, vals) = RowView::from_bytes(&bytes[*pos..*pos + nnz * 12])?;
        *pos += nnz * 12;
        Some(PairSample {
            index,
            y,
            alpha,
            gamma,
            sq_norm,
            cols,
            vals,
        })
    }

    /// Serialized size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 * 5 + 4 + self.cols.len() * 12
    }
}

/// Encode the `(up, low)` bundle broadcast each iteration, with the
/// iteration's `(β_up, β_low)` piggybacked as a 16-byte header — the
/// values ride the pivot broadcast instead of needing their own round,
/// so a rank holding the bundle has everything the γ-sweep's shrink test
/// consumes.
pub fn encode_pair(betas: (f64, f64), up: &PairSample, low: &PairSample) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + up.encoded_len() + low.encoded_len());
    out.extend_from_slice(&betas.0.to_le_bytes());
    out.extend_from_slice(&betas.1.to_le_bytes());
    up.encode(&mut out);
    low.encode(&mut out);
    out
}

/// Decode the `((β_up, β_low), up, low)` bundle.
#[allow(clippy::type_complexity)]
pub fn decode_pair(bytes: &[u8]) -> Option<((f64, f64), PairSample, PairSample)> {
    if bytes.len() < 16 {
        return None;
    }
    let b_up = f64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?);
    let b_low = f64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?);
    let mut pos = 16;
    let up = PairSample::decode(bytes, &mut pos)?;
    let low = PairSample::decode(bytes, &mut pos)?;
    if pos != bytes.len() {
        return None;
    }
    Some(((b_up, b_low), up, low))
}

/// One support-vector candidate inside a ring block: its coefficient
/// `α·y`, cached squared norm, and row.
#[derive(Clone, Debug, PartialEq)]
pub struct SvEntry {
    /// `α·y` of the sample.
    pub coef: f64,
    /// Squared norm of the row.
    pub sq_norm: f64,
    /// Column indices.
    pub cols: Vec<u32>,
    /// Values.
    pub vals: Vec<f64>,
}

impl SvEntry {
    /// Borrow the row.
    pub fn row(&self) -> RowView<'_> {
        RowView {
            indices: &self.cols,
            values: &self.vals,
        }
    }
}

/// Encode a rank's SV block (entry count, then entries).
pub fn encode_sv_block(entries: &[SvEntry]) -> Vec<u8> {
    let payload: usize = entries.iter().map(|e| 8 + 8 + 4 + e.cols.len() * 12).sum();
    let mut out = Vec::with_capacity(4 + payload);
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.coef.to_le_bytes());
        out.extend_from_slice(&e.sq_norm.to_le_bytes());
        out.extend_from_slice(&(e.cols.len() as u32).to_le_bytes());
        e.row().to_bytes(&mut out);
    }
    out
}

/// Decode a ring SV block.
pub fn decode_sv_block(bytes: &[u8]) -> Option<Vec<SvEntry>> {
    if bytes.len() < 4 {
        return None;
    }
    let count = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    let mut pos = 4;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if bytes.len() < pos + 20 {
            return None;
        }
        let coef = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let sq_norm = f64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        pos += 8;
        let nnz = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if bytes.len() < pos + nnz * 12 {
            return None;
        }
        let (cols, vals) = RowView::from_bytes(&bytes[pos..pos + nnz * 12])?;
        pos += nnz * 12;
        out.push(SvEntry {
            coef,
            sq_norm,
            cols,
            vals,
        });
    }
    if pos != bytes.len() {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> PairSample {
        PairSample {
            index: i,
            y: 1.0,
            alpha: 0.5,
            gamma: -0.25,
            sq_norm: 5.0,
            cols: vec![0, 3, 9],
            vals: vec![1.0, -2.0, 0.5],
        }
    }

    #[test]
    fn pair_roundtrip() {
        let up = sample(7);
        let low = PairSample {
            index: 9,
            y: -1.0,
            cols: vec![],
            vals: vec![],
            ..sample(9)
        };
        let bytes = encode_pair((-0.75, 0.5), &up, &low);
        let (betas, u2, l2) = decode_pair(&bytes).unwrap();
        assert_eq!(betas, (-0.75, 0.5));
        assert_eq!(u2, up);
        assert_eq!(l2, low);
    }

    #[test]
    fn piggybacked_betas_roundtrip_bit_for_bit() {
        // The shrink test consumes these bits; the wire must not launder
        // them — including negative zero and infinities at phase ends.
        for (bu, bl) in [
            (f64::INFINITY, f64::NEG_INFINITY),
            (-0.0, 0.0),
            (1.0000000000000002, -1.0000000000000002),
        ] {
            let bytes = encode_pair((bu, bl), &sample(1), &sample(2));
            let (betas, _, _) = decode_pair(&bytes).unwrap();
            assert_eq!(betas.0.to_bits(), bu.to_bits());
            assert_eq!(betas.1.to_bits(), bl.to_bits());
        }
    }

    #[test]
    fn encoded_len_is_exact() {
        let s = sample(1);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        assert_eq!(buf.len(), s.encoded_len());
    }

    #[test]
    fn pair_decode_rejects_truncation_and_trailing() {
        let bytes = encode_pair((0.0, 0.0), &sample(1), &sample(2));
        assert!(decode_pair(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_pair(&bytes[..8]).is_none()); // header cut short
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_pair(&extra).is_none());
    }

    #[test]
    fn special_floats_survive() {
        let mut s = sample(3);
        s.gamma = f64::NEG_INFINITY;
        s.alpha = 0.0;
        let bytes = encode_pair((0.0, 0.0), &s, &sample(4));
        let (_, u2, _) = decode_pair(&bytes).unwrap();
        assert_eq!(u2.gamma, f64::NEG_INFINITY);
    }

    #[test]
    fn sv_block_roundtrip() {
        let entries = vec![
            SvEntry {
                coef: 1.5,
                sq_norm: 2.0,
                cols: vec![1, 5],
                vals: vec![0.5, -0.5],
            },
            SvEntry {
                coef: -3.0,
                sq_norm: 0.0,
                cols: vec![],
                vals: vec![],
            },
        ];
        let bytes = encode_sv_block(&entries);
        let back = decode_sv_block(&bytes).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_sv_block_roundtrip() {
        let bytes = encode_sv_block(&[]);
        assert_eq!(decode_sv_block(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn sv_block_rejects_malformed() {
        assert!(decode_sv_block(&[1, 0]).is_none()); // truncated count
        let mut bytes = encode_sv_block(&[SvEntry {
            coef: 1.0,
            sq_norm: 1.0,
            cols: vec![2],
            vals: vec![2.0],
        }]);
        bytes.truncate(bytes.len() - 3);
        assert!(decode_sv_block(&bytes).is_none());
    }
}
