//! The per-rank distributed training program.
//!
//! One function — [`train_rank`] — runs on every rank of a `mpisim`
//! universe and implements, depending on the
//! [`crate::shrink::ShrinkPolicy`]:
//!
//! * **Algorithm 2** (*Original*): no shrinking; every sample's gradient is
//!   updated every iteration.
//! * **Algorithm 4** (*Single*): shrinking with one gradient
//!   reconstruction — converge the active set to `2ε`, reconstruct,
//!   disable shrinking (`δ_c ← ∞`), converge again.
//! * **Algorithm 5** (*Multi*): converge the active set to `20ε`,
//!   reconstruct, then repeat converge-at-`2ε`/reconstruct (shrinking stays
//!   armed) until optimality survives a reconstruction.
//!
//! Determinism: all cross-rank agreement goes through MINLOC/MAXLOC
//! reductions with index tie-breaks, and every rank evaluates the same
//! floating-point expressions on the same values — so the iterate
//! trajectory is **bit-identical for every process count** up to the
//! first gradient reconstruction (for *Original*, the entire run), which
//! the integration tests assert. Reconstruction accumulates the ring
//! blocks in rank order, whose floating-point associativity depends on
//! `p`; after it, trajectories may diverge at rounding level while every
//! one still terminates at a `2ε`-optimal solution of the same dual —
//! the paper's "accuracy remains intact" claim.

use std::sync::Arc;

use shrinksvm_mpisim::{Comm, MaxLoc, MinLoc};
use shrinksvm_obs::MetricsRegistry;
use shrinksvm_sparse::Dataset;

use crate::dist::checkpoint::{Checkpoint, CheckpointCtx, RankSnapshot};
use crate::dist::msg::{decode_pair, encode_pair, PairSample};
use crate::dist::partition::Partition;
use crate::dist::recon;
use crate::error::CoreError;
use crate::kernel::KernelKind;
use crate::model::SvmModel;
use crate::params::SvmParams;
use crate::perfmodel::ComputeCharge;
use crate::shrink::{shrinkable, ReconPolicy, ShrinkPolicy, SubsequentPolicy};
use crate::smo::state::{bound_tol, classify, in_low_set, in_up_set, IndexSet};
use crate::smo::update::solve_pair_weighted;
use crate::trace::RankTrace;

/// Point-to-point tags used by the pair routing.
const TAG_UP: u64 = 1;
const TAG_LOW: u64 = 2;

/// Solver telemetry cadence: the KKT gap is sampled into the metrics
/// registry once per this many iterations (an "epoch"), keyed on the
/// iteration counter — never wall time.
pub const METRICS_EPOCH: u64 = 256;

/// Distributed-run configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Hyper-parameters (including the shrinking policy).
    pub params: SvmParams,
    /// Compute charges applied to the simulated clocks.
    pub charge: ComputeCharge,
    /// Periodic checkpointing (shared store + cadence); `None` disables.
    pub checkpoint: Option<CheckpointCtx>,
    /// Consistent checkpoint to resume from instead of a cold start.
    pub resume: Option<Arc<Checkpoint>>,
}

impl DistConfig {
    /// Config with default compute charges and no checkpointing.
    pub fn new(params: SvmParams) -> Self {
        DistConfig {
            params,
            charge: ComputeCharge::default(),
            checkpoint: None,
            resume: None,
        }
    }
}

/// What one rank hands back to the driver.
#[derive(Clone, Debug)]
pub struct RankOutput {
    /// The (globally identical) trained model.
    pub model: SvmModel,
    /// Total SMO iterations.
    pub iterations: u64,
    /// Whether optimality was reached within the iteration budget.
    pub converged: bool,
    /// Final `β_low − β_up`.
    pub final_gap: f64,
    /// This rank's trace fragment.
    pub trace: RankTrace,
    /// Simulated seconds spent inside gradient reconstruction.
    pub recon_sim_time: f64,
    /// This rank's solver metrics (global series are recorded on rank 0
    /// only; counters are local and sum to global totals when merged).
    pub metrics: MetricsRegistry,
}

/// How a phase ended.
struct PhaseEnd {
    converged: bool,
    gap: f64,
}

/// Per-rank solver state.
pub(crate) struct RankState<'a> {
    ds: &'a Dataset,
    kind: KernelKind,
    c_pos: f64,
    c_neg: f64,
    tau: f64,
    pub(crate) part: Partition,
    /// First global index owned by this rank.
    pub(crate) lo: usize,
    /// `α` for owned samples (indexed `global − lo`).
    pub(crate) alpha: Vec<f64>,
    /// `γ` for owned samples.
    pub(crate) grad: Vec<f64>,
    /// Active flags for owned samples.
    pub(crate) active: Vec<bool>,
    /// Cached squared norms for owned samples.
    pub(crate) sq: Vec<f64>,
    /// Iterations remaining until the next shrink pass (`None` = never).
    shrink_countdown: Option<u64>,
    initial_threshold: Option<u64>,
    subsequent: SubsequentPolicy,
    pub(crate) iterations: u64,
    pub(crate) trace: RankTrace,
    pub(crate) charge: ComputeCharge,
    pub(crate) recon_sim_time: f64,
    max_iter: u64,
    stall_limit: u64,
    /// Last allreduced `(β_up, β_low)`.
    last_betas: (f64, f64),
    /// This rank's id (for checkpoint snapshots).
    rank: usize,
    /// Phase-machine stage for checkpoint keys: 0 = first optimization
    /// phase; 1 = past the (first) reconstruction.
    stage: u32,
    /// Checkpoint handle, if the driver enabled checkpointing.
    ckpt: Option<CheckpointCtx>,
    /// Solver telemetry for this rank.
    pub(crate) metrics: MetricsRegistry,
}

impl<'a> RankState<'a> {
    fn new(comm: &Comm, ds: &'a Dataset, cfg: &DistConfig) -> Self {
        let part = Partition::new(ds.len(), comm.size());
        let range = part.range(comm.rank());
        let lo = range.start;
        let ln = range.len();
        let alpha = vec![0.0; ln];
        let grad: Vec<f64> = range.clone().map(|i| -ds.y[i]).collect();
        let active = vec![true; ln];
        let sq: Vec<f64> = range.clone().map(|i| ds.x.row(i).squared_norm()).collect();
        let policy: ShrinkPolicy = cfg.params.shrink;
        let initial_threshold = policy.initial_threshold(ds.len());
        let mut st = RankState {
            ds,
            kind: cfg.params.kernel,
            c_pos: cfg.params.c_for(1.0),
            c_neg: cfg.params.c_for(-1.0),
            tau: cfg.params.tau,
            part,
            lo,
            alpha,
            grad,
            active,
            sq,
            shrink_countdown: initial_threshold,
            initial_threshold,
            subsequent: policy.subsequent,
            iterations: 0,
            trace: RankTrace::default(),
            charge: cfg.charge,
            recon_sim_time: 0.0,
            max_iter: cfg.params.max_iter,
            stall_limit: cfg.params.stall_limit,
            last_betas: (f64::INFINITY, f64::NEG_INFINITY),
            rank: comm.rank(),
            stage: 0,
            ckpt: cfg.checkpoint.clone(),
            metrics: MetricsRegistry::new(),
        };
        if let Some(ck) = &cfg.resume {
            st.restore(ck);
        }
        st
    }

    /// Overwrite the cold-start state with a consistent checkpoint.
    /// Snapshots carry global indices, so this works under a different
    /// partition too (degraded continuation): each rank copies whatever
    /// slices of the old snapshots overlap its new range.
    fn restore(&mut self, ck: &Checkpoint) {
        debug_assert_eq!(ck.n, self.ds.len(), "checkpoint is for another dataset");
        let my_lo = self.lo;
        let my_hi = self.lo + self.local_n();
        for s in &ck.ranks {
            let start = my_lo.max(s.lo);
            let end = my_hi.min(s.lo + s.alpha.len());
            for g in start..end {
                let (li, si) = (g - my_lo, g - s.lo);
                self.alpha[li] = s.alpha[si];
                self.grad[li] = s.grad[si];
                self.active[li] = s.active[si];
            }
        }
        // lockstep: the countdown is identical on every rank at a
        // consistent generation, so any snapshot's copy will do
        if let Some(first) = ck.ranks.first() {
            self.shrink_countdown = first.shrink_countdown;
        }
        self.iterations = ck.iterations;
        self.stage = ck.stage;
        self.last_betas = ck.last_betas;
    }

    /// Post a snapshot when the cadence hits this iteration. Called right
    /// after the β allreduce, where every rank holds identical
    /// `(iterations, stage)` — so the posted keys line up across ranks and
    /// the store can promote a consistent generation.
    fn maybe_checkpoint(&mut self, comm: &mut Comm) {
        let Some(ctx) = &self.ckpt else { return };
        if !self.iterations.is_multiple_of(ctx.every_iters) {
            return;
        }
        comm.trace_mark("checkpoint", "ckpt");
        self.metrics.inc("checkpoints_posted", 1);
        ctx.store.post(
            self.iterations,
            self.stage,
            self.last_betas,
            self.ds.len(),
            RankSnapshot {
                rank: self.rank,
                lo: self.lo,
                alpha: self.alpha.clone(),
                grad: self.grad.clone(),
                active: self.active.clone(),
                shrink_countdown: self.shrink_countdown,
            },
        );
    }

    /// Samples owned by this rank.
    pub(crate) fn local_n(&self) -> usize {
        self.alpha.len()
    }

    /// The largest box constraint across classes (used for bound
    /// tolerances).
    pub(crate) fn c(&self) -> f64 {
        self.c_pos.max(self.c_neg)
    }

    /// Box constraint of local sample `li`.
    #[inline]
    pub(crate) fn c_of(&self, li: usize) -> f64 {
        if self.y(li) > 0.0 {
            self.c_pos
        } else {
            self.c_neg
        }
    }

    /// Charge simulated seconds to the reconstruction bucket.
    pub(crate) fn add_recon_time(&mut self, secs: f64) {
        self.recon_sim_time += secs;
    }

    /// Label of local sample `li`.
    #[inline]
    pub(crate) fn y(&self, li: usize) -> f64 {
        self.ds.y[self.lo + li]
    }

    /// Row of local sample `li`.
    #[inline]
    pub(crate) fn row(&self, li: usize) -> shrinksvm_sparse::RowView<'_> {
        self.ds.x.row(self.lo + li)
    }

    /// Kernel between local sample `li` and a foreign row.
    #[inline]
    pub(crate) fn k_vs(&self, li: usize, r: shrinksvm_sparse::RowView<'_>, r_sq: f64) -> f64 {
        self.kind.eval(self.row(li), r, self.sq[li], r_sq)
    }

    /// Scan active local samples for the worst-violator candidates.
    fn local_candidates(&self) -> (MinLoc, MaxLoc) {
        let mut up = MinLoc::identity();
        let mut low = MaxLoc::identity();
        for li in 0..self.local_n() {
            if !self.active[li] {
                continue;
            }
            let (y, a, g) = (self.y(li), self.alpha[li], self.grad[li]);
            let ci = self.c_of(li);
            let gidx = (self.lo + li) as u64;
            if in_up_set(y, a, ci) {
                up = MinLoc::combine(
                    up,
                    MinLoc {
                        value: g,
                        index: gidx,
                    },
                );
            }
            if in_low_set(y, a, ci) {
                low = MaxLoc::combine(
                    low,
                    MaxLoc {
                        value: g,
                        index: gidx,
                    },
                );
            }
        }
        (up, low)
    }

    /// Gather a local sample into a wire record.
    fn gather(&self, gidx: usize) -> PairSample {
        let li = gidx - self.lo;
        PairSample::from_parts(
            gidx as u64,
            self.y(li),
            self.alpha[li],
            self.grad[li],
            self.sq[li],
            self.row(li),
        )
    }

    /// Route the selected pair through rank 0 and broadcast it (Algorithm 2
    /// lines 3–9).
    fn route_pair(&self, comm: &mut Comm, i_up: usize, i_low: usize) -> (PairSample, PairSample) {
        let me = comm.rank();
        let owner_up = self.part.owner(i_up);
        let owner_low = self.part.owner(i_low);
        let mut encoded = Vec::new();
        if me == owner_up && me != 0 {
            let mut b = Vec::new();
            self.gather(i_up).encode(&mut b);
            comm.send(0, TAG_UP, &b);
        }
        if me == owner_low && me != 0 {
            let mut b = Vec::new();
            self.gather(i_low).encode(&mut b);
            comm.send(0, TAG_LOW, &b);
        }
        if me == 0 {
            let up = if owner_up == 0 {
                self.gather(i_up)
            } else {
                let b = comm.recv(owner_up, TAG_UP);
                let mut pos = 0;
                PairSample::decode(&b, &mut pos).expect("valid pair sample from owner")
            };
            let low = if owner_low == 0 {
                self.gather(i_low)
            } else {
                let b = comm.recv(owner_low, TAG_LOW);
                let mut pos = 0;
                PairSample::decode(&b, &mut pos).expect("valid pair sample from owner")
            };
            encoded = encode_pair(&up, &low);
        }
        let bytes = comm.bcast(0, &encoded);
        decode_pair(&bytes).expect("valid pair bundle from rank 0")
    }

    /// One optimization phase: iterate until `β_up + 2·phase_eps > β_low`
    /// on the active set (or the iteration cap).
    fn run_phase(
        &mut self,
        comm: &mut Comm,
        phase_eps: f64,
        shrink_enabled: bool,
    ) -> Result<PhaseEnd, CoreError> {
        let mut stall = 0u64;
        loop {
            let (cand_up, cand_low) = self.local_candidates();
            let up = comm.allreduce_minloc(cand_up);
            let low = comm.allreduce_maxloc(cand_low);
            self.last_betas = (up.value, low.value);
            self.maybe_checkpoint(comm);
            let gap = low.value - up.value;
            // Epoch telemetry: the global KKT violation, sampled on rank 0
            // so the merged registry carries the series exactly once.
            if comm.rank() == 0 && self.iterations.is_multiple_of(METRICS_EPOCH) && gap.is_finite()
            {
                self.metrics.sample("kkt_gap", self.iterations, gap);
            }
            // negated form on purpose: ±∞ candidates (empty scan sets) and
            // NaN must all terminate the phase
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(up.value + 2.0 * phase_eps <= low.value) {
                // covers empty scan sets too (±∞ candidates)
                return Ok(PhaseEnd {
                    converged: true,
                    gap,
                });
            }
            if self.iterations >= self.max_iter {
                return Ok(PhaseEnd {
                    converged: false,
                    gap,
                });
            }

            // Route the pair and solve the two-variable subproblem on every
            // rank identically (Eq. 6/7).
            let (sup, slow) = self.route_pair(comm, up.index as usize, low.index as usize);
            let (rup, rlow) = (sup.row(), slow.row());
            let k_uu = self.kind.eval(rup, rup, sup.sq_norm, sup.sq_norm);
            let k_ll = self.kind.eval(rlow, rlow, slow.sq_norm, slow.sq_norm);
            let k_ul = self.kind.eval(rup, rlow, sup.sq_norm, slow.sq_norm);
            let c_up = if sup.y > 0.0 { self.c_pos } else { self.c_neg };
            let c_lo = if slow.y > 0.0 { self.c_pos } else { self.c_neg };
            let sol = solve_pair_weighted(
                sup.y, slow.y, sup.alpha, slow.alpha, sup.gamma, slow.gamma, k_uu, k_ll, k_ul,
                c_up, c_lo, self.tau,
            );
            if sol.is_null() {
                stall += 1;
                if stall > self.stall_limit {
                    return Err(CoreError::Stalled {
                        at_iteration: self.iterations,
                    });
                }
            } else {
                stall = 0;
            }

            // Owners write back the new multipliers before the γ loop, so
            // the in-loop candidate scan sees updated set memberships
            // (Algorithm 2 lines 12–16).
            if self.part.owner(up.index as usize) == comm.rank() {
                self.alpha[up.index as usize - self.lo] = sol.alpha_up;
            }
            if self.part.owner(low.index as usize) == comm.rank() {
                self.alpha[low.index as usize - self.lo] = sol.alpha_low;
            }

            // γ update over active local samples (Eq. 2), fused with the
            // shrink pass and the next candidate scan.
            let cu = sup.y * sol.delta_up;
            let cl = slow.y * sol.delta_low;
            let shrink_pass = shrink_enabled && self.shrink_countdown == Some(0);
            let mut survivors = 0u64;
            let mut visited = 0u64;
            let mut madds = 0u64;
            let mut evals = 0u64;
            for li in 0..self.local_n() {
                if !self.active[li] {
                    continue;
                }
                visited += 1;
                let nnz_i = self.row(li).nnz() as u64;
                // Single fused expression `cu·K_up + cl·K_low`, matching the
                // sequential baseline bit-for-bit (a zero delta contributes
                // an exact 0.0 and skips its kernel evaluation).
                let k_up = if cu != 0.0 {
                    madds += nnz_i + sup.cols.len() as u64;
                    evals += 1;
                    self.k_vs(li, rup, sup.sq_norm)
                } else {
                    0.0
                };
                let k_low = if cl != 0.0 {
                    madds += nnz_i + slow.cols.len() as u64;
                    evals += 1;
                    self.k_vs(li, rlow, slow.sq_norm)
                } else {
                    0.0
                };
                self.grad[li] += cu * k_up + cl * k_low;
                if shrink_pass {
                    let set = classify(self.y(li), self.alpha[li], self.c_of(li));
                    let in_up_only = matches!(set, IndexSet::I1 | IndexSet::I2);
                    let in_low_only = matches!(set, IndexSet::I3 | IndexSet::I4);
                    if shrinkable(self.grad[li], in_up_only, in_low_only, up.value, low.value) {
                        self.active[li] = false;
                        continue;
                    }
                    survivors += 1;
                }
            }
            self.trace.sum_active_local += visited as u128;
            self.trace.kernel_evals += evals + 3;
            comm.advance_compute(
                madds as f64 * self.charge.lambda_per_nnz
                    + (evals + 3) as f64 * self.charge.kernel_overhead,
            );

            if shrink_pass {
                let global_active = comm.allreduce_u64_sum(survivors);
                self.shrink_countdown = Some(match self.subsequent {
                    SubsequentPolicy::ActiveSetSize => global_active.max(1),
                    SubsequentPolicy::SameAsInitial => self
                        .initial_threshold
                        .expect("shrink pass implies a threshold"),
                });
                self.trace
                    .active_curve
                    .push((self.iterations, global_active));
                // local counter (sums to the global shrink total on merge)
                self.metrics.inc("samples_shrunk", visited - survivors);
                comm.trace_mark("shrink_pass", "solver");
                comm.trace_counter("active_set", global_active as f64);
                if comm.rank() == 0 {
                    self.metrics.inc("shrink_passes", 1);
                    self.metrics
                        .sample("active_set", self.iterations, global_active as f64);
                }
            } else if shrink_enabled {
                if let Some(cd) = &mut self.shrink_countdown {
                    *cd = cd.saturating_sub(1);
                }
            }
            self.iterations += 1;
        }
    }

    /// Assemble the global model on every rank: allgather the SV blocks and
    /// agree on the bias.
    fn assemble_model(&self, comm: &mut Comm) -> Result<SvmModel, CoreError> {
        // bias: mean γ over I0, else bracket midpoint (§III).
        let tol = bound_tol(self.c());
        let mut sum = 0.0;
        let mut count = 0u64;
        for li in 0..self.local_n() {
            if classify(self.y(li), self.alpha[li], self.c_of(li)) == IndexSet::I0 {
                sum += self.grad[li];
                count += 1;
            }
        }
        let gsum = comm.allreduce_f64_sum(sum);
        let gcount = comm.allreduce_u64_sum(count);
        let bias = if gcount > 0 {
            gsum / gcount as f64
        } else {
            (self.last_betas.0 + self.last_betas.1) / 2.0
        };

        // SV gather: (global idx, coef, row) per local SV — the SV set is
        // small (ζ ≪ N), so allgatherv here is cheap and *not* the
        // full-dataset allgather the paper rejects for reconstruction.
        let mut block = Vec::new();
        for li in 0..self.local_n() {
            if self.alpha[li] > tol {
                self.gather(self.lo + li).encode(&mut block);
            }
        }
        let pieces = comm.allgatherv(&block);
        let mut b = shrinksvm_sparse::CsrBuilder::new(self.ds.x.ncols());
        let mut coef = Vec::new();
        for piece in pieces {
            let mut pos = 0;
            while pos < piece.len() {
                let s = PairSample::decode(&piece, &mut pos)
                    .ok_or_else(|| CoreError::ModelFormat("bad SV gather block".into()))?;
                coef.push(s.alpha * s.y);
                b.push_row(&s.cols, &s.vals)?;
            }
        }
        SvmModel::new(self.kind, b.finish(), coef, bias)
    }
}

/// Run the distributed trainer on this rank. Every rank of the universe
/// must call this with the same `ds` and `cfg`.
pub fn train_rank(
    comm: &mut Comm,
    ds: &Dataset,
    cfg: &DistConfig,
) -> Result<RankOutput, CoreError> {
    cfg.params.validate()?;
    if ds.len() < 2 {
        return Err(CoreError::DegenerateProblem(format!(
            "{} samples",
            ds.len()
        )));
    }
    let (pos, neg) = ds.class_counts();
    if pos == 0 || neg == 0 {
        return Err(CoreError::DegenerateProblem(
            "all samples share one class".into(),
        ));
    }

    let eps = cfg.params.epsilon;
    let policy = cfg.params.shrink;
    let mut st = RankState::new(comm, ds, cfg);

    let end = if policy.is_none() {
        // Algorithm 2.
        st.run_phase(comm, eps, false)?
    } else {
        match policy.recon {
            ReconPolicy::Never => {
                // CA-SVM-style permanent elimination: converge the active
                // set and STOP — shrunk samples are never re-checked, so
                // the result may be inexact (the ablation the paper argues
                // against in §IV).
                st.run_phase(comm, eps, true)?
            }
            ReconPolicy::Single => {
                // Algorithm 4: converge active set, reconstruct once,
                // δ_c ← ∞, converge exactly. A resume at stage 1 is past
                // the reconstruction and re-enters the exact phase
                // directly.
                if st.stage >= 1 {
                    st.run_phase(comm, eps, false)?
                } else {
                    let first = st.run_phase(comm, eps, true)?;
                    if !first.converged {
                        first
                    } else {
                        recon::reconstruct(&mut st, comm);
                        st.stage = 1;
                        st.run_phase(comm, eps, false)?
                    }
                }
            }
            ReconPolicy::Multi => {
                // Algorithm 5: 20ε phase, reconstruct, then 2ε/reconstruct
                // rounds until optimality survives a reconstruction. A
                // resume at stage 1 re-enters the reconstruction loop;
                // reconstruction recomputes γ from the (restored) α, so
                // re-running it after a restore is safe.
                let coarse = if st.stage == 0 {
                    Some(st.run_phase(comm, 10.0 * eps, true)?)
                } else {
                    None
                };
                match coarse {
                    Some(c) if !c.converged => c,
                    _ => {
                        st.stage = 1;
                        loop {
                            recon::reconstruct(&mut st, comm);
                            let before = st.iterations;
                            let end = st.run_phase(comm, eps, true)?;
                            if !end.converged || st.iterations == before {
                                // either out of budget, or the reconstructed
                                // problem was already optimal — done.
                                break end;
                            }
                        }
                    }
                }
            }
        }
    };

    let model = st.assemble_model(comm)?;
    st.trace.iterations = st.iterations;
    if comm.rank() == 0 {
        st.metrics.set_gauge("final_gap", end.gap.max(0.0));
        st.metrics.set_gauge("iterations", st.iterations as f64);
    }
    Ok(RankOutput {
        model,
        iterations: st.iterations,
        converged: end.converged,
        final_gap: end.gap.max(0.0),
        trace: st.trace,
        recon_sim_time: st.recon_sim_time,
        metrics: st.metrics,
    })
}
