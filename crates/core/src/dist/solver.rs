//! The per-rank distributed training program.
//!
//! One function — [`train_rank`] — runs on every rank of a `mpisim`
//! universe and implements, depending on the
//! [`crate::shrink::ShrinkPolicy`]:
//!
//! * **Algorithm 2** (*Original*): no shrinking; every sample's gradient is
//!   updated every iteration.
//! * **Algorithm 4** (*Single*): shrinking with one gradient
//!   reconstruction — converge the active set to `2ε`, reconstruct,
//!   disable shrinking (`δ_c ← ∞`), converge again.
//! * **Algorithm 5** (*Multi*): converge the active set to `20ε`,
//!   reconstruct, then repeat converge-at-`2ε`/reconstruct (shrinking stays
//!   armed) until optimality survives a reconstruction.
//!
//! Determinism: all cross-rank agreement goes through MINLOC/MAXLOC
//! reductions with index tie-breaks, and every rank evaluates the same
//! floating-point expressions on the same values — so the iterate
//! trajectory is **bit-identical for every process count** up to the
//! first gradient reconstruction (for *Original*, the entire run), which
//! the integration tests assert. Reconstruction accumulates the ring
//! blocks in rank order, whose floating-point associativity depends on
//! `p`; after it, trajectories may diverge at rounding level while every
//! one still terminates at a `2ε`-optimal solution of the same dual —
//! the paper's "accuracy remains intact" claim.

use std::sync::{Arc, OnceLock};

use shrinksvm_mpisim::{decode_minloc_maxloc, CollRequest, Comm, MaxLoc, MinLoc};
use shrinksvm_obs::MetricsRegistry;
use shrinksvm_sparse::{ops, Dataset, RowView, ScratchPad};
use shrinksvm_threads::schedule::static_block;
use shrinksvm_threads::ThreadPool;

use crate::cache::KernelCache;
use crate::dist::checkpoint::{Checkpoint, CheckpointCtx, RankSnapshot};
use crate::dist::convergence::ConvergenceTracker;
use crate::dist::msg::{decode_pair, encode_pair, PairSample};
use crate::dist::partition::Partition;
use crate::dist::recon;
use crate::error::CoreError;
use crate::kernel::KernelKind;
use crate::model::SvmModel;
use crate::params::SvmParams;
use crate::perfmodel::ComputeCharge;
use crate::shrink::{shrinkable, ReconPolicy, ShrinkPolicy, SubsequentPolicy};
use crate::smo::state::{bound_tol, classify, in_low_set, in_up_set, IndexSet};
use crate::smo::update::solve_pair_weighted;
use crate::trace::RankTrace;

/// Point-to-point tags used by the pair routing.
const TAG_UP: u64 = 1;
const TAG_LOW: u64 = 2;

/// Rows held by the pivot-pair memo (the `k_uu/k_ll/k_ul` triple per
/// selected pair). The same worst-violator pair is reselected across
/// consecutive iterations, so a handful of entries is plenty.
const PAIR_MEMO_ROWS: usize = 16;

/// Default solver telemetry cadence: the KKT gap is sampled into the
/// metrics registry once per this many iterations (an "epoch"), keyed on
/// the iteration counter — never wall time.
pub const METRICS_EPOCH: u64 = 256;

/// Effective telemetry cadence: `SHRINKSVM_METRICS_EPOCH` when set
/// (clamped to ≥ 1), else [`METRICS_EPOCH`]. Read once per process and
/// cached — the cadence must not change mid-run, and every rank must
/// agree on it.
///
/// Panics with a named diagnosis when the override is set to a
/// non-numeric value — a misconfigured knob must not silently fall back
/// to the default.
pub fn metrics_epoch() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(
        || match shrinksvm_mpisim::env_u64("SHRINKSVM_METRICS_EPOCH") {
            Ok(Some(v)) => v.max(1),
            Ok(None) => METRICS_EPOCH,
            Err(e) => panic!("{e}"),
        },
    )
}

/// Default for [`DistConfig::overlap`]: `SHRINKSVM_OVERLAP` when set
/// (`0` disables, anything else enables), else **on**. Read once per
/// process and cached — every rank must agree on it, since the choice
/// changes the collective sequence.
///
/// Panics with a named diagnosis when the override is set to a
/// non-numeric value — a misconfigured knob must not silently fall back
/// to the default.
pub fn overlap_default() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| match shrinksvm_mpisim::env_u64("SHRINKSVM_OVERLAP") {
        Ok(Some(v)) => v != 0,
        Ok(None) => true,
        Err(e) => panic!("{e}"),
    })
}

/// Sparse dot-product implementation used by the gradient-update hot path.
///
/// Both produce **bit-identical** kernel values: the scatter path gathers
/// at exactly the merge-join's overlap columns in the same ascending order
/// (see [`shrinksvm_sparse::ops::dot_scatter`]), and the post-dot
/// arithmetic is shared through [`KernelKind::eval_from_dot`]. They differ
/// only in cost: merge-join touches `nnz_i + nnz_pivot` entries per active
/// row, the scatter gather touches `nnz_i` plus one `2·nnz_pivot`
/// scatter/unscatter per pivot per iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DotKind {
    /// Two-pointer merge over both rows' column lists (the pre-optimization
    /// path, kept for A/B benchmarking).
    MergeJoin,
    /// Scatter the pivot into a dense [`ScratchPad`] once, then index-gather
    /// each active row against it.
    #[default]
    Scatter,
}

/// Distributed-run configuration.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Hyper-parameters (including the shrinking policy). A nonzero
    /// [`SvmParams::cache_bytes`] enables the per-rank kernel row cache.
    pub params: SvmParams,
    /// Compute charges applied to the simulated clocks.
    pub charge: ComputeCharge,
    /// Periodic checkpointing (shared store + cadence); `None` disables.
    pub checkpoint: Option<CheckpointCtx>,
    /// Consistent checkpoint to resume from instead of a cold start.
    pub resume: Option<Arc<Checkpoint>>,
    /// Intra-rank worker threads for the fused γ-update/shrink sweep and
    /// the candidate scan (the paper's hybrid MPI+OpenMP layout); clamped
    /// to ≥ 1. Results are bit-identical at every thread count.
    pub threads: usize,
    /// Dot-product implementation for the hot path.
    pub dots: DotKind,
    /// Overlapped-communication pipeline: when on, each iteration's fused
    /// candidate reduction is a *nonblocking* collective initiated right
    /// after the sweep's head and waited on only at the next pivot
    /// decision, so the sweep tail (shrink bookkeeping, the survivors
    /// reduction) hides its latency. Bit-identical models and iteration
    /// counts either way; only simulated time moves.
    pub overlap: bool,
}

impl DistConfig {
    /// Config with default compute charges, scatter dots, one intra-rank
    /// thread and no checkpointing.
    pub fn new(params: SvmParams) -> Self {
        DistConfig {
            params,
            charge: ComputeCharge::default(),
            checkpoint: None,
            resume: None,
            threads: 1,
            dots: DotKind::default(),
            overlap: overlap_default(),
        }
    }
}

/// What one rank hands back to the driver.
#[derive(Clone, Debug)]
pub struct RankOutput {
    /// The (globally identical) trained model.
    pub model: SvmModel,
    /// Total SMO iterations.
    pub iterations: u64,
    /// Whether optimality was reached within the iteration budget.
    pub converged: bool,
    /// Final `β_low − β_up`.
    pub final_gap: f64,
    /// This rank's trace fragment.
    pub trace: RankTrace,
    /// Simulated seconds spent inside gradient reconstruction.
    pub recon_sim_time: f64,
    /// This rank's solver metrics (global series are recorded on rank 0
    /// only; counters are local and sum to global totals when merged).
    pub metrics: MetricsRegistry,
}

/// How a phase ended.
struct PhaseEnd {
    converged: bool,
    gap: f64,
}

/// Per-chunk partial result of the fused γ-update/shrink sweep, merged in
/// chunk order so the outcome is identical at every thread count.
struct SweepPart {
    /// Samples that survived this chunk's shrink test.
    survivors: u64,
    /// Active-list *positions* that survive the shrink pass, ascending
    /// within the chunk (empty on non-shrink iterations).
    keep_pos: Vec<u32>,
    /// Next iteration's worst-violator candidates, folded over this
    /// chunk's post-update gradients (shrink survivors only on a shrink
    /// pass — exactly the span a fresh scan over the compacted active
    /// list would cover).
    cand_up: MinLoc,
    cand_low: MaxLoc,
}

impl Default for SweepPart {
    fn default() -> Self {
        SweepPart {
            survivors: 0,
            keep_pos: Vec::new(),
            cand_up: MinLoc::identity(),
            cand_low: MaxLoc::identity(),
        }
    }
}

/// The per-iteration fused MINLOC+MAXLOC candidate reduction, between the
/// sweep that initiated it and the pivot decision that consumes it.
enum PendingCand {
    /// Blocking path (`overlap = false`): the result is already in hand.
    Ready(MinLoc, MaxLoc),
    /// Overlap path: the collective is in flight; the pivot decision
    /// clamps to its completion via [`Comm::coll_wait`].
    InFlight(CollRequest),
}

/// Per-rank solver state.
pub(crate) struct RankState<'a> {
    ds: &'a Dataset,
    kind: KernelKind,
    c_pos: f64,
    c_neg: f64,
    tau: f64,
    pub(crate) part: Partition,
    /// First global index owned by this rank.
    pub(crate) lo: usize,
    /// `α` for owned samples (indexed `global − lo`).
    pub(crate) alpha: Vec<f64>,
    /// `γ` for owned samples.
    pub(crate) grad: Vec<f64>,
    /// Active flags for owned samples.
    pub(crate) active: Vec<bool>,
    /// Ascending raw local indices of the active samples — the iteration
    /// space of the candidate scan and the fused sweep, and the span of
    /// every cached kernel row. Kept in lockstep with `active` (rebuilt on
    /// shrink passes, reconstruction and restore).
    active_list: Vec<u32>,
    /// Cached squared norms for owned samples.
    pub(crate) sq: Vec<f64>,
    /// Intra-rank worker pool for the hot-path loops.
    pool: ThreadPool,
    /// Dot-product implementation for pivot-row evaluation.
    dots: DotKind,
    /// Overlapped-communication pipeline (see [`DistConfig::overlap`]).
    overlap: bool,
    /// Dense scratch the pivot row is scattered into (`DotKind::Scatter`).
    pad: ScratchPad,
    /// LRU cache of pivot kernel rows over the active span, keyed by
    /// global pivot index. `None` when `params.cache_bytes == 0`.
    row_cache: Option<KernelCache>,
    /// Memo of the `[k_uu, k_ll, k_ul]` triple, keyed by the packed pair
    /// `(up << 32) | low`. Enabled together with `row_cache`.
    pair_cache: Option<KernelCache>,
    /// Iterations remaining until the next shrink pass (`None` = never).
    shrink_countdown: Option<u64>,
    initial_threshold: Option<u64>,
    subsequent: SubsequentPolicy,
    pub(crate) iterations: u64,
    pub(crate) trace: RankTrace,
    pub(crate) charge: ComputeCharge,
    pub(crate) recon_sim_time: f64,
    max_iter: u64,
    stall_limit: u64,
    /// Last allreduced `(β_up, β_low)`.
    last_betas: (f64, f64),
    /// This rank's id (for checkpoint snapshots).
    rank: usize,
    /// Phase-machine stage for checkpoint keys: 0 = first optimization
    /// phase; 1 = past the (first) reconstruction.
    stage: u32,
    /// Checkpoint handle, if the driver enabled checkpointing.
    ckpt: Option<CheckpointCtx>,
    /// Solver telemetry for this rank.
    pub(crate) metrics: MetricsRegistry,
    /// Convergence-phase tracker, fed at epoch cadence on rank 0 only
    /// (where the global series are recorded). Pure local arithmetic —
    /// no communication, no simulated-time charge.
    convergence: ConvergenceTracker,
}

impl<'a> RankState<'a> {
    fn new(comm: &Comm, ds: &'a Dataset, cfg: &DistConfig) -> Self {
        let part = Partition::new(ds.len(), comm.size());
        let range = part.range(comm.rank());
        let lo = range.start;
        let ln = range.len();
        let alpha = vec![0.0; ln];
        let grad: Vec<f64> = range.clone().map(|i| -ds.y[i]).collect();
        let active = vec![true; ln];
        let sq: Vec<f64> = range.clone().map(|i| ds.x.row(i).squared_norm()).collect();
        let policy: ShrinkPolicy = cfg.params.shrink;
        let initial_threshold = policy.initial_threshold(ds.len());
        debug_assert!(ln <= u32::MAX as usize, "local block exceeds u32 index");
        let cache_on = cfg.params.cache_bytes > 0;
        let mut st = RankState {
            ds,
            kind: cfg.params.kernel,
            c_pos: cfg.params.c_for(1.0),
            c_neg: cfg.params.c_for(-1.0),
            tau: cfg.params.tau,
            part,
            lo,
            alpha,
            grad,
            active,
            active_list: Vec::new(),
            sq,
            pool: ThreadPool::new(cfg.threads),
            dots: cfg.dots,
            overlap: cfg.overlap,
            pad: ScratchPad::new(ds.x.ncols()),
            row_cache: cache_on
                .then(|| KernelCache::with_byte_budget(cfg.params.cache_bytes, ln.max(1))),
            pair_cache: cache_on.then(|| KernelCache::with_capacity_rows(PAIR_MEMO_ROWS)),
            shrink_countdown: initial_threshold,
            initial_threshold,
            subsequent: policy.subsequent,
            iterations: 0,
            trace: RankTrace::default(),
            charge: cfg.charge,
            recon_sim_time: 0.0,
            max_iter: cfg.params.max_iter,
            stall_limit: cfg.params.stall_limit,
            last_betas: (f64::INFINITY, f64::NEG_INFINITY),
            rank: comm.rank(),
            stage: 0,
            ckpt: cfg.checkpoint.clone(),
            metrics: MetricsRegistry::new(),
            convergence: ConvergenceTracker::new(cfg.params.epsilon),
        };
        if let Some(ck) = &cfg.resume {
            st.restore(ck);
        }
        st.rebuild_active_list();
        st
    }

    /// Recompute `active_list` from the `active` flags.
    fn rebuild_active_list(&mut self) {
        self.active_list.clear();
        for (li, &a) in self.active.iter().enumerate() {
            if a {
                self.active_list.push(li as u32);
            }
        }
    }

    /// Drop every cached kernel value. Called wherever the active span is
    /// rebuilt wholesale (reconstruction reactivates every shrunk sample;
    /// a checkpoint restore replaces the active flags), since cached rows
    /// are positional over the active list and would silently misalign.
    fn invalidate_caches(&mut self) {
        if let Some(rc) = &mut self.row_cache {
            rc.clear();
        }
        if let Some(pc) = &mut self.pair_cache {
            pc.clear();
        }
    }

    /// Re-sync the solver after a gradient reconstruction reactivated the
    /// shrunk samples: the active span is the full block again, so cached
    /// rows (spanning the old, shorter active list) must go.
    pub(crate) fn on_reconstruction(&mut self) {
        self.rebuild_active_list();
        self.invalidate_caches();
    }

    /// Overwrite the cold-start state with a consistent checkpoint.
    /// Snapshots carry global indices, so this works under a different
    /// partition too (degraded continuation): each rank copies whatever
    /// slices of the old snapshots overlap its new range.
    fn restore(&mut self, ck: &Checkpoint) {
        debug_assert_eq!(ck.n, self.ds.len(), "checkpoint is for another dataset");
        let my_lo = self.lo;
        let my_hi = self.lo + self.local_n();
        // Recovery copy-in; the fault path bills this through the driver's
        // recovery cost, not per-element compute. lint: uncharged
        for s in &ck.ranks {
            let start = my_lo.max(s.lo);
            let end = my_hi.min(s.lo + s.alpha.len());
            // lint: uncharged — same recovery copy-in as above.
            for g in start..end {
                let (li, si) = (g - my_lo, g - s.lo);
                self.alpha[li] = s.alpha[si];
                self.grad[li] = s.grad[si];
                self.active[li] = s.active[si];
            }
        }
        // lockstep: the countdown is identical on every rank at a
        // consistent generation, so any snapshot's copy will do
        if let Some(first) = ck.ranks.first() {
            self.shrink_countdown = first.shrink_countdown;
        }
        self.iterations = ck.iterations;
        self.stage = ck.stage;
        self.last_betas = ck.last_betas;
        // The restored active flags define a new span; cached rows from
        // before the crash (a fresh state has none, but be explicit) are
        // positionally meaningless now.
        self.invalidate_caches();
    }

    /// Post a snapshot when the cadence hits this iteration. Called right
    /// after the β allreduce, where every rank holds identical
    /// `(iterations, stage)` — so the posted keys line up across ranks and
    /// the store can promote a consistent generation.
    fn maybe_checkpoint(&mut self, comm: &mut Comm) {
        let Some(ctx) = &self.ckpt else { return };
        if !self.iterations.is_multiple_of(ctx.every_iters) {
            return;
        }
        comm.trace_mark("checkpoint", "ckpt");
        self.metrics.inc("checkpoints_posted", 1);
        ctx.store.post(
            self.iterations,
            self.stage,
            self.last_betas,
            self.ds.len(),
            comm.clock(),
            RankSnapshot {
                rank: self.rank,
                lo: self.lo,
                alpha: self.alpha.clone(),
                grad: self.grad.clone(),
                active: self.active.clone(),
                shrink_countdown: self.shrink_countdown,
            },
        );
    }

    /// Samples owned by this rank.
    pub(crate) fn local_n(&self) -> usize {
        self.alpha.len()
    }

    /// The largest box constraint across classes (used for bound
    /// tolerances).
    pub(crate) fn c(&self) -> f64 {
        self.c_pos.max(self.c_neg)
    }

    /// Box constraint of local sample `li`.
    #[inline]
    pub(crate) fn c_of(&self, li: usize) -> f64 {
        if self.y(li) > 0.0 {
            self.c_pos
        } else {
            self.c_neg
        }
    }

    /// Charge simulated seconds to the reconstruction bucket.
    pub(crate) fn add_recon_time(&mut self, secs: f64) {
        self.recon_sim_time += secs;
    }

    /// Label of local sample `li`.
    #[inline]
    pub(crate) fn y(&self, li: usize) -> f64 {
        self.ds.y[self.lo + li]
    }

    /// Row of local sample `li`.
    #[inline]
    pub(crate) fn row(&self, li: usize) -> shrinksvm_sparse::RowView<'_> {
        self.ds.x.row(self.lo + li)
    }

    /// Kernel between local sample `li` and a foreign row.
    #[inline]
    pub(crate) fn k_vs(&self, li: usize, r: shrinksvm_sparse::RowView<'_>, r_sq: f64) -> f64 {
        self.kind.eval(self.row(li), r, self.sq[li], r_sq)
    }

    /// Scan active local samples for the worst-violator candidates,
    /// chunked over the worker pool.
    ///
    /// Deterministic at every thread count: each chunk folds its
    /// (ascending) share of the active list with the usual index
    /// tie-breaks, and the per-chunk partials are combined in chunk order.
    /// `MinLoc`/`MaxLoc` comparison is a total order over `(value, index)`,
    /// so the fold result is the set minimum/maximum — independent of where
    /// the chunk boundaries fall.
    fn local_candidates(&self) -> (MinLoc, MaxLoc) {
        self.pool.parallel_reduce(
            0..self.active_list.len(),
            || (MinLoc::identity(), MaxLoc::identity()),
            |acc, pos| {
                let li = self.active_list[pos] as usize;
                let (y, a, g) = (self.y(li), self.alpha[li], self.grad[li]);
                let ci = self.c_of(li);
                let gidx = (self.lo + li) as u64;
                if in_up_set(y, a, ci) {
                    acc.0 = MinLoc::combine(
                        acc.0,
                        MinLoc {
                            value: g,
                            index: gidx,
                        },
                    );
                }
                if in_low_set(y, a, ci) {
                    acc.1 = MaxLoc::combine(
                        acc.1,
                        MaxLoc {
                            value: g,
                            index: gidx,
                        },
                    );
                }
            },
            |a, b| (MinLoc::combine(a.0, b.0), MaxLoc::combine(a.1, b.1)),
        )
    }

    /// Launch the fused MINLOC+MAXLOC candidate reduction. Under the
    /// overlap pipeline this is a nonblocking collective — the caller's
    /// tail work advances the clock while it is in flight — otherwise a
    /// blocking round at the same program point. The combine sequence is
    /// identical either way, so the selected pair is bit-identical.
    fn post_candidates(&self, comm: &mut Comm, min: MinLoc, max: MaxLoc) -> PendingCand {
        if self.overlap {
            PendingCand::InFlight(comm.iallreduce_minloc_maxloc(min, max))
        } else {
            let (u, l) = comm.allreduce_minloc_maxloc(min, max);
            PendingCand::Ready(u, l)
        }
    }

    /// The pivot decision: resolve the pending candidate reduction,
    /// clamping this rank's clock to the collective's completion when the
    /// tail did not fully hide it.
    fn take_candidates(comm: &mut Comm, pending: PendingCand) -> (MinLoc, MaxLoc) {
        match pending {
            PendingCand::Ready(u, l) => (u, l),
            PendingCand::InFlight(req) => decode_minloc_maxloc(&comm.coll_wait(req)),
        }
    }

    /// Gather a local sample into a wire record.
    fn gather(&self, gidx: usize) -> PairSample {
        let li = gidx - self.lo;
        PairSample::from_parts(
            gidx as u64,
            self.y(li),
            self.alpha[li],
            self.grad[li],
            self.sq[li],
            self.row(li),
        )
    }

    /// Route the selected pair through rank 0 and broadcast it (Algorithm 2
    /// lines 3–9). The iteration's `(β_up, β_low)` piggyback on the
    /// broadcast as the bundle header — one round carries everything the
    /// sweep's shrink test needs — and the returned values are the
    /// decoded header (bit-identical to the reduction's, the wire being
    /// an exact `f64` roundtrip).
    fn route_pair(
        &self,
        comm: &mut Comm,
        i_up: usize,
        i_low: usize,
        betas: (f64, f64),
    ) -> ((f64, f64), PairSample, PairSample) {
        let me = comm.rank();
        let owner_up = self.part.owner(i_up);
        let owner_low = self.part.owner(i_low);
        let mut encoded = Vec::new();
        if me == owner_up && me != 0 {
            let mut b = Vec::new();
            self.gather(i_up).encode(&mut b);
            comm.send(0, TAG_UP, &b);
        }
        if me == owner_low && me != 0 {
            let mut b = Vec::new();
            self.gather(i_low).encode(&mut b);
            comm.send(0, TAG_LOW, &b);
        }
        if me == 0 {
            let up = if owner_up == 0 {
                self.gather(i_up)
            } else {
                let b = comm.recv(owner_up, TAG_UP);
                let mut pos = 0;
                PairSample::decode(&b, &mut pos).expect("valid pair sample from owner")
            };
            let low = if owner_low == 0 {
                self.gather(i_low)
            } else {
                let b = comm.recv(owner_low, TAG_LOW);
                let mut pos = 0;
                PairSample::decode(&b, &mut pos).expect("valid pair sample from owner")
            };
            encoded = encode_pair(betas, &up, &low);
        }
        let bytes = comm.bcast(0, &encoded);
        decode_pair(&bytes).expect("valid pair bundle from rank 0")
    }

    /// Fill `out[pos] = K(x_{active_list[pos]}, pivot)` over the active
    /// span, chunked over the worker pool. Returns per-chunk
    /// `(madds, evals)` accounting in chunk order; the caller charges the
    /// critical path (`max` over chunks) to the simulated clock.
    ///
    /// Kernel values are bit-identical between the two dot
    /// implementations: the scatter gather performs the merge-join's exact
    /// f64 sequence ([`ops::dot_scatter`]), and both feed
    /// [`KernelKind::eval_from_dot`].
    fn fill_pivot_row(
        &mut self,
        pivot: RowView<'_>,
        pivot_sq: f64,
        out: &mut [f64],
    ) -> Vec<(u64, u64)> {
        let m = out.len();
        debug_assert_eq!(m, self.active_list.len());
        if m == 0 {
            return Vec::new();
        }
        let t = self.pool.nthreads().min(m).max(1);
        let mut bounds: Vec<usize> = (0..t).map(|w| static_block(0, m, w, t).0).collect();
        bounds.push(m);
        let kind = self.kind;
        let lo = self.lo;
        match self.dots {
            DotKind::Scatter => {
                self.pad.load(pivot);
                let (pad, active_list, ds, sq) = (&self.pad, &self.active_list, self.ds, &self.sq);
                let parts = self.pool.parallel_parts(out, &bounds, |_, off, chunk| {
                    let mut madds = 0u64;
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let li = active_list[off + k] as usize;
                        let row = ds.x.row(lo + li);
                        madds += row.nnz() as u64;
                        *slot = kind.eval_from_dot(pad.dot(row), sq[li], pivot_sq);
                    }
                    (madds, chunk.len() as u64)
                });
                self.pad.clear();
                parts
            }
            DotKind::MergeJoin => {
                let pnnz = pivot.nnz() as u64;
                let (active_list, ds, sq) = (&self.active_list, self.ds, &self.sq);
                self.pool.parallel_parts(out, &bounds, |_, off, chunk| {
                    let mut madds = 0u64;
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        let li = active_list[off + k] as usize;
                        let row = ds.x.row(lo + li);
                        madds += row.nnz() as u64 + pnnz;
                        *slot = kind.eval_from_dot(ops::dot(row, pivot), sq[li], pivot_sq);
                    }
                    (madds, chunk.len() as u64)
                })
            }
        }
    }

    /// Obtain `K(active, pivot)` over the active span — served from the row
    /// cache when enabled, else freshly computed. Returns
    /// `(row, sim_cost, alt_cost, evals)`:
    ///
    /// * miss / cache off: the threaded fill's critical-path cost, plus a
    ///   `2·nnz_pivot` scatter/unscatter setup under [`DotKind::Scatter`];
    /// * hit: one [`ComputeCharge::cache_lookup`] plus the dense fma sweep
    ///   (`max_chunk · fma_per_elem`) — the λ the cache saved is exactly
    ///   what is *not* charged, so simulated time reflects the reuse.
    ///
    /// `alt_cost` is always the hit-path cost: what this acquisition would
    /// charge under an infinitely large, fully warm kernel cache. It feeds
    /// the PerfDoctor `infinite_cache` what-if projection and never touches
    /// the clock.
    fn acquire_pivot_row(
        &mut self,
        gidx: u64,
        pivot: RowView<'_>,
        pivot_sq: f64,
    ) -> (Arc<Vec<f64>>, f64, f64, u64) {
        let m = self.active_list.len();
        let charge = self.charge;
        let mut cache = self.row_cache.take();
        let mut fill_parts: Option<Vec<(u64, u64)>> = None;
        let row = if let Some(c) = &mut cache {
            c.get_or_compute(gidx as usize, || {
                let mut v = vec![0.0; m];
                fill_parts = Some(self.fill_pivot_row(pivot, pivot_sq, &mut v));
                v
            })
        } else {
            let mut v = vec![0.0; m];
            fill_parts = Some(self.fill_pivot_row(pivot, pivot_sq, &mut v));
            Arc::new(v)
        };
        self.row_cache = cache;
        let t = self.pool.nthreads().min(m).max(1);
        let max_chunk = if m == 0 { 0 } else { m.div_ceil(t) };
        let hit_cost = charge.cache_lookup + max_chunk as f64 * charge.fma_per_elem;
        match fill_parts {
            Some(parts) => {
                let setup = if self.dots == DotKind::Scatter && m > 0 {
                    2.0 * pivot.nnz() as f64 * charge.lambda_per_nnz
                } else {
                    0.0
                };
                let crit = parts
                    .iter()
                    .map(|&(md, ev)| {
                        md as f64 * charge.lambda_per_nnz + ev as f64 * charge.kernel_overhead
                    })
                    .fold(0.0, f64::max);
                let evals: u64 = parts.iter().map(|p| p.1).sum();
                (row, setup + crit, hit_cost, evals)
            }
            None => (row, hit_cost, hit_cost, 0),
        }
    }

    /// `k_uu, k_ll, k_ul` for the routed pair — memoized when caching is
    /// enabled, since the worst-violator pair is frequently reselected
    /// across consecutive iterations. Returns
    /// `(k_uu, k_ll, k_ul, sim_cost, alt_cost, evals)`, where `alt_cost`
    /// is the memo-hit cost (one cache lookup) — the infinite-cache
    /// what-if charge. Kernel values are pure functions of the pair
    /// indices, so memoized entries never go stale.
    #[allow(clippy::type_complexity)]
    fn pivot_triple(
        &mut self,
        sup: &PairSample,
        slow: &PairSample,
    ) -> (f64, f64, f64, f64, f64, u64) {
        let kind = self.kind;
        let compute = || {
            let (rup, rlow) = (sup.row(), slow.row());
            vec![
                kind.eval(rup, rup, sup.sq_norm, sup.sq_norm),
                kind.eval(rlow, rlow, slow.sq_norm, slow.sq_norm),
                kind.eval(rup, rlow, sup.sq_norm, slow.sq_norm),
            ]
        };
        if let Some(pc) = &mut self.pair_cache {
            // Packed-pair key, built in u64 so the shift is well-defined on
            // every platform; global indices fit u32 (sparse column ids
            // already impose that bound on the datasets we target). The
            // `as usize` is lossless on the 64-bit targets we build for —
            // a truncating platform would alias keys, hence the assert.
            const { assert!(usize::BITS >= 64, "pair memo needs 64-bit keys") };
            debug_assert!(sup.index <= u64::from(u32::MAX) && slow.index <= u64::from(u32::MAX));
            let key = ((sup.index << 32) | slow.index) as usize;
            let mut computed = false;
            let row = pc.get_or_compute(key, || {
                computed = true;
                compute()
            });
            if computed {
                (
                    row[0],
                    row[1],
                    row[2],
                    3.0 * self.charge.kernel_overhead,
                    self.charge.cache_lookup,
                    3,
                )
            } else {
                (
                    row[0],
                    row[1],
                    row[2],
                    self.charge.cache_lookup,
                    self.charge.cache_lookup,
                    0,
                )
            }
        } else {
            let v = compute();
            (
                v[0],
                v[1],
                v[2],
                3.0 * self.charge.kernel_overhead,
                self.charge.cache_lookup,
                3,
            )
        }
    }

    /// One optimization phase: iterate until `β_up + 2·phase_eps > β_low`
    /// on the active set (or the iteration cap).
    ///
    /// The loop is a software pipeline over the per-iteration candidate
    /// reduction. The fused γ-update/shrink sweep folds the *next*
    /// iteration's worst-violator candidates as it rewrites the
    /// gradients (the sweep **head**), posts one fused MINLOC+MAXLOC
    /// collective, then runs the shrink bookkeeping and the survivors
    /// reduction (the sweep **tail**) with that collective in flight;
    /// the only wait is the pivot decision at the top of the next
    /// iteration. The prologue scan seeds the pipeline, and every phase
    /// exit passes through the pivot decision, so no request is ever
    /// left outstanding. Value flow is identical to the unpipelined
    /// loop — the candidate fold is a total-order selection, so neither
    /// the fusion nor the initiation point can change what it returns.
    fn run_phase(
        &mut self,
        comm: &mut Comm,
        phase_eps: f64,
        shrink_enabled: bool,
    ) -> Result<PhaseEnd, CoreError> {
        let mut stall = 0u64;
        let (seed_up, seed_low) = self.local_candidates();
        let mut pending = self.post_candidates(comm, seed_up, seed_low);
        loop {
            let (up, low) = Self::take_candidates(comm, pending);
            self.last_betas = (up.value, low.value);
            self.maybe_checkpoint(comm);
            let gap = low.value - up.value;
            // Epoch telemetry: the global KKT violation, its windowed
            // slope, the convergence phase and the kernel row cache hit
            // rate, sampled on rank 0 so the merged registry carries each
            // series exactly once.
            if comm.rank() == 0 && self.iterations.is_multiple_of(metrics_epoch()) {
                if gap.is_finite() {
                    self.metrics.sample("kkt_gap", self.iterations, gap);
                }
                self.convergence.observe_gap(self.iterations, gap);
                if let Some(slope) = self.convergence.kkt_slope() {
                    self.metrics.sample("kkt_slope", self.iterations, slope);
                }
                self.metrics.sample(
                    "convergence_phase",
                    self.iterations,
                    self.convergence.phase().code(),
                );
                if let Some(rc) = &self.row_cache {
                    self.metrics.sample(
                        "kernel_cache_hit_rate",
                        self.iterations,
                        rc.stats().hit_rate(),
                    );
                }
            }
            // negated form on purpose: ±∞ candidates (empty scan sets) and
            // NaN must all terminate the phase
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(up.value + 2.0 * phase_eps <= low.value) {
                // covers empty scan sets too (±∞ candidates)
                return Ok(PhaseEnd {
                    converged: true,
                    gap,
                });
            }
            if self.iterations >= self.max_iter {
                return Ok(PhaseEnd {
                    converged: false,
                    gap,
                });
            }

            // Route the pair and solve the two-variable subproblem on every
            // rank identically (Eq. 6/7). The β values ride the broadcast
            // header; the sweep's shrink test reads them from the bundle.
            let ((bup, blow), sup, slow) = self.route_pair(
                comm,
                up.index as usize,
                low.index as usize,
                (up.value, low.value),
            );
            let (k_uu, k_ll, k_ul, triple_cost, triple_alt, triple_evals) =
                self.pivot_triple(&sup, &slow);
            let c_up = if sup.y > 0.0 { self.c_pos } else { self.c_neg };
            let c_lo = if slow.y > 0.0 { self.c_pos } else { self.c_neg };
            let sol = solve_pair_weighted(
                sup.y, slow.y, sup.alpha, slow.alpha, sup.gamma, slow.gamma, k_uu, k_ll, k_ul,
                c_up, c_lo, self.tau,
            );
            if sol.is_null() {
                stall += 1;
                if stall > self.stall_limit {
                    return Err(CoreError::Stalled {
                        at_iteration: self.iterations,
                    });
                }
            } else {
                stall = 0;
            }

            // Owners write back the new multipliers before the γ loop, so
            // the in-loop candidate scan sees updated set memberships
            // (Algorithm 2 lines 12–16).
            if self.part.owner(up.index as usize) == comm.rank() {
                self.alpha[up.index as usize - self.lo] = sol.alpha_up;
            }
            if self.part.owner(low.index as usize) == comm.rank() {
                self.alpha[low.index as usize - self.lo] = sol.alpha_low;
            }

            // γ update over the active span (Eq. 2), fused with the shrink
            // pass. Phase A acquires the two pivot kernel rows (cached, or
            // filled via the configured dot implementation, threaded);
            // phase B sweeps the gradient chunks over the pool. A zero
            // delta contributes an exact 0.0 and skips its kernel row, and
            // the full `cu·K_up + cl·K_low` expression is applied either
            // way — matching the pre-optimization loop bit-for-bit.
            let cu = sup.y * sol.delta_up;
            let cl = slow.y * sol.delta_low;
            let shrink_pass = shrink_enabled && self.shrink_countdown == Some(0);
            let m = self.active_list.len();
            let sweep_t0 = comm.clock();
            let mut sweep_cost = triple_cost;
            let mut sweep_alt = triple_alt;
            let mut evals = triple_evals;
            let row_up = if cu != 0.0 {
                let (r, cost, alt, ev) = self.acquire_pivot_row(up.index, sup.row(), sup.sq_norm);
                sweep_cost += cost;
                sweep_alt += alt;
                evals += ev;
                Some(r)
            } else {
                None
            };
            let row_low = if cl != 0.0 {
                let (r, cost, alt, ev) =
                    self.acquire_pivot_row(low.index, slow.row(), slow.sq_norm);
                sweep_cost += cost;
                sweep_alt += alt;
                evals += ev;
                Some(r)
            } else {
                None
            };

            let mut survivors = 0u64;
            let mut keep: Vec<usize> = Vec::new();
            let mut next_up = MinLoc::identity();
            let mut next_low = MaxLoc::identity();
            if m > 0 {
                let t = self.pool.nthreads().min(m).max(1);
                let mut pos_bounds: Vec<usize> =
                    (0..t).map(|w| static_block(0, m, w, t).0).collect();
                pos_bounds.push(m);
                // Gradient split positions at the chunk-leading active
                // samples: chunks own disjoint contiguous `grad` slices, and
                // every active position of chunk `w` falls inside slice `w`.
                let mut grad_bounds: Vec<usize> = pos_bounds[..t]
                    .iter()
                    .map(|&p| self.active_list[p] as usize)
                    .collect();
                grad_bounds.push(self.active_list[m - 1] as usize + 1);
                let (ds, lo, c_pos, c_neg) = (self.ds, self.lo, self.c_pos, self.c_neg);
                let (active_list, alpha) = (&self.active_list, &self.alpha);
                let row_up_s = row_up.as_deref().map(|v| v.as_slice());
                let row_low_s = row_low.as_deref().map(|v| v.as_slice());
                let parts =
                    self.pool
                        .parallel_parts(&mut self.grad, &grad_bounds, |w, off, gpart| {
                            let mut sp = SweepPart::default();
                            for pos in pos_bounds[w]..pos_bounds[w + 1] {
                                let li = active_list[pos] as usize;
                                let k_up = match row_up_s {
                                    Some(r) => r[pos],
                                    None => 0.0,
                                };
                                let k_low = match row_low_s {
                                    Some(r) => r[pos],
                                    None => 0.0,
                                };
                                let g = &mut gpart[li - off];
                                *g += cu * k_up + cl * k_low;
                                let y = ds.y[lo + li];
                                let ci = if y > 0.0 { c_pos } else { c_neg };
                                let a = alpha[li];
                                if shrink_pass {
                                    let set = classify(y, a, ci);
                                    let in_up_only = matches!(set, IndexSet::I1 | IndexSet::I2);
                                    let in_low_only = matches!(set, IndexSet::I3 | IndexSet::I4);
                                    if shrinkable(*g, in_up_only, in_low_only, bup, blow) {
                                        continue;
                                    }
                                    sp.survivors += 1;
                                    sp.keep_pos.push(pos as u32);
                                }
                                // Fused candidate fold: this position is in
                                // next iteration's scan span (it survived any
                                // shrink test above), and `*g` is exactly the
                                // gradient that scan would read.
                                let gidx = (lo + li) as u64;
                                if in_up_set(y, a, ci) {
                                    sp.cand_up = MinLoc::combine(
                                        sp.cand_up,
                                        MinLoc {
                                            value: *g,
                                            index: gidx,
                                        },
                                    );
                                }
                                if in_low_set(y, a, ci) {
                                    sp.cand_low = MaxLoc::combine(
                                        sp.cand_low,
                                        MaxLoc {
                                            value: *g,
                                            index: gidx,
                                        },
                                    );
                                }
                            }
                            sp
                        });
                for p in &parts {
                    survivors += p.survivors;
                    next_up = MinLoc::combine(next_up, p.cand_up);
                    next_low = MaxLoc::combine(next_low, p.cand_low);
                }
                if shrink_pass {
                    keep.reserve(survivors as usize);
                    for p in &parts {
                        keep.extend(p.keep_pos.iter().map(|&x| x as usize));
                    }
                }
            }
            self.trace.sum_active_local += m as u128;
            self.trace.kernel_evals += evals;
            // Head charge: identical clock arithmetic to advance_compute
            // (the hot-path byte-identity tests pin this), with the
            // always-hit alternative riding along for the PerfDoctor
            // infinite-cache projection.
            charge_sweep_head(comm, sweep_cost, sweep_alt);
            comm.trace_span("fused_sweep", "solver", sweep_t0, comm.clock());
            // The candidate payload is complete: launch next iteration's
            // fused reduction before the sweep tail, so the tail's
            // bookkeeping and survivors reduction run with it in flight.
            pending = self.post_candidates(comm, next_up, next_low);

            if shrink_pass {
                // Sweep tail: fold the surviving positions back into the
                // flags, compact the cached rows to the surviving span, and
                // rebuild the active list — all ordered, so independent of
                // chunking, and none of it gates the in-flight reduction.
                let mut ki = 0usize;
                for (pos, &li32) in self.active_list.iter().enumerate() {
                    if ki < keep.len() && keep[ki] == pos {
                        ki += 1;
                    } else {
                        self.active[li32 as usize] = false;
                    }
                }
                if keep.len() < m {
                    if let Some(rc) = &mut self.row_cache {
                        rc.resize_rows(&keep);
                    }
                    self.active_list = keep.iter().map(|&p| self.active_list[p]).collect();
                }
                let tail_t0 = comm.clock();
                charge_sweep_tail(comm, (m + keep.len()) as f64 * self.charge.fma_per_elem);
                comm.trace_span("sweep_tail", "solver", tail_t0, comm.clock());
                let global_active = comm.allreduce_u64_sum(survivors);
                self.shrink_countdown = Some(match self.subsequent {
                    SubsequentPolicy::ActiveSetSize => global_active.max(1),
                    SubsequentPolicy::SameAsInitial => self
                        .initial_threshold
                        .expect("shrink pass implies a threshold"),
                });
                self.trace
                    .active_curve
                    .push((self.iterations, global_active));
                // local counter (sums to the global shrink total on merge)
                self.metrics.inc("samples_shrunk", m as u64 - survivors);
                comm.trace_mark("shrink_pass", "solver");
                comm.trace_counter("active_set", global_active as f64);
                if comm.rank() == 0 {
                    self.metrics.inc("shrink_passes", 1);
                    self.metrics
                        .sample("active_set", self.iterations, global_active as f64);
                    self.convergence.observe_active(
                        self.iterations,
                        global_active as f64,
                        m as u64 - survivors,
                    );
                    if let Some(v) = self.convergence.shrink_velocity() {
                        self.metrics
                            .sample("active_shrink_velocity", self.iterations, v);
                    }
                }
            } else if shrink_enabled {
                if let Some(cd) = &mut self.shrink_countdown {
                    *cd = cd.saturating_sub(1);
                }
            }
            self.iterations += 1;
        }
    }

    /// Assemble the global model on every rank: allgather the SV blocks and
    /// agree on the bias.
    fn assemble_model(&self, comm: &mut Comm) -> Result<SvmModel, CoreError> {
        // bias: mean γ over I0, else bracket midpoint (§III).
        let tol = bound_tol(self.c());
        let mut sum = 0.0;
        let mut count = 0u64;
        // One-shot O(n_local) scan after convergence, outside the
        // per-iteration timing the makespan model charges. lint: uncharged
        for li in 0..self.local_n() {
            if classify(self.y(li), self.alpha[li], self.c_of(li)) == IndexSet::I0 {
                sum += self.grad[li];
                count += 1;
            }
        }
        let gsum = comm.allreduce_f64_sum(sum);
        let gcount = comm.allreduce_u64_sum(count);
        let bias = if gcount > 0 {
            gsum / gcount as f64
        } else {
            (self.last_betas.0 + self.last_betas.1) / 2.0
        };

        // SV gather: (global idx, coef, row) per local SV — the SV set is
        // small (ζ ≪ N), so allgatherv here is cheap and *not* the
        // full-dataset allgather the paper rejects for reconstruction.
        let mut block = Vec::new();
        for li in 0..self.local_n() {
            if self.alpha[li] > tol {
                self.gather(self.lo + li).encode(&mut block);
            }
        }
        let pieces = comm.allgatherv(&block);
        let mut b = shrinksvm_sparse::CsrBuilder::new(self.ds.x.ncols());
        let mut coef = Vec::new();
        for piece in pieces {
            let mut pos = 0;
            while pos < piece.len() {
                let s = PairSample::decode(&piece, &mut pos)
                    .ok_or_else(|| CoreError::ModelFormat("bad SV gather block".into()))?;
                coef.push(s.alpha * s.y);
                b.push_row(&s.cols, &s.vals)?;
            }
        }
        SvmModel::new(self.kind, b.finish(), coef, bias)
    }
}

/// Charge the head of the split sweep: pivot-triple evaluation, kernel
/// row acquisition and the γ-update chunks — everything that gates the
/// fused candidate payload. Exactly one classed clock addition, with the
/// always-hit (`warm_alt`) alternative feeding the PerfDoctor
/// infinite-cache projection. Named `charge_sweep_*` so the D3
/// charge-coverage lint recognizes the split sweep's two charge points.
fn charge_sweep_head(comm: &mut Comm, cost: f64, warm_alt: f64) {
    comm.advance_compute_classed(cost, "fused_sweep", Some(warm_alt));
}

/// Charge the tail of the split sweep: the shrink pass's keep-fold and
/// active-list compaction — work that does not gate the candidate
/// payload and therefore executes with the fused reduction in flight.
/// The kernel cache could not help it (no alternative cost).
fn charge_sweep_tail(comm: &mut Comm, cost: f64) {
    comm.advance_compute_classed(cost, "sweep_tail", None);
}

/// Run the distributed trainer on this rank. Every rank of the universe
/// must call this with the same `ds` and `cfg`.
pub fn train_rank(
    comm: &mut Comm,
    ds: &Dataset,
    cfg: &DistConfig,
) -> Result<RankOutput, CoreError> {
    cfg.params.validate()?;
    if ds.len() < 2 {
        return Err(CoreError::DegenerateProblem(format!(
            "{} samples",
            ds.len()
        )));
    }
    let (pos, neg) = ds.class_counts();
    if pos == 0 || neg == 0 {
        return Err(CoreError::DegenerateProblem(
            "all samples share one class".into(),
        ));
    }

    let eps = cfg.params.epsilon;
    let policy = cfg.params.shrink;
    let mut st = RankState::new(comm, ds, cfg);

    let end = if policy.is_none() {
        // Algorithm 2.
        st.run_phase(comm, eps, false)?
    } else {
        match policy.recon {
            ReconPolicy::Never => {
                // CA-SVM-style permanent elimination: converge the active
                // set and STOP — shrunk samples are never re-checked, so
                // the result may be inexact (the ablation the paper argues
                // against in §IV).
                st.run_phase(comm, eps, true)?
            }
            ReconPolicy::Single => {
                // Algorithm 4: converge active set, reconstruct once,
                // δ_c ← ∞, converge exactly. A resume at stage 1 is past
                // the reconstruction and re-enters the exact phase
                // directly.
                if st.stage >= 1 {
                    st.run_phase(comm, eps, false)?
                } else {
                    let first = st.run_phase(comm, eps, true)?;
                    if !first.converged {
                        first
                    } else {
                        recon::reconstruct(&mut st, comm);
                        st.stage = 1;
                        st.run_phase(comm, eps, false)?
                    }
                }
            }
            ReconPolicy::Multi => {
                // Algorithm 5: 20ε phase, reconstruct, then 2ε/reconstruct
                // rounds until optimality survives a reconstruction. A
                // resume at stage 1 re-enters the reconstruction loop;
                // reconstruction recomputes γ from the (restored) α, so
                // re-running it after a restore is safe.
                let coarse = if st.stage == 0 {
                    Some(st.run_phase(comm, 10.0 * eps, true)?)
                } else {
                    None
                };
                match coarse {
                    Some(c) if !c.converged => c,
                    _ => {
                        st.stage = 1;
                        loop {
                            recon::reconstruct(&mut st, comm);
                            let before = st.iterations;
                            let end = st.run_phase(comm, eps, true)?;
                            if !end.converged || st.iterations == before {
                                // either out of budget, or the reconstructed
                                // problem was already optimal — done.
                                break end;
                            }
                        }
                    }
                }
            }
        }
    };

    let model = st.assemble_model(comm)?;
    st.trace.iterations = st.iterations;
    // Hot-path accounting: per-rank cache counters (they sum to global
    // totals on merge) and this rank's thread-pool utilization.
    if let Some(rc) = &st.row_cache {
        let cs = rc.stats();
        st.metrics.inc("kernel_cache_hits", cs.hits);
        st.metrics.inc("kernel_cache_misses", cs.misses);
        st.metrics.inc("kernel_cache_insertions", cs.insertions);
        st.metrics.inc("kernel_cache_evictions", cs.evictions);
        if comm.rank() == 0 {
            st.metrics
                .set_gauge("kernel_cache_hit_rate_final", cs.hit_rate());
        }
    }
    if comm.rank() == 0 {
        let pool_metrics = st.pool.stats().to_metrics().namespaced("pool");
        st.metrics.merge(&pool_metrics);
        st.metrics.set_gauge("final_gap", end.gap.max(0.0));
        st.metrics.set_gauge("iterations", st.iterations as f64);
    }
    Ok(RankOutput {
        model,
        iterations: st.iterations,
        converged: end.converged,
        final_gap: end.gap.max(0.0),
        trace: st.trace,
        recon_sim_time: st.recon_sim_time,
        metrics: st.metrics,
    })
}
