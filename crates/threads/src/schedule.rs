//! Loop scheduling policies, mirroring OpenMP's `schedule(static|dynamic)`.

/// How a `parallel for` divides its iteration space among workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Contiguous blocks, one per worker — best cache locality; the default,
    /// as in OpenMP.
    #[default]
    Static,
    /// Workers repeatedly grab `chunk` iterations from a shared counter —
    /// better load balance for irregular bodies (e.g. rows with very
    /// different numbers of non-zeros).
    Dynamic {
        /// Iterations taken per grab; must be ≥ 1.
        chunk: usize,
    },
}

impl Schedule {
    /// Dynamic scheduling with a sane default chunk.
    pub fn dynamic() -> Self {
        Schedule::Dynamic { chunk: 64 }
    }
}

/// The static block `[lo, hi)` of worker `w` out of `t` over `n` items
/// starting at `start`. Blocks differ in size by at most one item and
/// exactly cover the range.
#[inline]
pub fn static_block(start: usize, n: usize, w: usize, t: usize) -> (usize, usize) {
    debug_assert!(w < t);
    (start + w * n / t, start + (w + 1) * n / t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_blocks_partition_exactly() {
        for n in [0usize, 1, 7, 64, 1000] {
            for t in [1usize, 2, 3, 7, 16] {
                let mut covered = 0usize;
                let mut prev_hi = 10;
                for w in 0..t {
                    let (lo, hi) = static_block(10, n, w, t);
                    assert!(lo <= hi);
                    assert_eq!(lo, prev_hi, "blocks must be contiguous");
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n);
                assert_eq!(prev_hi, 10 + n);
            }
        }
    }

    #[test]
    fn static_blocks_are_balanced() {
        let t = 7;
        let n = 100;
        let sizes: Vec<usize> = (0..t)
            .map(|w| {
                let (lo, hi) = static_block(0, n, w, t);
                hi - lo
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn default_is_static() {
        assert_eq!(Schedule::default(), Schedule::Static);
    }
}
