//! An OpenMP-analog shared-memory runtime.
//!
//! The paper enhances libsvm with OpenMP `parallel for` loops over the
//! gradient-update and kernel-row computations (§V-A) and uses that as the
//! single-node baseline. This crate is our from-scratch equivalent: a small
//! fork-join runtime offering `parallel for` with *static* and *dynamic*
//! scheduling and a map-reduce primitive, built directly on
//! [`std::thread::scope`] so borrowed data can be captured exactly like an
//! OpenMP region captures its enclosing scope.
//!
//! The pool is deliberately simple — no work stealing, no persistent
//! workers — because the consumers are long, regular loops (one gradient
//! update per sample) where chunked static scheduling is what OpenMP would
//! pick too, and because spawn overhead (~10 µs/thread) is negligible
//! against the millisecond-scale loop bodies it parallelizes.

pub mod pool;
pub mod schedule;
pub mod stats;

pub use pool::ThreadPool;
pub use schedule::Schedule;
pub use stats::PoolStats;
