//! Lightweight counters for pool activity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated across every parallel region run by one pool.
/// All methods are thread-safe; reads are `Relaxed` snapshots.
#[derive(Debug, Default)]
pub struct PoolStats {
    regions: AtomicU64,
    items: AtomicU64,
    sequential_fallbacks: AtomicU64,
}

impl PoolStats {
    pub(crate) fn record_region(&self, items: usize, sequential: bool) {
        // relaxed: independent event counters; nothing orders against them
        self.regions.fetch_add(1, Ordering::Relaxed);
        // relaxed: see above
        self.items.fetch_add(items as u64, Ordering::Relaxed);
        if sequential {
            // relaxed: see above
            self.sequential_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Parallel regions entered (`parallel_for` / `parallel_reduce` calls).
    pub fn regions(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.regions.load(Ordering::Relaxed)
    }

    /// Total loop iterations dispatched.
    pub fn items(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.items.load(Ordering::Relaxed)
    }

    /// Regions executed inline because there was ≤ 1 worker or ≤ 1 item.
    pub fn sequential_fallbacks(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.sequential_fallbacks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PoolStats::default();
        s.record_region(10, false);
        s.record_region(5, true);
        assert_eq!(s.regions(), 2);
        assert_eq!(s.items(), 15);
        assert_eq!(s.sequential_fallbacks(), 1);
    }
}
