//! Lightweight counters for pool activity.

use std::sync::atomic::{AtomicU64, Ordering};

use shrinksvm_obs::MetricsRegistry;

/// Counters accumulated across every parallel region run by one pool.
/// All methods are thread-safe; reads are `Relaxed` snapshots.
#[derive(Debug, Default)]
pub struct PoolStats {
    regions: AtomicU64,
    items: AtomicU64,
    sequential_fallbacks: AtomicU64,
    /// Items dispatched to each worker slot (slot 0 also absorbs
    /// sequential fallbacks). Length = pool width.
    worker_items: Vec<AtomicU64>,
}

impl PoolStats {
    pub(crate) fn new(nthreads: usize) -> Self {
        PoolStats {
            regions: AtomicU64::new(0),
            items: AtomicU64::new(0),
            sequential_fallbacks: AtomicU64::new(0),
            worker_items: (0..nthreads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record_region(&self, items: usize, sequential: bool) {
        // relaxed: independent event counters; nothing orders against them
        self.regions.fetch_add(1, Ordering::Relaxed);
        // relaxed: see above
        self.items.fetch_add(items as u64, Ordering::Relaxed);
        if sequential {
            // relaxed: see above
            self.sequential_fallbacks.fetch_add(1, Ordering::Relaxed);
            self.record_worker(0, items);
        }
    }

    pub(crate) fn record_worker(&self, w: usize, items: usize) {
        if let Some(slot) = self.worker_items.get(w) {
            // relaxed: independent event counter; nothing orders against it
            slot.fetch_add(items as u64, Ordering::Relaxed);
        }
    }

    /// Parallel regions entered (`parallel_for` / `parallel_reduce` calls).
    pub fn regions(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.regions.load(Ordering::Relaxed)
    }

    /// Total loop iterations dispatched.
    pub fn items(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.items.load(Ordering::Relaxed)
    }

    /// Regions executed inline because there was ≤ 1 worker or ≤ 1 item.
    pub fn sequential_fallbacks(&self) -> u64 {
        // relaxed: monotonic counter probe; approximate reads are fine
        self.sequential_fallbacks.load(Ordering::Relaxed)
    }

    /// Items dispatched per worker slot (slot 0 includes sequential
    /// fallbacks). Static schedules balance these; dynamic schedules show
    /// the actual claim distribution.
    pub fn worker_items(&self) -> Vec<u64> {
        self.worker_items
            .iter()
            // relaxed: monotonic counter probe; approximate reads are fine
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot the counters into a metrics registry: totals as counters,
    /// per-worker dispatch shares as `worker<w>.items` /
    /// `worker<w>.busy_share` gauges (share of all dispatched items, so a
    /// perfectly balanced pool of `t` workers reads `1/t` everywhere and
    /// idle workers read `0`).
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc("regions", self.regions());
        m.inc("items", self.items());
        m.inc("sequential_fallbacks", self.sequential_fallbacks());
        let per = self.worker_items();
        let total: u64 = per.iter().sum();
        for (w, &items) in per.iter().enumerate() {
            m.set_gauge(&format!("worker{w}.items"), items as f64);
            if total > 0 {
                m.set_gauge(
                    &format!("worker{w}.busy_share"),
                    items as f64 / total as f64,
                );
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = PoolStats::new(2);
        s.record_region(10, false);
        s.record_region(5, true);
        assert_eq!(s.regions(), 2);
        assert_eq!(s.items(), 15);
        assert_eq!(s.sequential_fallbacks(), 1);
        // the sequential fallback was absorbed by worker slot 0
        assert_eq!(s.worker_items(), vec![5, 0]);
    }

    #[test]
    fn metrics_export_reports_busy_shares() {
        let s = PoolStats::new(2);
        s.record_region(12, false);
        s.record_worker(0, 9);
        s.record_worker(1, 3);
        let m = s.to_metrics();
        assert_eq!(m.counter("regions"), 1);
        assert_eq!(m.counter("items"), 12);
        assert_eq!(m.gauge("worker0.items"), Some(9.0));
        assert_eq!(m.gauge("worker0.busy_share"), Some(0.75));
        assert_eq!(m.gauge("worker1.busy_share"), Some(0.25));
    }
}
