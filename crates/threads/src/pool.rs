//! The fork-join pool.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::schedule::{static_block, Schedule};
use crate::stats::PoolStats;

/// A fork-join thread pool with OpenMP-like semantics.
///
/// Each parallel region spawns (scoped) workers, so closures may borrow from
/// the caller's stack freely — the same capture model as an OpenMP
/// `parallel for`. With one worker every region runs inline, which keeps
/// single-threaded runs deterministic and overhead-free.
#[derive(Debug)]
pub struct ThreadPool {
    nthreads: usize,
    schedule: Schedule,
    stats: PoolStats,
}

impl ThreadPool {
    /// A pool with `nthreads` workers (clamped to ≥ 1) and static scheduling.
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        ThreadPool {
            nthreads,
            schedule: Schedule::Static,
            stats: PoolStats::new(nthreads),
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn with_available_parallelism() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    }

    /// Override the scheduling policy.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        if let Schedule::Dynamic { chunk } = schedule {
            assert!(chunk >= 1, "dynamic chunk must be >= 1");
        }
        self.schedule = schedule;
        self
    }

    /// Worker count.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Activity counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// `for i in range { f(i) }`, parallelized.
    pub fn parallel_for<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        let t = self.nthreads.min(n);
        if t <= 1 {
            self.stats.record_region(n, true);
            for i in range {
                f(i);
            }
            return;
        }
        self.stats.record_region(n, false);
        match self.schedule {
            Schedule::Static => std::thread::scope(|s| {
                for w in 0..t {
                    let f = &f;
                    let (lo, hi) = static_block(range.start, n, w, t);
                    self.stats.record_worker(w, hi - lo);
                    s.spawn(move || {
                        for i in lo..hi {
                            f(i);
                        }
                    });
                }
            }),
            Schedule::Dynamic { chunk } => {
                let counter = AtomicUsize::new(range.start);
                let end = range.end;
                std::thread::scope(|s| {
                    for w in 0..t {
                        let f = &f;
                        let counter = &counter;
                        let stats = &self.stats;
                        s.spawn(move || loop {
                            // relaxed: fetch_add is a total-order RMW on this one
                            // counter; the scope join publishes f's effects
                            let lo = counter.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= end {
                                break;
                            }
                            let hi = (lo + chunk).min(end);
                            stats.record_worker(w, hi - lo);
                            for i in lo..hi {
                                f(i);
                            }
                        });
                    }
                });
            }
        }
    }

    /// Partition `data` into one contiguous chunk per worker and run
    /// `f(global_offset, chunk)` on each — the safe way to *mutate* a slice
    /// in parallel (each worker owns its chunk exclusively).
    pub fn parallel_for_slices<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        let t = self.nthreads.min(n);
        if t <= 1 {
            self.stats.record_region(n, true);
            f(0, data);
            return;
        }
        self.stats.record_region(n, false);
        std::thread::scope(|s| {
            let mut rest = data;
            let mut offset = 0usize;
            for w in 0..t {
                let (lo, hi) = static_block(0, n, w, t);
                let (chunk, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let f = &f;
                let off = offset;
                offset += chunk.len();
                self.stats.record_worker(w, chunk.len());
                s.spawn(move || f(off, chunk));
            }
        });
    }

    /// Run one closure per caller-defined part of `data`, in parallel, and
    /// return the per-part results **in part order**.
    ///
    /// `bounds` are ascending split positions into `data`: part `w` is
    /// `data[bounds[w]..bounds[w + 1]]`, so `bounds.len() - 1` parts run.
    /// Elements outside `[bounds[0], bounds[last])` are not handed to any
    /// part. The closure receives `(part_index, offset_of_part_in_data,
    /// part)` and its return values are collected into a `Vec` indexed by
    /// part.
    ///
    /// This is the deterministic-merge building block for fused sweeps: the
    /// caller fixes the partition (e.g. equal shares of the *active* rows,
    /// cut back to raw-index space), every part mutates only its own
    /// sub-slice, and the caller folds the returned partials left-to-right.
    /// Because the fold order is the part order — not completion order —
    /// results are independent of thread scheduling; and when the per-part
    /// partials are themselves partition-independent under the caller's
    /// merge (positionwise writes, integer sums, total-order min/max), the
    /// final result is bit-identical at every thread count.
    ///
    /// # Panics
    /// If `bounds` is empty, not ascending, or exceeds `data.len()`.
    pub fn parallel_parts<T, R, F>(&self, data: &mut [T], bounds: &[usize], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, usize, &mut [T]) -> R + Sync,
    {
        assert!(!bounds.is_empty(), "bounds must list at least one position");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be ascending"
        );
        assert!(
            bounds[bounds.len() - 1] <= data.len(),
            "bounds exceed data length"
        );
        let parts = bounds.len() - 1;
        let covered = bounds[parts] - bounds[0];
        if parts == 0 {
            self.stats.record_region(0, true);
            return Vec::new();
        }
        if self.nthreads <= 1 || parts <= 1 {
            self.stats.record_region(covered, true);
            return (0..parts)
                .map(|w| {
                    let (lo, hi) = (bounds[w], bounds[w + 1]);
                    f(w, lo, &mut data[lo..hi])
                })
                .collect();
        }
        self.stats.record_region(covered, false);
        let mut results: Vec<Option<R>> = (0..parts).map(|_| None).collect();
        std::thread::scope(|s| {
            // Walk the slice once, splitting off each part; parts own
            // disjoint sub-slices so they may run (and mutate) concurrently.
            let mut rest = &mut data[bounds[0]..bounds[parts]];
            let mut consumed = bounds[0];
            for (w, slot) in results.iter_mut().enumerate() {
                let len = bounds[w + 1] - bounds[w];
                let (part, tail) = rest.split_at_mut(len);
                rest = tail;
                let off = consumed;
                consumed += len;
                let f = &f;
                self.stats.record_worker(w % self.nthreads, len);
                s.spawn(move || {
                    *slot = Some(f(w, off, part));
                });
            }
        });
        // Every slot is Some: the scope joins all spawned threads before
        // returning, and a part panic propagates out of the scope.
        let collected: Vec<R> = results.into_iter().flatten().collect();
        debug_assert_eq!(collected.len(), parts, "every part completes");
        collected
    }

    /// Map-reduce over an index range: each worker folds its share into a
    /// fresh accumulator from `init`, and the per-worker results are combined
    /// left-to-right (worker order) with `combine` — deterministic for
    /// commutative *or* merely associative operations.
    pub fn parallel_reduce<T, I, F, C>(
        &self,
        range: Range<usize>,
        init: I,
        fold: F,
        combine: C,
    ) -> T
    where
        T: Send,
        I: Fn() -> T + Sync,
        F: Fn(&mut T, usize) + Sync,
        C: Fn(T, T) -> T,
    {
        let n = range.end.saturating_sub(range.start);
        let t = self.nthreads.min(n);
        if t <= 1 {
            self.stats.record_region(n, true);
            let mut acc = init();
            for i in range {
                fold(&mut acc, i);
            }
            return acc;
        }
        self.stats.record_region(n, false);
        let mut partials: Vec<Option<T>> = (0..t).map(|_| None).collect();
        std::thread::scope(|s| {
            for (w, slot) in partials.iter_mut().enumerate() {
                let init = &init;
                let fold = &fold;
                let (lo, hi) = static_block(range.start, n, w, t);
                self.stats.record_worker(w, hi - lo);
                s.spawn(move || {
                    let mut acc = init();
                    for i in lo..hi {
                        fold(&mut acc, i);
                    }
                    *slot = Some(acc);
                });
            }
        });
        let mut iter = partials.into_iter().map(|p| p.expect("worker completed"));
        let first = iter.next().expect("at least one worker");
        iter.fold(first, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        for nthreads in [1, 2, 4] {
            for sched in [Schedule::Static, Schedule::Dynamic { chunk: 3 }] {
                let pool = ThreadPool::new(nthreads).with_schedule(sched);
                let n = 101;
                let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
                pool.parallel_for(0..n, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn dynamic_schedule_exactly_once_under_contention() {
        // Hammer the work-stealing counter: far more threads than cores,
        // chunk size 1 (every index is a separate claim), and an offset
        // range. Every index must be visited exactly once — the contended
        // fetch_add must neither skip nor duplicate work.
        let n = 10_000;
        let offset = 1_000;
        for chunk in [1, 2, 7] {
            let pool = ThreadPool::new(32).with_schedule(Schedule::Dynamic { chunk });
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.parallel_for(offset..offset + n, |i| {
                hits[i - offset].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                let c = h.load(Ordering::Relaxed);
                assert_eq!(
                    c,
                    1,
                    "chunk={chunk}: index {} visited {c} times",
                    i + offset
                );
            }
        }
    }

    #[test]
    fn parallel_for_empty_range_is_noop() {
        let pool = ThreadPool::new(4);
        pool.parallel_for(5..5, |_| panic!("must not run"));
    }

    #[test]
    fn parallel_for_offset_range() {
        let pool = ThreadPool::new(3);
        let sum = AtomicU64::new(0);
        pool.parallel_for(10..20, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (10..20u64).sum());
    }

    #[test]
    fn slices_partition_disjointly() {
        for nthreads in [1, 2, 5] {
            let pool = ThreadPool::new(nthreads);
            let mut data = vec![0u64; 97];
            pool.parallel_for_slices(&mut data, |off, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = (off + k) as u64;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u64);
            }
        }
    }

    #[test]
    fn reduce_matches_sequential() {
        for nthreads in [1, 2, 4, 9] {
            let pool = ThreadPool::new(nthreads);
            let total = pool.parallel_reduce(
                0..1000usize,
                || 0u64,
                |acc, i| *acc += i as u64,
                |a, b| a + b,
            );
            assert_eq!(total, (0..1000u64).sum());
        }
    }

    #[test]
    fn reduce_min_with_index_is_deterministic() {
        let data: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let pool = ThreadPool::new(4);
        let seq = data
            .iter()
            .enumerate()
            .fold((f64::INFINITY, usize::MAX), |best, (i, &v)| {
                if v < best.0 {
                    (v, i)
                } else {
                    best
                }
            });
        let par = pool.parallel_reduce(
            0..data.len(),
            || (f64::INFINITY, usize::MAX),
            |acc, i| {
                if data[i] < acc.0 {
                    *acc = (data[i], i);
                }
            },
            |a, b| {
                if b.0 < a.0 {
                    b
                } else {
                    a
                }
            },
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn parts_respect_bounds_and_order() {
        for nthreads in [1, 2, 4] {
            let pool = ThreadPool::new(nthreads);
            let mut data = vec![0u64; 20];
            // Three uneven parts over [2, 17); ends untouched.
            let bounds = [2usize, 5, 11, 17];
            let sums = pool.parallel_parts(&mut data, &bounds, |w, off, part| {
                for (k, v) in part.iter_mut().enumerate() {
                    *v = (off + k) as u64 * 10 + w as u64;
                }
                part.iter().sum::<u64>()
            });
            assert_eq!(sums.len(), 3);
            // Results arrive in part order regardless of completion order.
            for (w, s) in sums.iter().enumerate() {
                let (lo, hi) = (bounds[w], bounds[w + 1]);
                let expect: u64 = (lo..hi).map(|i| i as u64 * 10 + w as u64).sum();
                assert_eq!(*s, expect, "nthreads={nthreads} part {w}");
            }
            assert_eq!(data[0], 0);
            assert_eq!(data[1], 0);
            assert_eq!(data[17], 0);
            assert_eq!(data[5], 51);
        }
    }

    #[test]
    fn parts_results_identical_across_thread_counts() {
        let run = |nthreads: usize| -> (Vec<u64>, Vec<u64>) {
            let pool = ThreadPool::new(nthreads);
            let mut data: Vec<u64> = (0..50).collect();
            let bounds = [0usize, 13, 26, 39, 50];
            let partials = pool.parallel_parts(&mut data, &bounds, |_, _, part| {
                for v in part.iter_mut() {
                    *v = *v * *v;
                }
                part.iter().sum::<u64>()
            });
            (data, partials)
        };
        let base = run(1);
        assert_eq!(run(2), base);
        assert_eq!(run(8), base);
    }

    #[test]
    fn parts_empty_part_allowed() {
        let pool = ThreadPool::new(4);
        let mut data = vec![1u64; 6];
        let lens = pool.parallel_parts(&mut data, &[0, 3, 3, 6], |_, _, p| p.len());
        assert_eq!(lens, vec![3, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn parts_reject_descending_bounds() {
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 4];
        pool.parallel_parts(&mut data, &[3, 1], |_, _, _| ());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.nthreads(), 1);
        let hits: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
        pool.parallel_for(0..4, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stats_track_regions() {
        let pool = ThreadPool::new(2);
        pool.parallel_for(0..10, |_| {});
        pool.parallel_for(0..0, |_| {});
        assert_eq!(pool.stats().regions(), 2);
        assert_eq!(pool.stats().items(), 10);
        assert_eq!(pool.stats().sequential_fallbacks(), 1);
    }

    #[test]
    fn single_item_runs_inline() {
        let pool = ThreadPool::new(8);
        let tid = std::thread::current().id();
        pool.parallel_for(0..1, |_| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }
}
