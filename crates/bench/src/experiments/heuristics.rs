//! The full Table-II ablation (§V-D2's "lessons learned"): every heuristic
//! on representative datasets, reporting iterations, work saved,
//! reconstruction count and modeled time.

use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::PaperDataset;

use crate::report::{f, secs, Table};
use crate::runner::{capture, projected_time, write_bench_report, Ctx};

/// Run all 13 configurations on a dataset and emit a comparison table.
pub fn ablation(ctx: &Ctx, which: PaperDataset, stem: &str, p_model: usize) {
    let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
    println!("[{stem}] dataset: {}", data.train.summary());
    let mut t = Table::new(
        format!(
            "Heuristic ablation — {} (modeled time at {p_model} procs)",
            data.name
        ),
        &[
            "name",
            "class",
            "iters",
            "work saved %",
            "recons",
            "modeled time",
            "vs Original",
        ],
    );
    let mut original_time = None;
    let mut best: Option<(String, f64, crate::runner::Captured)> = None;
    let mut worst: Option<(String, f64)> = None;
    for policy in ShrinkPolicy::table2() {
        let cap = capture(ctx, &data, policy, 2);
        let time = projected_time(ctx, &data, &cap, p_model);
        if policy.is_none() {
            original_time = Some(time);
        }
        let ratio = original_time.map(|o| o / time).unwrap_or(1.0);
        match &mut worst {
            Some((_, wt)) if time <= *wt => {}
            _ => worst = Some((policy.name(), time)),
        }
        t.row(vec![
            policy.name(),
            policy.class().to_string(),
            format!("{}", cap.run.iterations),
            f(cap.run.trace.work_saved() * 100.0),
            format!("{}", cap.run.trace.recon_events.len()),
            secs(time),
            f(ratio),
        ]);
        match &best {
            Some((_, bt, _)) if time >= *bt => {}
            _ => best = Some((policy.name(), time, cap)),
        }
    }
    let (bn, bt, bcap) = best.unwrap();
    let (wn, _) = worst.unwrap();
    t.note(format!("fastest: {bn}; slowest: {wn} (paper §V-D2: Multi5pc best, Single50pc worst)"));
    t.emit(&ctx.out_dir, stem).unwrap();
    // machine-readable run report for the winning policy
    write_bench_report(ctx, stem, &bcap, Some(bt), original_time);
}

/// The §V-D2 ablation on two representative datasets.
pub fn run(ctx: &Ctx) {
    ablation(ctx, PaperDataset::Higgs, "heuristics_higgs", 64);
    ablation(ctx, PaperDataset::Forest, "heuristics_forest", 64);
}
