//! Design-choice ablations beyond the paper's headline tables:
//!
//! * `casvm` — what happens if eliminated samples are never reconstructed
//!   (permanent elimination, the CA-SVM-style design §IV argues against):
//!   accuracy may drift from the exact solver.
//! * `subsequent` — §IV-A2's two options for the *subsequent* shrinking
//!   threshold: active-set size (Algorithm 4's adaptive choice) vs
//!   re-using the initial threshold.
//! * `network` — sensitivity of the projected scaling to the interconnect
//!   (InfiniBand-FDR-like vs 10 GbE-like parameters).

use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::metrics::accuracy;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::perfmodel::MachineModel;
use shrinksvm_core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy, SubsequentPolicy};
use shrinksvm_core::smo::SmoSolver;
use shrinksvm_datagen::PaperDataset;
use shrinksvm_mpisim::CostParams;

use crate::report::{f, secs, Table};
use crate::runner::{capture, mean_row_bytes, Ctx};

/// Permanent elimination vs reconstructed shrinking vs exact baseline.
pub fn casvm(ctx: &Ctx) {
    let mut t = Table::new(
        "Ablation — permanent elimination (CA-SVM-style) vs gradient reconstruction",
        &[
            "Name",
            "exact acc%",
            "Multi5pc acc%",
            "Permanent5pc acc%",
            "perm work saved%",
            "perm gap ok",
        ],
    );
    for which in [
        PaperDataset::Adult9,
        PaperDataset::Mnist,
        PaperDataset::CodRna,
        PaperDataset::W7a,
        PaperDataset::Usps,
    ] {
        let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
        let test = data.test.as_ref().expect("dataset has a test split");
        let params = SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq));
        let exact = SmoSolver::new(&data.train, params).train().expect("exact baseline");
        let multi = capture(ctx, &data, ShrinkPolicy::best(), 2);
        let perm = capture(
            ctx,
            &data,
            ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Never),
            2,
        );
        // did the permanent run actually satisfy global optimality?
        let gap_ok = perm.run.trace.final_gap <= 2e-3 + 1e-12 && {
            // the reported gap is only over the surviving active set; a
            // fair exactness check compares iteration counts with Multi
            perm.run.iterations == multi.run.iterations
        };
        t.row(vec![
            data.name.to_string(),
            f(accuracy(&exact.model, test) * 100.0),
            f(multi.test_accuracy.unwrap() * 100.0),
            f(perm.test_accuracy.unwrap() * 100.0),
            f(perm.run.trace.work_saved() * 100.0),
            if gap_ok { "yes".into() } else { "NO (inexact)".into() },
        ]);
    }
    t.note("Multi5pc always matches the exact accuracy (paper's claim); Permanent may not — and even when accuracy survives, the returned solution skipped the global optimality proof");
    t.emit(&ctx.out_dir, "ablation_casvm").unwrap();
}

/// Subsequent-threshold policy ablation (§IV-A2).
pub fn subsequent(ctx: &Ctx) {
    let mut t = Table::new(
        "Ablation — subsequent shrinking threshold (§IV-A2)",
        &["Name", "policy", "iters", "work saved%", "shrink passes", "recons"],
    );
    for which in [PaperDataset::Higgs, PaperDataset::Forest] {
        let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
        for (label, sub) in [
            ("active-set size", SubsequentPolicy::ActiveSetSize),
            ("same as initial", SubsequentPolicy::SameAsInitial),
        ] {
            let mut policy = ShrinkPolicy::best();
            policy.subsequent = sub;
            let cap = capture(ctx, &data, policy, 2);
            t.row(vec![
                data.name.to_string(),
                label.to_string(),
                format!("{}", cap.run.iterations),
                f(cap.run.trace.work_saved() * 100.0),
                format!("{}", cap.run.trace.active_curve.len()),
                format!("{}", cap.run.trace.recon_events.len()),
            ]);
        }
    }
    t.note("the paper's adaptive choice (active-set size) spaces passes so every active sample is revisited between passes");
    t.emit(&ctx.out_dir, "ablation_subsequent").unwrap();
}

/// Interconnect sensitivity of the projected scaling.
pub fn network(ctx: &Ctx) {
    let data = PaperDataset::Higgs.generate(ctx.scale);
    ctx.recalibrate(&data);
    let cap = capture(ctx, &data, ShrinkPolicy::best(), 4);
    let row_bytes = mean_row_bytes(&data);
    let mut t = Table::new(
        "Ablation — interconnect sensitivity (modeled time, Multi5pc on HIGGS analog)",
        &["procs", "FDR-like", "10GbE-like", "slowdown"],
    );
    let fdr = MachineModel { net: CostParams::fdr(), ..ctx.model() };
    let eth = MachineModel { net: CostParams::ethernet_10g(), ..ctx.model() };
    for p in [16usize, 64, 256, 1024, 4096] {
        let a = fdr.project(&cap.run.trace, p, row_bytes).total();
        let b = eth.project(&cap.run.trace, p, row_bytes).total();
        t.row(vec![format!("{p}"), secs(a), secs(b), f(b / a)]);
    }
    t.note("the latency-bound Allreduce per iteration makes slow networks dominate at scale — why the paper dismisses MLlib's TCP/IP transport (§V-A1)");
    t.emit(&ctx.out_dir, "ablation_network").unwrap();
}

/// All ablations.
pub fn run(ctx: &Ctx) {
    casvm(ctx);
    subsequent(ctx);
    network(ctx);
}
