//! Figures 3–8: the scaling studies and the reconstruction-cost analysis.

use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::{PaperData, PaperDataset};

use crate::report::{f, secs, Table};
use crate::runner::{
    capture, projected_recon_fraction, projected_time, run_baseline, Captured, Ctx, PAPER_P_GRID,
    VALIDATE_P,
};

/// Ranks used for the real threaded capture run (the trace is identical at
/// any p — the trajectory is bit-reproducible — so one capture serves all
/// projections).
const CAPTURE_P: usize = 4;

/// One scaling figure: modeled speedups of Default / Shrinking(Worst) /
/// Shrinking(Best) over the paper's process grid, plus a real-execution
/// validation block at small p.
pub fn scaling_figure(ctx: &Ctx, which: PaperDataset, stem: &str, title: &str, p_max: usize) {
    let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
    println!("[{stem}] dataset: {}", data.train.summary());
    let baseline = run_baseline(ctx, &data);
    println!(
        "[{stem}] baseline: libsvm-seq {} ({} iters), libsvm-enhanced-16 modeled {}",
        secs(baseline.t_seq),
        baseline.iterations,
        secs(baseline.t_enhanced16),
    );

    let caps: Vec<Captured> = [ShrinkPolicy::none(), ShrinkPolicy::worst(), ShrinkPolicy::best()]
        .into_iter()
        .map(|pol| capture(ctx, &data, pol, CAPTURE_P))
        .collect();
    for c in &caps {
        println!(
            "[{stem}] {}: {} iters, work saved {:.1}%, {} recon(s)",
            c.policy.name(),
            c.run.iterations,
            c.run.trace.work_saved() * 100.0,
            c.run.trace.recon_events.len()
        );
    }

    let mut t = Table::new(
        title,
        &[
            "procs",
            "Default (x)",
            "Shrink-Worst (x)",
            "Shrink-Best (x)",
            "Best/Default",
        ],
    );
    for &p in PAPER_P_GRID.iter().filter(|&&p| p <= p_max) {
        let times: Vec<f64> = caps.iter().map(|c| projected_time(ctx, &data, c, p)).collect();
        t.row(vec![
            format!("{p}"),
            f(baseline.t_enhanced16 / times[0]),
            f(baseline.t_enhanced16 / times[1]),
            f(baseline.t_enhanced16 / times[2]),
            f(times[0] / times[2]),
        ]);
    }
    t.note("bars are speedup over the modeled 16-thread libsvm-enhanced baseline (paper's y-axis)");
    t.note(format!(
        "scaled analog ({} samples vs paper's {}); saturation sets in earlier than the paper's axis",
        data.train.len(),
        data.paper_train_size
    ));
    t.emit(&ctx.out_dir, stem).unwrap();

    validation_block(ctx, &data, stem);
}

/// Real-execution validation: run Default and Best at small thread-rank
/// counts and show simulated makespans plus result equality.
fn validation_block(ctx: &Ctx, data: &PaperData, stem: &str) {
    let mut t = Table::new(
        format!("{stem} — validation (really executed threaded ranks)"),
        &["procs", "policy", "iters", "sim time", "bias", "Best/Default"],
    );
    let mut reference: Option<(u64, f64)> = None;
    let mut ratios: Vec<f64> = Vec::new();
    for &p in VALIDATE_P {
        let mut default_time = 0.0;
        for policy in [ShrinkPolicy::none(), ShrinkPolicy::best()] {
            let cap = capture(ctx, data, policy, p);
            let ratio_cell = if policy.is_none() {
                default_time = cap.run.makespan;
                match reference {
                    None => reference = Some((cap.run.iterations, cap.run.model.bias())),
                    Some((it, bias)) => {
                        assert_eq!(it, cap.run.iterations, "trajectory must be p-invariant");
                        assert!((bias - cap.run.model.bias()).abs() < 1e-10);
                    }
                }
                String::new()
            } else {
                let r = default_time / cap.run.makespan;
                ratios.push(r);
                f(r)
            };
            t.row(vec![
                format!("{p}"),
                policy.name(),
                format!("{}", cap.run.iterations),
                secs(cap.run.makespan),
                format!("{:+.6}", cap.run.model.bias()),
                ratio_cell,
            ]);
        }
    }
    t.note("identical iteration counts/bias across procs demonstrate exactness of the distributed algorithm");
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    t.note(format!(
        "Best/Default at these per-rank loads (the regime matching the paper's 1024-4096-process runs): mean {:.2}x",
        mean_ratio
    ));
    t.emit(&ctx.out_dir, &format!("{stem}_validation")).unwrap();
}

/// Figure 3: UCI HIGGS scaling.
pub fn fig3(ctx: &Ctx) {
    scaling_figure(
        ctx,
        PaperDataset::Higgs,
        "fig3",
        "Figure 3 — HIGGS dataset performance (speedup vs libsvm-enhanced-16)",
        4096,
    );
}

/// Figure 4: Offending URL scaling.
pub fn fig4(ctx: &Ctx) {
    scaling_figure(
        ctx,
        PaperDataset::Url,
        "fig4",
        "Figure 4 — Offending URL dataset performance",
        4096,
    );
}

/// Figure 5: Forest covtype scaling.
pub fn fig5(ctx: &Ctx) {
    scaling_figure(
        ctx,
        PaperDataset::Forest,
        "fig5",
        "Figure 5 — Forest dataset performance",
        1024,
    );
}

/// Figure 6: MNIST scaling.
pub fn fig6(ctx: &Ctx) {
    scaling_figure(
        ctx,
        PaperDataset::Mnist,
        "fig6",
        "Figure 6 — MNIST dataset performance",
        512,
    );
}

/// Figure 7: real-sim scaling.
pub fn fig7(ctx: &Ctx) {
    scaling_figure(
        ctx,
        PaperDataset::RealSim,
        "fig7",
        "Figure 7 — real-sim dataset performance",
        256,
    );
}

/// Figure 8: fraction of overall time spent in gradient reconstruction
/// with the best heuristic (Multi5pc) on the four large datasets.
pub fn fig8(ctx: &Ctx) {
    let mut t = Table::new(
        "Figure 8 — Fraction of time in gradient reconstruction (Multi5pc)",
        &["procs", "Higgs", "URL", "Forest", "real-sim"],
    );
    let caps: Vec<(PaperData, Captured)> = PaperDataset::large_four()
        .into_iter()
        .map(|d| {
            let data = d.generate(ctx.scale);
            let cap = capture(ctx, &data, ShrinkPolicy::best(), CAPTURE_P);
            (data, cap)
        })
        .collect();
    for &p in &[512usize, 1024, 2048, 4096] {
        let mut row = vec![format!("{p}")];
        for (data, cap) in &caps {
            row.push(f(projected_recon_fraction(ctx, data, cap, p) * 100.0));
        }
        t.row(row);
    }
    t.note("values are % of modeled total time; the paper reports < 10% at 4096 processes and a decreasing trend");
    t.emit(&ctx.out_dir, "fig8").unwrap();
}
