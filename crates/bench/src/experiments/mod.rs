//! One driver per table/figure of the paper's evaluation (§V).

pub mod ablations;
pub mod figures;
pub mod heuristics;
pub mod tables;
