//! Tables II, III, IV and V.

use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_core::ReconPolicy;
use shrinksvm_datagen::PaperDataset;

use crate::report::{f, Table};
use crate::runner::{capture, projected_time, run_baseline, Ctx};

fn recon_name(r: ReconPolicy) -> String {
    match r {
        ReconPolicy::Single => "Single".into(),
        ReconPolicy::Multi => "Multi".into(),
        ReconPolicy::Never => "Never".into(),
    }
}

/// Table II: the heuristic inventory with names and classes.
pub fn table2(ctx: &Ctx) {
    let mut t = Table::new(
        "Table II — Heuristics: description and classification",
        &["#", "Shrinking Type", "Recon.", "Name", "Class"],
    );
    for (i, p) in ShrinkPolicy::table2().iter().enumerate() {
        let (kind, recon) = match p.heuristic {
            shrinksvm_core::Heuristic::None => ("None".to_string(), "N/A".to_string()),
            shrinksvm_core::Heuristic::Random(k) => (
                format!("random: {k}"),
                recon_name(p.recon),
            ),
            shrinksvm_core::Heuristic::NumSamples(x) => (
                format!("numsamples: {}%", (x * 100.0).round() as u64),
                recon_name(p.recon),
            ),
        };
        t.row(vec![
            format!("{}", i + 1),
            kind,
            recon,
            p.name(),
            p.class().to_string(),
        ]);
    }
    t.emit(&ctx.out_dir, "table2").unwrap();
}

/// Table III: dataset characteristics and hyper-parameter settings — the
/// paper's originals and our scaled synthetic analogs.
pub fn table3(ctx: &Ctx) {
    let mut t = Table::new(
        "Table III — Dataset characteristics and hyper-parameters (paper → scaled analog)",
        &[
            "Name",
            "Paper train",
            "Ours train",
            "Ours test",
            "dim",
            "density%",
            "C",
            "sigma^2",
        ],
    );
    for d in PaperDataset::all() {
        let data = d.generate(ctx.scale);
        t.row(vec![
            data.name.to_string(),
            format!("{}", data.paper_train_size),
            format!("{}", data.train.len()),
            data.test.as_ref().map(|x| x.len().to_string()).unwrap_or_else(|| "N/A".into()),
            format!("{}", data.train.x.ncols()),
            f(data.train.x.density() * 100.0),
            f(data.c),
            f(data.sigma_sq),
        ]);
    }
    t.note("analogs are planted-boundary synthetics; see DESIGN.md §4 for the substitution argument");
    t.emit(&ctx.out_dir, "table3").unwrap();
}

/// Table IV: relative speedup to libsvm-sequential on the smaller datasets
/// at the paper's per-dataset process counts.
pub fn table4(ctx: &Ctx) {
    let mut t = Table::new(
        "Table IV — Relative speedup to libsvm-sequential (smaller datasets)",
        &["Name", "Default", "Shrinking (Worst)", "Shrinking (Best)", "Proc"],
    );
    // the paper's process counts per dataset
    let rows: &[(PaperDataset, usize)] = &[
        (PaperDataset::Adult9, 16),
        (PaperDataset::Rcv1, 64),
        (PaperDataset::Usps, 4),
        (PaperDataset::Mushrooms, 4),
        (PaperDataset::W7a, 16),
    ];
    for &(which, procs) in rows {
        let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
        let base = run_baseline(ctx, &data);
        let speed = |policy: ShrinkPolicy| {
            let cap = capture(ctx, &data, policy, 2);
            base.t_seq / projected_time(ctx, &data, &cap, procs)
        };
        t.row(vec![
            data.name.to_string(),
            f(speed(ShrinkPolicy::none())),
            f(speed(ShrinkPolicy::worst())),
            f(speed(ShrinkPolicy::best())),
            format!("{procs}"),
        ]);
    }
    t.note("speedup = measured libsvm-seq analog time / modeled distributed time at Proc ranks");
    t.emit(&ctx.out_dir, "table4").unwrap();
}

/// Table V: testing accuracy, ours (shrinking, distributed) vs the libsvm
/// analog.
pub fn table5(ctx: &Ctx) {
    let mut t = Table::new(
        "Table V — Testing accuracy",
        &["Name", "Test Acc Ours(%)", "Test Acc libsvm(%)"],
    );
    for which in [
        PaperDataset::Adult9,
        PaperDataset::Usps,
        PaperDataset::Mnist,
        PaperDataset::CodRna,
        PaperDataset::W7a,
    ] {
        let data = which.generate(ctx.scale);
        ctx.recalibrate(&data);
        let base = run_baseline(ctx, &data);
        let cap = capture(ctx, &data, ShrinkPolicy::best(), 4);
        t.row(vec![
            data.name.to_string(),
            f(cap.test_accuracy.unwrap_or(f64::NAN) * 100.0),
            f(base.test_accuracy.unwrap_or(f64::NAN) * 100.0),
        ]);
    }
    t.note("ours = Multi5pc shrinking on 4 ranks; libsvm = sequential SMO with full cache");
    t.emit(&ctx.out_dir, "table5").unwrap();
}
