//! Shared experiment machinery: baseline measurement, distributed trace
//! capture, and scaling projection.

use std::cell::Cell;
use std::path::PathBuf;
use std::time::Instant;

use shrinksvm_core::dist::{DistRunResult, DistSolver};
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::metrics::accuracy;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::perfmodel::MachineModel;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_core::smo::SmoSolver;
use shrinksvm_datagen::PaperData;
use shrinksvm_obs::BenchReport;

/// The node size of the paper's testbed (16-core SandyBridge).
pub const BASELINE_THREADS: usize = 16;

/// Process grid used by the scaling figures (the paper's x-axes).
pub const PAPER_P_GRID: &[usize] = &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Process counts small enough to *really execute* as threads for
/// validation columns.
pub const VALIDATE_P: &[usize] = &[1, 2, 4, 8];

/// Shared context: output directory, dataset scale, calibrated machine
/// model.
pub struct Ctx {
    /// Dataset scale multiplier (1.0 = harness defaults).
    pub scale: f64,
    /// Where result files go.
    pub out_dir: PathBuf,
    /// Calibrated cost model (λ measured on this host; re-calibrated per
    /// dataset because sparse merge-joins cost several times more per
    /// stored entry than dense ones).
    model: Cell<MachineModel>,
}

impl Ctx {
    /// Build a context, calibrating `λ` on a small synthetic sample.
    pub fn new(scale: f64, out_dir: PathBuf) -> Self {
        let probe = shrinksvm_datagen::gaussian::two_blobs(256, 32, 3.0, 99);
        let model = MachineModel::calibrate(KernelKind::Rbf { gamma: 0.1 }, &probe.x);
        Ctx { scale, out_dir, model: Cell::new(model) }
    }

    /// Current machine model.
    pub fn model(&self) -> MachineModel {
        self.model.get()
    }

    /// Re-measure `λ` on this dataset's actual rows (sparse and dense data
    /// have very different per-entry costs). Every experiment driver calls
    /// this once per dataset before measuring or projecting.
    pub fn recalibrate(&self, data: &PaperData) {
        let model = MachineModel::calibrate(
            KernelKind::rbf_from_sigma_sq(data.sigma_sq),
            &data.train.x,
        );
        self.model.set(model);
    }

    /// Hyper-parameters for a paper dataset (Table III values).
    pub fn params_for(&self, data: &PaperData) -> SvmParams {
        SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq))
            .with_epsilon(1e-3)
            .with_max_iter(3_000_000)
    }
}

/// Measured baseline (the libsvm / libsvm-enhanced analog).
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Measured single-thread wall seconds (libsvm-sequential analog,
    /// whole-memory kernel cache).
    pub t_seq: f64,
    /// Modeled 16-thread wall seconds (libsvm-enhanced analog; Amdahl on
    /// the measured kernel fraction — this host has one core).
    pub t_enhanced16: f64,
    /// Fraction of `t_seq` attributable to kernel evaluations.
    pub kernel_fraction: f64,
    /// Baseline iterations.
    pub iterations: u64,
    /// Training accuracy on the test split, if one exists.
    pub test_accuracy: Option<f64>,
}

/// The paper grants libsvm "a compute node's entire memory as a kernel
/// cache" (§V-A) — on PNNL Cascade, ~64 GB usable. What matters for hit
/// rates is the *fraction of the kernel matrix the cache can hold*:
/// 64 GB covers a 24k-sample matrix completely but only ~0.1% of HIGGS's.
/// A scaled-down analog must preserve that coverage fraction or the
/// baseline becomes unrealistically strong.
pub fn baseline_cache_bytes(paper_n: usize, ours_n: usize) -> usize {
    const NODE_CACHE: f64 = 64e9;
    let paper_matrix = paper_n as f64 * paper_n as f64 * 8.0;
    let coverage = (NODE_CACHE / paper_matrix).min(1.0);
    (coverage * ours_n as f64 * ours_n as f64 * 8.0) as usize
}

/// Train the sequential baseline with the coverage-scaled kernel cache and
/// measure it.
pub fn run_baseline(ctx: &Ctx, data: &PaperData) -> Baseline {
    let cache = baseline_cache_bytes(data.paper_train_size, data.train.len());
    let params = ctx.params_for(data).with_cache_bytes(cache);
    let start = Instant::now();
    let out = SmoSolver::new(&data.train, params)
        .train()
        .expect("baseline training failed");
    let t_seq = start.elapsed().as_secs_f64().max(1e-9);
    let kernel_time = out.kernel_evals as f64
        * ctx.model().charge
            .eval_cost((2.0 * data.train.x.mean_row_nnz()).ceil() as usize);
    let kernel_fraction = (kernel_time / t_seq).clamp(0.05, 0.98);
    let t_enhanced16 = MachineModel::baseline_threads(t_seq, kernel_fraction, BASELINE_THREADS);
    let test_accuracy = data.test.as_ref().map(|t| accuracy(&out.model, t));
    Baseline {
        t_seq,
        t_enhanced16,
        kernel_fraction,
        iterations: out.iterations,
        test_accuracy,
    }
}

/// A captured distributed run: the real threaded execution (at a small p)
/// whose trace feeds the projections.
pub struct Captured {
    /// Policy that produced it.
    pub policy: ShrinkPolicy,
    /// The run (trace, model, simulated clocks).
    pub run: DistRunResult,
    /// Test accuracy, if a split exists.
    pub test_accuracy: Option<f64>,
}

/// Execute a distributed run at `p` threaded ranks and capture its trace.
pub fn capture(ctx: &Ctx, data: &PaperData, policy: ShrinkPolicy, p: usize) -> Captured {
    let params = ctx.params_for(data).with_shrink(policy);
    let run = DistSolver::new(&data.train, params)
        .with_processes(p)
        .with_charge(ctx.model().charge)
        .train()
        .expect("distributed training failed");
    let test_accuracy = data.test.as_ref().map(|t| accuracy(&run.model, t));
    Captured { policy, run, test_accuracy }
}

/// Build the machine-readable run report for a captured run and write it
/// as `BENCH_<name>.json` under `ctx.out_dir`. `projected` (when given)
/// overrides the modeled time with a scaling projection; `t_original` is
/// the Original-policy time that fills the speedup column.
pub fn write_bench_report(
    ctx: &Ctx,
    name: &str,
    cap: &Captured,
    projected: Option<f64>,
    t_original: Option<f64>,
) -> PathBuf {
    let mut r: BenchReport = cap.run.bench_report(name);
    if let Some(t) = projected {
        r.modeled_time = t;
    }
    if let Some(t0) = t_original {
        if r.modeled_time > 0.0 {
            r.speedup_vs_original = Some(t0 / r.modeled_time);
        }
    }
    if let Some(acc) = cap.test_accuracy {
        r = r.with_extra("test_accuracy", acc);
    }
    r.write(&ctx.out_dir).expect("write bench report")
}

/// Serialized bytes of an average row (for broadcast/ring volumes in the
/// projection).
pub fn mean_row_bytes(data: &PaperData) -> f64 {
    // PairSample header (44 B) + 12 B per stored entry.
    44.0 + 12.0 * data.train.x.mean_row_nnz()
}

/// Modeled total seconds of a captured run at `p` processes.
pub fn projected_time(ctx: &Ctx, data: &PaperData, cap: &Captured, p: usize) -> f64 {
    ctx.model().project(&cap.run.trace, p, mean_row_bytes(data)).total()
}

/// Modeled reconstruction fraction at `p` processes.
pub fn projected_recon_fraction(ctx: &Ctx, data: &PaperData, cap: &Captured, p: usize) -> f64 {
    ctx.model()
        .project(&cap.run.trace, p, mean_row_bytes(data))
        .recon_fraction()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrinksvm_datagen::PaperDataset;

    fn tiny_ctx() -> Ctx {
        Ctx::new(0.05, std::env::temp_dir().join("shrinksvm-runner-test"))
    }

    #[test]
    fn baseline_measures_and_models() {
        let ctx = tiny_ctx();
        let data = PaperDataset::W7a.generate(0.05);
        let b = run_baseline(&ctx, &data);
        assert!(b.t_seq > 0.0);
        assert!(b.t_enhanced16 < b.t_seq, "16 threads must model faster");
        assert!(b.iterations > 0);
        assert!((0.0..=1.0).contains(&b.kernel_fraction));
        let acc = b.test_accuracy.unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn capture_and_project_pipeline() {
        // MNIST analog: enough per-sample compute (150 nnz rows) that a
        // few ranks beat one even at tiny scale.
        let ctx = tiny_ctx();
        let data = PaperDataset::Mnist.generate(0.05);
        let cap = capture(&ctx, &data, ShrinkPolicy::best(), 2);
        assert!(cap.run.converged);
        let t1 = projected_time(&ctx, &data, &cap, 1);
        let t4 = projected_time(&ctx, &data, &cap, 4);
        assert!(t1 > 0.0 && t4 > 0.0);
        assert!(t4 < t1, "a few ranks must beat one: t1={t1} t4={t4}");
        let rf = projected_recon_fraction(&ctx, &data, &cap, 64);
        assert!((0.0..1.0).contains(&rf));
    }

    #[test]
    fn cache_coverage_scaling() {
        // w7a (24.7k): 64GB covers the whole matrix -> full cache at our n
        let full = baseline_cache_bytes(24_692, 1000);
        assert_eq!(full, 1000 * 1000 * 8);
        // HIGGS (2.6M): coverage ~0.12% -> tiny cache at our n
        let tiny = baseline_cache_bytes(2_600_000, 3000);
        assert!(tiny < 3000 * 3000 * 8 / 100, "cache {tiny} too generous");
    }

    #[test]
    fn mean_row_bytes_scales_with_nnz() {
        let dense = PaperDataset::Higgs.generate(0.02);
        let sparse = PaperDataset::Url.generate(0.02);
        assert!(mean_row_bytes(&dense) > 44.0);
        // URL rows carry more stored entries than HIGGS? no — HIGGS is
        // dense with 28 features, URL has ~40+teacher entries
        assert!(mean_row_bytes(&sparse) > mean_row_bytes(&dense) * 0.5);
    }
}
