//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--scale <f>] [--out <dir>] <command>
//!
//! commands:
//!   table2      heuristic inventory (Table II)
//!   table3      dataset characteristics (Table III)
//!   fig3..fig7  scaling studies (HIGGS, URL, Forest, MNIST, real-sim)
//!   fig8        gradient-reconstruction time fraction
//!   table4      smaller-dataset speedups (Table IV)
//!   table5      testing accuracy (Table V)
//!   heuristics  full Table-II ablation (§V-D2)
//!   ablations   design-choice ablations (permanent elimination, subsequent threshold, interconnect)
//!   all         everything above
//! ```
//!
//! `--scale` multiplies every dataset's sample count (default 1.0 ≈ a few
//! thousand samples per set, minutes per figure on one core). Output lands
//! in `--out` (default `results/`).

use std::path::PathBuf;
use std::process::exit;

use shrinksvm_bench::experiments::{ablations, figures, heuristics, tables};
use shrinksvm_bench::runner::Ctx;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--scale <f>] [--out <dir>] \
         <table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|table4|table5|heuristics|ablations|all>"
    );
    exit(2);
}

fn main() {
    let mut scale = 1.0f64;
    let mut out = PathBuf::from("results");
    let mut cmd: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_else(|| usage());
                scale = v.parse().unwrap_or_else(|_| usage());
                if scale.is_nan() || scale <= 0.0 {
                    usage();
                }
            }
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            c if cmd.is_none() => cmd = Some(c.to_string()),
            _ => usage(),
        }
    }
    let cmd = cmd.unwrap_or_else(|| usage());

    let ctx = Ctx::new(scale, out);
    println!(
        "machine model: lambda = {:.3e} s/nnz, kernel overhead = {:.1e} s, net = FDR-like",
        ctx.model().charge.lambda_per_nnz, ctx.model().charge.kernel_overhead
    );

    let started = std::time::Instant::now();
    match cmd.as_str() {
        "table2" => tables::table2(&ctx),
        "table3" => tables::table3(&ctx),
        "table4" => tables::table4(&ctx),
        "table5" => tables::table5(&ctx),
        "fig3" => figures::fig3(&ctx),
        "fig4" => figures::fig4(&ctx),
        "fig5" => figures::fig5(&ctx),
        "fig6" => figures::fig6(&ctx),
        "fig7" => figures::fig7(&ctx),
        "fig8" => figures::fig8(&ctx),
        "heuristics" => heuristics::run(&ctx),
        "ablations" => ablations::run(&ctx),
        "all" => {
            tables::table2(&ctx);
            tables::table3(&ctx);
            figures::fig3(&ctx);
            figures::fig4(&ctx);
            figures::fig5(&ctx);
            figures::fig6(&ctx);
            figures::fig7(&ctx);
            figures::fig8(&ctx);
            tables::table4(&ctx);
            tables::table5(&ctx);
            heuristics::run(&ctx);
            ablations::run(&ctx);
        }
        _ => usage(),
    }
    println!("done in {:.1}s", started.elapsed().as_secs_f64());
}
