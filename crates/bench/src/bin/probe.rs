//! Developer tool: print the optimization/shrinking dynamics of every
//! paper preset at a given scale — iterations, support vectors, work
//! saved by the best/worst heuristics, reconstruction counts. Used to keep
//! the synthetic analogs in the regime where the paper's phenomena appear.
//!
//! ```text
//! probe [scale]
//! ```

use shrinksvm_bench::runner::{capture, run_baseline, write_bench_report, Ctx};
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::PaperDataset;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let ctx = Ctx::new(scale, std::env::temp_dir().join("shrinksvm-probe"));
    println!(
        "{:>14} {:>6} {:>7} {:>5} {:>6} | {:>9} {:>7} {:>6} | {:>9} {:>7} {:>6}",
        "dataset", "n", "iters", "nsv", "t_seq", "bestSaved", "bestRec", "bIters", "worstSaved", "worstRec", "wIters"
    );
    for which in PaperDataset::all() {
        let data = which.generate(scale);
        let base = run_baseline(&ctx, &data);
        let best = capture(&ctx, &data, ShrinkPolicy::best(), 1);
        let worst = capture(&ctx, &data, ShrinkPolicy::worst(), 1);
        let original = capture(&ctx, &data, ShrinkPolicy::none(), 1);
        write_bench_report(
            &ctx,
            &format!("probe_{}", data.name),
            &best,
            None,
            Some(original.run.makespan),
        );
        println!(
            "{:>14} {:>6} {:>7} {:>5} {:>5.1}s | {:>8.1}% {:>7} {:>6} | {:>8.1}% {:>7} {:>6}",
            data.name,
            data.train.len(),
            base.iterations,
            best.run.model.n_sv(),
            base.t_seq,
            best.run.trace.work_saved() * 100.0,
            best.run.trace.recon_events.len(),
            best.run.iterations,
            worst.run.trace.work_saved() * 100.0,
            worst.run.trace.recon_events.len(),
            worst.run.iterations,
        );
    }
}
