//! Table rendering and results output.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use shrinksvm_obs::json;

/// A simple column-aligned table with a title, printed to stdout and saved
/// as both pretty text and TSV under `results/`.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title (figure/table number + caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of pre-formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// A new empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = *w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Render as TSV (headers + rows, no notes).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Render as a machine-readable JSON object: title, headers, rows
    /// (arrays of the pre-formatted cell strings) and notes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"title\": ");
        json::escape_into(&mut out, &self.title);
        out.push_str(",\n  \"headers\": ");
        string_array(&mut out, &self.headers);
        out.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            string_array(&mut out, row);
        }
        if !self.rows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"notes\": ");
        string_array(&mut out, &self.notes);
        out.push_str("\n}\n");
        out
    }

    /// Print to stdout and save `<dir>/<stem>.txt` + `<dir>/<stem>.tsv` +
    /// `<dir>/<stem>.json`.
    pub fn emit(&self, dir: &Path, stem: &str) -> io::Result<()> {
        let rendered = self.render();
        println!("{rendered}");
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.txt")), &rendered)?;
        std::fs::write(dir.join(format!("{stem}.tsv")), self.to_tsv())?;
        std::fs::write(dir.join(format!("{stem}.json")), self.to_json())?;
        Ok(())
    }
}

fn string_array(out: &mut String, items: &[String]) {
    out.push('[');
    for (i, s) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::escape_into(out, s);
    }
    out.push(']');
}

/// Format a float with engineering-friendly precision.
pub fn f(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.01 {
        format!("{v:.3}")
    } else {
        format!("{v:.2e}")
    }
}

/// Format seconds human-readably.
pub fn secs(v: f64) -> String {
    if v >= 3600.0 {
        format!("{:.2}h", v / 3600.0)
    } else if v >= 60.0 {
        format!("{:.2}m", v / 60.0)
    } else if v >= 1.0 {
        format!("{v:.2}s")
    } else if v >= 1e-3 {
        format!("{:.2}ms", v * 1e3)
    } else {
        format!("{:.2}us", v * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        t.note("a note");
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("note: a note"));
        // all data lines align to the same width
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn tsv_is_tabbed() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_tsv(), "a\tb\n1\t2\n");
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(0.0001), "1.00e-4");
        assert_eq!(f(f64::INFINITY), "inf");
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(7200.0), "2.00h");
        assert_eq!(secs(90.0), "1.50m");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.005), "5.00ms");
        assert_eq!(secs(2e-6), "2.00us");
    }

    #[test]
    fn emit_writes_files() {
        let dir = std::env::temp_dir().join("shrinksvm-report-test");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        t.emit(&dir, "demo").unwrap();
        assert!(dir.join("demo.txt").exists());
        assert!(dir.join("demo.tsv").exists());
        assert!(dir.join("demo.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let mut t = Table::new("Table \"7\"\tspeedups", &["p", "speedup"]);
        t.row(vec!["2".into(), "1.9".into()]);
        t.row(vec!["4".into(), "3.6".into()]);
        t.note("newline\nin note");
        let j = t.to_json();
        json::check(&j).unwrap();
        assert!(j.contains("\\\"7\\\"\\tspeedups"));
        assert!(j.contains("\"rows\""));
        assert!(j.contains("newline\\nin note"));
    }
}
