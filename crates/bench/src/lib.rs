//! Benchmark harness for the paper's evaluation section.
//!
//! The `repro` binary (`src/bin/repro.rs`) regenerates every table and
//! figure; this library holds the shared machinery:
//!
//! * [`report`] — plain-text/TSV table rendering and `results/` output,
//! * [`runner`] — baseline measurement (the libsvm / libsvm-enhanced
//!   analog), distributed trace capture, and the measured-trace →
//!   projected-scaling pipeline,
//! * [`experiments`] — one driver per paper table/figure.
//!
//! Criterion microbenches live in `benches/`.

pub mod experiments;
pub mod report;
pub mod runner;
