//! mpisim collective performance: wall cost of the substrate's
//! allreduce/bcast/barrier/ring as the rank count grows (all ranks are
//! threads on one host, so this measures substrate overhead, not network).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use shrinksvm_mpisim::Universe;

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpisim");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("allreduce_f64x100", p), &p, |b, &p| {
            let u = Universe::new(p);
            b.iter(|| {
                u.run(|comm| {
                    let mut acc = 0.0;
                    for k in 0..100 {
                        acc += comm.allreduce_f64_sum(k as f64);
                    }
                    acc
                })
            })
        });
        g.bench_with_input(BenchmarkId::new("bcast_4k_x20", p), &p, |b, &p| {
            let u = Universe::new(p);
            let payload = vec![7u8; 4096];
            b.iter(|| {
                u.run(|comm| {
                    let mut total = 0usize;
                    for _ in 0..20 {
                        let data = if comm.rank() == 0 { payload.clone() } else { vec![] };
                        total += comm.bcast(0, &data).len();
                    }
                    total
                })
            })
        });
        g.throughput(Throughput::Bytes(4096 * 8));
        g.bench_with_input(BenchmarkId::new("ring_shift_4k_x8", p), &p, |b, &p| {
            let u = Universe::new(p);
            b.iter(|| {
                u.run(|comm| {
                    let mut cur = vec![comm.rank() as u8; 4096];
                    for _ in 0..8 {
                        cur = comm.ring_shift(&cur);
                    }
                    cur[0]
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_collectives);
criterion_main!(benches);
