//! Cost of complete training runs: sequential vs cached vs multicore —
//! quantifies what the kernel cache (§III-A2) and the OpenMP enhancement
//! (§V-A) buy the baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::smo::SmoSolver;
use shrinksvm_datagen::gaussian;
use shrinksvm_threads::ThreadPool;

fn bench_smo(c: &mut Criterion) {
    let ds = gaussian::two_blobs(300, 16, 2.0, 7);
    let params = SvmParams::new(4.0, KernelKind::rbf_from_sigma_sq(4.0)).with_epsilon(1e-3);

    let mut g = c.benchmark_group("smo_train_300");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    g.bench_function("sequential_nocache", |b| {
        b.iter(|| SmoSolver::new(&ds, params.clone()).train().unwrap().iterations)
    });
    g.bench_function("sequential_cached", |b| {
        b.iter(|| {
            SmoSolver::new(&ds, params.clone().with_cache_bytes(64 << 20))
                .train()
                .unwrap()
                .iterations
        })
    });
    let pool = ThreadPool::new(2);
    g.bench_function("multicore2_cached", |b| {
        b.iter(|| {
            SmoSolver::new(&ds, params.clone().with_cache_bytes(64 << 20))
                .with_pool(&pool)
                .train()
                .unwrap()
                .iterations
        })
    });
    g.finish();
}

criterion_group!(benches, bench_smo);
criterion_main!(benches);
