//! Kernel-evaluation throughput — this measures the paper's `λ` (Table I),
//! the constant that every complexity bound in §III/§IV is expressed in.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use shrinksvm_core::kernel::{KernelEval, KernelKind};
use shrinksvm_datagen::planted::{FeatureStyle, PlantedConfig};

fn dataset(style: FeatureStyle, dim: usize, nnz: usize) -> shrinksvm_sparse::Dataset {
    PlantedConfig {
        n: 512,
        dim,
        nnz_per_row: nnz,
        sv_fraction: 0.2,
        label_noise: 0.0,
        margin_scale: 1.0,
        style,
        target_norm: None,
        feature_skew: 0.0,
        seed: 1,
    }
    .generate()
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_eval");
    let cases = [
        ("dense28", dataset(FeatureStyle::Dense, 28, 28)),
        ("dense256", dataset(FeatureStyle::Dense, 256, 256)),
        ("sparse40", dataset(FeatureStyle::SparseBinary, 50_000, 40)),
        ("tfidf60", dataset(FeatureStyle::SparseContinuous, 30_000, 60)),
    ];
    for (name, ds) in &cases {
        for kind in [KernelKind::Rbf { gamma: 0.1 }, KernelKind::Linear] {
            let ke = KernelEval::new(kind, &ds.x);
            g.bench_with_input(
                BenchmarkId::new(kind.name(), name),
                &ke,
                |b, ke| {
                    let n = ds.len();
                    let mut i = 0usize;
                    b.iter(|| {
                        i = (i + 7) % n;
                        let j = (i * 31 + 11) % n;
                        black_box(ke.k(i, j))
                    })
                },
            );
        }
    }
    g.finish();

    // full row computation (what the baseline's cache stores per miss)
    let ds = dataset(FeatureStyle::Dense, 128, 128);
    let ke = KernelEval::new(KernelKind::Rbf { gamma: 0.1 }, &ds.x);
    let mut row = vec![0.0; ds.len()];
    c.bench_function("kernel_full_row_512", |b| {
        b.iter(|| {
            ke.fill_row(black_box(3), &mut row);
            black_box(row[0])
        })
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
