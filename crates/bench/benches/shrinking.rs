//! The Table-II ablation as a microbenchmark: wall time of complete
//! distributed training runs under Original / best / worst heuristics
//! (the §V-D2 comparison, at bench scale).

use criterion::{criterion_group, criterion_main, Criterion};
use shrinksvm_core::dist::DistSolver;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::ShrinkPolicy;
use shrinksvm_datagen::PaperDataset;

fn bench_shrinking(c: &mut Criterion) {
    let data = PaperDataset::Higgs.generate(0.08);
    let base = SvmParams::new(data.c, KernelKind::rbf_from_sigma_sq(data.sigma_sq))
        .with_epsilon(1e-3);

    let mut g = c.benchmark_group("dist_train_higgs_like");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    for (name, policy) in [
        ("original", ShrinkPolicy::none()),
        ("multi5pc_best", ShrinkPolicy::best()),
        ("single50pc_worst", ShrinkPolicy::worst()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                DistSolver::new(&data.train, base.clone().with_shrink(policy))
                    .with_processes(2)
                    .train()
                    .unwrap()
                    .iterations
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shrinking);
criterion_main!(benches);
