//! Gradient-reconstruction cost (§IV-B1): the paper bounds it by
//! `O(|X−Ȧ|·|ζ|/p)` compute and `Θ(|X−Ȧ|·G)` ring bandwidth, with the
//! maximum at `|ζ| = |X|/2`. This bench measures complete shrinking runs
//! whose reconstruction volume is driven by the support-vector fraction,
//! exposing that interior maximum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use shrinksvm_core::dist::DistSolver;
use shrinksvm_core::kernel::KernelKind;
use shrinksvm_core::params::SvmParams;
use shrinksvm_core::shrink::{Heuristic, ReconPolicy, ShrinkPolicy};
use shrinksvm_datagen::planted::{FeatureStyle, PlantedConfig};

fn bench_recon(c: &mut Criterion) {
    let mut g = c.benchmark_group("gradient_reconstruction");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(8));
    for sv_fraction in [0.05, 0.25, 0.5] {
        let ds = PlantedConfig {
            n: 400,
            dim: 28,
            nnz_per_row: 28,
            sv_fraction,
            label_noise: 0.05,
            margin_scale: 1.0,
            style: FeatureStyle::Dense,
            target_norm: None,
            feature_skew: 0.0,
            seed: 11,
        }
        .generate();
        let params = SvmParams::new(32.0, KernelKind::rbf_from_sigma_sq(64.0))
            .with_epsilon(1e-3)
            .with_shrink(ShrinkPolicy::new(Heuristic::NumSamples(0.05), ReconPolicy::Multi));
        g.bench_with_input(
            BenchmarkId::new("multi_recon_run", format!("svfrac_{sv_fraction}")),
            &ds,
            |b, ds| {
                b.iter(|| {
                    DistSolver::new(ds, params.clone())
                        .with_processes(2)
                        .train()
                        .unwrap()
                        .recon_time
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_recon);
criterion_main!(benches);
