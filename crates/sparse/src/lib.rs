//! Sparse linear-algebra substrate for shrinksvm.
//!
//! The paper ("Fast and Accurate Support Vector Machines on Large Scale
//! Systems", CLUSTER 2015, §III-A1) stores the training set in *compressed
//! sparse row* (CSR) form and co-locates the per-sample solver state with the
//! samples. This crate provides that representation plus everything around
//! it that the solvers and the benchmark harness need:
//!
//! * [`CsrMatrix`] — an immutable CSR matrix with cached row norms available
//!   through [`ops`],
//! * [`CsrBuilder`] — incremental row-by-row construction,
//! * [`RowView`] — a borrowed view of one sample used by the kernel
//!   functions,
//! * [`ops`] — merge-join sparse dot products, norms and squared Euclidean
//!   distances (the inner loop of every kernel evaluation),
//! * [`io`] — reader/writer for the standard libsvm text format,
//! * [`scale`] — per-feature min/max scaling (the usual libsvm preprocessing),
//! * [`Dataset`] — a labeled CSR matrix with split/shuffle/fold helpers.
//!
//! Everything is `f64`; indices are `u32` column ids (the paper's largest
//! dataset has 3.2M features, well within range) with `usize` row pointers.

pub mod builder;
pub mod csr;
pub mod dataset;
pub mod error;
pub mod io;
pub mod ops;
pub mod rowview;
pub mod scale;
pub mod scratch;

pub use builder::CsrBuilder;
pub use csr::CsrMatrix;
pub use dataset::Dataset;
pub use error::SparseError;
pub use rowview::RowView;
pub use scratch::ScratchPad;
