//! A labeled dataset: CSR samples plus ±1 class labels.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A binary-classification dataset.
///
/// Labels are stored as `f64` but must be exactly `+1.0` or `-1.0`
/// (enforced by [`Dataset::new`]); the SMO formulation multiplies by `y`
/// constantly so keeping the float form avoids conversions in hot loops.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Samples, one per row.
    pub x: CsrMatrix,
    /// Class labels, `+1.0` / `-1.0`, one per row of `x`.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Construct, validating that labels are ±1 and match the row count.
    pub fn new(x: CsrMatrix, y: Vec<f64>) -> Result<Self, SparseError> {
        if x.nrows() != y.len() {
            return Err(SparseError::BadLabels(format!(
                "{} rows but {} labels",
                x.nrows(),
                y.len()
            )));
        }
        for (i, &l) in y.iter().enumerate() {
            if l != 1.0 && l != -1.0 {
                return Err(SparseError::BadLabels(format!(
                    "label {l} at row {i} is not +1/-1"
                )));
            }
        }
        Ok(Dataset { x, y })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// `(positives, negatives)` counts.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.y.iter().filter(|l| **l > 0.0).count();
        (pos, self.len() - pos)
    }

    /// Copy out a subset of samples (in the given order).
    pub fn select(&self, rows: &[usize]) -> Result<Dataset, SparseError> {
        let x = self.x.select_rows(rows)?;
        let y = rows.iter().map(|&r| self.y[r]).collect();
        Dataset::new(x, y)
    }

    /// Split into `(head, tail)` at `at` samples. Panics if `at > len`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        let head: Vec<usize> = (0..at).collect();
        let tail: Vec<usize> = (at..self.len()).collect();
        (
            self.select(&head).expect("indices in range"),
            self.select(&tail).expect("indices in range"),
        )
    }

    /// Deterministically shuffle sample order with a splitmix64 stream seeded
    /// by `seed` (self-contained so the crate needs no RNG dependency).
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        self.select(&order).expect("permutation in range")
    }

    /// Indices of the `k` cross-validation folds (contiguous blocks of a
    /// shuffled order): returns `(train, test)` index lists per fold.
    pub fn kfold_indices(&self, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
        assert!(k >= 2, "need at least 2 folds");
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        // same splitmix64 shuffle as `shuffled`
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let lo = f * n / k;
            let hi = (f + 1) * n / k;
            let test: Vec<usize> = order[lo..hi].to_vec();
            let mut train: Vec<usize> = Vec::with_capacity(n - (hi - lo));
            train.extend_from_slice(&order[..lo]);
            train.extend_from_slice(&order[hi..]);
            folds.push((train, test));
        }
        folds
    }

    /// One-line summary used by the harness (Table III style).
    pub fn summary(&self) -> String {
        let (p, n) = self.class_counts();
        format!(
            "n={} d={} nnz={} density={:.4}% (+{p}/-{n})",
            self.len(),
            self.x.ncols(),
            self.x.nnz(),
            self.x.density() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn toy(n: usize) -> Dataset {
        let mut b = CsrBuilder::new(2);
        let mut y = Vec::new();
        for i in 0..n {
            b.push_row(&[0, 1], &[i as f64, 1.0]).unwrap();
            y.push(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        Dataset::new(b.finish(), y).unwrap()
    }

    #[test]
    fn rejects_bad_labels() {
        let mut b = CsrBuilder::new(1);
        b.push_row(&[0], &[1.0]).unwrap();
        assert!(Dataset::new(b.finish(), vec![0.5]).is_err());
    }

    #[test]
    fn rejects_count_mismatch() {
        let b = CsrBuilder::new(1);
        assert!(Dataset::new(b.finish(), vec![1.0]).is_err());
    }

    #[test]
    fn class_counts_add_up() {
        let ds = toy(7);
        let (p, n) = ds.class_counts();
        assert_eq!(p + n, 7);
        assert_eq!(p, 4);
    }

    #[test]
    fn select_preserves_pairing() {
        let ds = toy(5);
        let s = ds.select(&[4, 0]).unwrap();
        assert_eq!(s.y, vec![1.0, 1.0]);
        assert_eq!(s.x.row(0).get(0), 4.0);
        assert_eq!(s.x.row(1).get(0), 0.0);
    }

    #[test]
    fn split_at_partitions() {
        let ds = toy(6);
        let (a, b) = ds.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 4);
        assert_eq!(b.x.row(0).get(0), 2.0);
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let ds = toy(20);
        let s1 = ds.shuffled(42);
        let s2 = ds.shuffled(42);
        let s3 = ds.shuffled(7);
        let key = |d: &Dataset| {
            let mut v: Vec<i64> = (0..d.len()).map(|i| d.x.row(i).get(0) as i64).collect();
            v.sort();
            v
        };
        assert_eq!(key(&s1), key(&ds)); // same multiset
        let order =
            |d: &Dataset| -> Vec<i64> { (0..d.len()).map(|i| d.x.row(i).get(0) as i64).collect() };
        assert_eq!(order(&s1), order(&s2)); // deterministic
        assert_ne!(order(&s1), order(&s3)); // seed matters
        assert_ne!(order(&s1), order(&ds)); // actually shuffles
                                            // labels move with their rows
        for i in 0..s1.len() {
            let v = s1.x.row(i).get(0) as i64;
            assert_eq!(s1.y[i], if v % 2 == 0 { 1.0 } else { -1.0 });
        }
    }

    #[test]
    fn kfold_covers_everything_exactly_once() {
        let ds = toy(23);
        let folds = ds.kfold_indices(5, 1);
        assert_eq!(folds.len(), 5);
        let mut seen = [0usize; 23];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 23);
            for &t in test {
                seen[t] += 1;
            }
            // train/test disjoint
            for &t in test {
                assert!(!train.contains(&t));
            }
        }
        assert!(seen.iter().all(|c| *c == 1));
    }

    #[test]
    fn summary_mentions_size() {
        let ds = toy(3);
        assert!(ds.summary().contains("n=3"));
    }
}
