//! Dense scratch buffers for repeated sparse dots against a pinned row.
//!
//! The distributed solver evaluates `⟨x_i, x_up⟩` and `⟨x_i, x_low⟩` for
//! every active row `i`, every iteration. A merge-join dot pays
//! `O(nnz_i + nnz_pivot)` per row; scattering the pivot once into a dense
//! buffer and gathering at each row's stored columns pays `O(nnz_pivot)`
//! once plus `O(nnz_i)` per row — the classic libsvm/BLAS-style trick.
//!
//! [`ScratchPad`] packages the trick with the hygiene the determinism suite
//! depends on:
//!
//! * the buffer records every touched column in a side list, and [`clear`]
//!   zeroes **exactly** those entries (`O(nnz_pivot)`, never `O(dim)`), so a
//!   pad can be reused across millions of iterations at no amortized cost;
//! * [`load`] debug-asserts the buffer is all-zero on entry, catching any
//!   caller that forgot to clear — a stale value would silently corrupt
//!   every subsequent dot;
//! * an occupancy mask distinguishes "column stored by the pivot" from
//!   "column zero", which is what makes [`ops::dot_scatter`] bit-identical
//!   to the merge-join [`ops::dot`] (see its docs).
//!
//! The workspace lint (`cargo xtask lint`, scratch-hygiene rule) bans raw
//! `ops::dot_scatter` calls outside this crate so every reused dense
//! scratch in the solvers goes through this type.
//!
//! [`clear`]: ScratchPad::clear
//! [`load`]: ScratchPad::load
//! [`ops::dot_scatter`]: crate::ops::dot_scatter
//! [`ops::dot`]: crate::ops::dot

use crate::ops;
use crate::rowview::RowView;

/// A reusable dense scratch buffer holding one scattered sparse row.
///
/// Lifecycle: [`load`](Self::load) a row, take any number of
/// [`dot`](Self::dot)s against it, then [`clear`](Self::clear) before the
/// next `load`. Loading twice without clearing is a bug and panics in debug
/// builds.
#[derive(Debug)]
pub struct ScratchPad {
    dense: Vec<f64>,
    occupied: Vec<bool>,
    touched: Vec<u32>,
}

impl ScratchPad {
    /// An empty pad able to hold rows with columns `< dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dense: vec![0.0; dim],
            occupied: vec![false; dim],
            touched: Vec::new(),
        }
    }

    /// Column capacity of the pad.
    pub fn dim(&self) -> usize {
        self.dense.len()
    }

    /// Grow the pad so rows with columns `< dim` fit. Never shrinks.
    pub fn ensure_dim(&mut self, dim: usize) {
        if dim > self.dense.len() {
            self.dense.resize(dim, 0.0);
            self.occupied.resize(dim, false);
        }
    }

    /// Whether a row is currently loaded (any column occupied).
    pub fn is_loaded(&self) -> bool {
        !self.touched.is_empty()
    }

    /// Scatter `row` into the pad, recording touched columns.
    ///
    /// Debug builds assert the pad is pristine on entry — all dense entries
    /// zero, all occupancy bits down — so a missing [`clear`](Self::clear)
    /// fails loudly instead of corrupting later dots.
    pub fn load(&mut self, row: RowView<'_>) {
        debug_assert!(
            self.touched.is_empty(),
            "ScratchPad::load on a loaded pad — call clear() first"
        );
        debug_assert!(
            self.dense.iter().all(|v| v.to_bits() == 0) && !self.occupied.iter().any(|o| *o),
            "ScratchPad dense buffer not all-zero on entry to load()"
        );
        for (c, v) in row.iter() {
            let ci = c as usize;
            self.dense[ci] = v;
            self.occupied[ci] = true;
            self.touched.push(c);
        }
    }

    /// Gather dot of `a` against the loaded row; bit-identical to
    /// [`ops::dot`] of `a` with that row.
    #[inline]
    pub fn dot(&self, a: RowView<'_>) -> f64 {
        ops::dot_scatter(a, &self.dense, &self.occupied)
    }

    /// Zero the pad via the touched-index list — `O(nnz)` of the loaded row,
    /// independent of `dim`.
    pub fn clear(&mut self) {
        for &c in &self.touched {
            let ci = c as usize;
            self.dense[ci] = 0.0;
            self.occupied[ci] = false;
        }
        self.touched.clear();
    }

    /// Number of stored entries of the loaded row.
    pub fn nnz(&self) -> usize {
        self.touched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(indices: &'static [u32], values: &'static [f64]) -> RowView<'static> {
        RowView { indices, values }
    }

    const P_IDX: &[u32] = &[1, 3, 7];
    const P_VAL: &[f64] = &[2.0, -1.5, 4.0];

    #[test]
    fn load_dot_matches_merge_join_bitwise() {
        let pivot = row(P_IDX, P_VAL);
        let probe = row(&[0, 3, 7, 9], &[5.0, 2.0, 0.25, -3.0]);
        let mut pad = ScratchPad::new(10);
        pad.load(pivot);
        assert_eq!(pad.dot(probe).to_bits(), ops::dot(probe, pivot).to_bits());
        assert_eq!(pad.nnz(), 3);
    }

    #[test]
    fn clear_restores_pristine_state_for_reuse() {
        let mut pad = ScratchPad::new(10);
        pad.load(row(P_IDX, P_VAL));
        pad.clear();
        assert!(!pad.is_loaded());
        // Reload with a different row; debug assertions verify all-zero.
        let other = row(&[0, 7], &[9.0, 9.0]);
        pad.load(other);
        let probe = row(&[7], &[1.0]);
        assert_eq!(pad.dot(probe), 9.0);
    }

    #[test]
    #[should_panic(expected = "call clear() first")]
    #[cfg(debug_assertions)]
    fn double_load_panics_in_debug() {
        let mut pad = ScratchPad::new(10);
        pad.load(row(P_IDX, P_VAL));
        pad.load(row(P_IDX, P_VAL));
    }

    #[test]
    fn ensure_dim_grows_only() {
        let mut pad = ScratchPad::new(4);
        pad.ensure_dim(16);
        assert_eq!(pad.dim(), 16);
        pad.ensure_dim(2);
        assert_eq!(pad.dim(), 16);
        pad.load(row(&[15], &[1.0]));
        assert_eq!(pad.dot(row(&[15], &[3.0])), 3.0);
    }

    #[test]
    fn empty_pad_dots_to_zero() {
        let pad = ScratchPad::new(8);
        assert_eq!(pad.dot(row(&[1, 2], &[1.0, 2.0])), 0.0);
    }
}
