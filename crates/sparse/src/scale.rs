//! Per-feature min/max scaling (the `svm-scale` preprocessing step).
//!
//! The libsvm datasets the paper downloads are distributed pre-scaled to
//! `[0, 1]` or `[-1, 1]`; our synthetic generators emit raw features, so the
//! harness applies this scaler to match that convention. Scaling is fit on
//! the training set and applied to both splits, as `svm-scale` does.

use crate::builder::CsrBuilder;
use crate::csr::CsrMatrix;
use crate::dataset::Dataset;
use crate::error::SparseError;

/// Fitted per-feature affine transform `v ↦ lo + (v − min)·(hi − lo)/(max − min)`.
///
/// Sparse caveat (same as `svm-scale`): the transform is only applied to
/// *stored* entries, so scaling that does not map 0 to 0 would densify the
/// data. We therefore scale each feature by range only (`v · s_j`), mapping
/// zero to zero, unless the caller explicitly asks for offset scaling on
/// dense data.
#[derive(Clone, Debug)]
pub struct Scaler {
    /// Per-feature multiplier.
    pub factors: Vec<f64>,
    /// Target upper magnitude.
    pub hi: f64,
}

impl Scaler {
    /// Fit a zero-preserving scaler: each feature is divided by its maximum
    /// absolute value so values land in `[-hi, hi]`.
    pub fn fit(x: &CsrMatrix, hi: f64) -> Scaler {
        assert!(hi > 0.0, "target magnitude must be positive");
        let mut maxabs = vec![0.0f64; x.ncols()];
        for i in 0..x.nrows() {
            for (c, v) in x.row(i).iter() {
                let a = v.abs();
                if a > maxabs[c as usize] {
                    maxabs[c as usize] = a;
                }
            }
        }
        let factors = maxabs
            .into_iter()
            .map(|m| if m > 0.0 { hi / m } else { 1.0 })
            .collect();
        Scaler { factors, hi }
    }

    /// Apply to a matrix, producing a new one. Features beyond the fitted
    /// width are rejected.
    pub fn transform(&self, x: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        if x.ncols() > self.factors.len() {
            return Err(SparseError::Malformed(format!(
                "scaler fitted on {} features, matrix has {}",
                self.factors.len(),
                x.ncols()
            )));
        }
        let mut b = CsrBuilder::new(self.factors.len());
        b.reserve(x.nrows(), x.nnz());
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for i in 0..x.nrows() {
            idx.clear();
            val.clear();
            for (c, v) in x.row(i).iter() {
                idx.push(c);
                val.push(v * self.factors[c as usize]);
            }
            b.push_row(&idx, &val)?;
        }
        Ok(b.finish())
    }

    /// Fit on `train.x` and apply to every dataset given, in place of their
    /// matrices. Returns the fitted scaler for inspection.
    pub fn fit_transform_all(datasets: &mut [&mut Dataset], hi: f64) -> Scaler {
        assert!(!datasets.is_empty());
        let scaler = Scaler::fit(&datasets[0].x, hi);
        for ds in datasets.iter_mut() {
            ds.x = scaler.transform(&ds.x).expect("fitted width covers data");
        }
        scaler
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> CsrMatrix {
        CsrMatrix::from_dense(
            &[
                vec![2.0, 0.0, -8.0],
                vec![4.0, 10.0, 0.0],
                vec![0.0, -5.0, 2.0],
            ],
            3,
        )
        .unwrap()
    }

    #[test]
    fn fit_finds_max_abs() {
        let s = Scaler::fit(&matrix(), 1.0);
        assert!((s.factors[0] - 1.0 / 4.0).abs() < 1e-15);
        assert!((s.factors[1] - 1.0 / 10.0).abs() < 1e-15);
        assert!((s.factors[2] - 1.0 / 8.0).abs() < 1e-15);
    }

    #[test]
    fn transform_bounds_values() {
        let m = matrix();
        let s = Scaler::fit(&m, 1.0);
        let t = s.transform(&m).unwrap();
        for i in 0..t.nrows() {
            for (_, v) in t.row(i).iter() {
                assert!(v.abs() <= 1.0 + 1e-12);
            }
        }
        // max magnitude is attained
        assert!((t.row(1).get(1) - 1.0).abs() < 1e-15);
        assert!((t.row(0).get(2) + 1.0).abs() < 1e-15);
    }

    #[test]
    fn zero_stays_zero_and_sparsity_is_preserved() {
        let m = matrix();
        let s = Scaler::fit(&m, 1.0);
        let t = s.transform(&m).unwrap();
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn constant_zero_feature_is_passthrough() {
        let m = CsrMatrix::from_dense(&[vec![0.0, 1.0], vec![0.0, 2.0]], 2).unwrap();
        let s = Scaler::fit(&m, 1.0);
        assert_eq!(s.factors[0], 1.0);
    }

    #[test]
    fn rejects_wider_matrix() {
        let m = matrix();
        let s = Scaler::fit(&m, 1.0);
        let wide = CsrMatrix::from_dense(&[vec![0.0, 0.0, 0.0, 9.0]], 4).unwrap();
        assert!(s.transform(&wide).is_err());
    }

    #[test]
    fn narrower_matrix_is_fine() {
        let m = matrix();
        let s = Scaler::fit(&m, 1.0);
        let narrow = CsrMatrix::from_dense(&[vec![4.0]], 1).unwrap();
        let t = s.transform(&narrow).unwrap();
        assert!((t.row(0).get(0) - 1.0).abs() < 1e-15);
        assert_eq!(t.ncols(), 3); // widened to fitted width
    }

    #[test]
    fn fit_transform_all_shares_one_fit() {
        let mut train = Dataset::new(matrix(), vec![1.0, -1.0, 1.0]).unwrap();
        let test_x = CsrMatrix::from_dense(&[vec![8.0, 0.0, 0.0]], 3).unwrap();
        let mut test = Dataset::new(test_x, vec![1.0]).unwrap();
        Scaler::fit_transform_all(&mut [&mut train, &mut test], 1.0);
        // test scaled with TRAIN max (4.0), so 8.0 -> 2.0 (out of range is fine)
        assert!((test.x.row(0).get(0) - 2.0).abs() < 1e-15);
    }
}
