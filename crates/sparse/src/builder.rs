//! Incremental CSR construction.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Builds a [`CsrMatrix`] one row at a time.
///
/// Rows are appended with [`CsrBuilder::push_row`]; the column count may be
/// fixed up-front or grown automatically with [`CsrBuilder::auto_cols`]
/// (useful when parsing libsvm files, where the dimensionality is implicit).
#[derive(Debug)]
pub struct CsrBuilder {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    ncols: usize,
    auto_cols: bool,
}

impl CsrBuilder {
    /// Builder for a matrix with exactly `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        CsrBuilder {
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            ncols,
            auto_cols: false,
        }
    }

    /// Builder whose column count grows to fit the largest index pushed.
    pub fn auto_cols() -> Self {
        CsrBuilder {
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            ncols: 0,
            auto_cols: true,
        }
    }

    /// Reserve space for roughly `nnz` entries across `nrows` rows.
    pub fn reserve(&mut self, nrows: usize, nnz: usize) {
        self.indptr.reserve(nrows);
        self.indices.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Number of rows pushed so far.
    pub fn nrows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Append one row. `indices` must be strictly increasing; `values` must
    /// have the same length. Exact zeros are kept as provided (callers that
    /// care strip them before pushing).
    pub fn push_row(&mut self, indices: &[u32], values: &[f64]) -> Result<(), SparseError> {
        if indices.len() != values.len() {
            return Err(SparseError::Malformed(format!(
                "row has {} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        for w in indices.windows(2) {
            if w[1] <= w[0] {
                return Err(SparseError::UnsortedRow { row: self.nrows() });
            }
        }
        if let Some(&last) = indices.last() {
            let needed = last as usize + 1;
            if needed > self.ncols {
                if self.auto_cols {
                    self.ncols = needed;
                } else {
                    return Err(SparseError::ColumnOutOfBounds {
                        col: last,
                        ncols: self.ncols,
                    });
                }
            }
        }
        self.indices.extend_from_slice(indices);
        self.values.extend_from_slice(values);
        self.indptr.push(self.indices.len());
        Ok(())
    }

    /// Append one row from possibly-unsorted `(col, value)` pairs; the pairs
    /// are sorted and duplicate columns rejected.
    pub fn push_row_unsorted(&mut self, mut entries: Vec<(u32, f64)>) -> Result<(), SparseError> {
        entries.sort_unstable_by_key(|e| e.0);
        for w in entries.windows(2) {
            if w[1].0 == w[0].0 {
                return Err(SparseError::UnsortedRow { row: self.nrows() });
            }
        }
        let idx: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let val: Vec<f64> = entries.iter().map(|e| e.1).collect();
        self.push_row(&idx, &val)
    }

    /// Finish, consuming the builder. The result always satisfies the CSR
    /// invariants by construction.
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix::new(self.indptr, self.indices, self.values, self.ncols)
            .expect("builder maintains CSR invariants")
    }

    /// Finish with an explicit column count (must cover every pushed index).
    pub fn finish_with_cols(mut self, ncols: usize) -> Result<CsrMatrix, SparseError> {
        if ncols < self.ncols {
            return Err(SparseError::Malformed(format!(
                "requested {} columns but rows contain index up to {}",
                ncols,
                self.ncols.saturating_sub(1)
            )));
        }
        self.ncols = ncols;
        CsrMatrix::new(self.indptr, self.indices, self.values, self.ncols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order() {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[0, 3], &[1.0, 2.0]).unwrap();
        b.push_row(&[], &[]).unwrap();
        b.push_row(&[1], &[5.0]).unwrap();
        let m = b.finish();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(2).get(1), 5.0);
    }

    #[test]
    fn rejects_unsorted_and_mismatched() {
        let mut b = CsrBuilder::new(4);
        assert!(b.push_row(&[3, 0], &[1.0, 2.0]).is_err());
        assert!(b.push_row(&[0], &[1.0, 2.0]).is_err());
        assert!(b.push_row(&[1, 1], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn fixed_cols_rejects_overflow() {
        let mut b = CsrBuilder::new(2);
        assert!(b.push_row(&[2], &[1.0]).is_err());
    }

    #[test]
    fn auto_cols_grows() {
        let mut b = CsrBuilder::auto_cols();
        b.push_row(&[0], &[1.0]).unwrap();
        b.push_row(&[9], &[1.0]).unwrap();
        let m = b.finish();
        assert_eq!(m.ncols(), 10);
    }

    #[test]
    fn unsorted_entry_api_sorts() {
        let mut b = CsrBuilder::new(5);
        b.push_row_unsorted(vec![(4, 4.0), (1, 1.0)]).unwrap();
        let m = b.finish();
        assert_eq!(m.row(0).indices, &[1, 4]);
        assert_eq!(m.row(0).values, &[1.0, 4.0]);
    }

    #[test]
    fn unsorted_entry_api_rejects_dupes() {
        let mut b = CsrBuilder::new(5);
        assert!(b.push_row_unsorted(vec![(1, 1.0), (1, 2.0)]).is_err());
    }

    #[test]
    fn finish_with_cols_widens_but_never_narrows() {
        let mut b = CsrBuilder::auto_cols();
        b.push_row(&[3], &[1.0]).unwrap();
        assert!(CsrBuilder::auto_cols().finish_with_cols(7).is_ok());
        let m = b.finish_with_cols(8).unwrap();
        assert_eq!(m.ncols(), 8);

        let mut b2 = CsrBuilder::auto_cols();
        b2.push_row(&[3], &[1.0]).unwrap();
        assert!(b2.finish_with_cols(2).is_err());
    }
}
