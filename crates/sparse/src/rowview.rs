//! Borrowed view of a single CSR row (one training sample).

/// A borrowed sparse vector: parallel slices of strictly increasing column
/// indices and their values. This is the type every kernel evaluation
/// consumes; it is `Copy` so it can be passed around freely in hot loops.
#[derive(Clone, Copy, Debug)]
pub struct RowView<'a> {
    /// Strictly increasing column indices.
    pub indices: &'a [u32],
    /// Values matching `indices` element-for-element.
    pub values: &'a [f64],
}

impl<'a> RowView<'a> {
    /// An empty row.
    pub const EMPTY: RowView<'static> = RowView {
        indices: &[],
        values: &[],
    };

    /// Number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True if the row stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate `(column, value)` pairs in increasing column order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + 'a {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Value at `col`, or 0.0 when the entry is not stored.
    pub fn get(&self, col: u32) -> f64 {
        match self.indices.binary_search(&col) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Squared Euclidean norm of the row.
    #[inline]
    pub fn squared_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Materialize into a dense vector of length `ncols`.
    pub fn to_dense(&self, ncols: usize) -> Vec<f64> {
        let mut out = vec![0.0; ncols];
        for (c, v) in self.iter() {
            out[c as usize] = v;
        }
        out
    }

    /// Serialize into `(u32 index, f64 value)` little-endian byte pairs.
    ///
    /// This is the wire format `mpisim` messages use when samples travel
    /// between ranks (row broadcast in Algorithm 2, ring exchange in
    /// Algorithm 3).
    pub fn to_bytes(&self, out: &mut Vec<u8>) {
        out.reserve(self.nnz() * 12);
        for (c, v) in self.iter() {
            out.extend_from_slice(&c.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Parse the wire format produced by [`RowView::to_bytes`] into owned
    /// index/value vectors. Returns `None` if `bytes` is not a whole number
    /// of 12-byte records.
    pub fn from_bytes(bytes: &[u8]) -> Option<(Vec<u32>, Vec<f64>)> {
        if !bytes.len().is_multiple_of(12) {
            return None;
        }
        let n = bytes.len() / 12;
        let mut idx = Vec::with_capacity(n);
        let mut val = Vec::with_capacity(n);
        for rec in bytes.chunks_exact(12) {
            idx.push(u32::from_le_bytes(rec[0..4].try_into().unwrap()));
            val.push(f64::from_le_bytes(rec[4..12].try_into().unwrap()));
        }
        Some((idx, val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowView<'static> {
        RowView {
            indices: &[0, 3, 7],
            values: &[1.0, -2.0, 0.5],
        }
    }

    #[test]
    fn get_present_and_absent() {
        let r = sample();
        assert_eq!(r.get(3), -2.0);
        assert_eq!(r.get(4), 0.0);
        assert_eq!(r.get(7), 0.5);
    }

    #[test]
    fn squared_norm_matches_manual() {
        let r = sample();
        assert!((r.squared_norm() - (1.0 + 4.0 + 0.25)).abs() < 1e-15);
    }

    #[test]
    fn dense_roundtrip() {
        let r = sample();
        let d = r.to_dense(9);
        assert_eq!(d.len(), 9);
        assert_eq!(d[0], 1.0);
        assert_eq!(d[3], -2.0);
        assert_eq!(d[7], 0.5);
        assert_eq!(d.iter().filter(|v| **v != 0.0).count(), 3);
    }

    #[test]
    fn bytes_roundtrip() {
        let r = sample();
        let mut buf = Vec::new();
        r.to_bytes(&mut buf);
        assert_eq!(buf.len(), 36);
        let (idx, val) = RowView::from_bytes(&buf).unwrap();
        assert_eq!(idx, r.indices);
        assert_eq!(val, r.values);
    }

    #[test]
    fn bytes_rejects_ragged_input() {
        assert!(RowView::from_bytes(&[0u8; 13]).is_none());
        assert!(RowView::from_bytes(&[]).map(|(i, _)| i.is_empty()).unwrap());
    }

    #[test]
    fn empty_row_behaves() {
        let r = RowView::EMPTY;
        assert!(r.is_empty());
        assert_eq!(r.nnz(), 0);
        assert_eq!(r.squared_norm(), 0.0);
        assert_eq!(r.get(0), 0.0);
    }
}
