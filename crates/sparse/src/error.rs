//! Error type shared by the sparse crate.

use std::fmt;

/// Errors produced while building, indexing or parsing sparse data.
#[derive(Debug)]
pub enum SparseError {
    /// Row pointers, indices or values arrays are mutually inconsistent.
    Malformed(String),
    /// A column index is out of bounds for the declared number of columns.
    ColumnOutOfBounds { col: u32, ncols: usize },
    /// A row index is out of bounds.
    RowOutOfBounds { row: usize, nrows: usize },
    /// Column indices within a row are not strictly increasing.
    UnsortedRow { row: usize },
    /// Parse failure in the libsvm text format.
    Parse { line: usize, msg: String },
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Labels and rows disagree in count, or labels are not ±1.
    BadLabels(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::Malformed(msg) => write!(f, "malformed CSR structure: {msg}"),
            SparseError::ColumnOutOfBounds { col, ncols } => {
                write!(f, "column index {col} out of bounds for {ncols} columns")
            }
            SparseError::RowOutOfBounds { row, nrows } => {
                write!(f, "row index {row} out of bounds for {nrows} rows")
            }
            SparseError::UnsortedRow { row } => {
                write!(f, "column indices in row {row} are not strictly increasing")
            }
            SparseError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            SparseError::Io(e) => write!(f, "i/o error: {e}"),
            SparseError::BadLabels(msg) => write!(f, "bad labels: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SparseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        SparseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SparseError::ColumnOutOfBounds { col: 7, ncols: 3 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));
        let e = SparseError::Parse {
            line: 12,
            msg: "bad float".into(),
        };
        assert!(e.to_string().contains("12"));
    }

    #[test]
    fn io_error_round_trips_source() {
        use std::error::Error;
        let e: SparseError = std::io::Error::new(std::io::ErrorKind::NotFound, "nope").into();
        assert!(e.source().is_some());
    }
}
