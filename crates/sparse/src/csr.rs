//! Immutable compressed sparse row matrix.

use crate::error::SparseError;
use crate::rowview::RowView;

/// A compressed sparse row matrix.
///
/// Invariants (checked by [`CsrMatrix::validate`], upheld by the
/// constructors):
///
/// * `indptr.len() == nrows + 1`, `indptr[0] == 0`, non-decreasing,
///   `indptr[nrows] == indices.len() == values.len()`;
/// * within each row, column indices are strictly increasing and
///   `< ncols`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    ncols: usize,
}

impl CsrMatrix {
    /// Build from raw parts, validating the invariants.
    pub fn new(
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
        ncols: usize,
    ) -> Result<Self, SparseError> {
        let m = CsrMatrix {
            indptr,
            indices,
            values,
            ncols,
        };
        m.validate()?;
        Ok(m)
    }

    /// An empty matrix with zero rows and `ncols` columns.
    pub fn empty(ncols: usize) -> Self {
        CsrMatrix {
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
            ncols,
        }
    }

    /// Build from a dense row-major matrix, dropping exact zeros.
    pub fn from_dense(rows: &[Vec<f64>], ncols: usize) -> Result<Self, SparseError> {
        let mut b = crate::builder::CsrBuilder::new(ncols);
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for r in rows {
            if r.len() > ncols {
                return Err(SparseError::Malformed(format!(
                    "dense row of length {} exceeds ncols {}",
                    r.len(),
                    ncols
                )));
            }
            idx.clear();
            val.clear();
            for (c, &v) in r.iter().enumerate() {
                if v != 0.0 {
                    idx.push(c as u32);
                    val.push(v);
                }
            }
            b.push_row(&idx, &val)?;
        }
        Ok(b.finish())
    }

    /// Check structural invariants. Cheap relative to construction; used by
    /// constructors and by property tests.
    pub fn validate(&self) -> Result<(), SparseError> {
        if self.indptr.is_empty() || self.indptr[0] != 0 {
            return Err(SparseError::Malformed(
                "indptr must start with 0 and be non-empty".into(),
            ));
        }
        if *self.indptr.last().unwrap() != self.indices.len()
            || self.indices.len() != self.values.len()
        {
            return Err(SparseError::Malformed(format!(
                "indptr end {} vs indices {} vs values {}",
                self.indptr.last().unwrap(),
                self.indices.len(),
                self.values.len()
            )));
        }
        for w in self.indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::Malformed(
                    "indptr must be non-decreasing".into(),
                ));
            }
        }
        for row in 0..self.nrows() {
            let (lo, hi) = (self.indptr[row], self.indptr[row + 1]);
            let idx = &self.indices[lo..hi];
            for pair in idx.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::UnsortedRow { row });
                }
            }
            if let Some(&last) = idx.last() {
                if (last as usize) >= self.ncols {
                    return Err(SparseError::ColumnOutOfBounds {
                        col: last,
                        ncols: self.ncols,
                    });
                }
            }
        }
        Ok(())
    }

    /// Number of rows (samples).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of columns (features).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Total stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Fraction of stored entries relative to a dense matrix.
    pub fn density(&self) -> f64 {
        let cells = self.nrows() as f64 * self.ncols as f64;
        if cells == 0.0 {
            0.0
        } else {
            self.nnz() as f64 / cells
        }
    }

    /// Borrowed view of row `i`. Panics if out of bounds (hot path).
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_> {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        RowView {
            indices: &self.indices[lo..hi],
            values: &self.values[lo..hi],
        }
    }

    /// Checked variant of [`CsrMatrix::row`].
    pub fn try_row(&self, i: usize) -> Result<RowView<'_>, SparseError> {
        if i >= self.nrows() {
            return Err(SparseError::RowOutOfBounds {
                row: i,
                nrows: self.nrows(),
            });
        }
        Ok(self.row(i))
    }

    /// Raw row-pointer slice (for partitioning logic).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Squared Euclidean norm of every row. The RBF kernel consumes these to
    /// turn distance computations into a single dot product.
    pub fn row_squared_norms(&self) -> Vec<f64> {
        (0..self.nrows())
            .map(|i| self.row(i).squared_norm())
            .collect()
    }

    /// Average stored entries per row (the paper's `m`, Table I).
    pub fn mean_row_nnz(&self) -> f64 {
        if self.nrows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows() as f64
        }
    }

    /// Copy out a subset of rows (in the given order) into a new matrix.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Self, SparseError> {
        let mut b = crate::builder::CsrBuilder::new(self.ncols);
        for &r in rows {
            let v = self.try_row(r)?;
            b.push_row(v.indices, v.values)?;
        }
        Ok(b.finish())
    }

    /// Materialize into a dense row-major `Vec<Vec<f64>>` (tests/debug only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        (0..self.nrows())
            .map(|i| self.row(i).to_dense(self.ncols))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 0 3 4 ]
        CsrMatrix::new(
            vec![0, 2, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
            3,
        )
        .unwrap()
    }

    #[test]
    fn dimensions_and_nnz() {
        let m = small();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert!((m.density() - 4.0 / 9.0).abs() < 1e-15);
        assert!((m.mean_row_nnz() - 4.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn rows_view_correctly() {
        let m = small();
        assert_eq!(m.row(0).get(2), 2.0);
        assert!(m.row(1).is_empty());
        assert_eq!(m.row(2).indices, &[1, 2]);
    }

    #[test]
    fn try_row_bounds() {
        let m = small();
        assert!(m.try_row(2).is_ok());
        assert!(matches!(
            m.try_row(3),
            Err(SparseError::RowOutOfBounds { row: 3, nrows: 3 })
        ));
    }

    #[test]
    fn dense_roundtrip() {
        let m = small();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 3).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn validation_catches_unsorted() {
        let e = CsrMatrix::new(vec![0, 2], vec![2, 1], vec![1.0, 2.0], 3);
        assert!(matches!(e, Err(SparseError::UnsortedRow { row: 0 })));
    }

    #[test]
    fn validation_catches_duplicate_col() {
        let e = CsrMatrix::new(vec![0, 2], vec![1, 1], vec![1.0, 2.0], 3);
        assert!(matches!(e, Err(SparseError::UnsortedRow { row: 0 })));
    }

    #[test]
    fn validation_catches_col_overflow() {
        let e = CsrMatrix::new(vec![0, 1], vec![5], vec![1.0], 3);
        assert!(matches!(e, Err(SparseError::ColumnOutOfBounds { .. })));
    }

    #[test]
    fn validation_catches_bad_indptr() {
        assert!(CsrMatrix::new(vec![1, 2], vec![0], vec![1.0], 3).is_err());
        assert!(CsrMatrix::new(vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0], 3).is_err());
        assert!(CsrMatrix::new(vec![0, 3], vec![0], vec![1.0], 3).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let m = small();
        let s = m.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.row(0).indices, m.row(2).indices);
        assert_eq!(s.row(1).values, m.row(0).values);
    }

    #[test]
    fn row_squared_norms_match() {
        let m = small();
        let n = m.row_squared_norms();
        assert_eq!(n.len(), 3);
        assert!((n[0] - 5.0).abs() < 1e-15);
        assert_eq!(n[1], 0.0);
        assert!((n[2] - 25.0).abs() < 1e-15);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::empty(10);
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.density(), 0.0);
        assert!(m.validate().is_ok());
    }
}
