//! Reader/writer for the libsvm text format.
//!
//! One sample per line: `<label> <col>:<value> <col>:<value> ...` with
//! 1-based column indices (the de-facto convention of the libsvm dataset
//! page the paper downloads from). Comments after `#` are ignored.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::CsrBuilder;
use crate::dataset::Dataset;
use crate::error::SparseError;

/// Parse a dataset in libsvm format from any reader.
///
/// Column indices in the file are 1-based and converted to 0-based; indices
/// within a line must be strictly increasing (as `svm-scale` emits them).
pub fn read_libsvm_from<R: Read>(reader: R) -> Result<Dataset, SparseError> {
    let mut b = CsrBuilder::auto_cols();
    let mut labels: Vec<f64> = Vec::new();
    let mut idx: Vec<u32> = Vec::new();
    let mut val: Vec<f64> = Vec::new();
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let content = match line.split('#').next() {
            Some(c) => c.trim(),
            None => "",
        };
        if content.is_empty() {
            continue;
        }
        let mut toks = content.split_ascii_whitespace();
        let label_tok = toks.next().ok_or_else(|| SparseError::Parse {
            line: lineno,
            msg: "missing label".into(),
        })?;
        let label: f64 = label_tok.parse().map_err(|_| SparseError::Parse {
            line: lineno,
            msg: format!("bad label '{label_tok}'"),
        })?;
        idx.clear();
        val.clear();
        for tok in toks {
            let (c, v) = tok.split_once(':').ok_or_else(|| SparseError::Parse {
                line: lineno,
                msg: format!("expected col:value, got '{tok}'"),
            })?;
            let c: u64 = c.parse().map_err(|_| SparseError::Parse {
                line: lineno,
                msg: format!("bad column '{c}'"),
            })?;
            if c == 0 {
                return Err(SparseError::Parse {
                    line: lineno,
                    msg: "libsvm columns are 1-based; found 0".into(),
                });
            }
            let v: f64 = v.parse().map_err(|_| SparseError::Parse {
                line: lineno,
                msg: format!("bad value '{v}'"),
            })?;
            idx.push((c - 1) as u32);
            val.push(v);
        }
        b.push_row(&idx, &val).map_err(|e| SparseError::Parse {
            line: lineno,
            msg: e.to_string(),
        })?;
        labels.push(label);
    }
    Dataset::new(b.finish(), labels)
}

/// Parse a dataset in libsvm format from a file path.
pub fn read_libsvm<P: AsRef<Path>>(path: P) -> Result<Dataset, SparseError> {
    read_libsvm_from(std::fs::File::open(path)?)
}

/// Write a dataset in libsvm format to any writer (1-based columns).
pub fn write_libsvm_to<W: Write>(ds: &Dataset, writer: W) -> Result<(), SparseError> {
    let mut w = BufWriter::new(writer);
    for i in 0..ds.len() {
        let y = ds.y[i];
        if y == y.trunc() {
            write!(w, "{}", y as i64)?;
        } else {
            write!(w, "{y}")?;
        }
        for (c, v) in ds.x.row(i).iter() {
            write!(w, " {}:{}", c + 1, fmt_value(v))?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Write a dataset in libsvm format to a file path.
pub fn write_libsvm<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), SparseError> {
    write_libsvm_to(ds, std::fs::File::create(path)?)
}

/// Shortest representation that round-trips through `f64` parsing.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // Rust's default f64 Display is shortest-roundtrip.
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CsrBuilder;

    fn toy() -> Dataset {
        let mut b = CsrBuilder::new(4);
        b.push_row(&[0, 2], &[1.5, -2.0]).unwrap();
        b.push_row(&[3], &[0.25]).unwrap();
        b.push_row(&[], &[]).unwrap();
        Dataset::new(b.finish(), vec![1.0, -1.0, 1.0]).unwrap()
    }

    #[test]
    fn roundtrip_through_bytes() {
        let ds = toy();
        let mut buf = Vec::new();
        write_libsvm_to(&ds, &mut buf).unwrap();
        let back = read_libsvm_from(&buf[..]).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.y, ds.y);
        assert_eq!(back.x.row(0).indices, ds.x.row(0).indices);
        assert_eq!(back.x.row(0).values, ds.x.row(0).values);
        assert_eq!(back.x.row(1).get(3), 0.25);
        assert!(back.x.row(2).is_empty());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n+1 1:1 3:2 # trailing\n-1 2:0.5\n";
        let ds = read_libsvm_from(text.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.y, vec![1.0, -1.0]);
        assert_eq!(ds.x.row(0).get(0), 1.0);
        assert_eq!(ds.x.row(0).get(2), 2.0);
        assert_eq!(ds.x.row(1).get(1), 0.5);
    }

    #[test]
    fn rejects_zero_based_columns() {
        let err = read_libsvm_from("+1 0:1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SparseError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_libsvm_from("+1 nonsense\n".as_bytes()).is_err());
        assert!(read_libsvm_from("notalabel 1:2\n".as_bytes()).is_err());
        assert!(read_libsvm_from("+1 1:x\n".as_bytes()).is_err());
        // unsorted columns within a row
        assert!(read_libsvm_from("+1 3:1 1:1\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_dataset() {
        let ds = read_libsvm_from("".as_bytes()).unwrap();
        assert_eq!(ds.len(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("shrinksvm-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.libsvm");
        let ds = toy();
        write_libsvm(&ds, &path).unwrap();
        let back = read_libsvm(&path).unwrap();
        assert_eq!(back.y, ds.y);
        std::fs::remove_file(&path).ok();
    }
}
