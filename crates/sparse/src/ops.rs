//! Sparse vector arithmetic — the inner loop of every kernel evaluation.
//!
//! The paper's time-complexity symbol `λ` (Table I) is the average cost of
//! one inner product `⟨x_i, x_j⟩`; these functions are exactly what `λ`
//! measures in our reproduction (see `shrinksvm-core::perfmodel`).

use crate::rowview::RowView;

/// Merge-join dot product of two sparse rows. `O(nnz_a + nnz_b)`.
#[inline]
pub fn dot(a: RowView<'_>, b: RowView<'_>) -> f64 {
    let (ai, av) = (a.indices, a.values);
    let (bi, bv) = (b.indices, b.values);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut acc = 0.0;
    while i < ai.len() && j < bi.len() {
        let ca = ai[i];
        let cb = bi[j];
        if ca == cb {
            acc += av[i] * bv[j];
            i += 1;
            j += 1;
        } else if ca < cb {
            i += 1;
        } else {
            j += 1;
        }
    }
    acc
}

/// Dot product of a sparse row against a dense vector (gather form).
/// `O(nnz_a)` — used when one operand has been scattered to dense, the
/// classic trick for repeated products against the same row.
#[inline]
pub fn dot_dense(a: RowView<'_>, dense: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (c, v) in a.iter() {
        acc += v * dense[c as usize];
    }
    acc
}

/// Gather-form dot product against a *scattered* row, restricted to an
/// occupancy mask. `O(nnz_a)`.
///
/// `dense`/`occupied` describe a sparse row `b` that has been scattered into
/// a dense scratch buffer (see [`crate::scratch::ScratchPad`]): `occupied[c]`
/// is true exactly at `b`'s stored columns. The accumulator adds
/// `av[i] * dense[c]` in ascending order of `a`'s stored columns, **only** at
/// occupied columns — the exact sequence of f64 operations the merge-join
/// [`dot`] performs on the overlap, so the result is bit-identical:
/// `dot_scatter(a, …).to_bits() == dot(a, b).to_bits()`.
///
/// The occupancy mask is not an optimization, it is what makes the
/// bit-identity argument a triviality instead of a case analysis: a naive
/// `acc += v * dense[c]` over *all* of `a`'s columns adds `v * 0.0` terms at
/// non-overlap columns, which is only benign when `v` is finite (for
/// `v = ±inf` or NaN it poisons the accumulator with NaN) and only because a
/// sum that starts at `+0.0` can never reach `-0.0`. With the mask the two
/// paths execute the same f64 operations, full stop.
#[inline]
pub fn dot_scatter(a: RowView<'_>, dense: &[f64], occupied: &[bool]) -> f64 {
    let mut acc = 0.0;
    for (c, v) in a.iter() {
        let c = c as usize;
        if occupied[c] {
            acc += v * dense[c];
        }
    }
    acc
}

/// Scatter `a` into `dense` (which must be zeroed and long enough), returning
/// a guard list of touched columns so the caller can cheaply un-scatter.
pub fn scatter(a: RowView<'_>, dense: &mut [f64]) {
    for (c, v) in a.iter() {
        dense[c as usize] = v;
    }
}

/// Undo a previous [`scatter`] of `a`.
pub fn unscatter(a: RowView<'_>, dense: &mut [f64]) {
    for (c, _) in a.iter() {
        dense[c as usize] = 0.0;
    }
}

/// Squared Euclidean distance using precomputed squared norms:
/// `||a − b||² = ||a||² + ||b||² − 2⟨a,b⟩`, clamped at 0 against rounding.
#[inline]
pub fn squared_distance(a: RowView<'_>, b: RowView<'_>, a_sq: f64, b_sq: f64) -> f64 {
    squared_distance_from_dot(dot(a, b), a_sq, b_sq)
}

/// Squared-norm identity applied to an already-computed dot product.
///
/// Split out of [`squared_distance`] so callers that obtain `⟨a,b⟩` through
/// a different (bit-identical) path — e.g. [`dot_scatter`] against a
/// [`crate::scratch::ScratchPad`] — reuse the same clamp and the same f64
/// expression, keeping kernel values bit-for-bit equal across dot
/// implementations.
#[inline]
pub fn squared_distance_from_dot(dot_ab: f64, a_sq: f64, b_sq: f64) -> f64 {
    let d = a_sq + b_sq - 2.0 * dot_ab;
    if d < 0.0 {
        0.0
    } else {
        d
    }
}

/// Squared Euclidean distance computed directly (no cached norms).
pub fn squared_distance_direct(a: RowView<'_>, b: RowView<'_>) -> f64 {
    squared_distance(a, b, a.squared_norm(), b.squared_norm())
}

/// `y += alpha * a` with `y` dense.
pub fn axpy_into(alpha: f64, a: RowView<'_>, y: &mut [f64]) {
    for (c, v) in a.iter() {
        y[c as usize] += alpha * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rowview::RowView;

    const A_IDX: &[u32] = &[0, 2, 5];
    const A_VAL: &[f64] = &[1.0, 2.0, 3.0];
    const B_IDX: &[u32] = &[2, 3, 5];
    const B_VAL: &[f64] = &[4.0, 9.0, -1.0];

    fn a() -> RowView<'static> {
        RowView {
            indices: A_IDX,
            values: A_VAL,
        }
    }
    fn b() -> RowView<'static> {
        RowView {
            indices: B_IDX,
            values: B_VAL,
        }
    }

    #[test]
    fn dot_overlapping() {
        // overlap at cols 2 and 5: 2*4 + 3*(-1) = 5
        assert_eq!(dot(a(), b()), 5.0);
        assert_eq!(dot(b(), a()), 5.0); // symmetry
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let c = RowView {
            indices: &[1, 4],
            values: &[7.0, 7.0],
        };
        assert_eq!(dot(a(), c), 0.0);
    }

    #[test]
    fn dot_with_empty() {
        assert_eq!(dot(a(), RowView::EMPTY), 0.0);
    }

    #[test]
    fn dense_dot_matches_sparse() {
        let bd = b().to_dense(6);
        assert_eq!(dot_dense(a(), &bd), dot(a(), b()));
    }

    /// Scatter `b` by hand (dense values + occupancy mask) for the gather dot.
    fn scattered_b(dim: usize) -> (Vec<f64>, Vec<bool>) {
        let mut dense = vec![0.0; dim];
        let mut occ = vec![false; dim];
        for (c, v) in b().iter() {
            dense[c as usize] = v;
            occ[c as usize] = true;
        }
        (dense, occ)
    }

    #[test]
    fn scatter_dot_bitwise_matches_merge_join() {
        let (dense, occ) = scattered_b(6);
        assert_eq!(
            dot_scatter(a(), &dense, &occ).to_bits(),
            dot(a(), b()).to_bits()
        );
    }

    #[test]
    fn scatter_dot_masks_nonfinite_outside_overlap() {
        // `a` has an infinite value at a column `b` does not store; the naive
        // unmasked gather would add `inf * 0.0 = NaN`. The mask must skip it.
        let weird = RowView {
            indices: &[1, 2],
            values: &[f64::INFINITY, 0.5],
        };
        let (dense, occ) = scattered_b(6);
        let got = dot_scatter(weird, &dense, &occ);
        assert_eq!(got.to_bits(), dot(weird, b()).to_bits());
        assert_eq!(got, 0.5 * 4.0);
    }

    #[test]
    fn scatter_dot_preserves_signed_zero_products() {
        // Overlap whose single product is -0.0: both paths must return the
        // same zero bit pattern.
        let neg = RowView {
            indices: &[2],
            values: &[-0.0],
        };
        let (dense, occ) = scattered_b(6);
        assert_eq!(
            dot_scatter(neg, &dense, &occ).to_bits(),
            dot(neg, b()).to_bits()
        );
    }

    #[test]
    fn distance_from_dot_matches_fused() {
        let d = dot(a(), b());
        let a_sq = a().squared_norm();
        let b_sq = b().squared_norm();
        assert_eq!(
            squared_distance_from_dot(d, a_sq, b_sq).to_bits(),
            squared_distance(a(), b(), a_sq, b_sq).to_bits()
        );
    }

    #[test]
    fn scatter_unscatter_restores_zeros() {
        let mut d = vec![0.0; 6];
        scatter(a(), &mut d);
        assert_eq!(d[2], 2.0);
        unscatter(a(), &mut d);
        assert!(d.iter().all(|v| *v == 0.0));
    }

    #[test]
    fn distance_identity() {
        let direct: f64 = {
            let ad = a().to_dense(6);
            let bd = b().to_dense(6);
            ad.iter().zip(&bd).map(|(x, y)| (x - y) * (x - y)).sum()
        };
        let via_norms = squared_distance_direct(a(), b());
        assert!((direct - via_norms).abs() < 1e-12);
    }

    #[test]
    fn distance_self_is_zero() {
        assert_eq!(squared_distance_direct(a(), a()), 0.0);
    }

    #[test]
    fn distance_never_negative() {
        // engineered rounding: nearly identical vectors
        let v1 = RowView {
            indices: &[0],
            values: &[1.000_000_000_000_1],
        };
        let v2 = RowView {
            indices: &[0],
            values: &[1.0],
        };
        assert!(squared_distance_direct(v1, v2) >= 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![0.0; 6];
        axpy_into(2.0, a(), &mut y);
        axpy_into(1.0, b(), &mut y);
        assert_eq!(y[2], 2.0 * 2.0 + 4.0);
        assert_eq!(y[5], 2.0 * 3.0 - 1.0);
        assert_eq!(y[3], 9.0);
    }
}
