//! Fault-injection ledger entries.
//!
//! When the substrate runs under an installed fault plan, every injected
//! fault (and every recovery action the transport took) is recorded as a
//! [`FaultEvent`] and surfaced through the
//! [`crate::report::ValidationReport`], so a chaos run leaves a complete,
//! deterministic audit trail: what was injected, where, when (in simulated
//! time), and what the transport did about it.
//!
//! Fault events are *not* violations — an injected fault that the
//! transport survived is the expected outcome of a chaos run — so they do
//! not affect [`crate::report::ValidationReport::is_clean`].

use std::fmt;

/// One injected fault (or transport recovery action) observed during a run.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// A message copy was dropped in flight; the transport retransmitted.
    MessageDropped {
        /// Receiving rank.
        rank: usize,
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Zero-based transmission attempt that was lost.
        attempt: u32,
        /// Sender's simulated departure time of the original copy.
        sim_time: f64,
    },
    /// A message copy arrived with a checksum mismatch (injected payload
    /// corruption); the transport discarded it and retransmitted.
    MessageCorrupted {
        /// Receiving rank.
        rank: usize,
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Zero-based transmission attempt that was corrupted.
        attempt: u32,
        /// Sender's simulated departure time of the original copy.
        sim_time: f64,
    },
    /// A message was delayed in flight by `secs` simulated seconds.
    MessageDelayed {
        /// Receiving rank.
        rank: usize,
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Extra in-flight seconds injected.
        secs: f64,
        /// Sender's simulated departure time.
        sim_time: f64,
    },
    /// Every transmission attempt of a message was lost: the retry budget
    /// is exhausted and the message is permanently gone. The transport
    /// fails fast with a named diagnosis when it records this.
    MessageLost {
        /// Receiving rank.
        rank: usize,
        /// Sending rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Total transmission attempts made (original + retries).
        attempts: u32,
        /// Sender's simulated departure time of the original copy.
        sim_time: f64,
    },
    /// A rank was killed by an injected crash.
    RankCrashed {
        /// The crashed rank.
        rank: usize,
        /// The rank's simulated clock at death.
        sim_time: f64,
    },
    /// A rank entered an injected slowdown window (recorded once per rule).
    RankSlowed {
        /// The slowed rank.
        rank: usize,
        /// Compute-time multiplier in force.
        factor: f64,
        /// The rank's simulated clock when the slowdown first applied.
        sim_time: f64,
    },
}

impl FaultEvent {
    /// Deterministic ordering key, so ledgers render byte-identically
    /// regardless of thread interleaving: events sort by simulated time,
    /// then by the involved ranks, tag and attempt, then by kind.
    pub fn sort_key(&self) -> (u64, usize, usize, u64, u32, u8) {
        // Simulated times are nonnegative finite, so the raw bit pattern
        // orders them correctly.
        match *self {
            FaultEvent::MessageDropped {
                rank,
                src,
                tag,
                attempt,
                sim_time,
            } => (sim_time.to_bits(), rank, src, tag, attempt, 0),
            FaultEvent::MessageCorrupted {
                rank,
                src,
                tag,
                attempt,
                sim_time,
            } => (sim_time.to_bits(), rank, src, tag, attempt, 1),
            FaultEvent::MessageDelayed {
                rank,
                src,
                tag,
                sim_time,
                ..
            } => (sim_time.to_bits(), rank, src, tag, 0, 2),
            FaultEvent::MessageLost {
                rank,
                src,
                tag,
                attempts,
                sim_time,
            } => (sim_time.to_bits(), rank, src, tag, attempts, 3),
            FaultEvent::RankCrashed { rank, sim_time } => (sim_time.to_bits(), rank, 0, 0, 0, 4),
            FaultEvent::RankSlowed { rank, sim_time, .. } => (sim_time.to_bits(), rank, 0, 0, 0, 5),
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultEvent::MessageDropped {
                rank,
                src,
                tag,
                attempt,
                sim_time,
            } => write!(
                f,
                "t={sim_time:.6}s drop: copy {attempt} of tag {tag:#x} from rank {src} \
                 to rank {rank} lost in flight; retransmitted"
            ),
            FaultEvent::MessageCorrupted {
                rank,
                src,
                tag,
                attempt,
                sim_time,
            } => write!(
                f,
                "t={sim_time:.6}s corrupt: copy {attempt} of tag {tag:#x} from rank {src} \
                 to rank {rank} failed its checksum; retransmitted"
            ),
            FaultEvent::MessageDelayed {
                rank,
                src,
                tag,
                secs,
                sim_time,
            } => write!(
                f,
                "t={sim_time:.6}s delay: tag {tag:#x} from rank {src} to rank {rank} \
                 held {secs:.6}s in flight"
            ),
            FaultEvent::MessageLost {
                rank,
                src,
                tag,
                attempts,
                sim_time,
            } => write!(
                f,
                "t={sim_time:.6}s loss: tag {tag:#x} from rank {src} to rank {rank} \
                 permanently lost after {attempts} transmission attempt(s)"
            ),
            FaultEvent::RankCrashed { rank, sim_time } => {
                write!(f, "t={sim_time:.6}s crash: rank {rank} killed")
            }
            FaultEvent::RankSlowed {
                rank,
                factor,
                sim_time,
            } => write!(
                f,
                "t={sim_time:.6}s slowdown: rank {rank} compute charged at {factor}x"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_rank_src_tag() {
        let e = FaultEvent::MessageDropped {
            rank: 2,
            src: 1,
            tag: 0x2a,
            attempt: 0,
            sim_time: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("from rank 1"), "{s}");
        assert!(s.contains("to rank 2"), "{s}");
        assert!(s.contains("tag 0x2a"), "{s}");
    }

    #[test]
    fn sort_key_orders_by_time_first() {
        let early = FaultEvent::RankCrashed {
            rank: 9,
            sim_time: 0.5,
        };
        let late = FaultEvent::MessageDropped {
            rank: 0,
            src: 0,
            tag: 0,
            attempt: 0,
            sim_time: 2.0,
        };
        assert!(early.sort_key() < late.sort_key());
    }

    #[test]
    fn loss_event_names_attempt_budget() {
        let e = FaultEvent::MessageLost {
            rank: 1,
            src: 0,
            tag: 7,
            attempts: 5,
            sim_time: 0.0,
        };
        assert!(e.to_string().contains("5 transmission attempt(s)"));
    }
}
