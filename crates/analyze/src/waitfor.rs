//! Wait-for-graph deadlock diagnosis.
//!
//! Every blocking receive publishes a `(waiter → src, tag)` edge. Each rank
//! has at most one outgoing edge (a rank blocks on one receive at a time),
//! so the wait-for graph is a functional graph and cycle detection is a
//! successor walk. A deadlock is diagnosed when every unfinished rank is
//! blocked: either the walk closes a cycle, or some rank waits on a rank
//! that already finished and whose message can therefore never arrive.

use std::fmt;

/// One blocking-receive dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked rank.
    pub waiter: usize,
    /// The rank it expects a message from.
    pub src: usize,
    /// The tag it is matching.
    pub tag: u64,
    /// Whether the tag is in the collective namespace (reports print the
    /// collective name space distinctly from user tags).
    pub collective: bool,
}

impl fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.collective {
            write!(
                f,
                "rank {} blocked in a collective, awaiting rank {} (internal tag {:#x})",
                self.waiter, self.src, self.tag
            )
        } else {
            write!(
                f,
                "rank {} blocked in recv(src={}, tag={})",
                self.waiter, self.src, self.tag
            )
        }
    }
}

/// What one rank is doing right now, as far as the detector knows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RankState {
    /// Executing user code or compute.
    #[default]
    Running,
    /// Blocked in a receive with no matching message available.
    Blocked(WaitEdge),
    /// Returned from its rank closure.
    Finished,
}

/// The diagnosis produced when the whole universe is blocked.
#[derive(Clone, Debug)]
pub struct DeadlockReport {
    /// The cycle of ranks, if the blocked edges close one (each waits on
    /// the next, last waits on first).
    pub cycle: Vec<usize>,
    /// Every rank's state at diagnosis time, indexed by rank.
    pub states: Vec<RankState>,
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "communication deadlock diagnosed")?;
        if !self.cycle.is_empty() {
            let ring: Vec<String> = self
                .cycle
                .iter()
                .chain(self.cycle.first())
                .map(|r| format!("rank {r}"))
                .collect();
            writeln!(f, "wait-for cycle: {}", ring.join(" -> "))?;
        }
        writeln!(f, "per-rank states:")?;
        for (rank, st) in self.states.iter().enumerate() {
            match st {
                RankState::Running => writeln!(f, "  rank {rank}: running")?,
                RankState::Finished => writeln!(f, "  rank {rank}: finished")?,
                RankState::Blocked(edge) => {
                    let fate = match self.states.get(edge.src) {
                        Some(RankState::Finished) => {
                            " — source already finished; message can never arrive"
                        }
                        _ => "",
                    };
                    writeln!(f, "  {edge}{fate}")?;
                }
            }
        }
        Ok(())
    }
}

/// Shared registry of per-rank blocking states.
#[derive(Debug)]
pub struct WaitForGraph {
    states: Vec<RankState>,
    /// Bumped on every state change; lets a detector confirm stability.
    version: u64,
}

impl WaitForGraph {
    /// All ranks start running.
    pub fn new(p: usize) -> Self {
        WaitForGraph {
            states: vec![RankState::Running; p],
            version: 0,
        }
    }

    /// Update one rank's state.
    pub fn set(&mut self, rank: usize, state: RankState) {
        self.states[rank] = state;
        self.version += 1;
    }

    /// Current modification count.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current state of `rank`.
    pub fn state(&self, rank: usize) -> RankState {
        self.states[rank]
    }

    /// True when no rank is `Running` and at least one is `Blocked` — the
    /// precondition for a deadlock diagnosis.
    pub fn all_blocked(&self) -> bool {
        let mut blocked = 0usize;
        for st in &self.states {
            match st {
                RankState::Running => return false,
                RankState::Blocked(_) => blocked += 1,
                RankState::Finished => {}
            }
        }
        blocked > 0
    }

    /// Walk blocked edges from the lowest blocked rank; return the cycle if
    /// one closes.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        let p = self.states.len();
        for start in 0..p {
            if !matches!(self.states[start], RankState::Blocked(_)) {
                continue;
            }
            let mut path: Vec<usize> = Vec::new();
            let mut on_path = vec![false; p];
            let mut cur = start;
            // walk successors until the chain ends at a running/finished rank
            while let RankState::Blocked(edge) = self.states[cur] {
                if on_path[cur] {
                    // close the cycle at the first repeated rank
                    let pos = path.iter().position(|&r| r == cur).unwrap_or(0);
                    return Some(path[pos..].to_vec());
                }
                on_path[cur] = true;
                path.push(cur);
                cur = edge.src;
            }
        }
        None
    }

    /// Produce the full diagnosis (cycle, if any, plus every rank's state).
    pub fn deadlock_report(&self) -> DeadlockReport {
        DeadlockReport {
            cycle: self.find_cycle().unwrap_or_default(),
            states: self.states.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(waiter: usize, src: usize, tag: u64) -> RankState {
        RankState::Blocked(WaitEdge {
            waiter,
            src,
            tag,
            collective: false,
        })
    }

    #[test]
    fn running_rank_prevents_diagnosis() {
        let mut g = WaitForGraph::new(3);
        g.set(0, edge(0, 1, 7));
        g.set(1, edge(1, 0, 7));
        assert!(!g.all_blocked(), "rank 2 still runs");
        g.set(2, RankState::Finished);
        assert!(g.all_blocked());
    }

    #[test]
    fn two_cycle_is_found() {
        let mut g = WaitForGraph::new(2);
        g.set(0, edge(0, 1, 3));
        g.set(1, edge(1, 0, 4));
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&0) && cycle.contains(&1));
    }

    #[test]
    fn three_ring_cycle_is_found_in_order() {
        let mut g = WaitForGraph::new(3);
        g.set(0, edge(0, 2, 1));
        g.set(1, edge(1, 0, 1));
        g.set(2, edge(2, 1, 1));
        let cycle = g.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn chain_to_finished_rank_has_no_cycle_but_reports_fate() {
        let mut g = WaitForGraph::new(2);
        g.set(0, RankState::Finished);
        g.set(1, edge(1, 0, 9));
        assert!(g.all_blocked());
        assert!(g.find_cycle().is_none());
        let report = g.deadlock_report().to_string();
        assert!(
            report.contains("source already finished"),
            "missing fate note: {report}"
        );
        assert!(
            report.contains("rank 1 blocked in recv(src=0, tag=9)"),
            "{report}"
        );
    }

    #[test]
    fn report_names_rank_op_and_tag() {
        let mut g = WaitForGraph::new(2);
        g.set(0, edge(0, 1, 5));
        g.set(1, edge(1, 0, 6));
        let report = g.deadlock_report().to_string();
        assert!(report.contains("wait-for cycle"), "{report}");
        assert!(
            report.contains("rank 0 blocked in recv(src=1, tag=5)"),
            "{report}"
        );
        assert!(
            report.contains("rank 1 blocked in recv(src=0, tag=6)"),
            "{report}"
        );
    }

    #[test]
    fn self_deadlock_is_a_unit_cycle() {
        let mut g = WaitForGraph::new(1);
        g.set(0, edge(0, 0, 2));
        assert_eq!(g.find_cycle(), Some(vec![0]));
    }

    #[test]
    fn version_counts_changes() {
        let mut g = WaitForGraph::new(2);
        let v0 = g.version();
        g.set(0, edge(0, 1, 1));
        g.set(0, RankState::Running);
        assert_eq!(g.version(), v0 + 2);
    }
}
