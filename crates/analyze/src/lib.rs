//! Communication-correctness analyses for message-passing programs.
//!
//! The simulated-MPI substrate (`shrinksvm-mpisim`) runs the paper's
//! distributed solver at up to thousands of ranks, and the paper's whole
//! claim is that shrinking plus gradient reconstruction stays *exact* under
//! that communication pattern. This crate holds the machinery that proves a
//! run was communication-correct — the role TSan/MUST play for real MPI
//! programs:
//!
//! - [`vclock::VectorClock`] — per-rank logical clocks attached to every
//!   message, checked for happens-before consistency at receive time.
//! - [`ledger::CollectiveLedger`] — a per-universe ledger of collective
//!   fingerprints that catches rank-divergent collective sequences (the
//!   classic mismatched-`Bcast`/`Allreduce` bug) at the first divergent
//!   operation.
//! - [`waitfor::WaitForGraph`] — per-rank blocking state with cycle
//!   diagnosis, so a communication deadlock is reported immediately with a
//!   full per-rank wait report instead of a wall-clock timeout.
//! - [`report::ValidationReport`] — finalize-time findings: unreceived
//!   messages, never-matched buffered messages, logical-clock regressions,
//!   LogGP cost-model violations and tag-discipline breaches.
//! - [`fault::FaultEvent`] — the fault-injection ledger: when the
//!   substrate runs under a fault plan, every injected fault and every
//!   transport recovery action is recorded here and rendered with the
//!   report, deterministically ordered.
//!
//! The crate is dependency-free and knows nothing about threads or
//! channels: the substrate feeds it events and asks for verdicts, which
//! keeps every analysis deterministic and unit-testable in isolation.

pub mod fault;
pub mod ledger;
pub mod report;
pub mod vclock;
pub mod waitfor;

pub use fault::FaultEvent;
pub use ledger::{CollectiveDivergence, CollectiveKind, CollectiveLedger, Fingerprint};
pub use report::{ValidationReport, Violation};
pub use vclock::VectorClock;
pub use waitfor::{DeadlockReport, RankState, WaitEdge, WaitForGraph};
