//! Finalize-time validation findings.

use std::fmt;

use crate::fault::FaultEvent;

/// One communication-correctness violation observed during a run.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A user-facing point-to-point call used a tag inside the reserved
    /// collective namespace.
    TagOutOfRange {
        /// Rank that issued the call.
        rank: usize,
        /// The offending tag.
        tag: u64,
        /// `"send"`, `"recv"` or `"irecv"`.
        op: &'static str,
    },
    /// A received message's vector clock regressed: its source component
    /// was not strictly greater than the last one seen from that source —
    /// the channel reordered, duplicated or fabricated a message.
    ClockRegression {
        /// Receiving rank.
        rank: usize,
        /// Source rank.
        src: usize,
        /// Source clock component previously seen.
        prev: u64,
        /// Source clock component on the offending message.
        got: u64,
        /// Tag of the offending message.
        tag: u64,
    },
    /// The receiver's simulated clock after accepting a message was below
    /// the LogGP lower bound `depart + latency + bytes·G`.
    LogGpViolation {
        /// Receiving rank.
        rank: usize,
        /// Source rank.
        src: usize,
        /// Tag of the offending message.
        tag: u64,
        /// The minimum legal receive-side clock.
        expect_min: f64,
        /// The clock actually observed.
        got: f64,
    },
    /// A message was sent but never received: it was still sitting in the
    /// destination's channel when the rank finished.
    UnreceivedMessage {
        /// Sending rank.
        src: usize,
        /// Destination rank.
        dst: usize,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: usize,
    },
    /// A message was pulled off a channel (while matching another tag) but
    /// never matched by any receive before the rank finished.
    UnmatchedPending {
        /// Rank holding the orphaned message.
        rank: usize,
        /// Source rank.
        src: usize,
        /// Message tag.
        tag: u64,
        /// Payload size.
        bytes: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TagOutOfRange { rank, tag, op } => write!(
                f,
                "tag discipline: rank {rank} called {op} with tag {tag:#x}, \
                 which is inside the reserved collective namespace"
            ),
            Violation::ClockRegression {
                rank,
                src,
                prev,
                got,
                tag,
            } => write!(
                f,
                "happens-before: rank {rank} received a message (tag {tag:#x}) from rank {src} \
                 whose source clock {got} does not exceed the previously observed {prev}"
            ),
            Violation::LogGpViolation {
                rank,
                src,
                tag,
                expect_min,
                got,
            } => write!(
                f,
                "LogGP consistency: rank {rank} accepted a message (tag {tag:#x}) from rank {src} \
                 at simulated time {got} < legal minimum {expect_min}"
            ),
            Violation::UnreceivedMessage {
                src,
                dst,
                tag,
                bytes,
            } => write!(
                f,
                "message conservation: {bytes}-byte message from rank {src} to rank {dst} \
                 with tag {tag:#x} was sent but never received"
            ),
            Violation::UnmatchedPending {
                rank,
                src,
                tag,
                bytes,
            } => write!(
                f,
                "message conservation: rank {rank} buffered a {bytes}-byte message from rank {src} \
                 with tag {tag:#x} that no receive ever matched"
            ),
        }
    }
}

/// Everything the validator found over one universe run.
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All violations, in the order ranks finalized.
    pub violations: Vec<Violation>,
    /// Fault-injection ledger: every injected fault and transport recovery
    /// action, when a fault plan was installed. Not violations — a
    /// survived fault is a chaos run's expected outcome — so they do not
    /// affect [`ValidationReport::is_clean`].
    pub faults: Vec<FaultEvent>,
    /// Flight-recorder snapshot: the last N events per rank, pre-rendered
    /// as text lines, when a flight recorder was attached to the run.
    /// Diagnostic context only — never a violation — so it does not
    /// affect [`ValidationReport::is_clean`]. Lines are already in rank
    /// order and [`ValidationReport::normalize`] leaves them alone (the
    /// within-rank ring order *is* the event order).
    pub flight: Vec<String>,
}

impl ValidationReport {
    /// True when the run was communication-correct. Injected faults the
    /// transport survived do not make a run dirty.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Append another rank's findings.
    pub fn extend(&mut self, more: Vec<Violation>) {
        self.violations.extend(more);
    }

    /// Append fault-ledger entries.
    pub fn extend_faults(&mut self, more: Vec<FaultEvent>) {
        self.faults.extend(more);
    }

    /// Sort findings into a deterministic order, so two runs with the same
    /// seed render byte-identical reports regardless of how the OS
    /// scheduled the rank threads. Violations sort by their rendered text,
    /// fault events by simulated time then rank/src/tag/kind.
    pub fn normalize(&mut self) {
        self.violations.sort_by_key(|v| v.to_string());
        self.faults.sort_by_key(FaultEvent::sort_key);
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            writeln!(f, "communication validation: clean")?;
        } else {
            writeln!(
                f,
                "communication validation failed with {} violation(s):",
                self.violations.len()
            )?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
        }
        if !self.faults.is_empty() {
            writeln!(
                f,
                "fault-injection ledger ({} event(s)):",
                self.faults.len()
            )?;
            for e in &self.faults {
                writeln!(f, "  - {e}")?;
            }
        }
        if !self.flight.is_empty() {
            writeln!(f, "flight recorder ({} line(s)):", self.flight.len())?;
            for l in &self.flight {
                writeln!(f, "  {l}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_prints_clean() {
        let r = ValidationReport::default();
        assert!(r.is_clean());
        assert!(r.to_string().contains("clean"));
    }

    #[test]
    fn violations_render_src_dst_tag() {
        let mut r = ValidationReport::default();
        r.extend(vec![Violation::UnreceivedMessage {
            src: 1,
            dst: 2,
            tag: 0x2a,
            bytes: 16,
        }]);
        let s = r.to_string();
        assert!(!r.is_clean());
        assert!(s.contains("from rank 1 to rank 2"), "{s}");
        assert!(s.contains("tag 0x2a"), "{s}");
        assert!(s.contains("never received"), "{s}");
    }

    #[test]
    fn tag_violation_names_op_and_rank() {
        let v = Violation::TagOutOfRange {
            rank: 3,
            tag: 1 << 63,
            op: "send",
        };
        let s = v.to_string();
        assert!(s.contains("rank 3 called send"), "{s}");
        assert!(s.contains("collective namespace"), "{s}");
    }
}
