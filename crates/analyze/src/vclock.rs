//! Vector clocks for happens-before validation.
//!
//! Each rank carries one logical clock component per rank. A send
//! increments the sender's own component and ships a snapshot with the
//! message; a receive merges the snapshot in. Because the fabric's
//! channels are FIFO per (src, dst) pair, consecutive messages received
//! from the same source must carry strictly increasing source components —
//! any regression means the substrate reordered or duplicated a message.

/// A per-rank vector of logical event counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VectorClock {
    c: Vec<u64>,
}

impl VectorClock {
    /// The zero clock for a universe of `p` ranks.
    pub fn new(p: usize) -> Self {
        VectorClock { c: vec![0; p] }
    }

    /// Number of ranks this clock covers.
    pub fn len(&self) -> usize {
        self.c.len()
    }

    /// True when the clock covers zero ranks (never the case in a universe).
    pub fn is_empty(&self) -> bool {
        self.c.is_empty()
    }

    /// Component for `rank`.
    pub fn get(&self, rank: usize) -> u64 {
        self.c[rank]
    }

    /// Record a local event on `rank`: bump its own component.
    pub fn tick(&mut self, rank: usize) {
        self.c[rank] += 1;
    }

    /// Merge a received snapshot: componentwise maximum.
    pub fn merge(&mut self, other: &VectorClock) {
        debug_assert_eq!(self.c.len(), other.c.len(), "clock width mismatch");
        for (mine, theirs) in self.c.iter_mut().zip(&other.c) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// True when every component of `self` is ≤ the matching component of
    /// `other` and at least one is strictly smaller (strict happens-before).
    pub fn happened_before(&self, other: &VectorClock) -> bool {
        debug_assert_eq!(self.c.len(), other.c.len(), "clock width mismatch");
        let mut strictly = false;
        for (a, b) in self.c.iter().zip(&other.c) {
            if a > b {
                return false;
            }
            if a < b {
                strictly = true;
            }
        }
        strictly
    }

    /// Raw components (for reports).
    pub fn components(&self) -> &[u64] {
        &self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut v = VectorClock::new(3);
        v.tick(1);
        v.tick(1);
        v.tick(2);
        assert_eq!(v.components(), &[0, 2, 1]);
        assert_eq!(v.get(1), 2);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new(3);
        b.tick(1);
        b.tick(2);
        b.tick(2);
        a.merge(&b);
        assert_eq!(a.components(), &[2, 1, 2]);
    }

    #[test]
    fn happens_before_is_strict_partial_order() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        assert!(!a.happened_before(&b), "equal clocks are not ordered");
        b.tick(0);
        assert!(a.happened_before(&b));
        assert!(!b.happened_before(&a));
        a.tick(1); // now concurrent
        assert!(!a.happened_before(&b));
        assert!(!b.happened_before(&a));
    }

    #[test]
    fn send_receive_chain_orders_events() {
        // rank 0 ticks and "sends" its clock; rank 1 merges then ticks.
        let mut sender = VectorClock::new(2);
        sender.tick(0);
        let snapshot = sender.clone();
        let mut receiver = VectorClock::new(2);
        receiver.merge(&snapshot);
        receiver.tick(1);
        assert!(snapshot.happened_before(&receiver));
    }
}
