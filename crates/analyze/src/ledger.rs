//! The collective lockstep checker.
//!
//! An SPMD program must execute the same sequence of collectives on every
//! rank. The substrate matches collective traffic purely by per-rank
//! sequence-number tag arithmetic, so a rank that skips a `Bcast` or runs
//! an extra `Allreduce` silently corrupts every later match. The ledger
//! catches this at the *first* divergent entry: each rank posts an
//! (op-kind, root) fingerprint under its collective sequence number, and
//! the first post for a sequence number becomes the reference every other
//! rank must match.

use std::fmt;

/// Which collective a rank entered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast.
    Bcast,
    /// Recursive-doubling allreduce (any payload/op flavor).
    Allreduce,
    /// Binomial-tree gather to a root.
    Gatherv,
    /// Binomial-tree scatter from a root.
    Scatterv,
    /// Ring allgather.
    Allgatherv,
    /// One ring-exchange step (Algorithm 3's reconstruction primitive).
    RingShift,
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CollectiveKind::Barrier => "Barrier",
            CollectiveKind::Bcast => "Bcast",
            CollectiveKind::Allreduce => "Allreduce",
            CollectiveKind::Gatherv => "Gatherv",
            CollectiveKind::Scatterv => "Scatterv",
            CollectiveKind::Allgatherv => "Allgatherv",
            CollectiveKind::RingShift => "RingShift",
        };
        f.write_str(name)
    }
}

/// What one rank claims its next collective is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Root rank for rooted collectives, `None` for symmetric ones.
    pub root: Option<usize>,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.root {
            Some(r) => write!(f, "{}(root={})", self.kind, r),
            None => write!(f, "{}", self.kind),
        }
    }
}

/// The first rank/op divergence found by the ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CollectiveDivergence {
    /// Collective sequence number at which the ranks disagree.
    pub seq: u64,
    /// Rank that posted the reference fingerprint.
    pub first_rank: usize,
    /// The reference fingerprint.
    pub first: Fingerprint,
    /// The rank that diverged.
    pub rank: usize,
    /// What the diverging rank tried to execute.
    pub got: Fingerprint,
}

impl fmt::Display for CollectiveDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collective lockstep violation at collective #{}: rank {} entered {} \
             but rank {} had entered {} — the SPMD collective sequences diverged",
            self.seq, self.rank, self.got, self.first_rank, self.first
        )
    }
}

/// One ledger slot: reference fingerprint, the rank that set it, and how
/// many ranks posted a matching fingerprint so far (0 = unposted
/// placeholder created by a rank racing ahead to a later slot).
type Slot = (Fingerprint, usize, usize);

/// Shared per-universe record of every rank's collective sequence.
#[derive(Debug)]
pub struct CollectiveLedger {
    p: usize,
    slots: Vec<Slot>,
}

impl CollectiveLedger {
    /// An empty ledger for `p` ranks.
    pub fn new(p: usize) -> Self {
        CollectiveLedger {
            p,
            slots: Vec::new(),
        }
    }

    /// Rank `rank` announces it is entering collective number `seq` with
    /// fingerprint `fp`. Returns the first divergence, if this post exposes
    /// one.
    pub fn post(
        &mut self,
        rank: usize,
        seq: u64,
        fp: Fingerprint,
    ) -> Result<(), CollectiveDivergence> {
        debug_assert!(rank < self.p, "rank out of range");
        let seq_us = usize::try_from(seq).unwrap_or(usize::MAX);
        if seq_us >= self.slots.len() {
            // Ranks are not synchronized: one may reach collective #k before
            // another posts #0. Placeholder slots (post count 0) are claimed
            // by their first real poster.
            self.slots.resize(seq_us + 1, (fp, rank, 0));
        }
        let slot = &mut self.slots[seq_us];
        if slot.2 == 0 {
            *slot = (fp, rank, 1);
            return Ok(());
        }
        if slot.0 != fp {
            return Err(CollectiveDivergence {
                seq,
                first_rank: slot.1,
                first: slot.0,
                rank,
                got: fp,
            });
        }
        slot.2 += 1;
        Ok(())
    }

    /// How many ranks posted collective `seq` so far.
    pub fn posts(&self, seq: u64) -> usize {
        self.slots.get(seq as usize).map_or(0, |s| s.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(kind: CollectiveKind, root: Option<usize>) -> Fingerprint {
        Fingerprint { kind, root }
    }

    #[test]
    fn agreeing_ranks_pass() {
        let mut l = CollectiveLedger::new(3);
        for rank in 0..3 {
            l.post(rank, 0, fp(CollectiveKind::Allreduce, None))
                .unwrap();
            l.post(rank, 1, fp(CollectiveKind::Bcast, Some(2))).unwrap();
        }
        assert_eq!(l.posts(0), 3);
        assert_eq!(l.posts(1), 3);
    }

    #[test]
    fn kind_divergence_is_caught() {
        let mut l = CollectiveLedger::new(2);
        l.post(0, 0, fp(CollectiveKind::Allreduce, None)).unwrap();
        let err = l.post(1, 0, fp(CollectiveKind::Barrier, None)).unwrap_err();
        assert_eq!(err.seq, 0);
        assert_eq!(err.first_rank, 0);
        assert_eq!(err.rank, 1);
        let msg = err.to_string();
        assert!(msg.contains("rank 1 entered Barrier"), "{msg}");
        assert!(msg.contains("rank 0 had entered Allreduce"), "{msg}");
    }

    #[test]
    fn root_divergence_is_caught() {
        let mut l = CollectiveLedger::new(2);
        l.post(0, 0, fp(CollectiveKind::Bcast, Some(0))).unwrap();
        let err = l
            .post(1, 0, fp(CollectiveKind::Bcast, Some(1)))
            .unwrap_err();
        assert!(err.to_string().contains("Bcast(root=1)"), "{err}");
    }

    #[test]
    fn out_of_order_posting_works() {
        // rank 1 races ahead to collective #2 before rank 0 posts #0.
        let mut l = CollectiveLedger::new(2);
        l.post(1, 2, fp(CollectiveKind::Barrier, None)).unwrap();
        l.post(0, 0, fp(CollectiveKind::Allreduce, None)).unwrap();
        l.post(1, 0, fp(CollectiveKind::Allreduce, None)).unwrap();
        l.post(0, 2, fp(CollectiveKind::Barrier, None)).unwrap();
        assert_eq!(l.posts(0), 2);
        assert_eq!(l.posts(2), 2);
    }

    #[test]
    fn placeholder_slot_is_claimed_by_first_real_poster() {
        let mut l = CollectiveLedger::new(2);
        // rank 0 jumps to #1, creating a placeholder at #0 …
        l.post(0, 1, fp(CollectiveKind::Barrier, None)).unwrap();
        // … which rank 1 then claims with a different op: no divergence,
        // the placeholder never counted as a post.
        l.post(1, 0, fp(CollectiveKind::Allreduce, None)).unwrap();
        let err = l
            .post(0, 0, fp(CollectiveKind::Bcast, Some(0)))
            .unwrap_err();
        assert_eq!(err.first_rank, 1);
    }
}
