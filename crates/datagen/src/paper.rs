//! Presets mirroring the paper's evaluation datasets (Table III + the
//! smaller sets of Table IV), scaled to laptop size.
//!
//! Each preset keeps the *character* of its namesake — dimensionality,
//! sparsity style, test-split availability, approximate support-vector
//! fraction and noise level — and carries the paper's hyper-parameters
//! (`C`, `σ²` from Table III; literature-typical values for the three
//! smaller sets Table III omits). Sample counts are `base × scale`; the
//! default `scale = 1.0` sizes every experiment to minutes on one core.

use crate::planted::{FeatureStyle, PlantedConfig};
use shrinksvm_sparse::Dataset;

/// The ten evaluation datasets of the paper (plus RCV1 from Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    /// UCI HIGGS (paper: 2.6M × 28 dense; hard, noisy physics data).
    Higgs,
    /// Offending URL (paper: 2.3M × 3.2M sparse binary; very separable).
    Url,
    /// Forest covtype (paper: 581k × 54 dense; gradual shrinking).
    Forest,
    /// real-sim (paper: 72.3k × ~21k sparse tf-idf).
    RealSim,
    /// MNIST 8-vs-rest (paper: 60k × 780, with a 10k test set).
    Mnist,
    /// cod-rna (paper: 59.5k × 8 dense, 271k test set).
    CodRna,
    /// Adult-9 / a9a (paper: 32.6k × 123 binary, 16.3k test set).
    Adult9,
    /// Web w7a (paper: 24.7k × 300 binary, 25.1k test set).
    W7a,
    /// USPS (Table IV; 7.3k × 256 dense).
    Usps,
    /// Mushrooms (Table IV; 8.1k × 112 binary, perfectly separable).
    Mushrooms,
    /// RCV1 (Table IV; 20.2k × 47k sparse tf-idf).
    Rcv1,
}

/// A generated analog: train split, optional test split, paper
/// hyper-parameters and bookkeeping for reports.
#[derive(Clone, Debug)]
pub struct PaperData {
    /// Dataset identity.
    pub which: PaperDataset,
    /// Display name matching the paper's tables.
    pub name: &'static str,
    /// Training split.
    pub train: Dataset,
    /// Test split where the paper's dataset ships one (Table III/V).
    pub test: Option<Dataset>,
    /// Regularization `C` (Table III).
    pub c: f64,
    /// Gaussian kernel width `σ²` (Table III).
    pub sigma_sq: f64,
    /// The original dataset's training-set size, for the scale-down record.
    pub paper_train_size: usize,
}

struct Preset {
    name: &'static str,
    base_train: usize,
    base_test: usize,
    dim: usize,
    nnz: usize,
    style: FeatureStyle,
    sv_fraction: f64,
    noise: f64,
    c: f64,
    sigma_sq: f64,
    target_norm: Option<f64>,
    feature_skew: f64,
    margin_scale: f64,
    paper_train_size: usize,
}

impl PaperDataset {
    /// Every preset, in the order the paper's tables list them.
    pub fn all() -> [PaperDataset; 11] {
        use PaperDataset::*;
        [
            Higgs, Url, Forest, RealSim, Mnist, CodRna, Adult9, W7a, Usps, Mushrooms, Rcv1,
        ]
    }

    /// The four "large" datasets used by Figure 8.
    pub fn large_four() -> [PaperDataset; 4] {
        use PaperDataset::*;
        [Higgs, Url, Forest, RealSim]
    }

    fn preset(self) -> Preset {
        use FeatureStyle::*;
        match self {
            PaperDataset::Higgs => Preset {
                name: "Higgs Boson",
                base_train: 6000,
                base_test: 0,
                dim: 28,
                nnz: 28,
                style: Dense,
                sv_fraction: 0.40,
                noise: 0.08,
                c: 32.0,
                sigma_sq: 64.0,
                target_norm: None,
                feature_skew: 0.0,
                margin_scale: 1.0,
                paper_train_size: 2_600_000,
            },
            PaperDataset::Url => Preset {
                name: "Offending URL",
                base_train: 6000,
                base_test: 0,
                dim: 50_000,
                nnz: 40,
                style: SparseBinary,
                sv_fraction: 0.04,
                noise: 0.03,
                c: 10.0,
                sigma_sq: 4.0,
                target_norm: Some(3.27),
                feature_skew: 4.0,
                margin_scale: 2.5,
                paper_train_size: 2_300_000,
            },
            PaperDataset::Forest => Preset {
                name: "Forest",
                base_train: 5000,
                base_test: 0,
                dim: 54,
                nnz: 54,
                style: Dense,
                sv_fraction: 0.25,
                noise: 0.08,
                c: 10.0,
                sigma_sq: 4.0,
                target_norm: Some(3.27),
                feature_skew: 0.0,
                margin_scale: 2.5,
                paper_train_size: 581_012,
            },
            PaperDataset::RealSim => Preset {
                name: "real-sim",
                base_train: 4000,
                base_test: 0,
                dim: 20_000,
                nnz: 50,
                style: SparseContinuous,
                sv_fraction: 0.10,
                noise: 0.05,
                c: 10.0,
                sigma_sq: 4.0,
                target_norm: Some(3.27),
                feature_skew: 4.0,
                margin_scale: 2.5,
                paper_train_size: 72_309,
            },
            PaperDataset::Mnist => Preset {
                name: "MNIST",
                base_train: 3000,
                base_test: 600,
                dim: 780,
                nnz: 150,
                style: SparseContinuous,
                sv_fraction: 0.15,
                noise: 0.04,
                c: 10.0,
                sigma_sq: 25.0,
                target_norm: Some(8.16),
                feature_skew: 4.0,
                margin_scale: 2.5,
                paper_train_size: 60_000,
            },
            PaperDataset::CodRna => Preset {
                name: "cod-rna",
                base_train: 3000,
                base_test: 2000,
                dim: 8,
                nnz: 8,
                style: Dense,
                sv_fraction: 0.30,
                noise: 0.04,
                c: 32.0,
                sigma_sq: 64.0,
                target_norm: None,
                feature_skew: 0.0,
                margin_scale: 1.0,
                paper_train_size: 59_535,
            },
            PaperDataset::Adult9 => Preset {
                name: "Adult-9 (a9a)",
                base_train: 2500,
                base_test: 1200,
                dim: 123,
                nnz: 14,
                style: SparseBinary,
                sv_fraction: 0.35,
                noise: 0.08,
                c: 32.0,
                sigma_sq: 64.0,
                target_norm: None,
                feature_skew: 0.0,
                margin_scale: 1.0,
                paper_train_size: 32_561,
            },
            PaperDataset::W7a => Preset {
                name: "Web (w7a)",
                base_train: 2000,
                base_test: 1000,
                dim: 300,
                nnz: 12,
                style: SparseBinary,
                sv_fraction: 0.06,
                noise: 0.015,
                c: 32.0,
                sigma_sq: 64.0,
                target_norm: None,
                feature_skew: 2.5,
                margin_scale: 1.0,
                paper_train_size: 24_692,
            },
            PaperDataset::Usps => Preset {
                name: "USPS",
                base_train: 1400,
                base_test: 400,
                dim: 256,
                nnz: 256,
                style: Dense,
                sv_fraction: 0.25,
                noise: 0.04,
                c: 10.0,
                sigma_sq: 8.0,
                target_norm: Some(4.62),
                feature_skew: 0.0,
                margin_scale: 2.5,
                paper_train_size: 7_291,
            },
            PaperDataset::Mushrooms => Preset {
                name: "Mushrooms",
                base_train: 1600,
                base_test: 0,
                dim: 112,
                nnz: 22,
                style: SparseBinary,
                sv_fraction: 0.05,
                noise: 0.0,
                c: 10.0,
                sigma_sq: 4.0,
                target_norm: Some(3.27),
                feature_skew: 2.5,
                margin_scale: 2.5,
                paper_train_size: 8_124,
            },
            PaperDataset::Rcv1 => Preset {
                name: "RCV1",
                base_train: 3000,
                base_test: 0,
                dim: 30_000,
                nnz: 60,
                style: SparseContinuous,
                sv_fraction: 0.08,
                noise: 0.05,
                c: 10.0,
                sigma_sq: 4.0,
                target_norm: Some(3.27),
                feature_skew: 4.0,
                margin_scale: 2.5,
                paper_train_size: 20_242,
            },
        }
    }

    /// Display name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        self.preset().name
    }

    /// Generate the analog at `scale ×` the base sample counts (minimum 64
    /// train samples). Deterministic per dataset.
    pub fn generate(self, scale: f64) -> PaperData {
        assert!(scale > 0.0, "scale must be positive");
        let p = self.preset();
        let n_train = ((p.base_train as f64 * scale) as usize).max(64);
        let n_test = (p.base_test as f64 * scale) as usize;
        let seed = 0x5EED_0000 + self as u64;
        let cfg = PlantedConfig {
            n: n_train + n_test,
            dim: p.dim,
            nnz_per_row: p.nnz,
            sv_fraction: p.sv_fraction,
            label_noise: p.noise,
            margin_scale: p.margin_scale,
            style: p.style,
            target_norm: p.target_norm,
            feature_skew: p.feature_skew,
            seed,
        };
        let all = cfg.generate();
        let (train, test) = if n_test > 0 {
            let (tr, te) = all.split_at(n_train);
            (tr, Some(te))
        } else {
            (all, None)
        };
        PaperData {
            which: self,
            name: p.name,
            train,
            test,
            c: p.c,
            sigma_sq: p.sigma_sq,
            paper_train_size: p.paper_train_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for d in PaperDataset::all() {
            let data = d.generate(0.05);
            assert!(data.train.len() >= 64, "{}", data.name);
            assert!(data.train.x.validate().is_ok());
            if let Some(t) = &data.test {
                assert_eq!(t.x.ncols(), data.train.x.ncols());
            }
            assert!(data.c > 0.0 && data.sigma_sq > 0.0);
        }
    }

    #[test]
    fn table3_hyperparameters_match_paper() {
        let h = PaperDataset::Higgs.generate(0.02);
        assert_eq!((h.c, h.sigma_sq), (32.0, 64.0));
        let u = PaperDataset::Url.generate(0.02);
        assert_eq!((u.c, u.sigma_sq), (10.0, 4.0));
        let m = PaperDataset::Mnist.generate(0.02);
        assert_eq!((m.c, m.sigma_sq), (10.0, 25.0));
        let a = PaperDataset::Adult9.generate(0.02);
        assert_eq!((a.c, a.sigma_sq), (32.0, 64.0));
    }

    #[test]
    fn test_splits_follow_table3() {
        // Table III: test sets exist for MNIST, cod-rna, a9a, w7a (and USPS).
        assert!(PaperDataset::Mnist.generate(0.05).test.is_some());
        assert!(PaperDataset::CodRna.generate(0.05).test.is_some());
        assert!(PaperDataset::Higgs.generate(0.05).test.is_none());
        assert!(PaperDataset::Url.generate(0.05).test.is_none());
    }

    #[test]
    fn url_is_sparse_higgs_is_dense() {
        let u = PaperDataset::Url.generate(0.05);
        assert!(u.train.x.density() < 0.01);
        let h = PaperDataset::Higgs.generate(0.05);
        assert!(h.train.x.density() > 0.9);
    }

    #[test]
    fn scale_controls_size() {
        let small = PaperDataset::Forest.generate(0.02);
        let big = PaperDataset::Forest.generate(0.1);
        assert!(big.train.len() > small.train.len() * 3);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::W7a.generate(0.1);
        let b = PaperDataset::W7a.generate(0.1);
        assert_eq!(a.train.x, b.train.x);
        assert_eq!(a.train.y, b.train.y);
    }
}
