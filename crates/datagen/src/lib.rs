//! Synthetic dataset substrate.
//!
//! The paper evaluates on ten datasets downloaded from the libsvm page
//! (UCI HIGGS, Offending URL, Forest/covtype, real-sim, MNIST, cod-rna,
//! a9a, w7a, USPS, Mushrooms, RCV1). Those files are not available here and
//! would be far too large for this host anyway, so this crate builds
//! *controlled synthetic analogs*: a planted-boundary generator
//! ([`planted`]) that lets every property the paper's phenomena depend on —
//! sample count, dimensionality, sparsity, the fraction of samples that end
//! up as support vectors, and label noise — be dialed in explicitly, plus
//! one preset per paper dataset ([`paper`]) with the hyper-parameters of
//! Table III.
//!
//! The reproduction argument: shrinking's benefit is governed by how many
//! samples are *not* support vectors and how quickly their gradients leave
//! the `[β_up, β_low]` bracket; both are functions of the margin
//! distribution and noise rate, which the generator controls directly.
//! Dataset *sizes* are scaled down to laptop scale; `EXPERIMENTS.md`
//! records the substitution per experiment.
//!
//! [`gaussian`] adds classic nonlinear toy sets (blobs, XOR, rings) used by
//! examples and tests that need problems where an RBF kernel is essential.

pub mod gaussian;
pub mod paper;
pub mod planted;
pub mod rng;

pub use paper::{PaperData, PaperDataset};
pub use planted::{FeatureStyle, PlantedConfig};
