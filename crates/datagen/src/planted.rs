//! Planted-boundary dataset generator.
//!
//! Construction: fix a sparse unit teacher vector `w` and offset `b₀`. For
//! each sample, draw a random sparse feature vector, pick a class label
//! `y = ±1` (balanced), pick a *target functional margin* `t > 0` — small
//! for a configurable fraction of samples (the support-vector candidates),
//! large for the rest — then shift the sample along `w`'s support so that
//! `w·x + b₀ = y·t` exactly. Finally flip a configurable fraction of labels
//! (noise ⇒ bound support vectors at `α = C`).
//!
//! The result is a problem whose support-vector fraction, noise level,
//! sparsity and size are all independent dials — exactly the properties the
//! paper's shrinking behavior depends on.

use crate::rng::SmallRng;
use shrinksvm_sparse::{CsrBuilder, Dataset};

/// The distribution feature values are drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureStyle {
    /// Every feature stored, values uniform in `[-1, 1]` (HIGGS/covtype
    /// style).
    Dense,
    /// Sparse rows whose stored values are all `1.0` (URL/a9a/w7a style
    /// one-hot data).
    SparseBinary,
    /// Sparse rows with positive continuous values in `(0, 1]`
    /// (real-sim/RCV1 tf-idf style).
    SparseContinuous,
}

/// Full recipe for one synthetic dataset.
#[derive(Clone, Debug)]
pub struct PlantedConfig {
    /// Samples to generate.
    pub n: usize,
    /// Feature-space dimensionality.
    pub dim: usize,
    /// Stored entries per row (ignored for [`FeatureStyle::Dense`], where
    /// every feature is stored).
    pub nnz_per_row: usize,
    /// Fraction of samples given a *small* margin (support-vector
    /// candidates), in `[0, 1]`.
    pub sv_fraction: f64,
    /// Fraction of labels flipped after construction, in `[0, 1)`.
    pub label_noise: f64,
    /// Scales all margins; larger ⇒ easier problem.
    pub margin_scale: f64,
    /// Value distribution.
    pub style: FeatureStyle,
    /// When set, rescale each row to this L2 norm after planting. The
    /// libsvm-site distributions of URL/real-sim/RCV1 are row-normalized,
    /// and the paper's cross-validated `σ²` values presuppose feature
    /// scales the Gaussian kernel resolves; a target norm of
    /// `≈ 1.63·σ` puts typical pairwise distances in the kernel's
    /// responsive range.
    pub target_norm: Option<f64>,
    /// Power-law skew of sparse feature occurrence (0 = uniform columns).
    /// Real text-like data (URL, RCV1, real-sim) has Zipf-distributed
    /// feature frequencies — common features shared by most samples — and
    /// that overlap is what lets an RBF model generalize with few support
    /// vectors. A column is drawn as `⌊dim · u^(1+skew)⌋` for `u ∈ (0,1)`.
    pub feature_skew: f64,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl PlantedConfig {
    /// A tiny well-separated dense problem for doctests and quick demos.
    pub fn small_demo(seed: u64) -> Self {
        PlantedConfig {
            n: 200,
            dim: 10,
            nnz_per_row: 10,
            sv_fraction: 0.2,
            label_noise: 0.0,
            margin_scale: 1.0,
            style: FeatureStyle::Dense,
            target_norm: None,
            feature_skew: 0.0,
            seed,
        }
    }

    /// Generate the dataset.
    pub fn generate(&self) -> Dataset {
        assert!(self.n > 0 && self.dim > 0, "empty dataset requested");
        assert!(
            (0.0..=1.0).contains(&self.sv_fraction),
            "sv_fraction out of range"
        );
        assert!(
            (0.0..1.0).contains(&self.label_noise),
            "label_noise out of range"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);

        // Teacher: a sparse unit vector over `support_dim` random columns
        // (or all columns when dense), plus a small offset.
        let support_dim = match self.style {
            FeatureStyle::Dense => self.dim,
            _ => self.dim.min((self.nnz_per_row * 2).max(8)),
        };
        let mut teacher_cols = sample_skewed(&mut rng, self.dim, support_dim, self.feature_skew);
        teacher_cols.sort_unstable();
        let mut teacher_vals: Vec<f64> =
            (0..support_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm: f64 = teacher_vals.iter().map(|v| v * v).sum::<f64>().sqrt();
        for v in &mut teacher_vals {
            *v /= norm.max(1e-12);
        }
        let b0: f64 = rng.gen_range(-0.1..0.1);

        // Map from column -> teacher component for the shift step.
        let mut teacher_dense = vec![0.0f64; self.dim];
        for (c, v) in teacher_cols.iter().zip(&teacher_vals) {
            teacher_dense[*c as usize] = *v;
        }

        let mut b = CsrBuilder::new(self.dim);
        b.reserve(self.n, self.n * self.nnz_per_row.min(self.dim));
        let mut labels = Vec::with_capacity(self.n);
        let mut entries: Vec<(u32, f64)> = Vec::new();

        for i in 0..self.n {
            // Balanced classes: alternate, so exact balance regardless of n.
            let y: f64 = if i % 2 == 0 { 1.0 } else { -1.0 };
            entries.clear();
            match self.style {
                FeatureStyle::Dense => {
                    for c in 0..self.dim {
                        entries.push((c as u32, rng.gen_range(-1.0..1.0)));
                    }
                }
                FeatureStyle::SparseBinary => {
                    let cols = sample_skewed(
                        &mut rng,
                        self.dim,
                        self.nnz_per_row.min(self.dim),
                        self.feature_skew,
                    );
                    for c in cols {
                        entries.push((c, 1.0));
                    }
                }
                FeatureStyle::SparseContinuous => {
                    let cols = sample_skewed(
                        &mut rng,
                        self.dim,
                        self.nnz_per_row.min(self.dim),
                        self.feature_skew,
                    );
                    for c in cols {
                        entries.push((c, rng.gen_range(0.05..1.0)));
                    }
                }
            }

            // Current functional value and target margin.
            let s: f64 = entries
                .iter()
                .map(|(c, v)| v * teacher_dense[*c as usize])
                .sum::<f64>()
                + b0;
            let near = rng.gen_bool(self.sv_fraction);
            // Near group: tight margins (support-vector candidates). Far
            // group: *log-uniform* margins spanning more than an order of
            // magnitude — real datasets have heavy-tailed margin
            // distributions, which is what makes samples leave the
            // [β_up, β_low] bracket progressively (and shrinking passes
            // productive at any point of the run) rather than all at once
            // near convergence.
            let t = if near {
                rng.gen_range(0.02..0.35)
            } else {
                let (lo, hi) = (0.6f64, 15.0f64);
                rng.gen_range(lo.ln()..hi.ln()).exp()
            } * self.margin_scale;

            // Shift along the teacher support so w·x + b0 == y * t.
            // Because ||w|| == 1, adding ((y t − s)) · w achieves it exactly.
            let delta = y * t - s;
            if delta != 0.0 {
                // Merge the shift into the entry list (touches only w's
                // support). Search only the sorted original prefix; new
                // columns are appended — teacher columns are distinct, so no
                // duplicates can arise among the appended tail.
                entries.sort_unstable_by_key(|e| e.0);
                let orig_len = entries.len();
                for (c, wv) in teacher_cols.iter().zip(&teacher_vals) {
                    if *wv == 0.0 {
                        continue;
                    }
                    match entries[..orig_len].binary_search_by_key(c, |e| e.0) {
                        Ok(pos) => entries[pos].1 += delta * wv,
                        Err(_) => entries.push((*c, delta * wv)),
                    }
                }
            }
            // binary style keeps its one-hot character except on the teacher
            // support, which is unavoidable if margins are to be planted.

            let noisy = rng.gen_bool(self.label_noise);
            labels.push(if noisy { -y } else { y });
            entries.retain(|e| e.1 != 0.0);
            if let Some(target) = self.target_norm {
                let norm: f64 = entries.iter().map(|e| e.1 * e.1).sum::<f64>().sqrt();
                if norm > 0.0 {
                    let f = target / norm;
                    for e in &mut entries {
                        e.1 *= f;
                    }
                }
            }
            b.push_row_unsorted(std::mem::take(&mut entries))
                .expect("generated row is well-formed");
        }
        Dataset::new(b.finish(), labels).expect("labels are ±1 by construction")
    }
}

/// Sample `k` distinct columns with a power-law bias towards low indices
/// (`skew = 0` falls back to uniform sampling).
fn sample_skewed(rng: &mut SmallRng, n: usize, k: usize, skew: f64) -> Vec<u32> {
    if skew <= 0.0 {
        return sample_distinct(rng, n, k);
    }
    debug_assert!(k <= n);
    let mut out: Vec<u32> = Vec::with_capacity(k);
    // lint: ordered — membership-only rejection set; `out` carries the order
    #[allow(clippy::disallowed_types)]
    let mut seen = std::collections::HashSet::with_capacity(k * 2);
    let mut tries = 0usize;
    while out.len() < k {
        let u: f64 = rng.gen_range(0.0..1.0);
        let c = ((n as f64) * u.powf(1.0 + skew)) as u32;
        let c = c.min(n as u32 - 1);
        if seen.insert(c) {
            out.push(c);
        }
        tries += 1;
        if tries > 50 * k {
            // heavy skew with tiny dim: fill the remainder uniformly
            for c in 0..n as u32 {
                if out.len() >= k {
                    break;
                }
                if seen.insert(c) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Sample `k` distinct values from `0..n` (u32), unordered.
fn sample_distinct(rng: &mut SmallRng, n: usize, k: usize) -> Vec<u32> {
    debug_assert!(k <= n);
    if k * 3 >= n {
        // dense case: partial Fisher-Yates
        let mut all: Vec<u32> = (0..n as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            all.swap(i, j);
        }
        all.truncate(k);
        all
    } else {
        // sparse case: rejection with a scratch set
        let mut out = Vec::with_capacity(k);
        // lint: ordered — membership-only rejection set; `out` carries the order
        #[allow(clippy::disallowed_types)]
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        while out.len() < k {
            let c = rng.gen_range(0..n as u32);
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn margins(ds: &Dataset, cfg: &PlantedConfig) -> Vec<f64> {
        // Re-derive w·x for each sample via a fresh run of the teacher isn't
        // possible from outside; instead verify statistical properties.
        let _ = cfg;
        (0..ds.len()).map(|i| ds.x.row(i).squared_norm()).collect()
    }

    #[test]
    fn generates_requested_shape() {
        let cfg = PlantedConfig {
            n: 100,
            dim: 50,
            nnz_per_row: 5,
            sv_fraction: 0.1,
            label_noise: 0.0,
            margin_scale: 1.0,
            style: FeatureStyle::SparseBinary,
            target_norm: None,
            feature_skew: 0.0,
            seed: 1,
        };
        let ds = cfg.generate();
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.x.ncols(), 50);
        assert!(ds.x.validate().is_ok());
        // sparse: far fewer stored entries than dense would have
        assert!(ds.x.nnz() < 100 * 50 / 2);
    }

    #[test]
    fn dense_style_fills_rows() {
        let cfg = PlantedConfig {
            n: 20,
            dim: 8,
            nnz_per_row: 0, // ignored
            sv_fraction: 0.3,
            label_noise: 0.0,
            margin_scale: 1.0,
            style: FeatureStyle::Dense,
            target_norm: None,
            feature_skew: 0.0,
            seed: 2,
        };
        let ds = cfg.generate();
        // allow an occasional exact zero, but rows must be essentially dense
        assert!(ds.x.mean_row_nnz() > 7.0);
    }

    #[test]
    fn classes_are_balanced_without_noise() {
        let ds = PlantedConfig::small_demo(3).generate();
        let (p, n) = ds.class_counts();
        assert_eq!(p, n);
    }

    #[test]
    fn noise_flips_roughly_the_requested_fraction() {
        let mut cfg = PlantedConfig::small_demo(4);
        cfg.n = 2000;
        cfg.label_noise = 0.2;
        let noisy = cfg.generate();
        cfg.label_noise = 0.0;
        let clean = cfg.generate();
        let flips = noisy.y.iter().zip(&clean.y).filter(|(a, b)| a != b).count();
        let frac = flips as f64 / 2000.0;
        assert!((0.15..0.25).contains(&frac), "flip fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = PlantedConfig::small_demo(9);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.y, b.y);
        assert_eq!(a.x, b.x);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 10;
        let c = cfg2.generate();
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn linearly_separable_when_clean() {
        // With no noise the planted construction guarantees a separating
        // hyperplane exists; verify via a quick perceptron sanity run.
        let cfg = PlantedConfig {
            n: 300,
            dim: 12,
            nnz_per_row: 12,
            sv_fraction: 0.2,
            label_noise: 0.0,
            margin_scale: 1.0,
            style: FeatureStyle::Dense,
            target_norm: None,
            feature_skew: 0.0,
            seed: 5,
        };
        let ds = cfg.generate();
        let mut w = [0.0f64; 13]; // +1 for bias
        let mut converged = false;
        for _ in 0..2000 {
            let mut errs = 0;
            for i in 0..ds.len() {
                let mut s = w[12];
                for (c, v) in ds.x.row(i).iter() {
                    s += v * w[c as usize];
                }
                if s * ds.y[i] <= 0.0 {
                    errs += 1;
                    for (c, v) in ds.x.row(i).iter() {
                        w[c as usize] += ds.y[i] * v;
                    }
                    w[12] += ds.y[i];
                }
            }
            if errs == 0 {
                converged = true;
                break;
            }
        }
        assert!(converged, "clean planted data must be linearly separable");
    }

    #[test]
    fn margins_smoke() {
        let cfg = PlantedConfig::small_demo(6);
        let ds = cfg.generate();
        let m = margins(&ds, &cfg);
        assert_eq!(m.len(), ds.len());
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = SmallRng::seed_from_u64(0);
        for (n, k) in [(10usize, 10usize), (1000, 5), (50, 20)] {
            let s = sample_distinct(&mut rng, n, k);
            assert_eq!(s.len(), k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), k, "duplicates for n={n} k={k}");
            assert!(d.iter().all(|c| (*c as usize) < n));
        }
    }
}
