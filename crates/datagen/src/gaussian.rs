//! Classic low-dimensional toy problems (blobs, XOR, rings).
//!
//! These need a *nonlinear* kernel to solve — they exercise the RBF path in
//! tests and examples the way Figure 1 of the paper illustrates a two-class
//! cloud with few support vectors.

use crate::rng::SmallRng;
use shrinksvm_sparse::{CsrBuilder, Dataset};

/// Standard-normal draw via Box-Muller (keeps the dependency surface to
/// the uniform core of [`crate::rng`]).
fn normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn build(points: Vec<(Vec<f64>, f64)>, dim: usize) -> Dataset {
    let mut b = CsrBuilder::new(dim);
    let mut y = Vec::with_capacity(points.len());
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for (p, label) in points {
        idx.clear();
        val.clear();
        for (c, v) in p.iter().enumerate() {
            if *v != 0.0 {
                idx.push(c as u32);
                val.push(*v);
            }
        }
        b.push_row(&idx, &val).expect("well-formed row");
        y.push(label);
    }
    Dataset::new(b.finish(), y).expect("labels ±1")
}

/// Two Gaussian blobs in `dim` dimensions, means at `±separation/2` along
/// the first axis, unit variance. Linearly separable when `separation` is
/// large.
pub fn two_blobs(n: usize, dim: usize, separation: f64, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = (0..n)
        .map(|i| {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let mut p: Vec<f64> = (0..dim).map(|_| normal(&mut rng)).collect();
            p[0] += y * separation / 2.0;
            (p, y)
        })
        .collect();
    build(pts, dim)
}

/// The XOR problem: four Gaussian clusters at `(±1, ±1)`, label = product of
/// the corner signs. Not linearly separable — an RBF kernel is required.
pub fn xor(n: usize, spread: f64, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = (0..n)
        .map(|i| {
            let cx = if (i / 2) % 2 == 0 { 1.0 } else { -1.0 };
            let cy = if i % 2 == 0 { 1.0 } else { -1.0 };
            let p = vec![
                cx + spread * normal(&mut rng),
                cy + spread * normal(&mut rng),
            ];
            (p, cx * cy)
        })
        .collect();
    build(pts, 2)
}

/// Two concentric rings: inner radius `r`, outer radius `2r` (labels
/// +1/−1) with radial jitter. Also requires a nonlinear kernel.
pub fn rings(n: usize, r: f64, jitter: f64, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts = (0..n)
        .map(|i| {
            let y = if i % 2 == 0 { 1.0 } else { -1.0 };
            let radius = if y > 0.0 { r } else { 2.0 * r } + jitter * normal(&mut rng);
            let theta = rng.gen_range(0.0..std::f64::consts::TAU);
            (vec![radius * theta.cos(), radius * theta.sin()], y)
        })
        .collect();
    build(pts, 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_shape_and_balance() {
        let ds = two_blobs(100, 5, 4.0, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.x.ncols(), 5);
        let (p, n) = ds.class_counts();
        assert_eq!(p, n);
    }

    #[test]
    fn blobs_separate_along_first_axis() {
        let ds = two_blobs(400, 3, 8.0, 2);
        let mut pos_mean = 0.0;
        let mut neg_mean = 0.0;
        for i in 0..ds.len() {
            let v = ds.x.row(i).get(0);
            if ds.y[i] > 0.0 {
                pos_mean += v;
            } else {
                neg_mean += v;
            }
        }
        assert!(pos_mean / 200.0 > 2.0);
        assert!(neg_mean / 200.0 < -2.0);
    }

    #[test]
    fn xor_is_not_linearly_separable() {
        let ds = xor(200, 0.1, 3);
        // any linear rule on raw coords misclassifies ~half; verify signs of
        // the coordinate product correlate with labels instead
        let mut agree = 0;
        for i in 0..ds.len() {
            let r = ds.x.row(i);
            let prod = r.get(0) * r.get(1);
            if prod.signum() == ds.y[i] {
                agree += 1;
            }
        }
        assert!(agree > 190, "xor structure broken: {agree}/200");
    }

    #[test]
    fn rings_have_distinct_radii() {
        let ds = rings(200, 1.0, 0.05, 4);
        for i in 0..ds.len() {
            let r = ds.x.row(i).squared_norm().sqrt();
            if ds.y[i] > 0.0 {
                assert!(r < 1.5, "inner point at {r}");
            } else {
                assert!(r > 1.5, "outer point at {r}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = xor(50, 0.2, 9);
        let b = xor(50, 0.2, 9);
        assert_eq!(a.x, b.x);
    }
}
