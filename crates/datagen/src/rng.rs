//! A small, dependency-free PRNG with the slice of the `rand` API the
//! generators use (`gen_range`, `gen_bool`).
//!
//! The container this repo builds in has no registry access, so `rand`
//! cannot be a dependency; generation only needs a fast, well-mixed,
//! seedable stream, not cryptographic strength. The core is xoshiro256++
//! seeded through SplitMix64 — the same construction `rand`'s `SmallRng`
//! family uses — so statistical quality is equivalent even though exact
//! streams differ from upstream `rand`.

/// Seedable non-cryptographic generator (xoshiro256++).
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Deterministically seed from a single `u64` (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open range (`f64`, `u32`, `u64` or `usize`).
    pub fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen_f64() < p
    }
}

/// Types drawable uniformly from a half-open `Range` by [`SmallRng`].
pub trait SampleRange: Sized {
    /// Uniform draw from `range` (which must be non-empty).
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self;
}

impl SampleRange for f64 {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        debug_assert!(range.start < range.end, "empty range");
        range.start + (range.end - range.start) * rng.gen_f64()
    }
}

/// Lemire-style unbiased bounded integer draw.
fn bounded_u64(rng: &mut SmallRng, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty range");
    // Rejection sampling over the top bits: bias is at most 2^-64 per draw
    // without it, but exactness costs almost nothing.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let (hi, lo) = widening_mul(r, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

impl SampleRange for u64 {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        range.start + bounded_u64(rng, range.end - range.start)
    }
}

impl SampleRange for u32 {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        range.start + bounded_u64(rng, u64::from(range.end - range.start)) as u32
    }
}

impl SampleRange for usize {
    fn sample(rng: &mut SmallRng, range: std::ops::Range<Self>) -> Self {
        range.start + bounded_u64(rng, (range.end - range.start) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_draws_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&f));
            let u = rng.gen_range(10u32..20);
            assert!((10..20).contains(&u));
            let s = rng.gen_range(3usize..4);
            assert_eq!(s, 3);
        }
    }

    #[test]
    fn bounded_draws_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [0u32; 7];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..7)] += 1;
        }
        // Each bucket expects ~1429 hits; all must be populated and roughly
        // uniform (loose 4-sigma style bound).
        for (i, &count) in seen.iter().enumerate() {
            assert!(count > 1100 && count < 1800, "bucket {i}: {count}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "p=0.3 hit {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
