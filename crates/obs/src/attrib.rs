//! Makespan attribution and the `PerfDoctor` report.
//!
//! Built on the [`critpath`](crate::critpath) identity replay: every
//! simulated second on every rank is attributed to exactly one of five
//! buckets — **compute**, **transfer**, **idle**, **retransmit**,
//! **recovery** — and the per-rank sums are checked to reconcile with the
//! makespan within a tolerance (`reconcile_error` is reported, not
//! hidden). [`PerfDoctor::analyze`] bundles the attribution with the
//! exact critical path and the what-if projections into one text + JSON
//! report; same-seed runs produce byte-identical JSON.
//!
//! Bucket conventions (documented once, applied everywhere):
//!
//! * a receive that clamps the clock splits its wait into the stretch
//!   before the sender's departure (**idle** — the peer was the holdup)
//!   and the stretch after (**transfer** — the wire was). Of the
//!   post-departure stretch, up to `penalty` seconds are reclassified as
//!   **retransmit** (retransmission backoff plus injected delay
//!   penalties ride the same in-flight penalty channel);
//! * sender-side CPU overhead is **transfer**;
//! * a nonblocking collective's virtual window (`IcollStart`…`IcollDone`)
//!   contributes nothing: its sends/receives run concurrently with the
//!   caller's compute, which is already booked as **compute**. Only the
//!   unhidden residue the wait clamps to (`IcollWait`) is charged, as
//!   **transfer** — the fabric, not a slow peer, was the holdup;
//! * fault-plan slowdown inflation stays inside **compute** (the rank
//!   was computing, just slower);
//! * the gap between a rank's final clock and the makespan is tail
//!   **idle**;
//! * **recovery** is the simulated time lost to crash-aborted attempts,
//!   supplied by the driver — it happened before this (successful)
//!   attempt's clock started, so it extends total rank-time beyond
//!   `ranks × makespan`.

use crate::critpath::{
    critical_path, project, replay, CriticalPath, DepEvent, DepLog, Projections, WhatIf,
};
use crate::json::{escape_into, write_f64};
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag stamped into every PerfDoctor JSON report; `cargo xtask
/// doctor` and `perf-diff` dispatch on it.
pub const PERF_SCHEMA: &str = "shrinksvm-perf/v1";

/// At most this many hops are listed individually in the JSON report;
/// the rest are summarized by `hops_truncated` and the `by_op` totals.
pub const MAX_JSON_HOPS: usize = 64;

/// One rank's time split across the four local buckets (recovery is
/// run-global, not per rank).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankBuckets {
    /// Compute charges (including slowdown inflation).
    pub compute: f64,
    /// Wire transfers plus send overheads.
    pub transfer: f64,
    /// Waiting on slower peers (pre-departure waits + makespan tail).
    pub idle: f64,
    /// Retransmission backoff and injected in-flight delay penalties.
    pub retransmit: f64,
}

impl RankBuckets {
    /// Sum of the four local buckets — should reconcile to the makespan.
    pub fn total(&self) -> f64 {
        self.compute + self.transfer + self.idle + self.retransmit
    }
}

/// The five-bucket attribution of total rank-time.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Attribution {
    /// Per-rank local buckets; each row sums to the makespan (within
    /// `reconcile_error`).
    pub per_rank: Vec<RankBuckets>,
    /// Sums of the per-rank buckets.
    pub totals: RankBuckets,
    /// Simulated time lost to crash-aborted attempts (driver-supplied):
    /// `recovery_waste + recovery_backoff`.
    pub recovery: f64,
    /// Re-executed simulated time: each aborted attempt's clock past the
    /// restored checkpoint's cut (work banked into the cut is *not*
    /// waste — the next attempt skips it).
    pub recovery_waste: f64,
    /// Simulated backoff charged by the recovery ladder before retries.
    pub recovery_backoff: f64,
    /// Largest per-rank deviation of `buckets.total()` from the
    /// makespan, in seconds (f64 summation noise; checked against a
    /// relative tolerance by [`Attribution::from_log`]).
    pub reconcile_error: f64,
}

impl Attribution {
    /// Total rank-time: `ranks × makespan + recovery`, which the five
    /// buckets sum to (within `reconcile_error × ranks`).
    pub fn total_rank_time(&self, makespan: f64) -> f64 {
        self.per_rank.len() as f64 * makespan + self.recovery
    }

    /// Attribute every rank's clock against the identity replay.
    ///
    /// # Errors
    ///
    /// Fails if any rank's buckets do not reconcile with the makespan
    /// within a `1e-9` relative tolerance — that would mean the bucket
    /// rules no longer cover every clock mutation.
    pub fn from_log(
        log: &DepLog,
        clocks: &[Vec<(f64, f64)>],
        final_clock: &[f64],
        makespan: f64,
        recovery_waste: f64,
        recovery_backoff: f64,
    ) -> Result<Attribution, String> {
        let mut per_rank = Vec::with_capacity(log.n_ranks());
        let mut totals = RankBuckets::default();
        let mut reconcile_error = 0.0f64;
        for r in 0..log.n_ranks() {
            let mut b = RankBuckets::default();
            // Inside a nonblocking collective's virtual window the rank
            // clock is a *virtual* clock: its sends/receives overlap the
            // caller's compute and must not be double-booked.
            let mut in_virtual = false;
            for (ev, &(s, e)) in log.rank(r).iter().zip(&clocks[r]) {
                match *ev {
                    DepEvent::Coll { .. } => {}
                    DepEvent::IcollStart { .. } => in_virtual = true,
                    DepEvent::IcollDone { .. } => in_virtual = false,
                    // The unhidden residue of an overlapped collective:
                    // wire work the compute could not cover.
                    DepEvent::IcollWait { .. } => b.transfer += e - s,
                    DepEvent::Compute { .. } => b.compute += e - s,
                    DepEvent::Send { .. } => {
                        if !in_virtual {
                            b.transfer += e - s;
                        }
                    }
                    DepEvent::Recv {
                        depart, penalty, ..
                    } => {
                        let wait = e - s;
                        if !in_virtual && wait > 0.0 {
                            let idle = (depart - s).clamp(0.0, wait);
                            let retr = penalty.min(wait - idle);
                            b.idle += idle;
                            b.retransmit += retr;
                            b.transfer += wait - idle - retr;
                        }
                    }
                }
            }
            b.idle += makespan - final_clock[r];
            let err = (b.total() - makespan).abs();
            let tol = 1e-9 * makespan.max(1e-9);
            if err > tol {
                return Err(format!(
                    "rank {r} buckets sum to {} but the makespan is {makespan} \
                     (error {err:e} > tol {tol:e}) — a clock mutation escaped attribution",
                    b.total()
                ));
            }
            reconcile_error = reconcile_error.max(err);
            totals.compute += b.compute;
            totals.transfer += b.transfer;
            totals.idle += b.idle;
            totals.retransmit += b.retransmit;
            per_rank.push(b);
        }
        Ok(Attribution {
            per_rank,
            totals,
            recovery: recovery_waste + recovery_backoff,
            recovery_waste,
            recovery_backoff,
            reconcile_error,
        })
    }
}

/// The full trace-analysis report for one distributed run.
///
/// Produced by [`PerfDoctor::analyze`] from a [`DepLog`]; rendered as
/// deterministic JSON ([`PerfDoctor::to_json`]) and as a human-readable
/// diagnosis ([`PerfDoctor::render_text`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PerfDoctor {
    /// Simulated makespan, reproduced bit-for-bit by the replay.
    pub makespan: f64,
    /// Ranks in the run.
    pub ranks: u32,
    /// The rank whose clock set the makespan.
    pub makespan_rank: u32,
    /// Five-bucket attribution of total rank-time.
    pub attribution: Attribution,
    /// The exact critical path (telescopes to the makespan).
    pub critical_path: CriticalPath,
    /// What-if makespan projections.
    pub projections: Projections,
}

impl PerfDoctor {
    /// Analyze a run's dependency log.
    ///
    /// Replays the DAG with a bit-for-bit cross-check against the
    /// recorded clocks, walks out the exact critical path, attributes
    /// every rank's time into buckets, and computes what-if projections.
    /// `recovery_cost` is the simulated time lost to crash-aborted
    /// attempts (zero for fault-free runs).
    ///
    /// # Errors
    ///
    /// Any failure means the log is not a faithful transcript (replay
    /// divergence, unmatched receive) or the bucket rules missed a clock
    /// mutation — both are bugs worth loud deaths, not silent numbers.
    pub fn analyze(log: &DepLog, recovery_cost: f64) -> Result<PerfDoctor, String> {
        Self::analyze_split(log, recovery_cost, 0.0)
    }

    /// Like [`PerfDoctor::analyze`], but with the recovery cost split
    /// into re-executed time (`waste`) and ladder backoff charges
    /// (`backoff`) — the recovery bucket reports their sum, the split is
    /// kept in [`Attribution::recovery_waste`] /
    /// [`Attribution::recovery_backoff`].
    ///
    /// # Errors
    ///
    /// Same contract as [`PerfDoctor::analyze`].
    pub fn analyze_split(log: &DepLog, waste: f64, backoff: f64) -> Result<PerfDoctor, String> {
        let rep = replay(log, WhatIf::Identity)?;
        let cp = critical_path(log, &rep);
        if !cp.hops.is_empty() {
            if cp.start.to_bits() != 0.0f64.to_bits() {
                return Err(format!(
                    "critical path starts at {} instead of 0 — a clock moved without an edge",
                    cp.start
                ));
            }
            if cp.end.to_bits() != rep.makespan.to_bits() {
                return Err(format!(
                    "critical path ends at {} but the makespan is {} — the walk lost the \
                     binding chain",
                    cp.end, rep.makespan
                ));
            }
            for (k, w) in cp.hops.windows(2).enumerate() {
                if w[0].t1.to_bits() != w[1].t0.to_bits() {
                    return Err(format!(
                        "critical path breaks between hop {k} (ends {}) and hop {} (starts {})",
                        w[0].t1,
                        k + 1,
                        w[1].t0
                    ));
                }
            }
        }
        let attribution = Attribution::from_log(
            log,
            &rep.clocks,
            &rep.final_clock,
            rep.makespan,
            waste,
            backoff,
        )?;
        let projections = project(log)?;
        Ok(PerfDoctor {
            makespan: rep.makespan,
            ranks: log.n_ranks() as u32,
            makespan_rank: rep.max_rank as u32,
            attribution,
            critical_path: cp,
            projections,
        })
    }

    /// Serialize as deterministic JSON (fixed key order, capped hop
    /// list, `by_op` totals always complete).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        escape_into(&mut out, PERF_SCHEMA);
        out.push_str(",\"makespan\":");
        write_f64(&mut out, self.makespan);
        out.push_str(",\"ranks\":");
        out.push_str(&self.ranks.to_string());
        out.push_str(",\"makespan_rank\":");
        out.push_str(&self.makespan_rank.to_string());

        out.push_str(",\"buckets\":{");
        let t = &self.attribution.totals;
        for (i, (k, v)) in [
            ("compute", t.compute),
            ("transfer", t.transfer),
            ("idle", t.idle),
            ("retransmit", t.retransmit),
            ("recovery", self.attribution.recovery),
            ("recovery_waste", self.attribution.recovery_waste),
            ("recovery_backoff", self.attribution.recovery_backoff),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            write_f64(&mut out, v);
        }
        out.push_str(",\"total_rank_time\":");
        write_f64(&mut out, self.attribution.total_rank_time(self.makespan));
        out.push_str(",\"reconcile_error\":");
        write_f64(&mut out, self.attribution.reconcile_error);
        out.push('}');

        out.push_str(",\"per_rank\":[");
        for (r, b) in self.attribution.per_rank.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            out.push_str("{\"rank\":");
            out.push_str(&r.to_string());
            out.push_str(",\"compute\":");
            write_f64(&mut out, b.compute);
            out.push_str(",\"transfer\":");
            write_f64(&mut out, b.transfer);
            out.push_str(",\"idle\":");
            write_f64(&mut out, b.idle);
            out.push_str(",\"retransmit\":");
            write_f64(&mut out, b.retransmit);
            out.push('}');
        }
        out.push(']');

        let cp = &self.critical_path;
        out.push_str(",\"critical_path\":{\"start\":");
        write_f64(&mut out, cp.start);
        out.push_str(",\"end\":");
        write_f64(&mut out, cp.end);
        out.push_str(",\"hops_total\":");
        out.push_str(&cp.hops.len().to_string());
        out.push_str(",\"hops_truncated\":");
        out.push_str(&cp.hops.len().saturating_sub(MAX_JSON_HOPS).to_string());
        out.push_str(",\"hops\":[");
        for (i, h) in cp.hops.iter().take(MAX_JSON_HOPS).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rank\":");
            out.push_str(&h.rank.to_string());
            out.push_str(",\"kind\":");
            escape_into(&mut out, h.kind.name());
            out.push_str(",\"op\":");
            escape_into(&mut out, &h.op);
            out.push_str(",\"tag\":");
            match h.tag {
                Some(tag) => escape_into(&mut out, &format!("{tag:#x}")),
                None => out.push_str("null"),
            }
            out.push_str(",\"t0\":");
            write_f64(&mut out, h.t0);
            out.push_str(",\"t1\":");
            write_f64(&mut out, h.t1);
            out.push_str(",\"count\":");
            out.push_str(&h.count.to_string());
            out.push('}');
        }
        out.push_str("],\"by_op\":{");
        for (i, (k, v)) in cp.by_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push_str(":{\"hops\":");
            out.push_str(&v.hops.to_string());
            out.push_str(",\"edges\":");
            out.push_str(&v.edges.to_string());
            out.push_str(",\"secs\":");
            write_f64(&mut out, v.secs);
            out.push('}');
        }
        out.push_str("}}");

        let p = &self.projections;
        out.push_str(",\"whatif\":{");
        for (i, (k, v)) in [
            ("zero_network", p.zero_network),
            ("perfect_balance", p.perfect_balance),
            ("infinite_cache", p.infinite_cache),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, k);
            out.push(':');
            write_f64(&mut out, v);
            out.push(',');
            escape_into(&mut out, &format!("speedup_{k}"));
            out.push(':');
            write_f64(&mut out, speedup(self.makespan, v));
        }
        out.push_str("}}");
        out
    }

    /// Render the human-readable doctor report.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("== PerfDoctor ==\n");
        out.push_str(&format!(
            "makespan {:.6}s over {} ranks (set by rank {})\n",
            self.makespan, self.ranks, self.makespan_rank
        ));
        let total = self.attribution.total_rank_time(self.makespan);
        out.push_str(&format!(
            "total rank-time {:.6}s = {} x makespan + {:.6}s recovery\n",
            total, self.ranks, self.attribution.recovery
        ));
        out.push_str("buckets:\n");
        let t = &self.attribution.totals;
        for (k, v) in [
            ("compute", t.compute),
            ("transfer", t.transfer),
            ("idle", t.idle),
            ("retransmit", t.retransmit),
            ("recovery", self.attribution.recovery),
        ] {
            out.push_str(&format!(
                "  {k:<10} {:>10.6}s  {:>5.1}%\n",
                v,
                pct(v, total)
            ));
        }
        out.push_str(&format!(
            "  (recovery = {:.6}s re-executed + {:.6}s ladder backoff)\n",
            self.attribution.recovery_waste, self.attribution.recovery_backoff
        ));
        out.push_str(&format!(
            "  (per-rank reconcile error <= {:.3e}s)\n",
            self.attribution.reconcile_error
        ));

        out.push_str(&format!(
            "critical path: {} hops, 0 -> {:.6}s (telescopes to the makespan bit-for-bit)\n",
            self.critical_path.hops.len(),
            self.critical_path.end
        ));
        out.push_str("  top contributors:\n");
        let mut ops: Vec<_> = self.critical_path.by_op.iter().collect();
        ops.sort_by(|a, b| {
            b.1.secs
                .partial_cmp(&a.1.secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        for (k, v) in ops.iter().take(8) {
            out.push_str(&format!(
                "    {k:<28} {:>10.6}s  {:>5.1}%  ({} hops / {} edges)\n",
                v.secs,
                pct(v.secs, self.makespan),
                v.hops,
                v.edges
            ));
        }

        out.push_str("what-if projections:\n");
        for (k, v) in [
            ("zero-latency network", self.projections.zero_network),
            ("perfect load balance", self.projections.perfect_balance),
            ("infinite kernel cache", self.projections.infinite_cache),
        ] {
            out.push_str(&format!(
                "  {k:<22} {:>10.6}s  ({:.2}x)\n",
                v,
                speedup(self.makespan, v)
            ));
        }
        out
    }

    /// Write `PERF_<name>.json` and `PERF_<name>.txt` under `dir`
    /// (created if missing) and return the paths written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path, name: &str) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("PERF_{name}.json"));
        let txt_path = dir.join(format!("PERF_{name}.txt"));
        let mut doc = self.to_json();
        doc.push('\n');
        std::fs::write(&json_path, doc)?;
        std::fs::write(&txt_path, self.render_text())?;
        Ok((json_path, txt_path))
    }
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

fn speedup(makespan: f64, projected: f64) -> f64 {
    if projected > 0.0 {
        makespan / projected
    } else if makespan > 0.0 {
        f64::INFINITY
    } else {
        1.0
    }
}

/// Extras a bench report can attach from a PerfDoctor analysis, as
/// `(key, value)` pairs.
pub fn bench_extras(doc: &PerfDoctor) -> Vec<(&'static str, f64)> {
    vec![
        ("whatif_zero_network", doc.projections.zero_network),
        ("whatif_perfect_balance", doc.projections.perfect_balance),
        ("whatif_infinite_cache", doc.projections.infinite_cache),
        ("critpath_hops", doc.critical_path.hops.len() as f64),
        ("recovery_waste", doc.attribution.recovery_waste),
        ("recovery_backoff", doc.attribution.recovery_backoff),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::DepRecorder;
    use crate::json::check;

    fn two_rank_log() -> DepLog {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 0.75, "fused_sweep");
        r0.send(1.0, 0.25, 1, 7, 0);
        let mut r1 = DepRecorder::new();
        r1.compute(0.0, 0.5, 0.5, "fused_sweep");
        r1.recv(0.5, 0, 7, 0, 1.25, 0.5, 0.125);
        DepLog::from_ranks(vec![r0.finish(), r1.finish()])
    }

    #[test]
    fn buckets_reconcile_to_the_makespan() {
        let doc = PerfDoctor::analyze(&two_rank_log(), 0.0).unwrap();
        // makespan = 1.25 + 0.5 + 0.125 = 1.875 (rank 1's arrival)
        assert_eq!(doc.makespan, 1.875);
        assert_eq!(doc.makespan_rank, 1);
        for b in &doc.attribution.per_rank {
            assert!((b.total() - doc.makespan).abs() <= 1e-9 * doc.makespan);
        }
        let t = &doc.attribution.totals;
        let total = t.compute + t.transfer + t.idle + t.retransmit + doc.attribution.recovery;
        let expect = doc.attribution.total_rank_time(doc.makespan);
        assert!(
            (total - expect).abs() <= 1e-9 * expect,
            "{total} vs {expect}"
        );
        // rank 1's receive: wait = 1.375, idle = 0.75 (pre-departure),
        // retransmit = 0.125 (the penalty), transfer = 0.5 (the wire).
        let b1 = &doc.attribution.per_rank[1];
        assert!((b1.idle - 0.75).abs() < 1e-12);
        assert!((b1.retransmit - 0.125).abs() < 1e-12);
        assert!((b1.transfer - 0.5).abs() < 1e-12);
        // rank 0 idles in the tail: makespan - 1.25 = 0.625.
        let b0 = &doc.attribution.per_rank[0];
        assert!((b0.idle - 0.625).abs() < 1e-12);
    }

    #[test]
    fn overlapped_wait_residue_lands_in_transfer_not_idle() {
        // Two ranks exchange a message inside a virtual window (virtual
        // completion 0.75), compute 0.25s, then wait: the 0.5s residue is
        // transfer, the window's own send/recv contribute nothing.
        let mut ranks = Vec::new();
        for r in 0..2u32 {
            let peer = 1 - r;
            let mut rec = DepRecorder::new();
            rec.icoll_start(0.0);
            rec.send(0.0, 0.25, peer, 9, 0);
            rec.recv(0.25, peer, 9, 0, 0.25, 0.5, 0.0);
            rec.coll("iallreduce", 0.0, 0.75);
            rec.icoll_done(0.0, 0.75);
            rec.compute(0.0, 0.25, 0.25, "compute");
            rec.icoll_wait(0.25);
            ranks.push(rec.finish());
        }
        let log = DepLog::from_ranks(ranks);
        let doc = PerfDoctor::analyze(&log, 0.0).unwrap();
        assert_eq!(doc.makespan, 0.75);
        for b in &doc.attribution.per_rank {
            assert!((b.compute - 0.25).abs() < 1e-12, "{b:?}");
            assert!((b.transfer - 0.5).abs() < 1e-12, "only the residue: {b:?}");
            assert_eq!(b.idle, 0.0, "overlapped wait must not read as idle");
            assert_eq!(b.retransmit, 0.0);
            assert!((b.total() - doc.makespan).abs() <= 1e-9 * doc.makespan);
        }
    }

    #[test]
    fn recovery_extends_total_rank_time() {
        let doc = PerfDoctor::analyze(&two_rank_log(), 0.5).unwrap();
        assert_eq!(doc.attribution.recovery, 0.5);
        assert_eq!(doc.attribution.recovery_waste, 0.5);
        assert_eq!(doc.attribution.recovery_backoff, 0.0);
        let expect = 2.0 * doc.makespan + 0.5;
        assert!((doc.attribution.total_rank_time(doc.makespan) - expect).abs() < 1e-12);
    }

    #[test]
    fn split_recovery_sums_into_the_bucket() {
        let doc = PerfDoctor::analyze_split(&two_rank_log(), 0.375, 0.125).unwrap();
        assert_eq!(doc.attribution.recovery_waste, 0.375);
        assert_eq!(doc.attribution.recovery_backoff, 0.125);
        assert_eq!(doc.attribution.recovery, 0.5);
        let json = doc.to_json();
        check(&json).unwrap();
        assert!(json.contains("\"recovery_waste\":0.375"));
        assert!(json.contains("\"recovery_backoff\":0.125"));
        assert!(doc.render_text().contains("ladder backoff"));
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let doc = PerfDoctor::analyze(&two_rank_log(), 0.0).unwrap();
        let a = doc.to_json();
        check(&a).unwrap_or_else(|e| panic!("{e}\n{a}"));
        let b = PerfDoctor::analyze(&two_rank_log(), 0.0).unwrap().to_json();
        assert_eq!(a, b);
        for key in [
            "\"schema\":\"shrinksvm-perf/v1\"",
            "\"makespan\":1.875",
            "\"buckets\":{",
            "\"reconcile_error\":",
            "\"critical_path\":{",
            "\"hops_truncated\":0",
            "\"whatif\":{",
            "\"tag\":\"0x7\"",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
    }

    #[test]
    fn text_report_names_the_buckets_and_projections() {
        let doc = PerfDoctor::analyze(&two_rank_log(), 0.0).unwrap();
        let text = doc.render_text();
        for needle in [
            "PerfDoctor",
            "compute",
            "transfer",
            "idle",
            "retransmit",
            "recovery",
            "critical path",
            "zero-latency network",
            "perfect load balance",
            "infinite kernel cache",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn hop_list_is_capped_but_totals_are_not() {
        let mut r0 = DepRecorder::new();
        let mut t = 0.0f64;
        for i in 0..200 {
            // alternate classes so hops cannot merge
            let class = if i % 2 == 0 { "a" } else { "b" };
            r0.compute(t, 1.0, 1.0, class);
            t += 1.0;
        }
        let log = DepLog::from_ranks(vec![r0.finish()]);
        let doc = PerfDoctor::analyze(&log, 0.0).unwrap();
        assert_eq!(doc.critical_path.hops.len(), 200);
        let json = doc.to_json();
        check(&json).expect("well-formed");
        assert!(json.contains("\"hops_total\":200"));
        assert!(json.contains(&format!("\"hops_truncated\":{}", 200 - MAX_JSON_HOPS)));
        let by_a = &doc.critical_path.by_op["compute/a"];
        assert_eq!(by_a.hops, 100);
    }

    #[test]
    fn write_emits_both_artifacts() {
        let dir = std::env::temp_dir().join("shrinksvm_obs_perfdoctor_test");
        let doc = PerfDoctor::analyze(&two_rank_log(), 0.0).unwrap();
        let (j, t) = doc.write(&dir, "unit").expect("write");
        let body = std::fs::read_to_string(&j).expect("read json");
        check(body.trim_end()).expect("well-formed on disk");
        assert!(std::fs::read_to_string(&t)
            .expect("read txt")
            .contains("PerfDoctor"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
