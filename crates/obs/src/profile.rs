//! Hierarchical self/total-time profiles of one run, built from the span
//! [`Timeline`](crate::timeline::Timeline) and the
//! [`DepLog`](crate::critpath::DepLog) event DAG.
//!
//! Where [`attrib`](crate::attrib) answers *how much* time each bucket
//! got, this module answers *where in the program* it went: every
//! attributed second lands on a `phase → op → charge` stack —
//!
//! * **phase** comes from the timeline's `cat:"solver"` spans
//!   (`fused_sweep`, `sweep_tail`, `reconstruction`, ...); events outside
//!   any solver span fall into `main`, and the gap between a rank's final
//!   clock and the makespan into `tail`;
//! * **op** is the compute charge class, the enclosing collective's name,
//!   or `p2p`;
//! * **charge** separates cache-hit compute from the miss overhead
//!   (`compute` vs `cache_miss_extra`), compute hidden behind an
//!   in-flight nonblocking collective (`overlap_covered`) from the
//!   unhidden wait residue (`overlap_wait`), and splits receives exactly
//!   like the attribution walk (`peer_wait` / `retransmit` / `wire`).
//!
//! The per-rank trees are reconciled bucket-for-bucket against
//! [`Attribution::from_log`](crate::attrib::Attribution::from_log) —
//! construction *fails* if any rank's tree disagrees with the attribution
//! by more than `1e-9 · makespan`, so the two views can never drift
//! apart. Exports: deterministic collapsed-stack text
//! ([`Profile::to_folded`], values in shortest-round-trip f64 so a parsed
//! sum reproduces the in-memory sum exactly), a self-contained static
//! flame-graph SVG ([`Profile::to_svg`], no scripts, no external assets),
//! and JSON under schema [`PROFILE_SCHEMA`]. Same-seed runs emit all
//! three byte-identically.

use crate::attrib::{Attribution, RankBuckets};
use crate::critpath::{coll_labels, replay, DepEvent, DepLog, WhatIf};
use crate::json::{escape_into, write_f64};
use crate::timeline::{Event, Timeline};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Schema tag stamped into every `PROFILE_<name>.json`.
pub const PROFILE_SCHEMA: &str = "shrinksvm-profile/v1";

/// One frame of the profile tree. Children are kept in a `BTreeMap` so
/// every traversal — folded text, SVG, JSON — is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileNode {
    /// Seconds charged directly to this frame (leaves carry all of it;
    /// interior frames are pure grouping and stay at zero).
    pub self_secs: f64,
    /// Child frames by name.
    pub children: std::collections::BTreeMap<String, ProfileNode>,
}

impl ProfileNode {
    /// Inclusive time: own self time plus every descendant's.
    pub fn total(&self) -> f64 {
        let mut t = self.self_secs;
        for c in self.children.values() {
            t += c.total();
        }
        t
    }

    /// Frame levels below and including this one.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .values()
            .map(ProfileNode::depth)
            .max()
            .unwrap_or(0)
    }

    fn add(&mut self, path: &[&str], secs: f64) {
        match path.split_first() {
            None => self.self_secs += secs,
            Some((head, rest)) => self
                .children
                .entry((*head).to_string())
                .or_default()
                .add(rest, secs),
        }
    }

    fn merge_into(&self, out: &mut ProfileNode) {
        out.self_secs += self.self_secs;
        for (k, c) in &self.children {
            c.merge_into(out.children.entry(k.clone()).or_default());
        }
    }
}

/// Per-rank solver-phase intervals extracted from the timeline, with a
/// running max-end so the containment lookup can stop early.
struct PhaseIndex {
    /// Per rank: `(t0, t1, name)` sorted by start.
    spans: Vec<Vec<(f64, f64, String)>>,
    /// Per rank: running maximum of `t1` over `spans[..=i]`.
    max_end: Vec<Vec<f64>>,
}

impl PhaseIndex {
    fn build(timeline: &Timeline, n_ranks: usize) -> PhaseIndex {
        let mut spans: Vec<Vec<(f64, f64, String)>> = vec![Vec::new(); n_ranks];
        for e in timeline.events() {
            if let Event::Span {
                track,
                name,
                cat,
                t0,
                t1,
            } = e
            {
                if cat == "solver" && (*track as usize) < n_ranks {
                    spans[*track as usize].push((*t0, *t1, name.clone()));
                }
            }
        }
        for s in &mut spans {
            s.sort_by(|a, b| {
                (a.0.to_bits(), a.1.to_bits(), a.2.as_str()).cmp(&(
                    b.0.to_bits(),
                    b.1.to_bits(),
                    b.2.as_str(),
                ))
            });
        }
        let max_end = spans
            .iter()
            .map(|s| {
                let mut run = f64::NEG_INFINITY;
                s.iter()
                    .map(|&(_, t1, _)| {
                        run = run.max(t1);
                        run
                    })
                    .collect()
            })
            .collect();
        PhaseIndex { spans, max_end }
    }

    /// The phase an event starting at `t` on rank `r` belongs to: the
    /// latest-starting solver span containing `t` (nested spans resolve
    /// to the innermost), or `"main"` when none covers it.
    fn of(&self, r: usize, t: f64) -> &str {
        let spans = &self.spans[r];
        // Rightmost span with t0 <= t.
        let mut i = spans.partition_point(|&(t0, _, _)| t0 <= t);
        while i > 0 {
            i -= 1;
            let (_, t1, ref name) = spans[i];
            if t < t1 {
                return name;
            }
            if self.max_end[r][i] <= t {
                break; // no earlier span can reach past t
            }
        }
        "main"
    }
}

/// Charge classes grouped into the attribution buckets — the mapping the
/// reconciliation check enforces.
fn bucket_of(charge: &str) -> &'static str {
    match charge {
        "compute" | "cache_miss_extra" | "overlap_covered" => "compute",
        "send_overhead" | "wire" | "overlap_wait" => "transfer",
        "peer_wait" | "idle" => "idle",
        "retransmit" => "retransmit",
        _ => "compute",
    }
}

/// The hierarchical time profile of one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Simulated makespan, reproduced by the identity replay.
    pub makespan: f64,
    /// Ranks in the run.
    pub ranks: u32,
    /// One `phase → op → charge` tree per rank; each tree's total equals
    /// the makespan within `reconcile_error`.
    pub per_rank: Vec<ProfileNode>,
    /// The rank trees summed frame-by-frame; totals `ranks · makespan`.
    pub merged: ProfileNode,
    /// Largest per-rank deviation of a tree total from the makespan.
    pub reconcile_error: f64,
}

impl Profile {
    /// Profile a dependency log with no timeline: every event lands in
    /// the `main` phase (plus the `tail` idle phase).
    ///
    /// # Errors
    ///
    /// Same contract as [`Profile::from_run`].
    pub fn from_log(log: &DepLog) -> Result<Profile, String> {
        Self::from_run(log, &Timeline::new())
    }

    /// Build the profile from a run's dependency log and span timeline.
    ///
    /// Replays the DAG bit-for-bit, walks every rank's events with the
    /// exact bucket rules of
    /// [`Attribution::from_log`](crate::attrib::Attribution::from_log),
    /// and stacks each charge under its solver phase.
    ///
    /// # Errors
    ///
    /// Fails when the replay rejects the log, or when any rank's tree
    /// disagrees with the attribution buckets (or the makespan) by more
    /// than `1e-9 · makespan` — either would mean the two views of the
    /// same run have drifted apart.
    pub fn from_run(log: &DepLog, timeline: &Timeline) -> Result<Profile, String> {
        let rep = replay(log, WhatIf::Identity)?;
        let attr =
            Attribution::from_log(log, &rep.clocks, &rep.final_clock, rep.makespan, 0.0, 0.0)?;
        let labels = coll_labels(log);
        let phases = PhaseIndex::build(timeline, log.n_ranks());
        let makespan = rep.makespan;
        let tol = 1e-9 * makespan.max(1e-9);

        let mut per_rank = Vec::with_capacity(log.n_ranks());
        let mut reconcile_error = 0.0f64;
        for r in 0..log.n_ranks() {
            let mut root = ProfileNode::default();
            let mut mine = RankBuckets::default();
            // Mirror of the attribution walk: `in_virtual` marks a
            // nonblocking collective's virtual window (its inner traffic
            // overlaps the caller's compute and is not charged);
            // `pending` queues completed-but-unawaited windows, FIFO like
            // the simulator matches waits — compute booked while it is
            // nonempty is exactly the overlap-covered time.
            let mut in_virtual = false;
            let mut window_coll: Option<&'static str> = None;
            let mut pending: VecDeque<&'static str> = VecDeque::new();
            for (i, (ev, &(s, e))) in log.rank(r).iter().zip(&rep.clocks[r]).enumerate() {
                match *ev {
                    DepEvent::Coll { name, .. } => {
                        if in_virtual {
                            window_coll = Some(name);
                        }
                    }
                    DepEvent::IcollStart { .. } => {
                        in_virtual = true;
                        window_coll = None;
                    }
                    DepEvent::IcollDone { .. } => {
                        in_virtual = false;
                        pending.push_back(window_coll.take().unwrap_or("icoll"));
                    }
                    DepEvent::IcollWait { .. } => {
                        let op = pending.pop_front().unwrap_or("icoll");
                        let d = e - s;
                        if d > 0.0 {
                            root.add(&[phases.of(r, s), op, "overlap_wait"], d);
                        }
                        mine.transfer += d;
                    }
                    DepEvent::Compute {
                        secs,
                        alt_secs,
                        class,
                        ..
                    } => {
                        let d = e - s;
                        let phase = phases.of(r, s);
                        // The all-hit projection bounds the charge from
                        // below; anything above it is miss overhead.
                        let miss = (secs - alt_secs).clamp(0.0, d);
                        let base = if pending.is_empty() {
                            "compute"
                        } else {
                            "overlap_covered"
                        };
                        if miss > 0.0 {
                            root.add(&[phase, class, "cache_miss_extra"], miss);
                        }
                        if d - miss > 0.0 {
                            root.add(&[phase, class, base], d - miss);
                        }
                        mine.compute += d;
                    }
                    DepEvent::Send { .. } => {
                        if !in_virtual {
                            let d = e - s;
                            if d > 0.0 {
                                let op = labels[r][i].unwrap_or("p2p");
                                root.add(&[phases.of(r, s), op, "send_overhead"], d);
                            }
                            mine.transfer += d;
                        }
                    }
                    DepEvent::Recv {
                        depart, penalty, ..
                    } => {
                        let wait = e - s;
                        if !in_virtual && wait > 0.0 {
                            let op = labels[r][i].unwrap_or("p2p");
                            let phase = phases.of(r, s);
                            let idle = (depart - s).clamp(0.0, wait);
                            let retr = penalty.min(wait - idle);
                            let wire = wait - idle - retr;
                            if idle > 0.0 {
                                root.add(&[phase, op, "peer_wait"], idle);
                            }
                            if retr > 0.0 {
                                root.add(&[phase, op, "retransmit"], retr);
                            }
                            if wire > 0.0 {
                                root.add(&[phase, op, "wire"], wire);
                            }
                            mine.idle += idle;
                            mine.retransmit += retr;
                            mine.transfer += wire;
                        }
                    }
                }
            }
            let tail = makespan - rep.final_clock[r];
            if tail > 0.0 {
                root.add(&["tail", "idle_tail", "idle"], tail);
            }
            mine.idle += tail;

            // Reconcile against the attribution walk, bucket by bucket.
            let want = &attr.per_rank[r];
            for (k, got, expect) in [
                ("compute", mine.compute, want.compute),
                ("transfer", mine.transfer, want.transfer),
                ("idle", mine.idle, want.idle),
                ("retransmit", mine.retransmit, want.retransmit),
            ] {
                if (got - expect).abs() > tol {
                    return Err(format!(
                        "rank {r} profile books {got} to {k} but the attribution says {expect} \
                         — the two walks have drifted apart"
                    ));
                }
            }
            let err = (root.total() - makespan).abs();
            if err > tol {
                return Err(format!(
                    "rank {r} profile tree totals {} but the makespan is {makespan} \
                     (error {err:e} > tol {tol:e})",
                    root.total()
                ));
            }
            reconcile_error = reconcile_error.max(err);
            per_rank.push(root);
        }

        let mut merged = ProfileNode::default();
        for root in &per_rank {
            root.merge_into(&mut merged);
        }
        Ok(Profile {
            makespan,
            ranks: log.n_ranks() as u32,
            per_rank,
            merged,
            reconcile_error,
        })
    }

    /// Collapsed-stack text: one `rank<r>;phase;op;charge <secs>` line
    /// per nonzero leaf, ranks in order, frames in `BTreeMap` order.
    /// Values use the shortest-round-trip f64 form, so parsing the lines
    /// back and summing reproduces `ranks · makespan` to the same
    /// tolerance the construction enforced.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (r, root) in self.per_rank.iter().enumerate() {
            fold_into(&mut out, &format!("rank{r}"), root);
        }
        out
    }

    /// Serialize as deterministic JSON under [`PROFILE_SCHEMA`]: run
    /// headline, the merged tree, and the per-rank trees, every node as
    /// `{name, self, total, children}` with children in `BTreeMap`
    /// order.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"schema\":");
        escape_into(&mut out, PROFILE_SCHEMA);
        out.push_str(",\"makespan\":");
        write_f64(&mut out, self.makespan);
        out.push_str(",\"ranks\":");
        out.push_str(&self.ranks.to_string());
        out.push_str(",\"total_self\":");
        write_f64(&mut out, self.merged.total());
        out.push_str(",\"reconcile_error\":");
        write_f64(&mut out, self.reconcile_error);
        out.push_str(",\"merged\":");
        node_json(&mut out, "all", &self.merged);
        out.push_str(",\"per_rank\":[");
        for (r, root) in self.per_rank.iter().enumerate() {
            if r > 0 {
                out.push(',');
            }
            node_json(&mut out, &format!("rank{r}"), root);
        }
        out.push_str("]}");
        out
    }

    /// Render the merged tree as a self-contained flame-graph SVG
    /// (icicle layout, root on top): static markup only — no scripts, no
    /// external fonts — with `<title>` hover text carrying each frame's
    /// exact seconds and share. Frame colors are a deterministic hash of
    /// the frame name, so the same op keeps its color across runs and
    /// across profiles.
    pub fn to_svg(&self) -> String {
        const W: f64 = 1200.0;
        const ROW: f64 = 17.0;
        const PAD: f64 = 4.0;
        const HEADER: f64 = 24.0;
        let depth = self.merged.depth();
        let height = HEADER + depth as f64 * ROW + PAD * 2.0;
        let total = self.merged.total();
        let mut out = String::with_capacity(8192);
        let _ = write!(
            out,
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
             <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{height:.1}\" \
             viewBox=\"0 0 {W} {height:.1}\" font-family=\"monospace\" font-size=\"11\">\n\
             <rect x=\"0\" y=\"0\" width=\"{W}\" height=\"{height:.1}\" fill=\"#f8f8f8\"/>\n"
        );
        let _ = writeln!(
            out,
            "<text x=\"{PAD}\" y=\"16\">profile: {} rank(s), makespan {:.9}s, \
             total rank-time {:.9}s</text>",
            self.ranks, self.makespan, total
        );
        if total > 0.0 {
            svg_frame(&mut out, "all", &self.merged, 0.0, W, 0, HEADER, total);
        }
        out.push_str("</svg>\n");
        out
    }

    /// Write `PROFILE_<name>.{folded,svg,json}` under `dir` (created if
    /// missing) and return the paths written, in that order.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path, name: &str) -> io::Result<(PathBuf, PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let folded = dir.join(format!("PROFILE_{name}.folded"));
        let svg = dir.join(format!("PROFILE_{name}.svg"));
        let json = dir.join(format!("PROFILE_{name}.json"));
        std::fs::write(&folded, self.to_folded())?;
        std::fs::write(&svg, self.to_svg())?;
        let mut doc = self.to_json();
        doc.push('\n');
        std::fs::write(&json, doc)?;
        Ok((folded, svg, json))
    }

    /// Total seconds booked to one attribution bucket across the merged
    /// tree (leaf charges grouped via the same mapping the
    /// reconciliation check uses).
    pub fn bucket_total(&self, bucket: &str) -> f64 {
        fn walk(node: &ProfileNode, depth: usize, bucket: &str, acc: &mut f64) {
            for (name, c) in &node.children {
                if depth == 2 && bucket_of(name) == bucket {
                    *acc += c.total();
                } else {
                    walk(c, depth + 1, bucket, acc);
                }
            }
        }
        let mut acc = 0.0;
        walk(&self.merged, 0, bucket, &mut acc);
        acc
    }
}

fn fold_into(out: &mut String, stack: &str, node: &ProfileNode) {
    if node.self_secs > 0.0 {
        out.push_str(stack);
        out.push(' ');
        write_f64(out, node.self_secs);
        out.push('\n');
    }
    for (name, child) in &node.children {
        fold_into(out, &format!("{stack};{name}"), child);
    }
}

fn node_json(out: &mut String, name: &str, node: &ProfileNode) {
    out.push_str("{\"name\":");
    escape_into(out, name);
    out.push_str(",\"self\":");
    write_f64(out, node.self_secs);
    out.push_str(",\"total\":");
    write_f64(out, node.total());
    out.push_str(",\"children\":[");
    for (i, (k, c)) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        node_json(out, k, c);
    }
    out.push_str("]}");
}

/// Minimal XML text escaping for SVG content and attribute values.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Deterministic warm-palette fill from the frame name (FNV-1a).
fn frame_color(name: &str) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let r = 190 + (h % 66);
    let g = 90 + ((h >> 8) % 110);
    let b = 40 + ((h >> 16) % 50);
    format!("rgb({r},{g},{b})")
}

#[allow(clippy::too_many_arguments)]
fn svg_frame(
    out: &mut String,
    name: &str,
    node: &ProfileNode,
    x: f64,
    w: f64,
    depth: usize,
    header: f64,
    total: f64,
) {
    const ROW: f64 = 17.0;
    const MIN_W: f64 = 0.25;
    const TEXT_W: f64 = 42.0;
    if w < MIN_W {
        return;
    }
    let y = header + depth as f64 * ROW;
    let secs = node.total();
    let pct = if total > 0.0 {
        100.0 * secs / total
    } else {
        0.0
    };
    let esc = xml_escape(name);
    let _ = write!(
        out,
        "<g><title>{esc}: {secs:.9}s ({pct:.2}%)</title>\
         <rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" height=\"{:.1}\" \
         fill=\"{}\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>",
        ROW - 1.0,
        frame_color(name)
    );
    if w >= TEXT_W {
        // Clip the label to what fits; ~6.8px per monospace glyph.
        let fit = ((w - 6.0) / 6.8) as usize;
        let label: String = esc.chars().take(fit.max(1)).collect();
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.1}\" fill=\"#111\">{label}</text>",
            x + 3.0,
            y + 12.0
        );
    }
    out.push_str("</g>\n");
    // Children left-to-right in BTreeMap order; the self-time remainder
    // is the uncovered gap at the right edge.
    let scale = w / secs.max(f64::MIN_POSITIVE);
    let mut cx = x;
    for (k, c) in &node.children {
        let cw = c.total() * scale;
        svg_frame(out, k, c, cx, cw, depth + 1, header, total);
        cx += cw;
    }
}

/// A strict well-formedness check for the emitted SVG (and any other
/// single-document XML): balanced tags, quoted attributes, proper
/// entity references. Used by the acceptance tests and CI; not a general
/// XML parser (no DOCTYPE, no CDATA — the emitter produces neither).
///
/// # Errors
///
/// A message naming the byte offset and the violation.
pub fn xml_check(doc: &str) -> Result<(), String> {
    let bytes = doc.as_bytes();
    let mut i = 0usize;
    let mut stack: Vec<String> = Vec::new();
    let err = |i: usize, msg: &str| Err(format!("xml error at byte {i}: {msg}"));
    while i < bytes.len() {
        match bytes[i] {
            b'<' => {
                if doc[i..].starts_with("<?") {
                    match doc[i..].find("?>") {
                        Some(j) => i += j + 2,
                        None => return err(i, "unterminated processing instruction"),
                    }
                    continue;
                }
                if doc[i..].starts_with("<!--") {
                    match doc[i..].find("-->") {
                        Some(j) => i += j + 3,
                        None => return err(i, "unterminated comment"),
                    }
                    continue;
                }
                let Some(j) = doc[i..].find('>') else {
                    return err(i, "unterminated tag");
                };
                let inner = &doc[i + 1..i + j];
                i += j + 1;
                if let Some(name) = inner.strip_prefix('/') {
                    let name = name.trim();
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return err(i, &format!("</{name}> closes <{open}>"));
                        }
                        None => return err(i, &format!("</{name}> with nothing open")),
                    }
                    continue;
                }
                let self_closing = inner.ends_with('/');
                let body = inner.strip_suffix('/').unwrap_or(inner);
                let mut parts = body.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("");
                if name.is_empty() {
                    return err(i, "empty tag name");
                }
                if let Some(attrs) = parts.next() {
                    check_attrs(attrs).map_err(|m| format!("xml error at byte {i}: {m}"))?;
                }
                if !self_closing {
                    stack.push(name.to_string());
                }
            }
            b'&' => {
                let rest = &doc[i..];
                let ok = ["&amp;", "&lt;", "&gt;", "&quot;", "&apos;"]
                    .iter()
                    .any(|e| rest.starts_with(e));
                if !ok {
                    return err(i, "bare '&' (use &amp;)");
                }
                i += 1;
            }
            b'>' => return err(i, "bare '>' outside a tag is suspicious here"),
            _ => i += 1,
        }
    }
    if let Some(open) = stack.pop() {
        return Err(format!("xml error: <{open}> never closed"));
    }
    Ok(())
}

/// Attribute syntax inside a start tag: `name="value"` pairs, values
/// quoted, no raw `<` or unescaped quotes inside values.
fn check_attrs(attrs: &str) -> Result<(), String> {
    let mut rest = attrs.trim();
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else {
            return Err(format!("attribute without value near '{rest}'"));
        };
        let name = rest[..eq].trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(format!("malformed attribute name near '{rest}'"));
        }
        let after = rest[eq + 1..].trim_start();
        let Some(q) = after.chars().next() else {
            return Err(format!("attribute '{name}' has no value"));
        };
        if q != '"' && q != '\'' {
            return Err(format!("attribute '{name}' value is unquoted"));
        }
        let Some(close) = after[1..].find(q) else {
            return Err(format!("attribute '{name}' value is unterminated"));
        };
        if after[1..1 + close].contains('<') {
            return Err(format!("attribute '{name}' value contains raw '<'"));
        }
        rest = after[close + 2..].trim_start();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critpath::DepRecorder;
    use crate::json::check;
    use crate::timeline::TrackRecorder;

    /// The attrib test log: rank 0 computes 1.0 (all-hit 0.75) then
    /// sends; rank 1 computes 0.5 then receives (idle 0.75, wire 0.5,
    /// penalty 0.125). Makespan 1.875.
    fn two_rank_log() -> DepLog {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 0.75, "fused_sweep");
        r0.send(1.0, 0.25, 1, 7, 0);
        let mut r1 = DepRecorder::new();
        r1.compute(0.0, 0.5, 0.5, "fused_sweep");
        r1.recv(0.5, 0, 7, 0, 1.25, 0.5, 0.125);
        DepLog::from_ranks(vec![r0.finish(), r1.finish()])
    }

    fn folded_sum(folded: &str) -> f64 {
        folded
            .lines()
            .map(|l| {
                let v = l.rsplit(' ').next().expect("value field");
                v.parse::<f64>().expect("parseable f64")
            })
            .sum()
    }

    #[test]
    fn tree_reconciles_and_splits_cache_misses() {
        let p = Profile::from_log(&two_rank_log()).expect("profile");
        assert_eq!(p.makespan, 1.875);
        assert_eq!(p.ranks, 2);
        for root in &p.per_rank {
            assert!((root.total() - p.makespan).abs() <= 1e-9 * p.makespan);
        }
        let folded = p.to_folded();
        // rank 0: fused_sweep compute splits into 0.75 hit + 0.25 miss.
        assert!(
            folded.contains("rank0;main;fused_sweep;compute 0.75"),
            "{folded}"
        );
        assert!(
            folded.contains("rank0;main;fused_sweep;cache_miss_extra 0.25"),
            "{folded}"
        );
        // rank 1's receive splits exactly like the attribution.
        assert!(folded.contains("rank1;main;p2p;peer_wait 0.75"), "{folded}");
        assert!(
            folded.contains("rank1;main;p2p;retransmit 0.125"),
            "{folded}"
        );
        assert!(folded.contains("rank1;main;p2p;wire 0.5"), "{folded}");
        // rank 0's makespan tail.
        assert!(
            folded.contains("rank0;tail;idle_tail;idle 0.625"),
            "{folded}"
        );
        // Folded self-times sum to ranks * makespan.
        let sum = folded_sum(&folded);
        assert!(
            (sum - 2.0 * p.makespan).abs() <= 1e-9 * p.makespan,
            "{sum} vs {}",
            2.0 * p.makespan
        );
    }

    #[test]
    fn overlap_covered_and_wait_are_split_out() {
        // Mirrors the attrib overlapped-wait test: the 0.25s compute runs
        // while the iallreduce is in flight (covered), the 0.5s residue
        // is the unhidden wait.
        let mut ranks = Vec::new();
        for r in 0..2u32 {
            let peer = 1 - r;
            let mut rec = DepRecorder::new();
            rec.icoll_start(0.0);
            rec.send(0.0, 0.25, peer, 9, 0);
            rec.recv(0.25, peer, 9, 0, 0.25, 0.5, 0.0);
            rec.coll("iallreduce", 0.0, 0.75);
            rec.icoll_done(0.0, 0.75);
            rec.compute(0.0, 0.25, 0.25, "sweep_tail");
            rec.icoll_wait(0.25);
            ranks.push(rec.finish());
        }
        let p = Profile::from_log(&DepLog::from_ranks(ranks)).expect("profile");
        let folded = p.to_folded();
        assert!(
            folded.contains("rank0;main;sweep_tail;overlap_covered 0.25"),
            "{folded}"
        );
        assert!(
            folded.contains("rank0;main;iallreduce;overlap_wait 0.5"),
            "{folded}"
        );
        // The window's own send/recv contribute nothing.
        assert!(!folded.contains("send_overhead"), "{folded}");
        assert!(!folded.contains("wire"), "{folded}");
        assert!((p.bucket_total("compute") - 0.5).abs() < 1e-12);
        assert!((p.bucket_total("transfer") - 1.0).abs() < 1e-12);
        assert_eq!(p.bucket_total("idle"), 0.0);
    }

    #[test]
    fn timeline_spans_assign_phases() {
        let log = two_rank_log();
        let mut t0 = TrackRecorder::new(0);
        t0.span("fused_sweep", "solver", 0.0, 1.0);
        let mut t1 = TrackRecorder::new(1);
        t1.span("recv_wait", "p2p", 0.5, 1.875); // wrong cat: ignored
        let tl = Timeline::from_tracks(vec![t0.finish(), t1.finish()]);
        let p = Profile::from_run(&log, &tl).expect("profile");
        let folded = p.to_folded();
        // rank 0's compute starts at 0.0, inside the solver span.
        assert!(
            folded.contains("rank0;fused_sweep;fused_sweep;compute 0.75"),
            "{folded}"
        );
        // rank 0's send at t=1.0 is past the span end: main phase.
        assert!(
            folded.contains("rank0;main;p2p;send_overhead 0.25"),
            "{folded}"
        );
        // rank 1 has no solver span (p2p cat does not count).
        assert!(folded.contains("rank1;main;p2p;wire 0.5"), "{folded}");
    }

    #[test]
    fn artifacts_are_deterministic_and_well_formed() {
        let a = Profile::from_log(&two_rank_log()).expect("a");
        let b = Profile::from_log(&two_rank_log()).expect("b");
        assert_eq!(a.to_folded(), b.to_folded());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_svg(), b.to_svg());
        let json = a.to_json();
        check(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(
            json.contains("\"schema\":\"shrinksvm-profile/v1\""),
            "{json}"
        );
        assert!(json.contains("\"name\":\"all\""), "{json}");
        assert!(json.contains("\"name\":\"rank0\""), "{json}");
        xml_check(&a.to_svg()).unwrap_or_else(|e| panic!("{e}\n{}", a.to_svg()));
    }

    #[test]
    fn empty_log_profiles_to_nothing() {
        let p = Profile::from_log(&DepLog::new()).expect("empty profile");
        assert_eq!(p.makespan, 0.0);
        assert_eq!(p.ranks, 0);
        assert!(p.to_folded().is_empty());
        check(&p.to_json()).expect("json");
        xml_check(&p.to_svg()).expect("svg");
    }

    #[test]
    fn write_emits_all_three_artifacts() {
        let dir = std::env::temp_dir().join("shrinksvm_obs_profile_test");
        let p = Profile::from_log(&two_rank_log()).expect("profile");
        let (folded, svg, json) = p.write(&dir, "unit").expect("write");
        assert!(std::fs::read_to_string(&folded)
            .expect("folded")
            .contains("rank0;"));
        xml_check(&std::fs::read_to_string(&svg).expect("svg")).expect("well-formed svg");
        check(std::fs::read_to_string(&json).expect("json").trim_end()).expect("well-formed json");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn xml_checker_rejects_malformed_documents() {
        xml_check("<a><b/></a>").expect("fine");
        xml_check("<a x=\"1\">t &amp; u</a>").expect("fine");
        assert!(xml_check("<a><b></a>").is_err());
        assert!(xml_check("<a>").is_err());
        assert!(xml_check("</a>").is_err());
        assert!(xml_check("<a>& </a>").is_err());
        assert!(xml_check("<a x=1></a>").is_err());
        assert!(xml_check("<a x=\"1></a>").is_err());
    }

    #[test]
    fn svg_escapes_frame_names() {
        let mut r0 = DepRecorder::new();
        r0.compute(0.0, 1.0, 1.0, "a<b&c");
        let p = Profile::from_log(&DepLog::from_ranks(vec![r0.finish()])).expect("profile");
        let svg = p.to_svg();
        xml_check(&svg).unwrap_or_else(|e| panic!("{e}\n{svg}"));
        assert!(svg.contains("a&lt;b&amp;c"), "{svg}");
    }
}
